"""Tests for wall-clock phase profiling."""

import pytest

from repro.obs import PhaseProfiler


class TestSpans:
    def test_context_manager_times_a_phase(self):
        profiler = PhaseProfiler()
        with profiler.span("work"):
            sum(range(1_000))
        assert len(profiler.spans) == 1
        span = profiler.spans[0]
        assert span.name == "work"
        assert span.duration >= 0.0
        assert span.start >= 0.0

    def test_span_recorded_even_on_exception(self):
        profiler = PhaseProfiler()
        with pytest.raises(RuntimeError):
            with profiler.span("doomed"):
                raise RuntimeError("boom")
        assert [s.name for s in profiler.spans] == ["doomed"]

    def test_add_span_records_external_timing(self):
        profiler = PhaseProfiler()
        profiler.add_span("warmup", 0.5, 1.25)
        assert profiler.spans[0] == ("warmup", 0.5, 1.25)

    def test_totals_sum_recurring_phases(self):
        profiler = PhaseProfiler()
        profiler.add_span("simulate", 0.0, 1.0)
        profiler.add_span("simulate", 1.0, 2.0)
        profiler.add_span("report", 3.0, 0.5)
        assert profiler.totals() == {"simulate": 3.0, "report": 0.5}

    def test_merge_rebases_origin(self):
        parent = PhaseProfiler()
        child = PhaseProfiler()
        child.origin = parent.origin + 10.0  # child born 10s later
        child.add_span("job", 1.0, 2.0)
        parent.merge(child)
        assert parent.spans[0].start == pytest.approx(11.0)
        assert parent.spans[0].duration == 2.0


class TestHostIntegration:
    def test_simulate_fills_phases_and_extras(self, config, gromacs_trace):
        from repro.obs import Observation
        from repro.sim import simulate

        observe = Observation()
        result = simulate(gromacs_trace, config, warmup_instructions=500,
                          sim_instructions=2_000, observe=observe)
        totals = observe.profiler.totals()
        assert set(totals) == {"warmup", "simulate"}
        assert totals["simulate"] > 0.0
        assert result.extra["phase_simulate_seconds"] == pytest.approx(
            totals["simulate"])
        assert result.extra["phase_warmup_seconds"] == pytest.approx(
            totals["warmup"])

    def test_phase_extras_present_without_observe(self, config,
                                                  gromacs_trace):
        from repro.sim import simulate

        result = simulate(gromacs_trace, config, sim_instructions=1_000)
        assert "phase_simulate_seconds" in result.extra
        assert "phase_warmup_seconds" in result.extra

    def test_batch_runner_emits_job_spans(self, config):
        from repro.sim.batch import Job, run_batch
        from repro.sim.runner import ExperimentScale

        scale = ExperimentScale(warmup_instructions=0,
                                sim_instructions=1_000,
                                sample_interval=500)
        profiler = PhaseProfiler()
        results = run_batch([Job("470.lbm"), Job("453.povray")], config,
                            scale, processes=1, profiler=profiler)
        assert len(results) == 2
        names = [span.name for span in profiler.spans]
        assert names == ["job0:470.lbm", "job1:453.povray"]
