"""Tests for the worker-side resource sampler."""

import time

from repro.obs.resources import ResourceSample, ResourceSampler, sample_resources


class TestSampleResources:
    def test_returns_plausible_numbers(self):
        sample = sample_resources()
        assert sample.cpu_seconds >= 0.0
        assert sample.peak_rss_kb >= 0

    def test_record_form(self):
        record = ResourceSample(cpu_seconds=1.5, peak_rss_kb=2048).to_record()
        assert record == {"cpu": 1.5, "rss_kb": 2048}

    def test_cpu_is_monotonic(self):
        before = sample_resources()
        deadline = time.process_time() + 0.05
        while time.process_time() < deadline:  # burn measurable CPU
            pass
        after = sample_resources()
        assert after.cpu_seconds >= before.cpu_seconds


class TestSamplerDisabled:
    def test_zero_interval_is_disabled(self):
        emitted = []
        sampler = ResourceSampler(0.0, emit=emitted.append)
        assert not sampler.enabled
        sampler.start()
        assert sampler._thread is None  # no thread, no overhead
        sampler.stop()
        assert emitted == []
        assert sampler.emitted == 0

    def test_sample_once_is_explicit_even_when_disabled(self):
        # The interval gates the *thread*; an explicit sample_once call
        # (the spooler's closing peak-RSS reading) always emits.
        emitted = []
        sampler = ResourceSampler(0.0, emit=emitted.append)
        sampler.sample_once()
        assert len(emitted) == 1

    def test_negative_interval_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            ResourceSampler(-1.0, emit=lambda sample: None)


class TestSamplerCadence:
    def test_emits_at_configured_interval(self):
        """A 20 ms sampler running ~200 ms emits repeatedly — the exact
        count is scheduler-dependent, so only loose bounds are asserted."""
        emitted = []
        sampler = ResourceSampler(0.02, emit=emitted.append)
        assert sampler.enabled
        sampler.start()
        time.sleep(0.2)
        sampler.stop()
        # >= 3 rules out "fired once and died"; the ceiling guards
        # against a busy-loop emitting far faster than the interval.
        assert 3 <= len(emitted) <= 30
        assert all(isinstance(sample, ResourceSample) for sample in emitted)
        assert sampler.emitted == len(emitted)

    def test_stop_halts_emission(self):
        emitted = []
        sampler = ResourceSampler(0.01, emit=emitted.append)
        sampler.start()
        time.sleep(0.05)
        sampler.stop()
        settled = len(emitted)
        time.sleep(0.05)
        assert len(emitted) == settled

    def test_stop_without_start_is_safe(self):
        ResourceSampler(0.01, emit=lambda sample: None).stop()

    def test_emit_exception_does_not_kill_sampling(self):
        calls = []

        def flaky(sample):
            calls.append(sample)
            if len(calls) == 1:
                raise RuntimeError("observer bug")

        sampler = ResourceSampler(0.01, emit=flaky)
        sampler.start()
        time.sleep(0.08)
        sampler.stop()
        assert len(calls) >= 2  # survived the first observer failure
