"""Tests for the set x interval contention heatmap."""

import pytest

from repro.analysis import contention_concentration, per_set_contention
from repro.obs.events import Event
from repro.obs.heatmap import ContentionHeatmap, build_heatmap


def event(kind="theft", set_index=0, cycle=0, owner=0):
    return Event(seq=0, cycle=cycle, kind=kind, set_index=set_index,
                 way=0, owner=owner, cause="", tag=0)


class TestBuildHeatmap:
    def test_bins_by_set_and_interval(self):
        events = [
            event(set_index=0, cycle=0),
            event(set_index=0, cycle=999),
            event(set_index=0, cycle=1_000),
            event(set_index=3, cycle=2_500),
        ]
        heatmap = build_heatmap(events, n_sets=4, interval=1_000)
        assert heatmap.matrix[0] == [2, 1, 0]
        assert heatmap.matrix[3] == [0, 0, 1]
        assert heatmap.total() == 4
        assert heatmap.n_intervals == 3

    def test_kind_filter(self):
        events = [event(kind="theft"), event(kind="fill"),
                  event(kind="evict")]
        heatmap = build_heatmap(events, n_sets=1, kinds=("theft", "evict"))
        assert heatmap.total() == 2
        only_fills = build_heatmap(events, n_sets=1, kinds=("fill",))
        assert only_fills.total() == 1

    def test_owner_filter(self):
        events = [event(owner=0), event(owner=1), event(owner=1)]
        heatmap = build_heatmap(events, n_sets=1, owner=1)
        assert heatmap.total() == 2

    def test_out_of_geometry_set_raises(self):
        with pytest.raises(ValueError, match="outside geometry"):
            build_heatmap([event(set_index=9)], n_sets=4)

    def test_no_events_yields_empty_matrix(self):
        heatmap = build_heatmap([], n_sets=4)
        assert heatmap.total() == 0
        assert heatmap.n_intervals == 0
        assert heatmap.render() == "(no matching events)"


class TestSummaries:
    def make(self):
        return ContentionHeatmap(4, 100, ("theft",), [
            [5, 0], [0, 0], [1, 2], [0, 1],
        ])

    def test_totals(self):
        heatmap = self.make()
        assert heatmap.set_totals() == [5, 0, 3, 1]
        assert heatmap.interval_totals() == [6, 3]
        assert heatmap.total() == 9

    def test_hottest_sets_excludes_zero(self):
        heatmap = self.make()
        assert heatmap.hottest_sets(10) == [(0, 5), (2, 3), (3, 1)]
        assert heatmap.hottest_sets(1) == [(0, 5)]

    def test_render_lists_hot_sets(self):
        rendered = self.make().render(max_rows=2)
        assert "set     0" in rendered
        assert "set     2" in rendered
        assert "set     1" not in rendered


class TestOccupancyHelpers:
    def test_per_set_contention_shares(self):
        heatmap = ContentionHeatmap(4, 100, ("theft",), [
            [6, 0], [2, 0], [0, 0], [0, 0],
        ])
        assert per_set_contention(heatmap) == [0.75, 0.25, 0.0, 0.0]

    def test_per_set_contention_empty(self):
        heatmap = ContentionHeatmap(2, 100, ("theft",), [[0], [0]])
        assert per_set_contention(heatmap) == [0.0, 0.0]

    def test_concentration_bounds(self):
        concentrated = ContentionHeatmap(10, 100, ("theft",),
                                         [[100]] + [[0]] * 9)
        assert contention_concentration(concentrated, 0.1) == 1.0
        uniform = ContentionHeatmap(10, 100, ("theft",), [[10]] * 10)
        assert contention_concentration(uniform, 0.1) == pytest.approx(0.1)

    def test_concentration_validates_fraction(self):
        heatmap = ContentionHeatmap(2, 100, ("theft",), [[1], [1]])
        with pytest.raises(ValueError):
            contention_concentration(heatmap, 0.0)
