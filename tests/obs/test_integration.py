"""End-to-end observability: one run -> events JSONL + Chrome trace whose
counts are consistent with the MetricRegistry totals (the PR's acceptance
invariant), across all three hosts."""

import json

import pytest

from repro.core import PinteConfig
from repro.obs import Observation, build_heatmap, load_events_jsonl
from repro.sim import simulate


@pytest.fixture(scope="module")
def observed_run(config, lbm_trace, tmp_path_factory):
    """One PInTE run with every exporter engaged."""
    from repro.obs import write_chrome_trace, write_events_jsonl

    observe = Observation.with_events()
    result = simulate(lbm_trace, config, pinte=PinteConfig(p_induce=0.5),
                      warmup_instructions=1_000, sim_instructions=5_000,
                      observe=observe)
    out = tmp_path_factory.mktemp("obs")
    events_path = out / "events.jsonl"
    chrome_path = out / "chrome.json"
    write_events_jsonl(observe.events, events_path)
    write_chrome_trace(chrome_path, trace=observe.events,
                       profiler=observe.profiler)
    return result, observe, events_path, chrome_path


class TestSingleCoreConsistency:
    def test_jsonl_lines_match_ring_bookkeeping(self, observed_run):
        _, observe, events_path, _ = observed_run
        events, meta = load_events_jsonl(events_path)
        trace = observe.events
        assert len(events) == trace.recorded - trace.dropped
        assert meta["recorded"] == trace.recorded
        assert meta["counts"] == trace.counts

    def test_event_counts_match_registry_totals(self, observed_run):
        _, observe, _, _ = observed_run
        registry = observe.registry
        counts = observe.events.counts
        # Registry events.* mirror the per-kind totals exactly.
        for kind, count in counts.items():
            assert registry.value(f"events.{kind}") == count
        # And the event stream agrees with the absorbed subsystem stats:
        assert counts.get("evict", 0) == registry.value("llc.eviction")
        assert counts.get("theft", 0) == registry.value("pinte.theft")
        assert (counts.get("invalidate", 0) + counts.get("theft", 0)
                == registry.value("llc.invalidation"))
        assert (counts.get("writeback", 0)
                == registry.value("llc.writeback")
                + registry.value("pinte.writeback"))

    def test_demand_fills_match_llc_misses(self, observed_run):
        _, observe, events_path, _ = observed_run
        events, _ = load_events_jsonl(events_path)
        assert observe.events.dropped == 0  # ring held the whole run
        demand_fills = sum(1 for e in events
                           if e.kind == "fill" and e.cause == "demand")
        assert demand_fills == observe.registry.value("llc.miss")

    def test_registry_matches_result_metrics(self, observed_run):
        result, observe, _, _ = observed_run
        registry = observe.registry
        assert registry.value("core0.instructions") == result.instructions
        assert registry.value("core0.ipc") == pytest.approx(result.ipc)
        assert (registry.value("core0.contention.theft_experienced")
                == result.thefts_experienced)

    def test_chrome_trace_instants_match_retained_events(self, observed_run):
        _, observe, _, chrome_path = observed_run
        document = json.loads(chrome_path.read_text())
        instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == len(observe.events)
        phases = {e["name"] for e in document["traceEvents"]
                  if e["ph"] == "X"}
        assert {"warmup", "simulate"} <= phases

    def test_heatmap_total_matches_theft_count(self, observed_run, config):
        _, observe, _, _ = observed_run
        n_sets = config.llc.size // (config.llc.assoc * config.block_size)
        heatmap = build_heatmap(observe.events.events(), n_sets=n_sets,
                                kinds=("theft",))
        assert heatmap.total() == observe.events.counts.get("theft", 0)

    def test_observability_does_not_change_results(self, config, lbm_trace):
        plain = simulate(lbm_trace, config, pinte=PinteConfig(p_induce=0.5),
                         warmup_instructions=1_000, sim_instructions=5_000)
        observed = simulate(lbm_trace, config,
                            pinte=PinteConfig(p_induce=0.5),
                            warmup_instructions=1_000,
                            sim_instructions=5_000,
                            observe=Observation.with_events())
        assert observed.ipc == plain.ipc
        assert observed.llc_misses == plain.llc_misses
        assert observed.thefts_experienced == plain.thefts_experienced


class TestMulticoreHost:
    def test_pair_events_consistent_with_registry(self, config, lbm_trace,
                                                  gromacs_trace):
        from repro.sim import simulate_pair

        observe = Observation.with_events()
        simulate_pair(gromacs_trace, lbm_trace, config,
                      warmup_instructions=500, sim_instructions=2_000,
                      observe=observe)
        registry = observe.registry
        counts = observe.events.counts
        assert counts.get("evict", 0) == registry.value("llc.eviction")
        # Natural inter-core thefts appear as evict events with cause=theft.
        theft_evicts = sum(1 for e in observe.events.events()
                           if e.kind == "evict" and e.cause == "theft")
        assert observe.events.dropped == 0
        total_thefts = sum(
            registry.value(f"core{i}.contention.theft_experienced")
            for i in range(2))
        assert theft_evicts == total_thefts
        # Both cores' metrics landed in the one registry.
        assert registry.value("core0.instructions") == 2_000
        assert registry.value("core1.instructions") > 0


class TestFastCacheHost:
    def test_cache_only_events_consistent_with_registry(self, config,
                                                        lbm_trace):
        from repro.sim.fastcache import simulate_cache_only

        observe = Observation.with_events()
        result = simulate_cache_only(lbm_trace, config,
                                     pinte=PinteConfig(p_induce=0.3),
                                     observe=observe)
        registry = observe.registry
        counts = observe.events.counts
        assert counts.get("theft", 0) == registry.value("pinte.theft")
        assert counts.get("evict", 0) == registry.value("llc.eviction")
        assert registry.value("llc.access") == result.accesses
        assert observe.profiler.totals().keys() == {"simulate"}
