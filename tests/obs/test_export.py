"""Tests for the JSONL and Chrome trace exporters."""

import json

from repro.obs import (
    PhaseProfiler,
    load_events_jsonl,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.events import EventTrace


def make_trace(n_events=5, capacity=16):
    trace = EventTrace(capacity=capacity)
    for i in range(n_events):
        trace.record("fill" if i % 2 == 0 else "theft", i, i % 4, 0,
                     "demand" if i % 2 == 0 else "pinte", 0x1000 + i * 64)
    return trace


class TestJsonl:
    def test_roundtrip_preserves_events(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "events.jsonl"
        written = write_events_jsonl(trace, path)
        events, meta = load_events_jsonl(path)
        assert written == len(events) == 5
        assert events == trace.events()
        assert meta["recorded"] == 5
        assert meta["dropped"] == 0
        assert meta["capacity"] == 16
        assert meta["counts"] == {"fill": 3, "theft": 2}

    def test_meta_reports_truncation(self, tmp_path):
        trace = make_trace(n_events=10, capacity=4)
        path = tmp_path / "events.jsonl"
        written = write_events_jsonl(trace, path)
        events, meta = load_events_jsonl(path)
        assert written == len(events) == 4
        assert meta["recorded"] == 10
        assert meta["dropped"] == 6
        # Totals keep counting past the ring, so consumers can detect loss.
        assert sum(meta["counts"].values()) == 10

    def test_headerless_file_loads_with_empty_meta(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps({
            "seq": 0, "cycle": 10, "kind": "theft", "set": 1, "way": 2,
            "owner": 0}) + "\n")
        events, meta = load_events_jsonl(path)
        assert meta == {}
        assert len(events) == 1
        assert events[0].cause == ""  # optional fields default
        assert events[0].tag == 0


class TestChromeTrace:
    def test_document_structure(self, tmp_path):
        trace = make_trace()
        profiler = PhaseProfiler()
        profiler.add_span("warmup", 0.0, 0.25)
        profiler.add_span("simulate", 0.25, 1.0)
        path = tmp_path / "trace.json"
        write_chrome_trace(path, trace=trace, profiler=profiler,
                           run_label="unit")
        document = json.loads(path.read_text())
        events = document["traceEvents"]

        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 5
        assert all(e["s"] == "t" for e in instants)
        assert instants[0]["ts"] == trace.events()[0].cycle
        assert instants[0]["args"]["set"] == 0

        phases = [e for e in events if e["ph"] == "X"]
        assert {p["name"] for p in phases} == {"warmup", "simulate"}
        simulate_span = next(p for p in phases if p["name"] == "simulate")
        assert simulate_span["dur"] == 1.0 * 1e6  # seconds -> microseconds

        metadata = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in metadata}
        assert "unit" in names  # process_name carries the run label

    def test_events_only_and_profile_only(self, tmp_path):
        trace = make_trace(n_events=2)
        count = write_chrome_trace(tmp_path / "a.json", trace=trace)
        assert count > 0
        profiler = PhaseProfiler()
        profiler.add_span("report", 0.0, 0.1)
        count = write_chrome_trace(tmp_path / "b.json", profiler=profiler)
        document = json.loads((tmp_path / "b.json").read_text())
        assert any(e.get("ph") == "X" for e in document["traceEvents"])
