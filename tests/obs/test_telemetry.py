"""Tests for the cross-process telemetry bus (spool, tail, fold)."""

import json

import pytest

from repro.obs.profile import PhaseProfiler
from repro.obs.registry import MetricRegistry
from repro.obs.telemetry import (
    DURATION_BUCKET_EDGES,
    CampaignTelemetry,
    SpoolTail,
    TelemetrySettings,
    TelemetrySpooler,
    apply_delta,
    bucket_index,
    bucket_value,
    diff_registry,
    registry_state,
    spool_path,
)


class TestBuckets:
    def test_geometric_edges(self):
        assert DURATION_BUCKET_EDGES[0] == pytest.approx(0.001)
        ratios = [b / a for a, b in zip(DURATION_BUCKET_EDGES,
                                        DURATION_BUCKET_EDGES[1:])]
        assert all(ratio == pytest.approx(2.0) for ratio in ratios)

    def test_index_boundaries_and_overflow(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(0.001) == 0  # values up to the edge inclusive
        assert bucket_index(0.0011) == 1
        assert bucket_index(1e9) == len(DURATION_BUCKET_EDGES)  # overflow

    def test_bucket_value_clamps_overflow(self):
        assert bucket_value(0) == DURATION_BUCKET_EDGES[0]
        assert (bucket_value(len(DURATION_BUCKET_EDGES) + 5)
                == DURATION_BUCKET_EDGES[-1])


class TestSettings:
    def test_coerce_table(self):
        assert TelemetrySettings.coerce(None) is None
        assert TelemetrySettings.coerce(False) is None
        assert TelemetrySettings.coerce(True).interval_seconds == 1.0
        assert TelemetrySettings.coerce(0.25).interval_seconds == 0.25
        settings = TelemetrySettings(2.0)
        assert TelemetrySettings.coerce(settings) is settings

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            TelemetrySettings(-1.0)


class TestDeltaEncoding:
    def test_unchanged_registry_diffs_to_none(self):
        registry = MetricRegistry()
        registry.count("a", 3)
        state = registry_state(registry)
        assert diff_registry(registry, state) is None

    def test_counters_and_histograms_are_increments(self):
        registry = MetricRegistry()
        registry.count("a", 3)
        registry.histogram("h").from_counts([1, 0, 2])
        state = registry_state(registry)
        registry.count("a", 4)
        registry.histogram("h").observe(1)
        delta = diff_registry(registry, state)
        assert delta["counters"] == {"a": 4}
        assert delta["histograms"] == {"h": [0, 1, 0]}

    def test_gauges_carry_value_not_increment(self):
        registry = MetricRegistry()
        registry.set("g", 1.0)
        state = registry_state(registry)
        registry.set("g", 5.0)
        delta = diff_registry(registry, state)
        assert delta["gauges"] == {"g": 5.0}

    def test_deltas_refold_to_exact_totals(self):
        """The acceptance property: replaying every delta in order
        reconstructs the worker registry value-for-value."""
        source = MetricRegistry()
        folded = MetricRegistry()
        state: dict = {}
        for step in range(1, 6):
            source.count("llc.miss", step * 7)
            source.set("core0.ipc", 1.0 / step)
            source.histogram("reuse").observe(step % 3, step)
            delta = diff_registry(source, state)
            state = registry_state(source)
            if delta is not None:
                apply_delta(folded, delta)
        assert folded.as_dict() == source.as_dict()


def write_lines(path, *lines, tail=""):
    path.write_bytes(b"".join(line.encode() + b"\n" for line in lines)
                     + tail.encode())


class TestSpoolTail:
    def test_missing_file_polls_empty(self, tmp_path):
        assert SpoolTail(tmp_path / "nope.jsonl").poll() == []

    def test_incremental_reads(self, tmp_path):
        path = tmp_path / "s.jsonl"
        write_lines(path, '{"k":"a"}')
        tail = SpoolTail(path)
        assert [r["k"] for r in tail.poll()] == ["a"]
        assert tail.poll() == []
        with open(path, "a") as handle:
            handle.write('{"k":"b"}\n')
        assert [r["k"] for r in tail.poll()] == ["b"]

    def test_torn_trailing_line_skipped_then_consumed(self, tmp_path):
        """Regression: a partially-written record mid-tail must neither
        crash the reader nor be consumed before the writer finishes it."""
        path = tmp_path / "s.jsonl"
        write_lines(path, '{"k":"a"}', tail='{"k":"b","x":')
        tail = SpoolTail(path)
        records = tail.poll()
        assert [r["k"] for r in records] == ["a"]
        # Nothing new, torn line still pending — poll stays quiet.
        assert tail.poll() == []
        with open(path, "a") as handle:  # writer completes the line
            handle.write('1}\n')
        assert [r["k"] for r in tail.poll()] == ["b"]
        assert tail.corrupt == 0

    def test_complete_corrupt_line_counted_and_skipped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        write_lines(path, '{"k":"a"}', 'not json at all', '{"k":"c"}')
        tail = SpoolTail(path)
        records = tail.poll()
        assert [r["k"] for r in records] == ["a", "c"]
        assert tail.corrupt == 1


class TestSpoolerRoundTrip:
    def spool_one(self, tmp_path, status="ok"):
        path = tmp_path / "job.jsonl"
        registry = MetricRegistry()
        profiler = PhaseProfiler()
        spooler = TelemetrySpooler(path, "deadbeef00000000", attempt=1,
                                   label="470.lbm", interval_seconds=0.0)
        spooler.start()
        registry.count("llc.miss", 10)
        assert spooler.snapshot(registry) is True
        assert spooler.snapshot(registry) is False  # nothing changed
        registry.count("llc.miss", 5)
        registry.set("core0.ipc", 0.7)
        profiler.add_span("simulate", 0.0, 1.5)
        spooler.finish(registry, profiler, status=status,
                       wall_seconds=2.5, instructions=40_000)
        return path, registry

    def test_records_in_order(self, tmp_path):
        path, _ = self.spool_one(tmp_path)
        kinds = [json.loads(line)["k"]
                 for line in path.read_text().splitlines()]
        assert kinds == ["start", "delta", "delta", "span", "end"]

    def test_fold_matches_worker_registry_exactly(self, tmp_path):
        path, registry = self.spool_one(tmp_path)
        telemetry = CampaignTelemetry(path.parent)
        telemetry.poll()
        job = telemetry.jobs["job"]  # file stem is the job id key
        assert job.registry.as_dict() == registry.as_dict()
        assert job.status == "ok"
        assert job.wall_seconds == 2.5
        assert job.instructions == 40_000
        assert [span.name for span in job.spans] == ["simulate"]

    def test_finish_without_start_is_noop(self, tmp_path):
        spooler = TelemetrySpooler(tmp_path / "x.jsonl", "x")
        spooler.finish(MetricRegistry(), PhaseProfiler())
        assert not (tmp_path / "x.jsonl").exists()

    def test_spool_path_is_filesystem_safe(self, tmp_path):
        assert spool_path(tmp_path, "ab12cd34").name == "ab12cd34.jsonl"


class TestJobTelemetryFold:
    def write_spool(self, directory, job_id, records):
        write_lines(spool_path(directory, job_id),
                    *[json.dumps(record) for record in records])

    def test_retry_supersedes_prior_attempt(self, tmp_path):
        self.write_spool(tmp_path, "j1", [
            {"k": "start", "job_id": "j1", "attempt": 1, "label": "w",
             "pid": 10, "t": 100.0, "interval": 0},
            {"k": "delta", "seq": 1, "counters": {"llc.miss": 5}},
            {"k": "end", "t": 101.0, "status": "error", "wall_seconds": 1.0},
            {"k": "start", "job_id": "j1", "attempt": 2, "label": "w",
             "pid": 11, "t": 102.0, "interval": 0},
            {"k": "delta", "seq": 1, "counters": {"llc.miss": 3}},
        ])
        telemetry = CampaignTelemetry(tmp_path)
        telemetry.poll()
        job = telemetry.jobs["j1"]
        assert job.attempt == 2
        assert job.attempts_seen == 2
        assert job.running  # attempt 2 has no end record yet
        assert job.registry.value("llc.miss") == 3  # attempt 1 discarded

    def test_unknown_record_kind_ignored(self, tmp_path):
        self.write_spool(tmp_path, "j1", [
            {"k": "start", "job_id": "j1", "attempt": 1, "label": "w",
             "pid": 1, "t": 1.0, "interval": 0},
            {"k": "from-the-future", "payload": 42},
        ])
        telemetry = CampaignTelemetry(tmp_path)
        telemetry.poll()
        assert telemetry.jobs["j1"].running

    def test_resource_records_track_cpu_and_peak_rss(self, tmp_path):
        self.write_spool(tmp_path, "j1", [
            {"k": "start", "job_id": "j1", "attempt": 1, "label": "w",
             "pid": 1, "t": 1.0, "interval": 0.5},
            {"k": "res", "t": 1.5, "cpu": 0.4, "rss_kb": 900},
            {"k": "res", "t": 2.0, "cpu": 0.9, "rss_kb": 800},
        ])
        telemetry = CampaignTelemetry(tmp_path)
        telemetry.poll()
        job = telemetry.jobs["j1"]
        assert job.cpu_seconds == pytest.approx(0.9)  # latest reading
        assert job.peak_rss_kb == 900                 # high-water mark
        assert len(job.resources) == 2

    def test_campaign_fold_is_idempotent(self, tmp_path):
        self.write_spool(tmp_path, "j1", [
            {"k": "start", "job_id": "j1", "attempt": 1, "label": "470.lbm",
             "pid": 1, "t": 1.0, "interval": 0},
            {"k": "res", "t": 1.5, "cpu": 2.0, "rss_kb": 500},
            {"k": "end", "t": 3.0, "status": "ok", "wall_seconds": 2.0,
             "instructions": 10_000},
        ])
        telemetry = CampaignTelemetry(tmp_path)
        registry = MetricRegistry()
        telemetry.poll()
        telemetry.fold_into(registry)
        first = registry.as_dict()
        telemetry.poll()
        telemetry.fold_into(registry)
        assert registry.as_dict() == first
        assert registry.value("campaign.telemetry.jobs_completed") == 1
        assert registry.value("campaign.cpu_seconds") == pytest.approx(2.0)
        assert registry.value("campaign.peak_rss_kb") == 500
        assert registry.value("campaign.throughput.470.lbm") == (
            pytest.approx(5_000.0))
        wall = registry.get("campaign.job_wall_seconds")
        assert wall.total == 1
        assert wall.bins[bucket_index(2.0)] == 1

    def test_missing_directory_polls_zero(self, tmp_path):
        telemetry = CampaignTelemetry(tmp_path / "absent")
        assert telemetry.poll() == 0
        assert telemetry.jobs == {}
