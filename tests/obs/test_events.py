"""Tests for the bounded event ring buffer and the global tracing flag."""

import pytest

from repro.obs import events as obs_events
from repro.obs.events import EVENT_KINDS, EventTrace


class TestRecording:
    def test_record_and_read_out(self):
        trace = EventTrace(capacity=16)
        trace.record("fill", 3, 1, 0, "demand", 0x1000)
        trace.record("evict", 3, 1, 1, "theft", 0x2000)
        events = trace.events()
        assert [e.kind for e in events] == ["fill", "evict"]
        assert events[0].set_index == 3
        assert events[0].cause == "demand"
        assert events[1].owner == 1
        assert events[1].tag == 0x2000
        assert [e.seq for e in events] == [0, 1]

    def test_clock_binding(self):
        trace = EventTrace(capacity=4)
        trace.clock = lambda: 1234
        trace.record("fill", 0, 0, 0)
        assert trace.events()[0].cycle == 1234

    def test_without_clock_sequence_stands_in(self):
        trace = EventTrace(capacity=4)
        trace.record("fill", 0, 0, 0)
        trace.record("fill", 0, 0, 0)
        assert [e.cycle for e in trace.events()] == [0, 1]

    def test_counts_track_kinds(self):
        trace = EventTrace(capacity=8)
        for _ in range(3):
            trace.record("fill", 0, 0, 0)
        trace.record("theft", 0, 0, 0)
        assert trace.counts == {"fill": 3, "theft": 1}

    def test_kinds_constant_is_complete(self):
        assert set(EVENT_KINDS) == {
            "fill", "evict", "writeback", "invalidate", "theft", "promote"}


class TestRingBounds:
    def test_wrap_keeps_newest_in_order(self):
        trace = EventTrace(capacity=4)
        for i in range(7):
            trace.record("fill", i, 0, 0)
        assert trace.recorded == 7
        assert trace.dropped == 3
        assert len(trace) == 4
        # The retained window is the newest four, oldest first.
        assert [e.set_index for e in trace.events()] == [3, 4, 5, 6]
        assert [e.seq for e in trace.events()] == [3, 4, 5, 6]

    def test_counts_survive_wrap(self):
        trace = EventTrace(capacity=2)
        for _ in range(5):
            trace.record("fill", 0, 0, 0)
        trace.record("theft", 0, 0, 0)
        assert trace.counts == {"fill": 5, "theft": 1}
        assert trace.recorded - trace.dropped == len(trace) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventTrace(capacity=0)

    def test_clear_resets_everything(self):
        trace = EventTrace(capacity=2)
        for _ in range(5):
            trace.record("fill", 0, 0, 0)
        trace.clear()
        assert trace.recorded == trace.dropped == len(trace) == 0
        assert trace.counts == {}
        assert trace.events() == []


class TestAttachment:
    class _Host:
        _events = None

    def test_attach_and_detach(self):
        trace = EventTrace(capacity=4)
        host = self._Host()
        trace.attach(host)
        assert host._events is trace
        trace.detach_all()
        assert host._events is None

    def test_detach_leaves_foreign_trace_alone(self):
        # If something re-attached a different trace in between, detach_all
        # must not clobber it.
        trace_a = EventTrace(capacity=4)
        trace_b = EventTrace(capacity=4)
        host = self._Host()
        trace_a.attach(host)
        trace_b.attach(host)
        trace_a.detach_all()
        assert host._events is trace_b


class TestGlobalFlag:
    def test_enable_disable_roundtrip(self):
        assert not obs_events.tracing_enabled()
        trace = obs_events.enable_tracing(capacity=32)
        try:
            assert obs_events.tracing_enabled()
            assert obs_events.ACTIVE is trace
            assert trace.capacity == 32
        finally:
            obs_events.disable_tracing()
        assert not obs_events.tracing_enabled()
        assert obs_events.ACTIVE is None

    def test_host_attaches_active_trace(self, config, gromacs_trace):
        from repro.sim import simulate

        trace = obs_events.enable_tracing()
        try:
            simulate(gromacs_trace, config, sim_instructions=2_000)
            assert trace.recorded > 0
        finally:
            obs_events.disable_tracing()

    def test_disabled_tracing_records_nothing(self, config, gromacs_trace):
        from repro.cache.cache import Cache
        from repro.core.pinte import PInTE
        from repro.sim import simulate

        result = simulate(gromacs_trace, config, sim_instructions=2_000)
        assert result.instructions == 2_000  # ran fine with no trace attached

    def test_explicit_observation_wins_over_active(self, config,
                                                   gromacs_trace):
        from repro.obs import Observation
        from repro.sim import simulate

        active = obs_events.enable_tracing()
        try:
            observe = Observation.with_events()
            simulate(gromacs_trace, config, sim_instructions=2_000,
                     observe=observe)
            assert observe.events.recorded > 0
            assert active.recorded == 0
        finally:
            obs_events.disable_tracing()
