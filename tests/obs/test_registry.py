"""Tests for the central metric registry."""

import pytest

from repro.cache.cache import CacheStats
from repro.obs import MetricRegistry, format_metrics
from repro.obs.events import EventTrace


class TestMetricKinds:
    def test_counter_get_or_create(self):
        registry = MetricRegistry()
        registry.count("llc.miss")
        registry.count("llc.miss", 4)
        assert registry.value("llc.miss") == 5
        assert registry.get("llc.miss").kind == "counter"

    def test_gauge_set_overwrites(self):
        registry = MetricRegistry()
        registry.set("core0.ipc", 0.5)
        registry.set("core0.ipc", 0.75)
        assert registry.value("core0.ipc") == 0.75

    def test_histogram_observe_and_grow(self):
        registry = MetricRegistry()
        histogram = registry.histogram("llc.reuse", 4)
        histogram.observe(0)
        histogram.observe(6, 3)  # grows past the initial bin count
        assert registry.value("llc.reuse") == [1, 0, 0, 0, 0, 0, 3]

    def test_kind_collision_fails_loudly(self):
        registry = MetricRegistry()
        registry.count("llc.miss")
        with pytest.raises(TypeError, match="counter"):
            registry.gauge("llc.miss")

    def test_unknown_metric_raises_keyerror(self):
        registry = MetricRegistry()
        with pytest.raises(KeyError, match="no.such.metric"):
            registry.get("no.such.metric")

    def test_names_sorted_and_contains(self):
        registry = MetricRegistry()
        registry.count("b.x")
        registry.count("a.y")
        assert registry.names() == ["a.y", "b.x"]
        assert "a.y" in registry
        assert "c.z" not in registry
        assert len(registry) == 2

    def test_total_sums_counters_under_prefix_only(self):
        registry = MetricRegistry()
        registry.count("events.fill", 3)
        registry.count("events.theft", 2)
        registry.set("events.rate", 99.0)  # gauges are excluded
        registry.count("eventsx.other", 7)  # prefix match is dot-exact
        assert registry.total("events") == 5


class TestAbsorption:
    def test_absorb_cache_maps_every_slot(self):
        stats = CacheStats()
        stats.accesses = 10
        stats.hits = 6
        stats.misses = 4
        stats.evictions = 2
        stats.invalidations = 1
        stats.writebacks = 3
        registry = MetricRegistry()
        registry.absorb_cache("llc", stats)
        assert registry.value("llc.access") == 10
        assert registry.value("llc.hit") == 6
        assert registry.value("llc.miss") == 4
        assert registry.value("llc.eviction") == 2
        assert registry.value("llc.invalidation") == 1
        assert registry.value("llc.writeback") == 3
        assert registry.value("llc.miss_rate") == pytest.approx(0.4)

    def test_absorb_events_registers_all_kinds(self):
        trace = EventTrace(capacity=8)
        trace.record("fill", 0, 0, 0)
        trace.record("theft", 1, 2, 0, "pinte", 0x40)
        registry = MetricRegistry()
        registry.absorb_events(trace)
        assert registry.value("events.fill") == 1
        assert registry.value("events.theft") == 1
        # Kinds with no occurrences still exist, at zero.
        assert registry.value("events.evict") == 0
        assert registry.value("events.promote") == 0
        assert registry.value("events.recorded") == 2
        assert registry.value("events.dropped") == 0

    def test_absorb_is_additive_across_runs(self):
        stats = CacheStats()
        stats.misses = 4
        registry = MetricRegistry()
        registry.absorb_cache("llc", stats)
        registry.absorb_cache("llc", stats)
        assert registry.value("llc.miss") == 8


class TestFormatMetrics:
    def test_one_sorted_line_per_metric(self):
        registry = MetricRegistry()
        registry.count("llc.miss", 7)
        registry.set("core0.ipc", 0.5)
        registry.histogram("llc.reuse").from_counts([1, 2])
        lines = format_metrics(registry).splitlines()
        assert lines == ["core0.ipc 0.5", "llc.miss 7", "llc.reuse [1 2]"]
