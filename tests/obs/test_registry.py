"""Tests for the central metric registry."""

import pytest

from repro.cache.cache import CacheStats
from repro.obs import MetricRegistry, format_metrics
from repro.obs.events import EventTrace


class TestMetricKinds:
    def test_counter_get_or_create(self):
        registry = MetricRegistry()
        registry.count("llc.miss")
        registry.count("llc.miss", 4)
        assert registry.value("llc.miss") == 5
        assert registry.get("llc.miss").kind == "counter"

    def test_gauge_set_overwrites(self):
        registry = MetricRegistry()
        registry.set("core0.ipc", 0.5)
        registry.set("core0.ipc", 0.75)
        assert registry.value("core0.ipc") == 0.75

    def test_histogram_observe_and_grow(self):
        registry = MetricRegistry()
        histogram = registry.histogram("llc.reuse", 4)
        histogram.observe(0)
        histogram.observe(6, 3)  # grows past the initial bin count
        assert registry.value("llc.reuse") == [1, 0, 0, 0, 0, 0, 3]

    def test_kind_collision_fails_loudly(self):
        registry = MetricRegistry()
        registry.count("llc.miss")
        with pytest.raises(TypeError, match="counter"):
            registry.gauge("llc.miss")

    def test_unknown_metric_raises_keyerror(self):
        registry = MetricRegistry()
        with pytest.raises(KeyError, match="no.such.metric"):
            registry.get("no.such.metric")

    def test_names_sorted_and_contains(self):
        registry = MetricRegistry()
        registry.count("b.x")
        registry.count("a.y")
        assert registry.names() == ["a.y", "b.x"]
        assert "a.y" in registry
        assert "c.z" not in registry
        assert len(registry) == 2

    def test_total_sums_counters_under_prefix_only(self):
        registry = MetricRegistry()
        registry.count("events.fill", 3)
        registry.count("events.theft", 2)
        registry.set("events.rate", 99.0)  # gauges are excluded
        registry.count("eventsx.other", 7)  # prefix match is dot-exact
        assert registry.total("events") == 5


class TestAbsorption:
    def test_absorb_cache_maps_every_slot(self):
        stats = CacheStats()
        stats.accesses = 10
        stats.hits = 6
        stats.misses = 4
        stats.evictions = 2
        stats.invalidations = 1
        stats.writebacks = 3
        registry = MetricRegistry()
        registry.absorb_cache("llc", stats)
        assert registry.value("llc.access") == 10
        assert registry.value("llc.hit") == 6
        assert registry.value("llc.miss") == 4
        assert registry.value("llc.eviction") == 2
        assert registry.value("llc.invalidation") == 1
        assert registry.value("llc.writeback") == 3
        assert registry.value("llc.miss_rate") == pytest.approx(0.4)

    def test_absorb_events_registers_all_kinds(self):
        trace = EventTrace(capacity=8)
        trace.record("fill", 0, 0, 0)
        trace.record("theft", 1, 2, 0, "pinte", 0x40)
        registry = MetricRegistry()
        registry.absorb_events(trace)
        assert registry.value("events.fill") == 1
        assert registry.value("events.theft") == 1
        # Kinds with no occurrences still exist, at zero.
        assert registry.value("events.evict") == 0
        assert registry.value("events.promote") == 0
        assert registry.value("events.recorded") == 2
        assert registry.value("events.dropped") == 0

    def test_absorb_is_additive_across_runs(self):
        stats = CacheStats()
        stats.misses = 4
        registry = MetricRegistry()
        registry.absorb_cache("llc", stats)
        registry.absorb_cache("llc", stats)
        assert registry.value("llc.miss") == 8


class TestFormatMetrics:
    def test_one_sorted_line_per_metric(self):
        registry = MetricRegistry()
        registry.count("llc.miss", 7)
        registry.set("core0.ipc", 0.5)
        registry.histogram("llc.reuse").from_counts([1, 2])
        lines = format_metrics(registry).splitlines()
        assert lines == ["core0.ipc 0.5", "llc.miss 7", "llc.reuse [1 2]"]


class TestHistogramMerge:
    def test_bin_wise_addition(self):
        a = MetricRegistry().histogram("h").from_counts([1, 2, 3])
        b = MetricRegistry().histogram("h").from_counts([10, 0, 5])
        a.merge(b)
        assert a.bins == [11, 2, 8]

    def test_longer_other_extends_self(self):
        a = MetricRegistry().histogram("h").from_counts([1])
        a.merge([0, 0, 7])
        assert a.bins == [1, 0, 7]

    def test_shorter_other_zero_padded(self):
        a = MetricRegistry().histogram("h").from_counts([1, 2, 3, 4])
        a.merge([5])
        assert a.bins == [6, 2, 3, 4]

    def test_merge_empty_is_noop(self):
        a = MetricRegistry().histogram("h").from_counts([1, 2])
        a.merge([])
        assert a.bins == [1, 2]

    def test_accepts_bare_sequence(self):
        a = MetricRegistry().histogram("h", 2)
        a.merge((3, 4))
        assert a.bins == [3, 4]


class TestHistogramPercentile:
    def test_empty_returns_none(self):
        histogram = MetricRegistry().histogram("h", 4)
        assert histogram.total == 0
        assert histogram.percentile(50) is None

    def test_single_bin(self):
        histogram = MetricRegistry().histogram("h").from_counts([0, 9, 0])
        for q in (0, 50, 99, 100):
            assert histogram.percentile(q) == 1

    def test_median_and_tail(self):
        # 10 observations: 5 in bin 0, 4 in bin 1, 1 in bin 3.
        histogram = MetricRegistry().histogram("h").from_counts([5, 4, 0, 1])
        assert histogram.percentile(0) == 0
        assert histogram.percentile(50) == 0
        assert histogram.percentile(90) == 1
        assert histogram.percentile(95) == 3
        assert histogram.percentile(100) == 3

    def test_out_of_range_raises(self):
        histogram = MetricRegistry().histogram("h").from_counts([1])
        with pytest.raises(ValueError):
            histogram.percentile(-1)
        with pytest.raises(ValueError):
            histogram.percentile(101)


class TestRegistryMerge:
    def build(self):
        registry = MetricRegistry()
        registry.count("llc.miss", 3)
        registry.set("core0.ipc", 0.5)
        registry.histogram("llc.reuse").from_counts([1, 2])
        return registry

    def test_counters_add_gauges_overwrite_histograms_merge(self):
        target = self.build()
        other = MetricRegistry()
        other.count("llc.miss", 4)
        other.set("core0.ipc", 0.9)
        other.histogram("llc.reuse").from_counts([0, 1, 7])
        target.merge(other)
        assert target.value("llc.miss") == 7
        assert target.value("core0.ipc") == 0.9
        assert target.value("llc.reuse") == [1, 3, 7]

    def test_merge_into_empty_copies_values(self):
        target = MetricRegistry()
        target.merge(self.build())
        assert target.value("llc.miss") == 3
        assert target.value("core0.ipc") == 0.5
        assert target.value("llc.reuse") == [1, 2]

    def test_merge_from_empty_is_noop(self):
        target = self.build()
        target.merge(MetricRegistry())
        assert target.value("llc.miss") == 3
        assert target.value("core0.ipc") == 0.5
        assert target.value("llc.reuse") == [1, 2]

    def test_new_names_created(self):
        target = MetricRegistry()
        other = MetricRegistry()
        other.count("pinte.theft", 2)
        target.merge(other)
        assert target.value("pinte.theft") == 2

    def test_kind_collision_raises(self):
        target = MetricRegistry()
        target.count("x", 1)
        other = MetricRegistry()
        other.set("x", 2.0)
        with pytest.raises(TypeError):
            target.merge(other)

    def test_returns_self_for_chaining(self):
        target = MetricRegistry()
        assert target.merge(MetricRegistry()) is target
