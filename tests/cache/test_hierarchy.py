"""Unit tests for the memory hierarchy protocol."""

import pytest

from repro.cache.hierarchy import MemoryHierarchy, build_llc
from repro.config import scaled_config
from repro.core import ContentionTracker
from repro.dram import Dram

CFG = scaled_config()
BLOCK = 64


def make_hierarchy(config=CFG, owner=0, llc=None, dram=None, tracker=None,
                   registry=None):
    return MemoryHierarchy(config, owner, llc=llc, dram=dram, tracker=tracker,
                           registry=registry)


class TestDemandPath:
    def test_l1_hit_latency(self):
        hierarchy = make_hierarchy()
        hierarchy.load(0x400, 0x10000, 0)  # install
        assert hierarchy.load(0x400, 0x10000, 100) == CFG.l1d.latency

    def test_cold_miss_reaches_dram(self):
        hierarchy = make_hierarchy()
        latency = hierarchy.load(0x400, 0x10000, 0)
        floor = CFG.l1d.latency + CFG.l2.latency + CFG.llc.latency
        assert latency > floor
        assert hierarchy.dram.stats.reads == 1

    def test_miss_fills_all_levels_non_inclusive(self):
        hierarchy = make_hierarchy()
        hierarchy.load(0x400, 0x10000, 0)
        block = 0x10000 & ~(BLOCK - 1)
        assert hierarchy.l1d.probe(block) >= 0
        assert hierarchy.l2.probe(block) >= 0
        assert hierarchy.llc.probe(block) >= 0

    def test_l2_hit_fills_l1(self):
        hierarchy = make_hierarchy()
        hierarchy.load(0x400, 0x10000, 0)
        block = 0x10000 & ~(BLOCK - 1)
        hierarchy.l1d.invalidate(block)
        latency = hierarchy.load(0x400, 0x10000, 100)
        assert latency == CFG.l1d.latency + CFG.l2.latency
        assert hierarchy.l1d.probe(block) >= 0

    def test_store_marks_l1_dirty(self):
        hierarchy = make_hierarchy()
        hierarchy.store(0x400, 0x10000, 0)
        block = 0x10000 & ~(BLOCK - 1)
        way = hierarchy.l1d.probe(block)
        assert hierarchy.l1d.sets[hierarchy.l1d.set_index(block)][way].dirty

    def test_fetch_uses_l1i(self):
        hierarchy = make_hierarchy()
        hierarchy.fetch(0x400000, 0)
        assert hierarchy.l1i.stats.accesses == 1
        assert hierarchy.l1d.stats.accesses == 0

    def test_llc_access_recorded_in_tracker(self):
        tracker = ContentionTracker()
        hierarchy = make_hierarchy(tracker=tracker)
        hierarchy.load(0x400, 0x10000, 0)
        assert tracker.counters(0).llc_accesses == 1
        assert tracker.counters(0).llc_misses == 1

    def test_l1_hit_not_an_llc_access(self):
        tracker = ContentionTracker()
        hierarchy = make_hierarchy(tracker=tracker)
        hierarchy.load(0x400, 0x10000, 0)
        hierarchy.load(0x400, 0x10000, 10)
        assert tracker.counters(0).llc_accesses == 1


class TestWritebackFlow:
    def test_dirty_l1_eviction_lands_in_l2(self):
        hierarchy = make_hierarchy()
        hierarchy.store(0x400, 0x10000, 0)
        # Evict the dirty block from tiny L1 by filling past capacity.
        n_l1_blocks = CFG.l1d.size // BLOCK
        for i in range(1, 2 * n_l1_blocks + 1):
            hierarchy.load(0x400, 0x10000 + i * BLOCK * hierarchy.l1d.n_sets, 0)
        block = 0x10000 & ~(BLOCK - 1)
        if hierarchy.l1d.probe(block) < 0:  # got evicted
            way = hierarchy.l2.probe(block)
            assert way >= 0
            assert hierarchy.l2.sets[hierarchy.l2.set_index(block)][way].dirty

    def test_llc_dirty_eviction_writes_dram(self):
        hierarchy = make_hierarchy()
        base = 0x10000
        n = hierarchy.llc.capacity_blocks * 3
        for i in range(n):
            hierarchy.store(0x400, base + i * BLOCK, i * 10)
        assert hierarchy.dram.stats.writes > 0


class TestSharedLlc:
    def test_cross_core_theft_detected(self):
        config = CFG
        tracker = ContentionTracker()
        llc = build_llc(config)
        dram = Dram(config.dram)
        registry = {}
        h0 = make_hierarchy(config, 0, llc=llc, dram=dram, tracker=tracker,
                            registry=registry)
        h1 = make_hierarchy(config, 1, llc=llc, dram=dram, tracker=tracker,
                            registry=registry)
        # Core 0 fills one LLC set completely, then core 1 forces evictions
        # in that same set.
        set_bytes = BLOCK * llc.n_sets
        for i in range(llc.assoc):
            h0.load(0x400, 0x10000 + i * set_bytes, 0)
        for i in range(llc.assoc):
            h1.load(0x400, 0x90000000 + i * set_bytes, 0)
        assert tracker.counters(0).thefts_experienced > 0
        assert tracker.counters(1).thefts_caused > 0

    def test_interference_on_reaccess(self):
        config = CFG
        tracker = ContentionTracker()
        llc = build_llc(config)
        dram = Dram(config.dram)
        registry = {}
        h0 = make_hierarchy(config, 0, llc=llc, dram=dram, tracker=tracker,
                            registry=registry)
        h1 = make_hierarchy(config, 1, llc=llc, dram=dram, tracker=tracker,
                            registry=registry)
        set_bytes = BLOCK * llc.n_sets
        for i in range(llc.assoc):
            h0.load(0x400, 0x10000 + i * set_bytes, 0)
        for i in range(llc.assoc):
            h1.load(0x400, 0x90000000 + i * set_bytes, 0)
        thefts = tracker.counters(0).thefts_experienced
        assert thefts > 0
        # Core 0 re-touches its stolen lines (evict them from L1/L2 first by
        # invalidating private copies so the LLC miss is visible).
        for i in range(llc.assoc):
            block = (0x10000 + i * set_bytes) & ~(BLOCK - 1)
            h0.l1d.invalidate(block)
            h0.l2.invalidate(block)
            h0.load(0x400, 0x10000 + i * set_bytes, 1000)
        assert tracker.counters(0).interference_misses > 0


class TestOccupancy:
    def test_fraction_in_unit_range(self):
        hierarchy = make_hierarchy()
        for i in range(100):
            hierarchy.load(0x400, 0x10000 + i * BLOCK, 0)
        fraction = hierarchy.llc_occupancy_fraction()
        assert 0.0 < fraction <= 1.0
