"""Unit tests for the DRRIP set-dueling replacement extension."""

import pytest

from repro.cache.cache import Cache
from repro.cache.replacement import make_policy
from repro.cache.replacement.drrip import BRRIP_LONG_PERIOD, DrripPolicy

BLOCK = 64


class TestLeaderSets:
    def test_leaders_disjoint(self):
        policy = DrripPolicy(n_sets=16, n_ways=4, n_leader_sets=4)
        assert not (policy._srrip_leaders & policy._brrip_leaders)

    def test_leader_count_capped_for_tiny_caches(self):
        policy = DrripPolicy(n_sets=2, n_ways=4, n_leader_sets=8)
        assert len(policy._srrip_leaders) == 1
        assert len(policy._brrip_leaders) == 1

    def test_srrip_leader_always_inserts_long(self):
        policy = DrripPolicy(n_sets=16, n_ways=4)
        leader = next(iter(policy._srrip_leaders))
        for _ in range(10):
            policy.on_insert(leader, 0)
            assert policy._rrpv[leader][0] == policy.insert_rrpv

    def test_brrip_leader_mostly_inserts_distant(self):
        policy = DrripPolicy(n_sets=16, n_ways=4)
        leader = next(iter(policy._brrip_leaders))
        distant = 0
        for _ in range(BRRIP_LONG_PERIOD * 2):
            policy.on_insert(leader, 0)
            if policy._rrpv[leader][0] == policy.max_rrpv:
                distant += 1
        assert distant >= BRRIP_LONG_PERIOD  # the vast majority


class TestPsel:
    def test_psel_starts_neutral(self):
        policy = DrripPolicy(n_sets=16, n_ways=4)
        assert policy.psel == 512

    def test_srrip_leader_misses_push_toward_brrip(self):
        policy = DrripPolicy(n_sets=16, n_ways=4)
        leader = next(iter(policy._srrip_leaders))
        before = policy.psel
        for _ in range(10):
            policy.record_miss(leader)
        assert policy.psel == before + 10

    def test_brrip_leader_misses_push_toward_srrip(self):
        policy = DrripPolicy(n_sets=16, n_ways=4)
        leader = next(iter(policy._brrip_leaders))
        before = policy.psel
        for _ in range(10):
            policy.record_miss(leader)
        assert policy.psel == before - 10

    def test_psel_saturates(self):
        policy = DrripPolicy(n_sets=16, n_ways=4)
        leader = next(iter(policy._srrip_leaders))
        for _ in range(5000):
            policy.record_miss(leader)
        assert policy.psel == 1023

    def test_follower_obeys_psel(self):
        policy = DrripPolicy(n_sets=16, n_ways=4)
        follower = next(s for s in range(16)
                        if s not in policy._srrip_leaders
                        and s not in policy._brrip_leaders)
        # Drive PSEL to "SRRIP is better" (BRRIP leaders missing).
        brrip_leader = next(iter(policy._brrip_leaders))
        for _ in range(600):
            policy.record_miss(brrip_leader)
        policy.on_insert(follower, 0)
        assert policy._rrpv[follower][0] == policy.insert_rrpv

    def test_non_leader_misses_do_not_train(self):
        policy = DrripPolicy(n_sets=16, n_ways=4)
        follower = next(s for s in range(16)
                        if s not in policy._srrip_leaders
                        and s not in policy._brrip_leaders)
        before = policy.psel
        policy.record_miss(follower)
        assert policy.psel == before


class TestCacheIntegration:
    def test_cache_wires_miss_hook(self):
        cache = Cache("T", 16 * 4 * BLOCK, 4, BLOCK, latency=1, policy="drrip")
        assert cache._policy_miss_hook is not None
        leader = next(iter(cache.policy._srrip_leaders))
        before = cache.policy.psel
        cache.access(leader * BLOCK, False, 0)  # cold miss in an SRRIP leader
        assert cache.policy.psel == before + 1

    def test_registry(self):
        policy = make_policy("drrip", 16, 4, seed=1)
        assert policy.name == "drrip"

    def test_pinte_hooks_inherited_from_rrip(self):
        policy = DrripPolicy(n_sets=4, n_ways=4)
        for way in range(4):
            policy.on_insert(0, way)
        policy.promote(0, 2)
        assert sorted(policy.eviction_order(0)) == [0, 1, 2, 3]
        assert policy.eviction_order(0)[-1] == 2
