"""Integration tests: prefetchers inside the memory hierarchy."""

import pytest

from repro.cache.hierarchy import MemoryHierarchy, build_llc
from repro.config import scaled_config
from repro.core import ContentionTracker
from repro.dram import Dram

BLOCK = 64
DATA = 0x10_0000_0000


def hierarchy_with(prefetch: str, inclusion: str = "non-inclusive"):
    config = (scaled_config().with_prefetch_string(prefetch)
              .with_inclusion(inclusion))
    return MemoryHierarchy(config, 0, llc=build_llc(config), registry={})


class TestNextLineInL1:
    def test_prefetch_fills_l1(self):
        hierarchy = hierarchy_with("NN0")
        hierarchy.load(0x400, DATA, 0)
        # Next-line prefetch should have pulled DATA+64 into L1 already.
        assert hierarchy.l1d.probe(DATA + BLOCK) >= 0

    def test_demand_hit_on_prefetched_counts_useful(self):
        hierarchy = hierarchy_with("NN0")
        hierarchy.load(0x400, DATA, 0)
        hierarchy.load(0x404, DATA + BLOCK, 10)
        assert hierarchy.l1d.stats.prefetch_useful >= 1

    def test_prefetch_issued_counted(self):
        hierarchy = hierarchy_with("NN0")
        for i in range(10):
            hierarchy.load(0x400, DATA + i * 4096, i * 100)
        assert hierarchy.prefetch_issued() >= 10

    def test_no_prefetch_string_000(self):
        hierarchy = hierarchy_with("000")
        for i in range(10):
            hierarchy.load(0x400, DATA + i * 4096, i * 100)
        assert hierarchy.prefetch_issued() == 0

    def test_duplicate_prefetch_skipped(self):
        hierarchy = hierarchy_with("NN0")
        hierarchy.load(0x400, DATA, 0)
        filled_before = hierarchy.l1d.stats.prefetch_fills
        hierarchy.load(0x404, DATA, 10)  # hit; next line already resident
        assert hierarchy.l1d.stats.prefetch_fills == filled_before


class TestL2Prefetchers:
    def test_ip_stride_fills_l2(self):
        hierarchy = hierarchy_with("NNI")
        stride = 4 * BLOCK
        for i in range(8):
            hierarchy.load(0x400, DATA + i * stride, i * 200)
        # After confidence builds, blocks ahead of the stream sit in L2.
        ahead = DATA + 9 * stride
        assert (hierarchy.l2.probe(ahead & ~(BLOCK - 1)) >= 0
                or hierarchy.l2.stats.prefetch_fills > 0)

    def test_prefetch_from_dram_fills_llc_non_inclusive(self):
        hierarchy = hierarchy_with("NN0")
        hierarchy.load(0x400, DATA, 0)
        # The prefetched next block was fetched from DRAM -> also in LLC.
        assert hierarchy.llc.probe(DATA + BLOCK) >= 0

    def test_prefetch_bypasses_llc_when_exclusive(self):
        hierarchy = hierarchy_with("NN0", inclusion="exclusive")
        hierarchy.load(0x400, DATA, 0)
        assert hierarchy.llc.probe(DATA + BLOCK) == -1
        assert hierarchy.l1d.probe(DATA + BLOCK) >= 0


class TestPrefetchContention:
    def test_prefetch_fill_can_steal(self):
        """A prefetch fill into a shared LLC evicts like a demand fill and
        must be charged as a theft when the victim is another core."""
        config = scaled_config().with_prefetch_string("NN0")
        tracker = ContentionTracker()
        llc = build_llc(config)
        dram = Dram(config.dram)
        registry = {}
        h0 = MemoryHierarchy(config, 0, llc=llc, dram=dram, tracker=tracker,
                             registry=registry)
        h1 = MemoryHierarchy(config, 1, llc=llc, dram=dram, tracker=tracker,
                             registry=registry)
        # Core 1 owns every way of every set.
        stride = BLOCK * llc.n_sets
        for set_index in range(llc.n_sets):
            for way in range(llc.assoc):
                llc.fill(0x9_0000_0000 + set_index * BLOCK + way * stride, 1)
        # Core 0 streams; its demand + prefetch fills evict core 1's data.
        for i in range(64):
            h0.load(0x400, DATA + i * BLOCK, i * 50)
        assert tracker.counters(1).thefts_experienced > 0
        assert tracker.counters(0).thefts_caused > 0

    def test_prefetch_uses_dram_bandwidth(self):
        hierarchy = hierarchy_with("NN0")
        reads_before = hierarchy.dram.stats.reads
        hierarchy.load(0x400, DATA, 0)
        # Demand read + prefetch read both reached DRAM.
        assert hierarchy.dram.stats.reads >= reads_before + 2
