"""Unit tests for cache block state."""

from repro.cache.block import SYSTEM_OWNER, CacheBlock


class TestCacheBlock:
    def test_initial_state(self):
        block = CacheBlock()
        assert not block.valid
        assert not block.dirty
        assert block.owner == SYSTEM_OWNER

    def test_fill(self):
        block = CacheBlock()
        block.fill(0x1000, owner=2, dirty=True, prefetched=True)
        assert block.valid
        assert block.dirty
        assert block.owner == 2
        assert block.prefetched
        assert block.tag == 0x1000

    def test_fill_defaults_clean(self):
        block = CacheBlock()
        block.fill(0x1000, owner=0)
        assert not block.dirty
        assert not block.prefetched

    def test_invalidate_clears_flags(self):
        block = CacheBlock()
        block.fill(0x1000, owner=0, dirty=True, prefetched=True)
        block.invalidate()
        assert not block.valid
        assert not block.dirty
        assert not block.prefetched

    def test_refill_after_invalidate(self):
        block = CacheBlock()
        block.fill(0x1000, owner=0, dirty=True)
        block.invalidate()
        block.fill(0x2000, owner=1)
        assert block.valid
        assert not block.dirty
        assert block.owner == 1
