"""Tests for XOR-folded set indexing."""

import dataclasses

import pytest

from repro.cache.cache import Cache
from repro.cache.hierarchy import build_llc
from repro.config import scaled_config

BLOCK = 64


class TestHashIndex:
    def test_default_is_modulo(self):
        cache = Cache("T", 16 * 4 * BLOCK, 4, BLOCK, latency=1)
        assert cache.set_index(5 * BLOCK) == 5
        assert cache.set_index((16 + 5) * BLOCK) == 5

    def test_hashed_index_in_range(self):
        cache = Cache("T", 16 * 4 * BLOCK, 4, BLOCK, latency=1,
                      hash_index=True)
        for i in range(500):
            assert 0 <= cache.set_index(i * BLOCK * 37) < cache.n_sets

    def test_hashing_deskews_set_stride(self):
        """A stride of exactly n_sets blocks maps every access to one set
        under modulo indexing but spreads under the hash."""
        plain = Cache("P", 16 * 4 * BLOCK, 4, BLOCK, latency=1)
        hashed = Cache("H", 16 * 4 * BLOCK, 4, BLOCK, latency=1,
                       hash_index=True)
        stride = plain.n_sets * BLOCK
        plain_sets = {plain.set_index(i * stride) for i in range(64)}
        hashed_sets = {hashed.set_index(i * stride) for i in range(64)}
        assert len(plain_sets) == 1
        assert len(hashed_sets) > 4

    def test_hashing_reduces_conflict_misses(self):
        plain = Cache("P", 16 * 4 * BLOCK, 4, BLOCK, latency=1)
        hashed = Cache("H", 16 * 4 * BLOCK, 4, BLOCK, latency=1,
                       hash_index=True)
        stride = plain.n_sets * BLOCK
        # Cyclic sweep over 32 conflicting blocks, twice.
        for cache in (plain, hashed):
            for _ in range(2):
                for i in range(32):
                    address = i * stride
                    if not cache.access(address, False, 0):
                        cache.fill(address, 0)
        assert hashed.stats.misses < plain.stats.misses

    def test_lookup_consistent_under_hash(self):
        cache = Cache("T", 16 * 4 * BLOCK, 4, BLOCK, latency=1,
                      hash_index=True)
        addresses = [i * 7 * BLOCK for i in range(100)]
        for address in addresses:
            if not cache.access(address, False, 0):
                cache.fill(address, 0)
        # Every most-recently-filled address must still be findable.
        for address in addresses[-4:]:
            assert cache.probe(address) >= 0

    def test_single_set_cache_ignores_flag(self):
        cache = Cache("T", 4 * BLOCK, 4, BLOCK, latency=1, hash_index=True)
        assert not cache.hash_index

    def test_config_plumbs_through_build_llc(self):
        config = scaled_config()
        config = dataclasses.replace(
            config, llc=dataclasses.replace(config.llc, hash_index=True))
        llc = build_llc(config)
        assert llc.hash_index
