"""Unit tests for the flat struct-of-arrays cache state layer."""

import random

import pytest

from repro.cache.state import SYSTEM_OWNER, BlockView, CacheSetState
from repro.cache.cache import Cache


class TestInitialState:
    def test_all_invalid(self):
        state = CacheSetState(4, 2)
        assert state.total_valid == 0
        assert all(bit == 0 for bit in state.valid)
        assert all(owner == SYSTEM_OWNER for owner in state.owners)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheSetState(0, 4)
        with pytest.raises(ValueError):
            CacheSetState(4, 0)


class TestInstallClear:
    def test_install_sets_metadata(self):
        state = CacheSetState(2, 4)
        state.install(5, 0x1000, owner=2, dirty=True, prefetched=True)
        view = state.view(1, 1)  # flat index 5 = set 1, way 1
        assert view == BlockView(tag=0x1000, valid=True, dirty=True,
                                 owner=2, prefetched=True)

    def test_install_defaults_clean(self):
        state = CacheSetState(1, 4)
        state.install(0, 0x1000, owner=0)
        view = state.view(0, 0)
        assert view.valid and not view.dirty and not view.prefetched

    def test_clear_resets_flags(self):
        state = CacheSetState(1, 4)
        state.install(0, 0x1000, owner=0, dirty=True, prefetched=True)
        state.clear(0)
        view = state.view(0, 0)
        assert not view.valid and not view.dirty and not view.prefetched

    def test_refill_after_clear(self):
        state = CacheSetState(1, 4)
        state.install(0, 0x1000, owner=0, dirty=True)
        state.clear(0)
        state.install(0, 0x2000, owner=1)
        view = state.view(0, 0)
        assert view.valid and not view.dirty and view.owner == 1


class TestFindInvalidWay:
    def test_finds_lowest(self):
        state = CacheSetState(2, 4)
        state.install(4, 0x0, owner=0)   # set 1, way 0
        state.install(6, 0x40, owner=0)  # set 1, way 2
        assert state.find_invalid_way(1) == 1
        assert state.find_invalid_way(0) == 0

    def test_full_set_returns_minus_one(self):
        state = CacheSetState(1, 2)
        state.install(0, 0x0, owner=0)
        state.install(1, 0x40, owner=0)
        assert state.find_invalid_way(0) == -1

    def test_scoped_to_one_set(self):
        state = CacheSetState(2, 2)
        state.install(0, 0x0, owner=0)
        state.install(1, 0x40, owner=0)  # set 0 full, set 1 empty
        assert state.find_invalid_way(0) == -1
        assert state.find_invalid_way(1) == 0


class TestOccupancyCounters:
    def test_incremental_counts(self):
        state = CacheSetState(2, 4)
        state.install(0, 0x0, owner=0)
        state.install(1, 0x40, owner=1)
        state.install(4, 0x80, owner=1)
        assert state.occupancy() == 3
        assert state.occupancy(0) == 1
        assert state.occupancy(1) == 2
        state.clear(1)
        assert state.occupancy() == 2
        assert state.occupancy(1) == 1

    def test_unknown_owner_is_zero(self):
        state = CacheSetState(1, 4)
        assert state.occupancy(7) == 0

    def test_matches_scan_after_random_ops(self):
        """Counter-maintained occupancy equals a full scan after a long
        randomized install/clear sequence (the O(1) acceptance check)."""
        rng = random.Random(1234)
        state = CacheSetState(8, 4)
        n = 8 * 4
        for _ in range(2_000):
            index = rng.randrange(n)
            if state.valid[index]:
                state.clear(index)
            else:
                state.install(index, rng.randrange(1 << 20) * 64,
                              owner=rng.randrange(3),
                              dirty=rng.random() < 0.5,
                              prefetched=rng.random() < 0.2)
            assert state.occupancy() == state.scan_occupancy()
        for owner in range(3):
            assert state.occupancy(owner) == state.scan_occupancy(owner)


class TestCacheOccupancyO1:
    def test_cache_counters_match_scan_after_random_ops(self):
        """Cache.occupancy() (counter-backed) agrees with a ground-truth
        scan after a randomized access/fill/invalidate sequence — including
        the inlined fill/invalidate paths that bypass install()/clear()."""
        rng = random.Random(99)
        cache = Cache("L", size=4096, assoc=4, block_size=64, policy="lru")
        owners = (0, 1, 2)
        blocks = [addr * 64 for addr in range(64)]
        for _ in range(3_000):
            block = rng.choice(blocks)
            owner = rng.choice(owners)
            op = rng.random()
            if op < 0.5:
                if not cache.access(block, rng.random() < 0.3, owner):
                    cache.fill(block, owner, dirty=rng.random() < 0.3)
            elif op < 0.8:
                cache.fill(block, owner, dirty=rng.random() < 0.3,
                           prefetched=rng.random() < 0.2)
            else:
                cache.invalidate(block)
        state = cache.state
        assert cache.occupancy() == state.scan_occupancy()
        for owner in owners:
            assert cache.occupancy(owner) == state.scan_occupancy(owner)

    def test_tag_map_agrees_with_state(self):
        rng = random.Random(5)
        cache = Cache("L", size=2048, assoc=4, block_size=64, policy="rrip")
        for _ in range(1_000):
            cache.fill(rng.randrange(256) * 64, owner=rng.randrange(2))
            if rng.random() < 0.3:
                cache.invalidate(rng.randrange(256) * 64)
        for set_index in range(cache.n_sets):
            for way in range(cache.assoc):
                view = cache.block(set_index, way)
                if view.valid:
                    assert cache._tags[set_index][view.tag] == way
        total_tags = sum(len(tags) for tags in cache._tags)
        assert total_tags == cache.occupancy() == cache.state.scan_occupancy()


class TestBlockView:
    def test_repr_invalid(self):
        assert "invalid" in repr(CacheSetState(1, 1).view(0, 0))

    def test_repr_flags(self):
        state = CacheSetState(1, 1)
        state.install(0, 0x1000, owner=3, dirty=True)
        text = repr(state.view(0, 0))
        assert "owner=3" in text and "D" in text
