"""Unit tests for the three LLC inclusion policies."""

import pytest

from repro.cache.hierarchy import MemoryHierarchy, build_llc
from repro.config import scaled_config

BLOCK = 64


def hierarchy_with(inclusion: str) -> MemoryHierarchy:
    config = scaled_config().with_inclusion(inclusion)
    return MemoryHierarchy(config, 0, llc=build_llc(config), registry={})


class TestNonInclusive:
    def test_fill_lands_everywhere(self):
        hierarchy = hierarchy_with("non-inclusive")
        hierarchy.load(0x400, 0x10000, 0)
        block = 0x10000
        assert hierarchy.l1d.probe(block) >= 0
        assert hierarchy.l2.probe(block) >= 0
        assert hierarchy.llc.probe(block) >= 0

    def test_llc_eviction_leaves_private_copies(self):
        hierarchy = hierarchy_with("non-inclusive")
        hierarchy.load(0x400, 0x10000, 0)
        hierarchy.llc.invalidate(0x10000)
        assert hierarchy.l1d.probe(0x10000) >= 0
        assert hierarchy.l2.probe(0x10000) >= 0

    def test_clean_l2_victims_dropped(self):
        """A clean L2 eviction must not re-install into the LLC."""
        hierarchy = hierarchy_with("non-inclusive")
        hierarchy.load(0x400, 0x10000, 0)
        hierarchy.llc.invalidate(0x10000)
        before = hierarchy.llc.stats.writeback_fills
        # Force the (clean) block out of L2 by conflict fills.
        set_stride = BLOCK * hierarchy.l2.n_sets
        for i in range(1, hierarchy.l2.assoc + 2):
            hierarchy.l2.fill(0x10000 + i * set_stride, 0)
        assert hierarchy.llc.probe(0x10000) == -1
        assert hierarchy.llc.stats.writeback_fills == before

    def test_dirty_l2_victim_spills_into_llc(self):
        hierarchy = hierarchy_with("non-inclusive")
        hierarchy.store(0x400, 0x10000, 0)
        hierarchy.llc.invalidate(0x10000)
        # Evict the dirty line from both L1 and L2 via the hierarchy's own
        # eviction handler.
        info = hierarchy.l1d.invalidate(0x10000)
        assert info.dirty
        hierarchy.l2.mark_dirty(0x10000)
        evicted = hierarchy.l2.invalidate(0x10000)
        hierarchy._l2_eviction(evicted, 0)
        assert hierarchy.llc.probe(0x10000) >= 0
        assert hierarchy.llc.stats.writeback_fills >= 1


class TestInclusive:
    def test_llc_eviction_back_invalidates(self):
        hierarchy = hierarchy_with("inclusive")
        hierarchy.load(0x400, 0x10000, 0)
        assert hierarchy.l1d.probe(0x10000) >= 0
        # Force an LLC eviction of that block via conflict fills in its set.
        set_stride = BLOCK * hierarchy.llc.n_sets
        for i in range(1, hierarchy.llc.assoc + 1):
            hierarchy._llc_fill(0x10000 + i * set_stride, 0)
        assert hierarchy.llc.probe(0x10000) == -1
        assert hierarchy.l1d.probe(0x10000) == -1
        assert hierarchy.l2.probe(0x10000) == -1

    def test_back_invalidation_writes_dirty_private_data(self):
        hierarchy = hierarchy_with("inclusive")
        hierarchy.store(0x400, 0x10000, 0)
        writes_before = hierarchy.dram.stats.writes
        set_stride = BLOCK * hierarchy.llc.n_sets
        for i in range(1, hierarchy.llc.assoc + 1):
            hierarchy._llc_fill(0x10000 + i * set_stride, 0)
        assert hierarchy.l1d.probe(0x10000) == -1
        assert hierarchy.dram.stats.writes > writes_before


class TestExclusive:
    def test_demand_fill_bypasses_llc(self):
        hierarchy = hierarchy_with("exclusive")
        hierarchy.load(0x400, 0x10000, 0)
        assert hierarchy.l1d.probe(0x10000) >= 0
        assert hierarchy.l2.probe(0x10000) >= 0
        assert hierarchy.llc.probe(0x10000) == -1

    def test_l2_eviction_fills_llc(self):
        hierarchy = hierarchy_with("exclusive")
        hierarchy.load(0x400, 0x10000, 0)
        evicted = hierarchy.l2.invalidate(0x10000)
        hierarchy._l2_eviction(evicted, 0)
        assert hierarchy.llc.probe(0x10000) >= 0

    def test_llc_hit_moves_block_up_and_invalidates(self):
        hierarchy = hierarchy_with("exclusive")
        hierarchy.load(0x400, 0x10000, 0)
        # Push the block down: out of L1/L2 into the LLC.
        evicted = hierarchy.l2.invalidate(0x10000)
        hierarchy.l1d.invalidate(0x10000)
        hierarchy._l2_eviction(evicted, 0)
        assert hierarchy.llc.probe(0x10000) >= 0
        hierarchy.load(0x400, 0x10000, 100)
        assert hierarchy.llc.probe(0x10000) == -1  # moved up, exclusive again
        assert hierarchy.l1d.probe(0x10000) >= 0

    def test_dirty_state_travels_up_on_llc_hit(self):
        hierarchy = hierarchy_with("exclusive")
        hierarchy.store(0x400, 0x10000, 0)
        hierarchy.l1d.invalidate(0x10000)
        hierarchy.l2.mark_dirty(0x10000)
        evicted = hierarchy.l2.invalidate(0x10000)
        hierarchy._l2_eviction(evicted, 0)
        hierarchy.load(0x400, 0x10000, 100)
        way = hierarchy.l2.probe(0x10000)
        assert way >= 0
        assert hierarchy.l2.sets[hierarchy.l2.set_index(0x10000)][way].dirty


class TestConfigValidation:
    def test_bad_inclusion_rejected(self):
        with pytest.raises(ValueError, match="inclusion"):
            scaled_config().with_inclusion("semi-inclusive")
