"""Hierarchy instruction-fetch and bookkeeping paths not covered elsewhere."""

import pytest

from repro.cache.hierarchy import MemoryHierarchy, build_llc
from repro.config import scaled_config

BLOCK = 64
CODE = 0x40_0000
DATA = 0x10_0000_0000


def make_hierarchy(prefetch="000", inclusion="non-inclusive"):
    config = (scaled_config().with_prefetch_string(prefetch)
              .with_inclusion(inclusion))
    return MemoryHierarchy(config, 0, llc=build_llc(config), registry={})


class TestFetchPath:
    def test_cold_fetch_reaches_dram(self):
        hierarchy = make_hierarchy()
        latency = hierarchy.fetch(CODE, 0)
        assert latency > hierarchy.l1i.latency
        assert hierarchy.dram.stats.reads == 1

    def test_warm_fetch_hits_l1i(self):
        hierarchy = make_hierarchy()
        hierarchy.fetch(CODE, 0)
        assert hierarchy.fetch(CODE, 100) == hierarchy.l1i.latency

    def test_fetch_within_block_shares_line(self):
        hierarchy = make_hierarchy()
        hierarchy.fetch(CODE, 0)
        assert hierarchy.fetch(CODE + 60, 10) == hierarchy.l1i.latency

    def test_l1i_prefetcher_runs_on_fetch(self):
        hierarchy = make_hierarchy(prefetch="NN0")
        hierarchy.fetch(CODE, 0)
        assert hierarchy.l1i.probe(CODE + BLOCK) >= 0

    def test_code_and_data_share_llc(self):
        hierarchy = make_hierarchy()
        hierarchy.fetch(CODE, 0)
        hierarchy.load(CODE, DATA, 10)
        assert hierarchy.llc.probe(CODE & ~(BLOCK - 1)) >= 0
        assert hierarchy.llc.probe(DATA & ~(BLOCK - 1)) >= 0


class TestBookkeeping:
    def test_occupancy_fraction_counts_own_blocks_only(self):
        config = scaled_config()
        llc = build_llc(config)
        from repro.core import ContentionTracker
        from repro.dram import Dram

        tracker = ContentionTracker()
        dram = Dram(config.dram)
        registry = {}
        h0 = MemoryHierarchy(config, 0, llc=llc, dram=dram, tracker=tracker,
                             registry=registry)
        h1 = MemoryHierarchy(config, 1, llc=llc, dram=dram, tracker=tracker,
                             registry=registry)
        for i in range(32):
            h0.load(CODE, DATA + i * BLOCK, i)
            h1.load(CODE, DATA + (1 << 44) + i * BLOCK, i)
        total = (h0.llc_occupancy_fraction() + h1.llc_occupancy_fraction())
        assert h0.llc_occupancy_fraction() > 0
        assert total <= 1.0

    def test_prefetch_counters_aggregate(self):
        hierarchy = make_hierarchy(prefetch="NNI")
        for i in range(16):
            hierarchy.load(CODE, DATA + i * 2 * BLOCK, i * 100)
        assert hierarchy.prefetch_issued() >= hierarchy.prefetch_useful()

    def test_registry_registration(self):
        registry = {}
        config = scaled_config()
        llc = build_llc(config)
        h0 = MemoryHierarchy(config, 0, llc=llc, registry=registry)
        h1 = MemoryHierarchy(config, 1, llc=llc, registry=registry)
        assert registry == {0: h0, 1: h1}
