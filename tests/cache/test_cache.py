"""Unit tests for the set-associative cache."""

import pytest

from repro.cache.cache import Cache

BLOCK = 64


def make_cache(size=4096, assoc=4, policy="lru", **kw):
    return Cache("T", size, assoc, BLOCK, latency=4, policy=policy, **kw)


class TestGeometry:
    def test_set_count(self):
        cache = make_cache(size=4096, assoc=4)
        assert cache.n_sets == 16
        assert cache.capacity_blocks == 64

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError, match="not divisible"):
            Cache("T", 4000, 4, BLOCK)

    def test_set_index_wraps(self):
        cache = make_cache(size=4096, assoc=4)  # 16 sets
        assert cache.set_index(0) == cache.set_index(16 * BLOCK)

    def test_block_address(self):
        cache = make_cache()
        assert cache.block_address(0x1234) == 0x1200


class TestAccess:
    def test_cold_miss(self):
        cache = make_cache()
        assert cache.access(0x1000, False, 0) is False
        assert cache.stats.misses == 1

    def test_hit_after_fill(self):
        cache = make_cache()
        cache.access(0x1000, False, 0)
        cache.fill(0x1000, 0)
        assert cache.access(0x1000, False, 0) is True
        assert cache.stats.hits == 1

    def test_write_hit_sets_dirty(self):
        cache = make_cache()
        cache.fill(0x1000, 0)
        cache.access(0x1000, True, 0)
        way = cache.probe(0x1000)
        assert cache.sets[cache.set_index(0x1000)][way].dirty

    def test_load_store_counters(self):
        cache = make_cache()
        cache.fill(0x1000, 0)
        cache.access(0x1000, False, 0)
        cache.access(0x1000, True, 0)
        assert cache.stats.loads == 1
        assert cache.stats.stores == 1
        assert cache.stats.load_hits == 1
        assert cache.stats.store_hits == 1

    def test_miss_rate(self):
        cache = make_cache()
        cache.access(0x1000, False, 0)  # miss
        cache.fill(0x1000, 0)
        cache.access(0x1000, False, 0)  # hit
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_miss_rate_empty(self):
        assert make_cache().stats.miss_rate == 0.0


class TestFill:
    def test_fill_into_invalid_way_evicts_nothing(self):
        cache = make_cache()
        assert cache.fill(0x1000, 0) is None

    def test_fill_full_set_evicts(self):
        cache = make_cache(size=4 * BLOCK * 1, assoc=4)  # 1 set
        for i in range(4):
            cache.fill(i * BLOCK, 0)
        evicted = cache.fill(4 * BLOCK, 0)
        assert evicted is not None
        assert cache.stats.evictions == 1

    def test_lru_victim_is_oldest(self):
        cache = make_cache(size=4 * BLOCK, assoc=4)  # 1 set
        for i in range(4):
            cache.fill(i * BLOCK, 0)
        evicted = cache.fill(4 * BLOCK, 0)
        assert evicted.tag == 0  # first-filled, never reused

    def test_dirty_eviction_counts_writeback(self):
        cache = make_cache(size=4 * BLOCK, assoc=4)
        cache.fill(0, 0, dirty=True)
        for i in range(1, 5):
            cache.fill(i * BLOCK, 0)
        assert cache.stats.writebacks == 1

    def test_refill_existing_merges_dirty(self):
        cache = make_cache()
        cache.fill(0x1000, 0)
        assert cache.fill(0x1000, 0, dirty=True) is None
        way = cache.probe(0x1000)
        assert cache.sets[cache.set_index(0x1000)][way].dirty

    def test_owner_recorded(self):
        cache = make_cache()
        cache.fill(0x1000, owner=3)
        way = cache.probe(0x1000)
        assert cache.sets[cache.set_index(0x1000)][way].owner == 3

    def test_eviction_reports_owner(self):
        cache = make_cache(size=4 * BLOCK, assoc=4)
        for i in range(4):
            cache.fill(i * BLOCK, owner=7)
        evicted = cache.fill(4 * BLOCK, owner=1)
        assert evicted.owner == 7


class TestAllocationCap:
    def test_cap_forces_self_eviction(self):
        cache = make_cache(size=4 * BLOCK, assoc=4)
        for i in range(2):
            cache.fill(i * BLOCK, owner=0)
        cache.fill(2 * BLOCK, owner=1)
        # owner 0 at its 2-way cap: its own block must be the victim even
        # though owner 1's block is older in LRU order.
        cache.access(2 * BLOCK, False, 1)  # make owner-1 block MRU anyway
        evicted = cache.fill(3 * BLOCK, owner=0, max_owner_ways=2)
        assert evicted.owner == 0

    def test_under_cap_uses_global_victim(self):
        cache = make_cache(size=4 * BLOCK, assoc=4)
        for i in range(4):
            cache.fill(i * BLOCK, owner=1)
        evicted = cache.fill(4 * BLOCK, owner=0, max_owner_ways=2)
        assert evicted.owner == 1


class TestInvalidate:
    def test_invalidate_removes(self):
        cache = make_cache()
        cache.fill(0x1000, 0)
        info = cache.invalidate(0x1000)
        assert info is not None
        assert cache.probe(0x1000) == -1
        assert cache.stats.invalidations == 1

    def test_invalidate_absent_returns_none(self):
        cache = make_cache()
        assert cache.invalidate(0x1000) is None

    def test_invalidate_way(self):
        cache = make_cache()
        cache.fill(0x1000, 0)
        way = cache.probe(0x1000)
        info = cache.invalidate_way(cache.set_index(0x1000), way)
        assert info.tag == 0x1000
        assert cache.probe(0x1000) == -1

    def test_invalidate_way_invalid_block(self):
        cache = make_cache()
        assert cache.invalidate_way(0, 0) is None

    def test_mark_dirty(self):
        cache = make_cache()
        cache.fill(0x1000, 0)
        assert cache.mark_dirty(0x1000) is True
        assert cache.mark_dirty(0x2000) is False

    def test_fill_after_invalidate_prefers_invalid_way(self):
        cache = make_cache(size=4 * BLOCK, assoc=4)
        for i in range(4):
            cache.fill(i * BLOCK, 0)
        cache.invalidate(1 * BLOCK)
        evicted = cache.fill(5 * BLOCK, 0)
        assert evicted is None  # used the invalidated way


class TestOccupancy:
    def test_total(self):
        cache = make_cache()
        for i in range(5):
            cache.fill(i * BLOCK, owner=i % 2)
        assert cache.occupancy() == 5

    def test_per_owner(self):
        cache = make_cache()
        for i in range(5):
            cache.fill(i * BLOCK, owner=i % 2)
        assert cache.occupancy(owner=0) == 3
        assert cache.occupancy(owner=1) == 2


class TestReuseHistogram:
    def test_mru_hit_is_top_position(self):
        cache = make_cache(size=4 * BLOCK, assoc=4, track_reuse=True)
        cache.fill(0, 0)
        cache.access(0, False, 0)
        assert cache.reuse_histogram[0] == 1

    def test_lru_hit_is_bottom_position(self):
        cache = make_cache(size=4 * BLOCK, assoc=4, track_reuse=True)
        for i in range(4):
            cache.fill(i * BLOCK, 0)
        cache.access(0, False, 0)  # block 0 is now at the LRU end
        assert cache.reuse_histogram[3] == 1

    def test_untracked_cache_has_no_histogram(self):
        cache = make_cache(track_reuse=False)
        cache.fill(0, 0)
        cache.access(0, False, 0)
        assert cache.reuse_histogram == []


class TestTagMapConsistency:
    def test_probe_matches_scan(self):
        """The O(1) tag map must agree with a brute-force scan."""
        cache = make_cache(size=8 * BLOCK, assoc=4)
        addresses = [i * BLOCK for i in range(20)]
        for rounds in range(3):
            for address in addresses:
                if not cache.access(address, rounds % 2 == 0, 0):
                    cache.fill(address, 0)
                if address % (3 * BLOCK) == 0:
                    cache.invalidate(address)
        for set_index, blocks in enumerate(cache.sets):
            for way, block in enumerate(blocks):
                if block.valid:
                    assert cache.probe(block.tag) == way
