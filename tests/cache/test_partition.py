"""Unit and integration tests for cache partitioning (UCP / CASHT / static)."""

import pytest

from repro.cache.cache import Cache
from repro.cache.partition import (
    CashtPartitioner,
    PARTITIONERS,
    StaticPartitioner,
    UcpPartitioner,
    UtilityMonitor,
    even_split,
)
from repro.cache.partition.umon import ShadowSet
from repro.config import scaled_config
from repro.core import ContentionTracker
from repro.sim.multicore import simulate_multiprogrammed
from repro.trace import build_trace, get_workload

BLOCK = 64


class TestEvenSplit:
    def test_divides_evenly(self):
        assert even_split(16, [0, 1]) == {0: 8, 1: 8}

    def test_remainder_to_early_owners(self):
        assert even_split(16, [0, 1, 2]) == {0: 6, 1: 5, 2: 5}

    def test_single_owner(self):
        assert even_split(16, [0]) == {0: 16}


class TestStaticPartitioner:
    def test_default_even(self):
        partitioner = StaticPartitioner(16, [0, 1])
        assert partitioner.allocate() == {0: 8, 1: 8}

    def test_explicit_quotas(self):
        partitioner = StaticPartitioner(16, [0, 1], quotas={0: 12, 1: 4})
        assert partitioner.allocate() == {0: 12, 1: 4}

    def test_rejects_overbudget(self):
        with pytest.raises(ValueError, match="exceed"):
            StaticPartitioner(16, [0, 1], quotas={0: 12, 1: 8})

    def test_rejects_wrong_owner_set(self):
        with pytest.raises(ValueError, match="cover"):
            StaticPartitioner(16, [0, 1], quotas={0: 16})

    def test_rejects_more_owners_than_ways(self):
        with pytest.raises(ValueError):
            StaticPartitioner(2, [0, 1, 2])

    def test_install_sets_cache_quotas(self):
        cache = Cache("T", 16 * 4 * BLOCK, 4, BLOCK, latency=1)
        StaticPartitioner(4, [0, 1]).install(cache)
        assert cache.way_allocations == {0: 2, 1: 2}


class TestQuotaEnforcement:
    def test_owner_capped_at_quota(self):
        cache = Cache("T", 4 * BLOCK, 4, BLOCK, latency=1)
        cache.way_allocations = {0: 2, 1: 2}
        stride = BLOCK * cache.n_sets
        for i in range(4):
            cache.fill(i * stride, owner=0)
        blocks = cache.sets[0]
        owner0 = sum(1 for b in blocks if b.valid and b.owner == 0)
        assert owner0 <= 2

    def test_unlisted_owner_unconstrained(self):
        cache = Cache("T", 4 * BLOCK, 4, BLOCK, latency=1)
        cache.way_allocations = {1: 2}
        stride = BLOCK * cache.n_sets
        for i in range(4):
            cache.fill(i * stride, owner=0)
        assert cache.occupancy(owner=0) == 4

    def test_quota_protects_other_owner(self):
        cache = Cache("T", 4 * BLOCK, 4, BLOCK, latency=1)
        cache.way_allocations = {0: 2, 1: 2}
        stride = BLOCK * cache.n_sets
        cache.fill(0 * stride, owner=1)
        cache.fill(1 * stride, owner=1)
        for i in range(2, 10):
            cache.fill(i * stride, owner=0)
        assert cache.occupancy(owner=1) == 2  # untouched by owner 0's storm


class TestShadowSet:
    def test_miss_then_hit(self):
        shadow = ShadowSet(4)
        assert shadow.access(10) == -1
        assert shadow.access(10) == 0

    def test_stack_position(self):
        shadow = ShadowSet(4)
        shadow.access(1)
        shadow.access(2)
        assert shadow.access(1) == 1  # one block more recent

    def test_capacity_bound(self):
        shadow = ShadowSet(2)
        for tag in (1, 2, 3):
            shadow.access(tag)
        assert shadow.access(1) == -1  # evicted from the 2-deep shadow


class TestUtilityMonitor:
    def test_curve_is_cumulative(self):
        umon = UtilityMonitor(n_sets=16, n_ways=4, owners=[0], sampling=1)
        # Re-reference one block repeatedly: position-0 hits only.
        for _ in range(5):
            umon.observe(0, 0)
        curve = umon.utility_curve(0)
        assert curve[0] == 4  # 5 accesses = 1 miss + 4 hits
        assert curve == sorted(curve)

    def test_marginal_utility(self):
        umon = UtilityMonitor(n_sets=16, n_ways=4, owners=[0], sampling=1)
        # Two blocks alternating: hits land at stack position 1.
        for _ in range(6):
            umon.observe(0, 0)
            umon.observe(0, BLOCK * 16)  # same sampled set, different tag
        assert umon.marginal_utility(0, 1, 2) > 0
        assert umon.marginal_utility(0, 2, 4) == 0

    def test_sampling_skips_sets(self):
        umon = UtilityMonitor(n_sets=16, n_ways=4, owners=[0], sampling=8)
        umon.observe(0, 1 * BLOCK)  # set 1: not sampled
        umon.observe(0, 1 * BLOCK)
        assert sum(umon.position_hits[0]) == 0

    def test_unknown_owner_ignored(self):
        umon = UtilityMonitor(n_sets=16, n_ways=4, owners=[0])
        umon.observe(99, 0)  # no KeyError

    def test_reset_halves(self):
        umon = UtilityMonitor(n_sets=16, n_ways=4, owners=[0], sampling=1)
        for _ in range(9):
            umon.observe(0, 0)
        umon.reset()
        assert umon.position_hits[0][0] == 4

    def test_rejects_bad_range(self):
        umon = UtilityMonitor(n_sets=16, n_ways=4, owners=[0])
        with pytest.raises(ValueError):
            umon.marginal_utility(0, 3, 2)


class TestUcp:
    def test_greedy_favours_high_utility_owner(self):
        ucp = UcpPartitioner(n_sets=16, n_ways=8, owners=[0, 1], sampling=1)
        # Owner 0 reuses 4 distinct blocks (utility up to 4 ways); owner 1
        # streams (no reuse at all).
        for round_ in range(10):
            for i in range(4):
                ucp.on_llc_access(0, i * 16 * BLOCK, True)
            ucp.on_llc_access(1, (100 + round_) * 16 * BLOCK, False)
        ucp.observe(None, None)
        quotas = ucp.allocate()
        assert quotas[0] > quotas[1]
        assert quotas[0] + quotas[1] <= 8

    def test_every_owner_gets_a_way(self):
        ucp = UcpPartitioner(n_sets=16, n_ways=4, owners=[0, 1])
        ucp.observe(None, None)
        quotas = ucp.allocate()
        assert all(q >= 1 for q in quotas.values())

    def test_no_utility_spreads_evenly(self):
        ucp = UcpPartitioner(n_sets=16, n_ways=8, owners=[0, 1])
        ucp.observe(None, None)  # no observations at all
        quotas = ucp.allocate()
        assert quotas[0] + quotas[1] == 8
        assert abs(quotas[0] - quotas[1]) <= 1


class TestCasht:
    def _tracker_with(self, victim_interference: int, thief_caused: int):
        tracker = ContentionTracker()
        victim = tracker.counters(0)
        victim.llc_accesses = 100
        victim.interference_misses = victim_interference
        thief = tracker.counters(1)
        thief.llc_accesses = 100
        thief.thefts_caused = thief_caused
        return tracker

    def test_transfers_way_to_victim(self):
        partitioner = CashtPartitioner(8, [0, 1])
        tracker = self._tracker_with(victim_interference=30, thief_caused=40)
        partitioner.observe(None, tracker)
        quotas = partitioner.allocate()
        assert quotas[0] == 5
        assert quotas[1] == 3
        assert partitioner.transfers == 1

    def test_no_transfer_below_floor(self):
        partitioner = CashtPartitioner(8, [0, 1])
        tracker = self._tracker_with(victim_interference=0, thief_caused=40)
        partitioner.observe(None, tracker)
        assert partitioner.allocate() == {0: 4, 1: 4}

    def test_thief_keeps_min_ways(self):
        partitioner = CashtPartitioner(4, [0, 1], min_ways=1)
        for _ in range(10):
            tracker = self._tracker_with(30, 40)
            partitioner.observe(None, tracker)
        assert partitioner.allocate()[1] >= 1

    def test_epoch_deltas_not_cumulative(self):
        partitioner = CashtPartitioner(8, [0, 1])
        tracker = self._tracker_with(30, 40)
        partitioner.observe(None, tracker)
        # Same cumulative counters in the next epoch = zero new events.
        partitioner.observe(None, tracker)
        assert partitioner.transfers == 1


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def setup(self):
        config = scaled_config()
        aggressor = build_trace(get_workload("470.lbm"), 12_000, 2,
                                config.llc.size)
        victim = build_trace(get_workload("450.soplex"), 12_000, 1,
                             config.llc.size)
        return config, victim, aggressor

    def _run(self, setup, partitioner):
        config, victim, aggressor = setup
        return simulate_multiprogrammed(
            [victim, aggressor], config, warmup_instructions=3_000,
            sim_instructions=8_000, partitioner=partitioner,
            repartition_interval=2_000,
        )

    def test_registry_complete(self):
        assert set(PARTITIONERS) == {"static", "ucp", "casht"}

    def test_static_eliminates_thefts(self, setup):
        config = setup[0]
        shared = self._run(setup, None)
        fenced = self._run(setup, StaticPartitioner(config.llc.assoc, [0, 1]))
        assert shared[0].thefts_experienced > 0
        assert fenced[0].thefts_experienced == 0

    def test_ucp_runs_and_repartitions(self, setup):
        config = setup[0]
        llc_sets = config.llc.size // (config.llc.assoc * config.block_size)
        ucp = UcpPartitioner(llc_sets, config.llc.assoc, [0, 1], sampling=4)
        results = self._run(setup, ucp)
        assert ucp.repartitions >= 3
        assert results[0].thefts_experienced == 0

    def test_casht_protects_victim(self, setup):
        config = setup[0]
        casht = CashtPartitioner(config.llc.assoc, [0, 1])
        results = self._run(setup, casht)
        assert results[0].thefts_experienced == 0
