"""Unit tests for all replacement policies, including the PInTE hooks."""

import pytest

from repro.cache.replacement import POLICIES, make_policy
from repro.cache.replacement.lru import LruPolicy
from repro.cache.replacement.nmru import NmruPolicy
from repro.cache.replacement.plru import TreePlruPolicy
from repro.cache.replacement.rrip import RripPolicy

ALL = ["lru", "plru", "nmru", "rrip", "random"]


from repro.cache.state import CacheSetState


def full_state(n_ways, n_sets=2):
    """A CacheSetState with every way of set 0 valid."""
    state = CacheSetState(n_sets, n_ways)
    for way in range(n_ways):
        state.install(way, way * 64, owner=0)
    return state


class TestRegistry:
    def test_all_constructible(self):
        for name in POLICIES:
            policy = make_policy(name, n_sets=4, n_ways=4)
            assert policy.name == name

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown replacement"):
            make_policy("belady", 4, 4)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            make_policy("lru", 0, 4)


@pytest.mark.parametrize("name", ALL)
class TestInterfaceContracts:
    """Invariants every policy must honour (PInTE depends on them)."""

    def test_victim_prefers_invalid(self, name):
        policy = make_policy(name, 2, 4)
        state = full_state(4)
        state.clear(2)
        assert policy.victim(0, state) == 2

    def test_victim_in_range(self, name):
        policy = make_policy(name, 2, 4)
        state = full_state(4)
        for _ in range(20):
            assert 0 <= policy.victim(0, state) < 4

    def test_eviction_order_is_permutation(self, name):
        policy = make_policy(name, 2, 8)
        policy.on_insert(0, 3)
        policy.on_hit(0, 3)
        order = policy.eviction_order(0)
        assert sorted(order) == list(range(8))

    def test_promote_protects(self, name):
        """After PROMOTE, the way must not be the first eviction candidate."""
        policy = make_policy(name, 2, 4)
        for way in range(4):
            policy.on_insert(0, way)
        policy.promote(0, 1)
        if name == "random":
            return  # random policy has no protection guarantee
        assert policy.eviction_order(0)[0] != 1

    def test_sets_independent(self, name):
        if name == "random":
            return  # random order is stateless by design
        policy = make_policy(name, 4, 4)
        for way in range(4):
            policy.on_insert(0, way)
        policy.promote(0, 2)
        # Set 1 was never touched; operating on set 0 must not affect it.
        order_before = policy.eviction_order(1)
        policy.promote(0, 3)
        assert policy.eviction_order(1) == order_before


class TestLru:
    def test_stack_order(self):
        policy = LruPolicy(1, 4)
        for way in (0, 1, 2, 3):
            policy.on_insert(0, way)
        # MRU is 3; eviction order starts at 0.
        assert policy.eviction_order(0) == [0, 1, 2, 3]

    def test_hit_moves_to_mru(self):
        policy = LruPolicy(1, 4)
        for way in (0, 1, 2, 3):
            policy.on_insert(0, way)
        policy.on_hit(0, 0)
        assert policy.eviction_order(0) == [1, 2, 3, 0]

    def test_victim_is_lru(self):
        policy = LruPolicy(1, 4)
        for way in (0, 1, 2, 3):
            policy.on_insert(0, way)
        assert policy._victim_valid(0, full_state(4)) == 0


class TestPlru:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            TreePlruPolicy(2, 3)

    def test_victim_avoids_recent(self):
        policy = TreePlruPolicy(1, 4)
        policy.on_insert(0, 2)
        assert policy._victim_valid(0, full_state(4)) != 2

    def test_round_robin_when_all_touched(self):
        """Touching every way leaves a victim that was touched earliest."""
        policy = TreePlruPolicy(1, 8)
        for way in range(8):
            policy.on_hit(0, way)
        victim = policy._victim_valid(0, full_state(8))
        assert victim != 7  # 7 was most recent

    def test_eviction_order_ends_near_mru(self):
        policy = TreePlruPolicy(1, 8)
        for way in range(8):
            policy.on_hit(0, way)
        order = policy.eviction_order(0)
        assert order[-1] == 7 or order[0] != 7


class TestNmru:
    def test_never_evicts_mru(self):
        policy = NmruPolicy(1, 4)
        policy.on_hit(0, 2)
        for _ in range(50):
            assert policy._victim_valid(0, full_state(4)) != 2

    def test_mru_last_in_order(self):
        policy = NmruPolicy(1, 4)
        policy.on_insert(0, 1)
        assert policy.eviction_order(0)[-1] == 1

    def test_single_way(self):
        policy = NmruPolicy(1, 1)
        assert policy._victim_valid(0, full_state(1)) == 0


class TestRrip:
    def test_insert_uses_long_rrpv(self):
        policy = RripPolicy(1, 4, rrpv_bits=2)
        policy.on_insert(0, 0)
        assert policy._rrpv[0][0] == 2  # max - 1

    def test_hit_promotes_to_zero(self):
        policy = RripPolicy(1, 4)
        policy.on_insert(0, 0)
        policy.on_hit(0, 0)
        assert policy._rrpv[0][0] == 0

    def test_victim_is_max_rrpv(self):
        policy = RripPolicy(1, 4)
        for way in range(4):
            policy.on_insert(0, way)
        policy.on_hit(0, 1)
        # all at 2 except way1 at 0; ageing pushes 0/2/3 to 3 first.
        victim = policy._victim_valid(0, full_state(4))
        assert victim != 1

    def test_ageing_terminates(self):
        policy = RripPolicy(1, 4)
        for way in range(4):
            policy.on_insert(0, way)
            policy.on_hit(0, way)  # all at RRPV 0
        assert 0 <= policy._victim_valid(0, full_state(4)) < 4

    def test_eviction_order_by_rrpv(self):
        policy = RripPolicy(1, 4)
        for way in range(4):
            policy.on_insert(0, way)
        policy.on_hit(0, 2)
        order = policy.eviction_order(0)
        assert order[-1] == 2  # the only RRPV-0 block is most protected

    def test_scan_resistance(self):
        """A one-pass scan should not displace a re-referenced block —
        the property that makes RRIP beat LRU on streaming workloads."""
        policy = RripPolicy(1, 4)
        state = full_state(4, n_sets=1)
        policy.on_insert(0, 0)
        policy.on_hit(0, 0)  # way 0 is hot (RRPV 0)
        for way in (1, 2, 3):
            policy.on_insert(0, way)  # scan data at RRPV 2
        victim = policy._victim_valid(0, state)
        assert victim != 0

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            RripPolicy(1, 4, rrpv_bits=0)


class TestRandomPolicy:
    def test_deterministic_given_seed(self):
        a = make_policy("random", 1, 8, seed=3)
        b = make_policy("random", 1, 8, seed=3)
        state = full_state(8, n_sets=1)
        assert [a._victim_valid(0, state) for _ in range(10)] == \
               [b._victim_valid(0, state) for _ in range(10)]


@pytest.mark.parametrize("name", ALL)
class TestStackReadout:
    """Contracts of the allocation-free PInTE/readout interface."""

    def test_eviction_order_into_fills_caller_buffer(self, name):
        policy = make_policy(name, 2, 8)
        out = [-1] * 8
        result = policy.eviction_order_into(0, out)
        assert result is out
        assert sorted(out) == list(range(8))

    def test_hit_position_matches_eviction_order(self, name):
        if name == "random":
            return  # random re-draws a fresh order per read-out
        policy = make_policy(name, 2, 8)
        for way in (3, 5, 1):
            policy.on_insert(0, way)
            policy.on_hit(0, way)
        order = policy.eviction_order(0)
        for way in range(8):
            assert policy.hit_position(0, way) == 7 - order.index(way)

    def test_victim_valid_is_order_head(self, name):
        if name in ("random", "nmru"):
            return  # their victims are (seeded) draws, not the order head
        policy = make_policy(name, 2, 4)
        for way in range(4):
            policy.on_insert(0, way)
        policy.on_hit(0, 2)
        state = full_state(4)
        assert policy._victim_valid(0, state) == policy.eviction_order(0)[0]
