"""Tests for the benchmark-regression gate (suite-generic comparison)."""

import json

import pytest

from repro.bench.gate import (
    DEFAULT_TOLERANCE,
    check_regressions,
    load_reference,
    metric_direction,
    run_gate,
    suite_for_baseline,
)


class TestMetricDirection:
    def test_throughput_is_higher_better(self):
        assert metric_direction("fastcache_records_per_sec") == "higher"
        assert metric_direction("simulate_instructions_per_sec") == "higher"

    def test_ratios_are_higher_better(self):
        assert metric_direction("bundle_dedup_ratio") == "higher"
        assert metric_direction("fastcache_enabled_ratio") == "higher"

    def test_wall_time_is_lower_better(self):
        assert metric_direction("reproduce_seconds") == "lower"

    def test_metadata_ignored(self):
        for name in ("repeats", "python", "timestamp", "trace_length",
                     "bundle_planned_jobs", "sim_instructions"):
            assert metric_direction(name) is None


class TestSuiteInference:
    def test_known_suites(self):
        assert suite_for_baseline("BENCH_datapath.json") == "datapath"
        assert suite_for_baseline("x/y/BENCH_trace.json") == "trace"
        assert suite_for_baseline("BENCH_reproduce.json") == "reproduce"
        assert suite_for_baseline("BENCH_obs.json") == "obs"
        assert suite_for_baseline("BENCH_session.json") == "session"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            suite_for_baseline("BENCH_mystery.json")
        with pytest.raises(ValueError):
            suite_for_baseline("notabench.json")


class TestLoadReference:
    def test_current_preferred(self, tmp_path):
        path = tmp_path / "BENCH_datapath.json"
        path.write_text(json.dumps({
            "current": {"a_per_sec": 10.0, "python": "3.11"},
            "seed_baseline": {"a_per_sec": 5.0},
        }))
        assert load_reference(path) == {"a_per_sec": 10.0}

    def test_seed_baseline_fallback(self, tmp_path):
        path = tmp_path / "BENCH_datapath.json"
        path.write_text(json.dumps({"seed_baseline": {"a_per_sec": 5.0}}))
        assert load_reference(path) == {"a_per_sec": 5.0}

    def test_neither_entry_rejected(self, tmp_path):
        path = tmp_path / "BENCH_datapath.json"
        path.write_text(json.dumps({"runs": []}))
        with pytest.raises(ValueError):
            load_reference(path)

    def test_booleans_are_not_metrics(self, tmp_path):
        path = tmp_path / "BENCH_datapath.json"
        path.write_text(json.dumps({"current": {"flag": True,
                                                "a_per_sec": 1.0}}))
        assert load_reference(path) == {"a_per_sec": 1.0}


class TestCheckRegressions:
    REF = {"speed_per_sec": 100.0, "wall_seconds": 10.0, "repeats": 3}

    def test_within_tolerance_passes(self):
        checks = check_regressions({"speed_per_sec": 80.0,
                                    "wall_seconds": 12.0}, self.REF,
                                   tolerance=0.30)
        assert [check.regressed for check in checks] == [False, False]

    def test_throughput_drop_beyond_tolerance_regresses(self):
        checks = check_regressions({"speed_per_sec": 60.0,
                                    "wall_seconds": 10.0}, self.REF,
                                   tolerance=0.30)
        verdicts = {check.name: check.regressed for check in checks}
        assert verdicts == {"speed_per_sec": True, "wall_seconds": False}

    def test_wall_time_growth_beyond_tolerance_regresses(self):
        checks = check_regressions({"speed_per_sec": 100.0,
                                    "wall_seconds": 20.0}, self.REF,
                                   tolerance=0.30)
        verdicts = {check.name: check.regressed for check in checks}
        assert verdicts["wall_seconds"] is True

    def test_improvements_never_trip(self):
        checks = check_regressions({"speed_per_sec": 1000.0,
                                    "wall_seconds": 0.1}, self.REF,
                                   tolerance=0.0)
        assert all(not check.regressed for check in checks)
        assert all(check.change > 0 for check in checks)

    def test_metadata_and_missing_metrics_skipped(self):
        checks = check_regressions({"speed_per_sec": 100.0}, self.REF)
        assert [check.name for check in checks] == ["speed_per_sec"]

    def test_change_sign_is_polarity_normalised(self):
        checks = check_regressions({"speed_per_sec": 90.0,
                                    "wall_seconds": 11.0}, self.REF)
        by_name = {check.name: check for check in checks}
        assert by_name["speed_per_sec"].change == pytest.approx(-0.10)
        assert by_name["wall_seconds"].change == pytest.approx(-1 / 11,
                                                               abs=1e-6)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            check_regressions({}, {}, tolerance=-0.1)

    def test_zero_reference_skipped(self):
        checks = check_regressions({"x_per_sec": 5.0}, {"x_per_sec": 0.0})
        assert checks == []


class TestRunGate:
    def baseline(self, tmp_path, **current):
        path = tmp_path / "BENCH_datapath.json"
        path.write_text(json.dumps({"current": current}))
        return path

    def test_precomputed_measurements_short_circuit_the_run(self, tmp_path):
        path = self.baseline(tmp_path, a_per_sec=100.0, b_seconds=1.0)
        report = run_gate(path, tolerance=0.30,
                          measured={"a_per_sec": 90.0, "b_seconds": 1.1})
        assert report.suite == "datapath"
        assert report.ok
        assert report.tolerance == 0.30
        assert len(report.checks) == 2

    def test_regression_reported(self, tmp_path):
        path = self.baseline(tmp_path, a_per_sec=100.0)
        report = run_gate(path, measured={"a_per_sec": 1.0})
        assert not report.ok
        assert [check.name for check in report.regressions] == ["a_per_sec"]

    def test_missing_metrics_surfaced(self, tmp_path):
        path = self.baseline(tmp_path, a_per_sec=100.0, gone_per_sec=5.0)
        report = run_gate(path, measured={"a_per_sec": 100.0})
        assert report.missing == ["gone_per_sec"]

    def test_suite_override_beats_filename_inference(self, tmp_path):
        # How `repro bench --suite session --baseline BENCH_datapath.json`
        # gates the session run against the datapath floors.
        path = self.baseline(tmp_path, a_per_sec=100.0)
        report = run_gate(path, suite="session",
                          measured={"a_per_sec": 100.0})
        assert report.suite == "session"
        assert report.ok

    def test_unknown_suite_override_rejected(self, tmp_path):
        path = self.baseline(tmp_path, a_per_sec=100.0)
        with pytest.raises(ValueError, match="unknown bench suite"):
            run_gate(path, suite="mystery", measured={"a_per_sec": 100.0})

    def test_default_tolerance_is_generous(self):
        assert DEFAULT_TOLERANCE == pytest.approx(0.30)
