"""Second batch of hypothesis property tests: I/O, DRAM, patterns, MRC."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.mrc import INFINITE, miss_rate_curve, stack_distance_histogram
from repro.analysis.phases import detect_phases
from repro.dram import Dram, DramConfig
from repro.trace.io import read_trace, write_trace
from repro.trace.mixes import pair_coverage, random_mixes
from repro.trace.record import Trace, TraceRecord
from repro.trace.simpoint import SimpointWeight, weighted_metric

# -- trace records ------------------------------------------------------------

records = st.builds(
    TraceRecord,
    pc=st.integers(min_value=0, max_value=2**60),
    load_addr=st.one_of(st.none(), st.integers(min_value=0, max_value=2**60)),
    store_addr=st.one_of(st.none(), st.integers(min_value=0, max_value=2**60)),
    is_branch=st.booleans(),
    taken=st.booleans(),
    dependent=st.booleans(),
)


class TestTraceIoProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(records, max_size=60))
    def test_round_trip_any_records(self, record_list):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.trace.gz"
            write_trace(Trace("prop", record_list), path)
            assert read_trace(path).records == record_list


# -- DRAM ------------------------------------------------------------------

class TestDramProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**30),
                              st.integers(min_value=0, max_value=10**6),
                              st.booleans()),
                    min_size=1, max_size=60))
    def test_latency_bounds(self, requests):
        dram = Dram(DramConfig())
        config = dram.config
        cycle = 0
        for address, delta, is_write in requests:
            cycle += delta
            latency = dram.access(address, cycle, is_write=is_write)
            assert latency >= config.row_hit_latency
        assert dram.stats.accesses == len(requests)
        assert (dram.stats.row_hits + dram.stats.row_misses
                + dram.stats.row_conflicts) == len(requests)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**30))
    def test_same_address_second_access_is_row_hit(self, address):
        dram = Dram(DramConfig())
        dram.access(address, 0)
        dram.access(address, 10**6)
        assert dram.stats.row_hits == 1


# -- stack distances / MRC ----------------------------------------------------

class TestMrcProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=150))
    def test_histogram_conserves_accesses(self, blocks):
        histogram = stack_distance_histogram([b * 64 for b in blocks])
        assert sum(histogram.values()) == len(blocks)
        assert histogram.get(INFINITE, 0) == len(set(blocks))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=150))
    def test_curve_monotone_nonincreasing(self, blocks):
        histogram = stack_distance_histogram([b * 64 for b in blocks])
        curve = miss_rate_curve(histogram, [0, 1, 4, 16, 64, 256])
        values = [curve[c] for c in sorted(curve)]
        assert values == sorted(values, reverse=True)
        assert all(0.0 <= v <= 1.0 for v in values)


# -- phases --------------------------------------------------------------------

class TestPhaseProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                    min_size=1, max_size=60))
    def test_phases_partition_series(self, series):
        phases = detect_phases(series)
        assert phases[0].start == 0
        assert phases[-1].end == len(series)
        for first, second in zip(phases, phases[1:]):
            assert first.end == second.start
        assert all(p.length > 0 for p in phases)


# -- mixes ---------------------------------------------------------------------

class TestMixProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=4, max_value=20),
           st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=1000))
    def test_coverage_in_unit_range(self, pool, n_mixes, seed):
        names = [f"w{i}" for i in range(pool)]
        limit = min(n_mixes, pool * (pool - 1) // 2)
        mixes = random_mixes(names, limit, 2, seed=seed)
        coverage = pair_coverage(mixes, names)
        assert 0.0 < coverage <= 1.0


# -- simpoints -------------------------------------------------------------------

class TestSimpointProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.floats(min_value=0.01, max_value=100,
                                        allow_nan=False),
                              st.floats(min_value=-10, max_value=10,
                                        allow_nan=False)),
                    min_size=1, max_size=20))
    def test_weighted_metric_within_bounds(self, pairs):
        weights = [SimpointWeight(f"t{i}", w) for i, (w, _) in enumerate(pairs)]
        per_trace = {f"t{i}": v for i, (_, v) in enumerate(pairs)}
        combined = weighted_metric(per_trace, weights)
        values = list(per_trace.values())
        assert min(values) - 1e-9 <= combined <= max(values) + 1e-9
