"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.kl_divergence import kl_divergence, normalise, series_kl
from repro.analysis.stability import std_dev
from repro.cache.cache import Cache
from repro.cache.replacement import make_policy
from repro.core import ContentionTracker, PInTE, PinteConfig
from repro.trace.patterns import reuse_distances
from repro.util.bitops import fold_xor, ilog2, is_power_of_two
from repro.util.rng import DeterministicRng

BLOCK = 64

histograms = st.lists(st.floats(min_value=0.0, max_value=1e6,
                                allow_nan=False), min_size=2, max_size=32)


class TestKlProperties:
    @given(histograms)
    def test_self_divergence_zero(self, histogram):
        assert kl_divergence(histogram, histogram) < 1e-6

    @given(histograms, histograms)
    def test_non_negative(self, p, q):
        if len(p) != len(q):
            q = (q * ((len(p) // len(q)) + 1))[:len(p)]
        assert kl_divergence(p, q) >= -1e-9

    @given(histograms)
    def test_normalise_is_distribution(self, histogram):
        p = normalise(histogram)
        assert abs(sum(p) - 1.0) < 1e-9
        assert all(x > 0 for x in p)

    @given(st.lists(st.floats(min_value=-100, max_value=100,
                              allow_nan=False), min_size=2, max_size=64))
    def test_series_self_kl_zero(self, series):
        assert series_kl(series, list(series)) < 1e-6


class TestBitopsProperties:
    @given(st.integers(min_value=0, max_value=2**48),
           st.integers(min_value=1, max_value=24))
    def test_fold_xor_fits(self, value, bits):
        assert 0 <= fold_xor(value, bits) < (1 << bits)

    @given(st.integers(min_value=0, max_value=30))
    def test_ilog2_inverts_shift(self, exponent):
        assert ilog2(1 << exponent) == exponent

    @given(st.integers(min_value=1, max_value=10**9))
    def test_power_of_two_consistency(self, value):
        if is_power_of_two(value):
            assert 1 << ilog2(value) == value


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=8))
    def test_reproducible(self, seed, salt):
        a = DeterministicRng(seed, salt)
        b = DeterministicRng(seed, salt)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    @given(st.integers(min_value=0, max_value=100),
           st.integers(min_value=0, max_value=100))
    def test_randint_in_bounds(self, low, width):
        rng = DeterministicRng(1)
        value = rng.randint(low, low + width)
        assert low <= value <= low + width


class TestStdDevProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_non_negative(self, values):
        assert std_dev(values) >= 0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50),
           st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_shift_invariant(self, values, shift):
        shifted = [v + shift for v in values]
        assert math.isclose(std_dev(shifted), std_dev(values), abs_tol=1e-3)


class TestReuseDistanceProperties:
    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                    max_size=100))
    def test_distances_bounded_by_distinct_blocks(self, block_ids):
        addresses = [b * BLOCK for b in block_ids]
        distances = reuse_distances(addresses)
        distinct = len(set(block_ids))
        assert all(d < distinct for d in distances if d >= 0)

    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                    max_size=100))
    def test_first_touch_count_equals_distinct(self, block_ids):
        addresses = [b * BLOCK for b in block_ids]
        distances = reuse_distances(addresses)
        assert sum(1 for d in distances if d == -1) == len(set(block_ids))


accesses = st.lists(
    st.tuples(st.integers(min_value=0, max_value=63),  # block id
              st.booleans()),                          # is_write
    min_size=1, max_size=300,
)


class TestCacheInvariants:
    @settings(max_examples=50, deadline=None)
    @given(accesses, st.sampled_from(["lru", "plru", "nmru", "rrip"]))
    def test_occupancy_never_exceeds_capacity(self, stream, policy):
        cache = Cache("T", 8 * BLOCK, 4, BLOCK, latency=1, policy=policy)
        for block_id, is_write in stream:
            address = block_id * BLOCK
            if not cache.access(address, is_write, 0):
                cache.fill(address, 0, dirty=is_write)
        assert cache.occupancy() <= cache.capacity_blocks

    @settings(max_examples=50, deadline=None)
    @given(accesses, st.sampled_from(["lru", "plru", "nmru", "rrip"]))
    def test_access_after_fill_hits(self, stream, policy):
        cache = Cache("T", 8 * BLOCK, 4, BLOCK, latency=1, policy=policy)
        for block_id, is_write in stream:
            address = block_id * BLOCK
            if not cache.access(address, is_write, 0):
                cache.fill(address, 0, dirty=is_write)
            assert cache.probe(address) >= 0  # just filled or hit

    @settings(max_examples=50, deadline=None)
    @given(accesses)
    def test_tag_map_matches_blocks(self, stream):
        cache = Cache("T", 8 * BLOCK, 4, BLOCK, latency=1)
        for block_id, is_write in stream:
            address = block_id * BLOCK
            if not cache.access(address, is_write, 0):
                cache.fill(address, 0)
            if block_id % 5 == 0:
                cache.invalidate(address)
        for set_index, blocks in enumerate(cache.sets):
            valid_tags = {b.tag for b in blocks if b.valid}
            assert valid_tags == set(cache._tags[set_index])

    @settings(max_examples=50, deadline=None)
    @given(accesses)
    def test_hits_plus_misses_equals_accesses(self, stream):
        cache = Cache("T", 8 * BLOCK, 4, BLOCK, latency=1)
        for block_id, is_write in stream:
            address = block_id * BLOCK
            if not cache.access(address, is_write, 0):
                cache.fill(address, 0)
        assert cache.stats.hits + cache.stats.misses == cache.stats.accesses


class TestReplacementInvariants:
    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(["lru", "plru", "nmru", "rrip"]),
           st.lists(st.tuples(st.integers(min_value=0, max_value=7),
                              st.sampled_from(["hit", "insert", "promote"])),
                    max_size=100))
    def test_eviction_order_always_permutation(self, policy_name, events):
        policy = make_policy(policy_name, 2, 8)
        for way, op in events:
            if op == "hit":
                policy.on_hit(0, way)
            elif op == "insert":
                policy.on_insert(0, way)
            else:
                policy.promote(0, way)
            assert sorted(policy.eviction_order(0)) == list(range(8))


class TestPinteConservation:
    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=2**16))
    def test_thefts_match_invalidations(self, p, seed):
        """Every induced invalidation of a workload block is exactly one
        recorded theft — the counter conservation law."""
        llc = Cache("LLC", 4 * 4 * BLOCK, 4, BLOCK, latency=1, policy="lru")
        tracker = ContentionTracker()
        engine = PInTE(PinteConfig(p_induce=p, seed=seed), llc, tracker)
        stride = BLOCK * llc.n_sets
        for i in range(100):
            set_index = i % llc.n_sets
            address = set_index * BLOCK + (i % llc.assoc) * stride
            if not llc.access(address, False, 0):
                llc.fill(address, 0)
            engine.on_llc_access(set_index, i, 0)
        assert tracker.counters(0).thefts_experienced == engine.stats.invalidations
        assert tracker.counters(0).induced_thefts == engine.stats.invalidations

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16))
    def test_trigger_count_bounded_by_accesses(self, seed):
        llc = Cache("LLC", 4 * 4 * BLOCK, 4, BLOCK, latency=1)
        engine = PInTE(PinteConfig(p_induce=0.5, seed=seed), llc,
                       ContentionTracker())
        for i in range(200):
            engine.on_llc_access(i % llc.n_sets, i, 0)
        assert engine.stats.triggers <= engine.stats.accesses_seen == 200
