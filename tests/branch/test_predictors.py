"""Unit tests for all branch predictors."""

import pytest

from repro.branch import PREDICTORS, make_predictor
from repro.branch.base import AlwaysTakenPredictor, BranchStats
from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GSharePredictor
from repro.branch.hashed_perceptron import HashedPerceptronPredictor
from repro.branch.perceptron import PerceptronPredictor
from repro.util.rng import DeterministicRng

ALL_NAMES = ["bimodal", "gshare", "perceptron", "hashed_perceptron"]


class TestRegistry:
    def test_make_all(self):
        for name in PREDICTORS:
            predictor = make_predictor(name)
            assert predictor.name == name

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown branch predictor"):
            make_predictor("oracle")


class TestStats:
    def test_accuracy_starts_at_one(self):
        assert BranchStats().accuracy == 1.0

    def test_accuracy_counts(self):
        predictor = AlwaysTakenPredictor()
        predictor.update(0x40, True)
        predictor.update(0x40, False)
        assert predictor.stats.lookups == 2
        assert predictor.stats.mispredictions == 1
        assert predictor.stats.accuracy == 0.5

    def test_reset(self):
        predictor = AlwaysTakenPredictor()
        predictor.update(0x40, False)
        predictor.stats.reset()
        assert predictor.stats.lookups == 0
        assert predictor.stats.accuracy == 1.0


@pytest.mark.parametrize("name", ALL_NAMES)
class TestLearning:
    def test_learns_constant_branch(self, name):
        predictor = make_predictor(name)
        for _ in range(200):
            predictor.update(0x400, True)
        predictor.stats.reset()
        for _ in range(100):
            predictor.update(0x400, True)
        assert predictor.stats.accuracy > 0.95

    def test_learns_never_taken(self, name):
        predictor = make_predictor(name)
        for _ in range(200):
            predictor.update(0x400, False)
        predictor.stats.reset()
        for _ in range(100):
            predictor.update(0x400, False)
        assert predictor.stats.accuracy > 0.95

    def test_update_returns_correctness(self, name):
        predictor = make_predictor(name)
        for _ in range(200):
            predictor.update(0x400, True)
        assert predictor.update(0x400, True) is True

    def test_random_branch_near_half(self, name):
        predictor = make_predictor(name)
        rng = DeterministicRng(3, name)
        outcomes = [rng.random() < 0.5 for _ in range(2000)]
        for taken in outcomes:
            predictor.update(0x400, taken)
        assert 0.35 < predictor.stats.accuracy < 0.65


class TestHistoryAdvantage:
    def test_history_predictors_learn_alternation(self):
        """A strict T/N/T/N pattern defeats bimodal but not gshare or the
        perceptrons — the case-study separation the paper relies on."""
        pattern = [True, False] * 500

        def accuracy(predictor):
            for taken in pattern:
                predictor.update(0x400, taken)
            predictor.stats.reset()
            for taken in pattern[:200]:
                predictor.update(0x400, taken)
            return predictor.stats.accuracy

        assert accuracy(BimodalPredictor()) < 0.7
        assert accuracy(GSharePredictor()) > 0.9
        assert accuracy(PerceptronPredictor()) > 0.9
        assert accuracy(HashedPerceptronPredictor()) > 0.9

    def test_correlated_branches(self):
        """gshare exploits correlation between two branch sites: branch B
        always repeats branch A's (random) outcome, so history-indexed
        counters predict B near-perfectly while bimodal cannot."""
        def run(predictor) -> float:
            rng = DeterministicRng(5)
            for _ in range(2000):
                first = rng.random() < 0.5
                predictor.update(0x100, first)
                predictor.update(0x200, first)  # perfectly correlated
            predictor.stats.reset()
            rng2 = DeterministicRng(6)
            correct = total = 0
            for _ in range(500):
                first = rng2.random() < 0.5
                predictor.update(0x100, first)
                correct += predictor.update(0x200, first)
                total += 1
            return correct / total

        assert run(GSharePredictor()) > run(BimodalPredictor()) + 0.2


class TestBimodal:
    def test_hysteresis(self):
        """One contrary outcome must not flip a saturated counter."""
        predictor = BimodalPredictor()
        for _ in range(10):
            predictor.update(0x40, True)
        predictor.update(0x40, False)  # single not-taken
        assert predictor.predict(0x40) is True

    def test_table_size_validation(self):
        with pytest.raises(ValueError):
            BimodalPredictor(table_size=1000)  # not a power of two

    def test_aliasing_shares_counters(self):
        predictor = BimodalPredictor(table_size=16)
        pc_a = 0x40
        pc_b = pc_a + 16 * 4  # same index after >>2 fold
        for _ in range(10):
            predictor.update(pc_a, True)
        assert predictor.predict(pc_b) is True


class TestPerceptron:
    def test_threshold_formula(self):
        predictor = PerceptronPredictor(history_bits=24)
        assert predictor.threshold == int(1.93 * 24 + 14)

    def test_weights_saturate(self):
        predictor = PerceptronPredictor(n_perceptrons=64, history_bits=4,
                                        weight_bits=4)
        for _ in range(1000):
            predictor.update(0x40, True)
        weights = predictor._weights[predictor._index(0x40)]
        assert all(-8 <= w <= 7 for w in weights)


class TestHashedPerceptron:
    def test_multiple_history_lengths(self):
        predictor = HashedPerceptronPredictor()
        assert len(predictor.history_lengths) == len(predictor._tables)

    def test_weights_saturate(self):
        predictor = HashedPerceptronPredictor(table_size=64, weight_bits=4)
        for _ in range(1000):
            predictor.update(0x40, True)
        for table in predictor._tables:
            assert all(-8 <= w <= 7 for w in table)
