"""Unit tests for the tournament predictor extension."""

from repro.branch import make_predictor
from repro.branch.tournament import TournamentPredictor
from repro.util.rng import DeterministicRng


class TestBasics:
    def test_registry(self):
        assert make_predictor("tournament").name == "tournament"

    def test_learns_biased_branch(self):
        predictor = TournamentPredictor()
        for _ in range(200):
            predictor.update(0x400, True)
        predictor.stats.reset()
        for _ in range(100):
            predictor.update(0x400, True)
        assert predictor.stats.accuracy > 0.95

    def test_learns_alternation_via_gshare(self):
        predictor = TournamentPredictor()
        pattern = [True, False] * 400
        for taken in pattern:
            predictor.update(0x400, taken)
        predictor.stats.reset()
        for taken in pattern[:200]:
            predictor.update(0x400, taken)
        assert predictor.stats.accuracy > 0.9


class TestChooser:
    def test_chooser_moves_to_global_on_history_patterns(self):
        predictor = TournamentPredictor()
        # Alternating branch: bimodal oscillates, gshare nails it -> chooser
        # must migrate toward the global side.
        for i in range(2000):
            predictor.update(0x400, i % 2 == 0)
        index = predictor._index(0x400)
        assert predictor._chooser[index] >= 2

    def test_chooser_stays_local_for_biased_branch(self):
        predictor = TournamentPredictor()
        # Both components agree on a heavily biased branch; the chooser only
        # trains on disagreement, so it stays near its initial local lean.
        for _ in range(500):
            predictor.update(0x400, True)
        index = predictor._index(0x400)
        assert predictor._chooser[index] <= 2

    def test_components_trained(self):
        predictor = TournamentPredictor()
        for _ in range(100):
            predictor.update(0x400, True)
        assert predictor.bimodal.predict(0x400) is True
        assert predictor.gshare.predict(0x400) is True

    def test_beats_bimodal_on_mixed_workload(self):
        tournament = TournamentPredictor()
        bimodal = make_predictor("bimodal")
        rng = DeterministicRng(9)
        # Site A: biased; site B: alternating (history-predictable).
        outcomes = []
        flip = True
        for _ in range(1500):
            outcomes.append((0x100, rng.random() < 0.95))
            flip = not flip
            outcomes.append((0x200, flip))
        for pc, taken in outcomes:
            tournament.update(pc, taken)
            bimodal.update(pc, taken)
        assert tournament.stats.accuracy > bimodal.stats.accuracy
