"""Tests for the unified component registry (:mod:`repro.components`)."""

import inspect

import pytest

from repro.components import (
    ComponentRegistry,
    ComponentSpec,
    UnknownComponentError,
    load_plugin,
)


class Widget:
    """A widget with a seed and one tunable knob."""

    name = "widget"
    spec_constraints = {"min_level_blocks": 8}

    def __init__(self, n_sets, n_ways, depth=3, seed=0):
        self.args = (n_sets, n_ways, depth, seed)


class Gadget:
    """A gadget with no seed and no tunables."""

    def __init__(self, n_sets, n_ways):
        self.args = (n_sets, n_ways)


class TestMappingInterface:
    def make(self):
        return ComponentRegistry("gizmo", {"widget": Widget,
                                           "gadget": Gadget})

    def test_getitem_contains_len_iter(self):
        registry = self.make()
        assert registry["widget"] is Widget
        assert "gadget" in registry and "bogus" not in registry
        assert len(registry) == 2
        assert list(registry) == ["widget", "gadget"]  # insertion order
        assert sorted(registry) == ["gadget", "widget"]

    def test_items_and_names(self):
        registry = self.make()
        assert dict(registry.items()) == {"widget": Widget, "gadget": Gadget}
        assert registry.names() == ("gadget", "widget")  # sorted

    def test_unknown_name_is_keyerror_subclass(self):
        registry = self.make()
        with pytest.raises(KeyError):
            registry["bogus"]
        with pytest.raises(UnknownComponentError):
            registry.spec("bogus")

    def test_error_message_shape(self):
        registry = self.make()
        with pytest.raises(UnknownComponentError) as excinfo:
            registry["widgot"]
        message = str(excinfo.value)
        # Clean one-liner (KeyError would repr-quote it), known names
        # sorted, did-you-mean candidates from difflib.
        assert message == ("unknown gizmo 'widgot'; known: gadget, widget "
                           "(did you mean 'widget'?)")

    def test_error_without_close_match(self):
        registry = self.make()
        with pytest.raises(UnknownComponentError) as excinfo:
            registry["zzz"]
        assert "did you mean" not in str(excinfo.value)


class TestRegistration:
    def test_duplicate_name_rejected(self):
        registry = ComponentRegistry("gizmo", {"widget": Widget})
        with pytest.raises(ValueError, match="duplicate gizmo name"):
            registry.add("widget", Gadget)

    def test_register_bare_decorator_uses_name_attribute(self):
        registry = ComponentRegistry("gizmo")
        returned = registry.register(Widget)
        assert returned is Widget
        assert registry["widget"] is Widget

    def test_register_positional_name(self):
        registry = ComponentRegistry("gizmo")

        @registry.register("thing")
        class Thing:
            pass

        assert registry["thing"] is Thing

    def test_register_keyword_name_and_overrides(self):
        registry = ComponentRegistry("gizmo")

        @registry.register(name="g", constraints={"k": 1}, summary="custom")
        class G:
            """Docstring that the summary override beats."""

        spec = registry.spec("g")
        assert spec.constraints == {"k": 1}
        assert spec.summary == "custom"

    def test_register_falls_back_to_dunder_name(self):
        registry = ComponentRegistry("gizmo")

        @registry.register
        class Fresh:
            pass

        assert "Fresh" in registry

    def test_name_given_twice_rejected(self):
        registry = ComponentRegistry("gizmo")
        with pytest.raises(ValueError, match="twice"):
            registry.register("a", name="b")


class TestSpecIntrospection:
    def test_capabilities_from_signature(self):
        registry = ComponentRegistry("gizmo", {"widget": Widget,
                                               "gadget": Gadget})
        widget = registry.spec("widget")
        assert widget.accepts_seed
        assert widget.accepts_params  # depth is tunable beyond seed
        assert widget.params == ("n_sets", "n_ways", "depth", "seed")
        assert widget.tunable_params == ("depth", "seed")
        assert widget.constraints == {"min_level_blocks": 8}
        assert widget.summary == "A widget with a seed and one tunable knob."
        gadget = registry.spec("gadget")
        assert not gadget.accepts_seed
        assert not gadget.accepts_params
        assert gadget.constraints == {}

    def test_non_callable_components_have_no_params(self):
        registry = ComponentRegistry("thing", {"x": object()},
                                     describe=lambda c: "an instance")
        spec = registry.spec("x")
        assert spec.params == () and spec.tunable_params == ()
        assert spec.summary == "an instance"

    def test_specs_in_registration_order(self):
        registry = ComponentRegistry("gizmo", {"widget": Widget,
                                               "gadget": Gadget})
        assert [spec.name for spec in registry.specs()] == [
            "widget", "gadget"]
        assert all(isinstance(spec, ComponentSpec)
                   for spec in registry.specs())


class TestCapabilityDrift:
    """Satellite: registry metadata must match the real constructors.

    ``SEEDED_POLICIES`` used to be a hand-maintained frozenset that could
    silently drift from the constructors; now it is introspected, and this
    test pins the introspection to ``inspect.signature`` ground truth for
    every built-in registry.
    """

    def test_all_registry_specs_match_signatures(self):
        from repro.configs import iter_registries

        checked = 0
        for registry in iter_registries():
            for spec in registry.specs():
                if not callable(spec.component):
                    continue
                parameters = [
                    p for p in
                    inspect.signature(spec.component).parameters.values()
                    if p.kind not in (inspect.Parameter.VAR_POSITIONAL,
                                      inspect.Parameter.VAR_KEYWORD)
                ]
                names = tuple(p.name for p in parameters)
                tunable = tuple(p.name for p in parameters
                                if p.default is not inspect.Parameter.empty)
                assert spec.params == names, spec.name
                assert spec.tunable_params == tunable, spec.name
                assert spec.accepts_seed == ("seed" in names), spec.name
                assert spec.accepts_params == bool(
                    set(tunable) - {"seed"}), spec.name
                checked += 1
        assert checked >= 30  # six registries' worth of components

    def test_seeded_policies_derived_not_hand_maintained(self):
        from repro.cache.replacement import POLICIES, SEEDED_POLICIES

        introspected = {
            spec.name for spec in POLICIES.specs() if spec.accepts_seed}
        assert SEEDED_POLICIES == introspected
        assert SEEDED_POLICIES == {"drrip", "nmru", "random"}

    def test_ip_stride_declares_geometry_constraint(self):
        from repro.prefetch import PREFETCHERS

        spec = PREFETCHERS.spec("ip_stride")
        assert spec.constraints["min_level_blocks"] == 64


class TestUnifiedErrors:
    """Satellite: every factory raises the same KeyError shape."""

    @pytest.mark.parametrize("raiser, fragment", [
        (lambda: __import__("repro.cache.replacement",
                            fromlist=["make_policy"])
         .make_policy("lruu", 4, 4), "unknown replacement policy 'lruu'"),
        (lambda: __import__("repro.prefetch", fromlist=["make_prefetcher"])
         .make_prefetcher("nextline", 64), "unknown prefetcher 'nextline'"),
        (lambda: __import__("repro.branch", fromlist=["make_predictor"])
         .make_predictor("gshear"), "unknown branch predictor 'gshear'"),
        (lambda: __import__("repro.trace.spec_models",
                            fromlist=["get_workload"])
         .get_workload("470.lbn"), "unknown workload '470.lbn'"),
        (lambda: __import__("repro.configs",
                            fromlist=["get_machine_config"])
         .get_machine_config("skylake2"), "unknown machine config"),
    ])
    def test_factory_raises_unified_shape(self, raiser, fragment):
        with pytest.raises(UnknownComponentError) as excinfo:
            raiser()
        message = str(excinfo.value)
        assert message.startswith(fragment)
        assert "known:" in message
        assert "did you mean" in message

    def test_partitioner_factory_unified(self):
        from repro.cache.partition import make_partitioner

        with pytest.raises(UnknownComponentError, match="partition scheme"):
            make_partitioner("upc", 64, 16, owners=(0, 1))


class TestLoadPlugin:
    def test_loads_example_plugin_file_and_caches(self):
        module = load_plugin("examples/plugin_policy.py")
        from repro.cache.replacement import POLICIES, make_policy

        assert "fifo" in POLICIES
        assert not POLICIES.spec("fifo").accepts_seed
        policy = make_policy("fifo", n_sets=2, n_ways=4)
        assert policy.eviction_order(0) == [0, 1, 2, 3]
        policy.on_insert(0, 0)
        assert policy.eviction_order(0) == [1, 2, 3, 0]
        # Second load returns the cached module: no duplicate registration.
        assert load_plugin("examples/plugin_policy.py") is module

    def test_missing_file_rejected(self):
        with pytest.raises(FileNotFoundError, match="no/such/plugin.py"):
            load_plugin("no/such/plugin.py")

    def test_dotted_module_path(self):
        import json

        assert load_plugin("json") is json
