"""Unit tests for the DRAM model."""

import pytest

from repro.dram import Dram, DramConfig


def make_dram(**kw):
    return Dram(DramConfig(**kw))


class TestConfig:
    def test_defaults_valid(self):
        DramConfig()

    def test_rejects_non_power_of_two_channels(self):
        with pytest.raises(ValueError):
            DramConfig(channels=3)

    def test_rejects_non_positive_latency(self):
        with pytest.raises(ValueError):
            DramConfig(row_hit_latency=0)

    def test_halved(self):
        halved = DramConfig(channels=2, banks_per_channel=8,
                            service_cycles=18).halved()
        assert halved.channels == 1
        assert halved.banks_per_channel == 4
        assert halved.service_cycles == 36

    def test_halved_floors_at_one(self):
        halved = DramConfig(channels=1, banks_per_channel=1).halved()
        assert halved.channels == 1
        assert halved.banks_per_channel == 1


class TestRowBuffer:
    def test_first_access_is_row_miss(self):
        dram = make_dram()
        dram.access(0x10000, 0)
        assert dram.stats.row_misses == 1

    def test_same_row_hits(self):
        dram = make_dram()
        dram.access(0x10000, 0)
        dram.access(0x10000, 1000)
        assert dram.stats.row_hits == 1

    def test_different_row_same_bank_conflicts(self):
        config = DramConfig(channels=1, banks_per_channel=1, row_bytes=8192)
        dram = Dram(config)
        dram.access(0x0, 0)
        dram.access(0x10000, 10000)  # different row, only one bank
        assert dram.stats.row_conflicts == 1

    def test_hit_faster_than_conflict(self):
        config = DramConfig(channels=1, banks_per_channel=1)
        dram = Dram(config)
        dram.access(0x0, 0)
        hit_latency = dram.access(0x0, 100000)
        conflict_latency = dram.access(0x100000, 200000)
        assert hit_latency < conflict_latency


class TestQueueing:
    def test_back_to_back_requests_queue(self):
        dram = make_dram(channels=1)
        dram.access(0x10000, 0)
        second = dram.access(0x10000, 0)  # same instant -> waits for service
        # Second request pays the channel service delay on top of a row hit.
        assert second >= dram.config.service_cycles + dram.config.row_hit_latency
        assert dram.stats.queue_cycles == dram.config.service_cycles

    def test_spaced_requests_do_not_queue(self):
        dram = make_dram(channels=1)
        dram.access(0x10000, 0)
        dram.access(0x10000, 100000)
        assert dram.stats.queue_cycles == 0

    def test_channels_independent(self):
        dram = make_dram(channels=2)
        # Blocks interleave across channels at block granularity.
        dram.access(0 * 64, 0)
        dram.access(1 * 64, 0)  # other channel, no queueing
        assert dram.stats.queue_cycles == 0


class TestStats:
    def test_read_write_split(self):
        dram = make_dram()
        dram.access(0x0, 0, is_write=False)
        dram.access(0x40, 0, is_write=True)
        assert dram.stats.reads == 1
        assert dram.stats.writes == 1
        assert dram.stats.accesses == 2

    def test_average_latency(self):
        dram = make_dram()
        assert dram.stats.average_latency == 0.0
        dram.access(0x0, 0)
        assert dram.stats.average_latency > 0
