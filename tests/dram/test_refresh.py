"""Tests for DRAM refresh modelling."""

import pytest

from repro.dram import Dram, DramConfig


def refresh_dram(interval=10_000, refresh=160, **kw):
    return Dram(DramConfig(refresh_interval_cycles=interval,
                           refresh_cycles=refresh, **kw))


class TestConfig:
    def test_disabled_by_default(self):
        assert DramConfig().refresh_interval_cycles == 0

    def test_window_must_fit_period(self):
        with pytest.raises(ValueError):
            DramConfig(refresh_interval_cycles=100, refresh_cycles=100)

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            DramConfig(refresh_interval_cycles=-1)


class TestRefreshBehaviour:
    def test_access_during_refresh_stalls(self):
        dram = refresh_dram()
        # Arrival inside the refresh window at the start of an epoch.
        latency = dram.access(0x1000, 10_050)
        assert latency >= (160 - 50) + dram.config.row_miss_latency
        assert dram.stats.refresh_stalls == 1

    def test_access_outside_refresh_unaffected(self):
        with_refresh = refresh_dram()
        without = Dram(DramConfig())
        assert (with_refresh.access(0x1000, 5_000)
                == without.access(0x1000, 5_000))
        assert with_refresh.stats.refresh_stalls == 0

    def test_refresh_closes_open_row(self):
        dram = refresh_dram()
        dram.access(0x1000, 1_000)   # opens the row
        dram.access(0x1000, 5_000)   # row hit within the same epoch
        assert dram.stats.row_hits == 1
        dram.access(0x1000, 12_000)  # next epoch: refresh closed the row
        assert dram.stats.row_hits == 1
        assert dram.stats.row_misses >= 2

    def test_refresh_tax_accumulates(self):
        """Random accesses over many epochs hit refresh windows at roughly
        the duty-cycle rate."""
        dram = refresh_dram(interval=1_000, refresh=100)
        hits = 0
        for i in range(200):
            cycle = i * 1137  # phases step by 137, sampling the whole period
            before = dram.stats.refresh_stalls
            dram.access((i * 64) & 0x3FFFF, cycle)
            hits += dram.stats.refresh_stalls - before
        assert 5 <= hits <= 60  # ~10% duty cycle, loosely

    def test_disabled_refresh_never_stalls(self):
        dram = Dram(DramConfig())
        for i in range(50):
            dram.access(i * 64, i * 100)
        assert dram.stats.refresh_stalls == 0
