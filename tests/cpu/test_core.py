"""Unit tests for the cycle-accounting core model."""

import pytest

from repro.cache.hierarchy import MemoryHierarchy
from repro.config import scaled_config
from repro.cpu import Core
from repro.trace.record import TraceRecord

CFG = scaled_config()


def make_core(config=CFG):
    hierarchy = MemoryHierarchy(config, 0, registry={})
    return Core(config.core, hierarchy)


class TestBasicAccounting:
    def test_alu_instructions_cost_issue_slots(self):
        core = make_core()
        for i in range(400):
            core.execute(TraceRecord(0x400000 + (i % 16) * 4))
        # 400 instructions at width 4 = ~100 cycles + one I-fetch miss.
        assert core.stats.instructions == 400
        assert core.cycle < 400
        assert core.ipc > 1.0

    def test_ipc_zero_before_running(self):
        assert make_core().ipc == 0.0

    def test_load_miss_stalls(self):
        core = make_core()
        baseline = make_core()
        for i in range(200):
            baseline.execute(TraceRecord(0x400000))
            core.execute(TraceRecord(0x400000,
                                     load_addr=0x100000000 + i * 4096))
        assert core.cycle > baseline.cycle
        assert core.stats.loads == 200

    def test_dependent_load_stalls_more(self):
        independent = make_core()
        dependent = make_core()
        for i in range(200):
            address = 0x100000000 + i * 4096
            independent.execute(TraceRecord(0x400000, load_addr=address))
            dependent.execute(TraceRecord(0x400000, load_addr=address,
                                          dependent=True))
        assert dependent.cycle > independent.cycle

    def test_store_miss_charged_less_than_load_miss(self):
        """A single store miss stalls the core less than a single load miss
        (stores retire through the write buffer)."""
        loads = make_core()
        stores = make_core()
        loads.execute(TraceRecord(0x400000, load_addr=0x100000000))
        stores.execute(TraceRecord(0x400000, store_addr=0x100000000))
        assert stores.cycle < loads.cycle

    def test_l1_hits_are_cheap(self):
        core = make_core()
        core.execute(TraceRecord(0x400000, load_addr=0x100000000))
        start = core.cycle
        for _ in range(100):
            core.execute(TraceRecord(0x400000, load_addr=0x100000000))
        # 100 L1-hit loads should cost ~issue bandwidth only.
        assert core.cycle - start < 100


class TestBranches:
    def test_mispredict_penalty(self):
        core = make_core()
        # Unpredictable alternation against a fresh bimodal-ish predictor
        # costs flush penalties; a perfectly-biased branch does not.
        biased = make_core()
        for i in range(500):
            core.execute(TraceRecord(0x400000, is_branch=True, taken=i % 2 == 0))
            biased.execute(TraceRecord(0x400000, is_branch=True, taken=True))
        assert core.cycle > biased.cycle
        assert core.stats.branches == 500

    def test_branch_stats_flow_to_predictor(self):
        core = make_core()
        for _ in range(50):
            core.execute(TraceRecord(0x400000, is_branch=True, taken=True))
        assert core.predictor.stats.lookups == 50


class TestAmat:
    def test_amat_counts_loads_and_stores(self):
        core = make_core()
        core.execute(TraceRecord(0x400000, load_addr=0x100000000))
        core.execute(TraceRecord(0x400000, store_addr=0x100000040))
        assert core.stats.mem_accesses == 2
        assert core.stats.amat > 0

    def test_amat_zero_without_memory(self):
        core = make_core()
        core.execute(TraceRecord(0x400000))
        assert core.stats.amat == 0.0

    def test_amat_approaches_l1_latency_on_hits(self):
        core = make_core()
        for _ in range(500):
            core.execute(TraceRecord(0x400000, load_addr=0x100000000))
        assert core.stats.amat < CFG.l1d.latency * 1.5


class TestInstructionFetch:
    def test_fetch_once_per_block(self):
        core = make_core()
        for _ in range(10):
            core.execute(TraceRecord(0x400000))  # same block every time
        assert core.hierarchy.l1i.stats.accesses == 1

    def test_fetch_on_block_change(self):
        core = make_core()
        core.execute(TraceRecord(0x400000))
        core.execute(TraceRecord(0x400040))  # next 64B block
        assert core.hierarchy.l1i.stats.accesses == 2

    def test_clock_is_monotonic(self):
        core = make_core()
        last = 0
        for i in range(200):
            core.execute(TraceRecord(0x400000 + (i % 64) * 4,
                                     load_addr=0x100000000 + i * 64))
            assert core.cycle >= last
            last = core.cycle
