"""Tests for the CPI-stack breakdown."""

import pytest

from repro.cache.hierarchy import MemoryHierarchy
from repro.config import scaled_config
from repro.cpu import Core
from repro.sim import simulate
from repro.trace import TraceRecord, build_trace, get_workload

CFG = scaled_config()


def make_core():
    return Core(CFG.core, MemoryHierarchy(CFG, 0, registry={}))


class TestComponents:
    def test_stack_sums_to_cpi(self):
        core = make_core()
        for i in range(400):
            core.execute(TraceRecord(0x400000 + (i % 64) * 4,
                                     load_addr=0x100000000 + i * 256,
                                     is_branch=(i % 7 == 0), taken=True))
        stack = core.stats.cpi_stack()
        cpi = core.cycle / core.stats.instructions
        assert sum(stack.values()) == pytest.approx(cpi, rel=0.01)

    def test_alu_only_is_pure_base(self):
        core = make_core()
        for _ in range(100):
            core.execute(TraceRecord(0x400000))
        stack = core.stats.cpi_stack()
        assert stack["base"] == pytest.approx(0.25)
        assert stack["load"] == 0.0
        assert stack["branch"] == 0.0

    def test_load_stalls_attributed(self):
        core = make_core()
        for i in range(100):
            core.execute(TraceRecord(0x400000,
                                     load_addr=0x100000000 + i * 4096))
        assert core.stats.cpi_stack()["load"] > 1.0

    def test_branch_stalls_attributed(self):
        core = make_core()
        for i in range(400):
            core.execute(TraceRecord(0x400000, is_branch=True,
                                     taken=i % 2 == 0))
        assert core.stats.cpi_stack()["branch"] > 0.0

    def test_empty_stack(self):
        stack = make_core().stats.cpi_stack()
        assert all(value == 0.0 for value in stack.values())


class TestResultIntegration:
    def test_cpi_stack_in_result_extra(self, config, gromacs_trace):
        result = simulate(gromacs_trace, config, warmup_instructions=500,
                          sim_instructions=3_000)
        components = {k: v for k, v in result.extra.items()
                      if k.startswith("cpi_")}
        assert set(components) == {"cpi_base", "cpi_fetch", "cpi_load",
                                   "cpi_store", "cpi_branch"}
        total_cpi = result.cycles / result.instructions
        assert sum(components.values()) == pytest.approx(total_cpi, rel=0.01)

    def test_contention_grows_load_component(self, config):
        from repro.core import PinteConfig

        trace = build_trace(get_workload("470.lbm"), 8_000, 1,
                            config.llc.size)
        isolation = simulate(trace, config, warmup_instructions=2_000,
                             sim_instructions=6_000)
        contended = simulate(trace, config, pinte=PinteConfig(0.8),
                             warmup_instructions=2_000,
                             sim_instructions=6_000)
        assert contended.extra["cpi_load"] > isolation.extra["cpi_load"]
        # Base component is contention-invariant.
        assert contended.extra["cpi_base"] == pytest.approx(
            isolation.extra["cpi_base"])