"""Unit tests for repro.util.bitops."""

import pytest

from repro.util.bitops import (
    block_address,
    block_offset,
    ceil_div,
    fold_xor,
    ilog2,
    is_power_of_two,
)


class TestIsPowerOfTwo:
    def test_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_non_powers(self):
        for value in (0, 3, 5, 6, 7, 9, 12, 100, 1000):
            assert not is_power_of_two(value)

    def test_negative(self):
        assert not is_power_of_two(-4)


class TestIlog2:
    def test_round_trip(self):
        for exponent in range(24):
            assert ilog2(1 << exponent) == exponent

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            ilog2(12)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ilog2(0)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert ceil_div(9, 4) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 4) == 0

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)


class TestBlockAddressing:
    def test_block_address_aligns_down(self):
        assert block_address(0x1234, 64) == 0x1200

    def test_block_address_identity_when_aligned(self):
        assert block_address(0x1200, 64) == 0x1200

    def test_offset(self):
        assert block_offset(0x1234, 64) == 0x34

    def test_address_splits_into_block_and_offset(self):
        address = 0xDEADBEEF
        assert block_address(address, 64) + block_offset(address, 64) == address


class TestFoldXor:
    def test_small_value_unchanged(self):
        assert fold_xor(0b101, 4) == 0b101

    def test_folds_high_bits(self):
        # 0b1_0000 folded to 4 bits: high bit XORs into position 0.
        assert fold_xor(0b10000, 4) == 0b0001

    def test_zero(self):
        assert fold_xor(0, 8) == 0

    def test_result_fits_in_bits(self):
        for value in (0xFFFF, 0x12345678, 0xDEADBEEF):
            assert fold_xor(value, 10) < (1 << 10)

    def test_rejects_non_positive_bits(self):
        with pytest.raises(ValueError):
            fold_xor(5, 0)
