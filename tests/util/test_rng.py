"""Unit tests for the deterministic RNG."""

from repro.util.rng import MAX_RANDOM, DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42, "x")
        b = DeterministicRng(42, "x")
        assert [a.random() for _ in range(50)] == [b.random() for _ in range(50)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1, "x")
        b = DeterministicRng(2, "x")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_different_salts_differ(self):
        a = DeterministicRng(1, "x")
        b = DeterministicRng(1, "y")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


class TestTriggerRatio:
    def test_in_unit_interval(self):
        rng = DeterministicRng(7)
        for _ in range(1000):
            ratio = rng.trigger_ratio()
            assert 0.0 <= ratio <= 1.0

    def test_matches_eq2_form(self):
        """The ratio is rand/MAX_RANDOM, so it is a multiple of 1/MAX_RANDOM."""
        rng = DeterministicRng(7)
        ratio = rng.trigger_ratio()
        reconstructed = round(ratio * MAX_RANDOM) / MAX_RANDOM
        assert abs(ratio - reconstructed) < 1e-12

    def test_roughly_uniform(self):
        rng = DeterministicRng(11)
        n = 5000
        mean = sum(rng.trigger_ratio() for _ in range(n)) / n
        assert 0.45 < mean < 0.55


class TestDraws:
    def test_randint_bounds_inclusive(self):
        rng = DeterministicRng(3)
        values = {rng.randint(0, 3) for _ in range(200)}
        assert values == {0, 1, 2, 3}

    def test_choice(self):
        rng = DeterministicRng(3)
        items = ["a", "b", "c"]
        assert all(rng.choice(items) in items for _ in range(20))

    def test_shuffle_is_permutation(self):
        rng = DeterministicRng(3)
        items = list(range(20))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # vanishingly unlikely for 20 elements

    def test_draw_counter(self):
        rng = DeterministicRng(5)
        rng.random()
        rng.randint(0, 1)
        rng.trigger_ratio()
        assert rng.draws == 3


class TestFork:
    def test_fork_is_independent(self):
        parent = DeterministicRng(9, "p")
        child = parent.fork("c")
        before = [child.random() for _ in range(5)]
        # Draining the parent must not affect a fresh fork's stream.
        parent2 = DeterministicRng(9, "p")
        for _ in range(100):
            parent2.random()
        child2 = parent2.fork("c")
        assert before == [child2.random() for _ in range(5)]

    def test_fork_salt_chains(self):
        rng = DeterministicRng(9, "a")
        assert rng.fork("b").salt == "a/b"
