"""Unit tests for machine configurations."""

import pytest

from repro.config import (
    CacheLevelConfig,
    CoreConfig,
    MachineConfig,
    scaled_config,
    skylake_config,
    xeon_config,
)


class TestPresets:
    def test_skylake_matches_paper(self):
        """Section III-A: 4 MB / 16-way LLC, non-inclusive, 2-channel DRAM."""
        config = skylake_config()
        assert config.llc.size == 4 * 1024 * 1024
        assert config.llc.assoc == 16
        assert config.inclusion == "non-inclusive"
        assert config.dram.channels == 2

    def test_scaled_preserves_associativities(self):
        scaled = scaled_config()
        skylake = skylake_config()
        assert scaled.llc.assoc == skylake.llc.assoc
        assert scaled.l1d.assoc == skylake.l1d.assoc

    def test_scaled_prefetch_string(self):
        config = scaled_config("NNI")
        assert config.l1d.prefetcher == "next_line"
        assert config.l2.prefetcher == "ip_stride"

    def test_xeon_has_rdt_cap(self):
        config = xeon_config()
        assert config.llc_way_allocation is not None
        assert config.llc_way_allocation < config.llc.assoc

    def test_xeon_dram_halved(self):
        assert xeon_config().dram.channels == 1


class TestValidation:
    def test_bad_cache_level(self):
        with pytest.raises(ValueError):
            CacheLevelConfig(size=0, assoc=4, latency=1)

    def test_bad_issue_width(self):
        with pytest.raises(ValueError):
            CoreConfig(issue_width=0)

    def test_bad_mlp(self):
        with pytest.raises(ValueError):
            CoreConfig(mlp=0.5)

    def test_bad_inclusion(self):
        with pytest.raises(ValueError):
            MachineConfig(name="x", inclusion="partial")

    def test_bad_allocation(self):
        with pytest.raises(ValueError):
            MachineConfig(name="x", llc_way_allocation=100)


class TestDerivation:
    def test_with_llc_policy(self):
        config = scaled_config().with_llc_policy("nmru")
        assert config.llc.policy == "nmru"
        assert scaled_config().llc.policy == "rrip"  # original untouched

    def test_with_inclusion(self):
        assert scaled_config().with_inclusion("exclusive").inclusion == "exclusive"

    def test_with_branch_predictor(self):
        config = scaled_config().with_branch_predictor("bimodal")
        assert config.core.branch_predictor == "bimodal"

    def test_with_prefetch_string_resets(self):
        config = scaled_config("NNI").with_prefetch_string("000")
        assert config.l1d.prefetcher == "none"
        assert config.l2.prefetcher == "none"

    def test_derivations_chain(self):
        config = (scaled_config()
                  .with_llc_policy("lru")
                  .with_inclusion("inclusive")
                  .with_prefetch_string("NN0")
                  .with_branch_predictor("gshare"))
        assert config.llc.policy == "lru"
        assert config.inclusion == "inclusive"
        assert config.l1d.prefetcher == "next_line"
        assert config.core.branch_predictor == "gshare"
