"""Unit tests for the prefetchers and the prefetch-string decoder."""

import pytest

from repro.prefetch import (
    PAPER_PREFETCH_STRINGS,
    PREFETCHERS,
    make_prefetcher,
    prefetch_string_config,
)
from repro.prefetch.base import NullPrefetcher
from repro.prefetch.ip_stride import IpStridePrefetcher
from repro.prefetch.next_line import NextLinePrefetcher

BLOCK = 64


class TestRegistry:
    def test_all_constructible(self):
        for name in PREFETCHERS:
            assert make_prefetcher(name).name == name

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown prefetcher"):
            make_prefetcher("markov")

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)


class TestPrefetchStrings:
    def test_paper_strings_decode(self):
        assert prefetch_string_config("000") == ("none", "none", "none")
        assert prefetch_string_config("NN0") == ("next_line", "next_line", "none")
        assert prefetch_string_config("NNN") == ("next_line", "next_line", "next_line")
        assert prefetch_string_config("NNI") == ("next_line", "next_line", "ip_stride")

    def test_all_paper_strings_valid(self):
        for string in PAPER_PREFETCH_STRINGS:
            assert len(prefetch_string_config(string)) == 3

    def test_bad_length(self):
        with pytest.raises(ValueError, match="3 characters"):
            prefetch_string_config("NN")

    def test_bad_character(self):
        with pytest.raises(ValueError, match="bad prefetch character"):
            prefetch_string_config("NNX")


class TestNull:
    def test_never_prefetches(self):
        prefetcher = NullPrefetcher()
        assert prefetcher.on_access(0x400, 0x1000, True) == []
        assert prefetcher.stats.issued == 0


class TestNextLine:
    def test_next_block(self):
        prefetcher = NextLinePrefetcher(block_size=BLOCK)
        assert prefetcher.on_access(0x400, 0x1000, False) == [0x1000 + BLOCK]

    def test_degree(self):
        prefetcher = NextLinePrefetcher(block_size=BLOCK, degree=3)
        assert prefetcher.on_access(0x400, 0x1000, False) == [
            0x1000 + BLOCK, 0x1000 + 2 * BLOCK, 0x1000 + 3 * BLOCK
        ]

    def test_issued_counter(self):
        prefetcher = NextLinePrefetcher(block_size=BLOCK, degree=2)
        prefetcher.on_access(0x400, 0x1000, True)
        prefetcher.on_access(0x400, 0x2000, True)
        assert prefetcher.stats.issued == 4

    def test_accuracy_zero_before_use(self):
        assert NextLinePrefetcher().stats.accuracy == 0.0


class TestIpStride:
    def test_learns_stride_after_confidence(self):
        prefetcher = IpStridePrefetcher(block_size=BLOCK, degree=1)
        pc = 0x400
        # Stride of 2 blocks: accesses at block 0, 2, 4, 6...
        results = [prefetcher.on_access(pc, i * 2 * BLOCK, False) for i in range(5)]
        assert results[0] == []  # table miss
        assert results[1] == []  # confidence 0
        # After 2 confirming strides, prefetch fires 1 stride ahead.
        fired = [r for r in results if r]
        assert fired
        last = results[-1]
        assert last == [(8 + 2) * BLOCK]

    def test_no_prefetch_on_zero_stride(self):
        prefetcher = IpStridePrefetcher(block_size=BLOCK)
        pc = 0x400
        for _ in range(6):
            assert prefetcher.on_access(pc, 0x1000, False) == []

    def test_stride_change_resets_confidence(self):
        prefetcher = IpStridePrefetcher(block_size=BLOCK, degree=1)
        pc = 0x400
        for i in range(4):
            prefetcher.on_access(pc, i * BLOCK, False)
        assert prefetcher.on_access(pc, 100 * BLOCK, False) == []  # break
        assert prefetcher.on_access(pc, 101 * BLOCK, False) == []  # rebuild

    def test_independent_pcs(self):
        prefetcher = IpStridePrefetcher(block_size=BLOCK, degree=1)
        for i in range(5):
            prefetcher.on_access(0x400, i * BLOCK, False)
            prefetcher.on_access(0x800, i * 3 * BLOCK, False)
        a = prefetcher.on_access(0x400, 5 * BLOCK, False)
        b = prefetcher.on_access(0x800, 15 * BLOCK, False)
        assert a == [6 * BLOCK]
        assert b == [18 * BLOCK]

    def test_table_eviction(self):
        prefetcher = IpStridePrefetcher(block_size=BLOCK, table_size=2)
        prefetcher.on_access(0x100, 0, False)
        prefetcher.on_access(0x200, 0, False)
        prefetcher.on_access(0x300, 0, False)  # evicts 0x100
        assert len(prefetcher._table) == 2
        assert 0x100 not in prefetcher._table

    def test_degree_two(self):
        prefetcher = IpStridePrefetcher(block_size=BLOCK, degree=2)
        pc = 0x400
        for i in range(5):
            result = prefetcher.on_access(pc, i * BLOCK, False)
        assert result == [5 * BLOCK, 6 * BLOCK]
