"""Unit tests for the stream prefetcher extension."""

import pytest

from repro.prefetch import make_prefetcher, prefetch_string_config
from repro.prefetch.stream import CONFIRM_THRESHOLD, StreamPrefetcher

BLOCK = 64


class TestDetection:
    def test_ascending_stream_confirmed(self):
        prefetcher = StreamPrefetcher(block_size=BLOCK, degree=2)
        results = [prefetcher.on_access(0x400, i * BLOCK, False)
                   for i in range(CONFIRM_THRESHOLD + 3)]
        assert results[-1]  # firing by the end
        last_block = CONFIRM_THRESHOLD + 2
        assert results[-1] == [(last_block + 1) * BLOCK, (last_block + 2) * BLOCK]

    def test_descending_stream_confirmed(self):
        prefetcher = StreamPrefetcher(block_size=BLOCK, degree=1)
        start = 100
        results = [prefetcher.on_access(0x400, (start - i) * BLOCK, False)
                   for i in range(CONFIRM_THRESHOLD + 3)]
        last_block = start - (CONFIRM_THRESHOLD + 2)
        assert results[-1] == [(last_block - 1) * BLOCK]

    def test_direction_flip_resets(self):
        prefetcher = StreamPrefetcher(block_size=BLOCK, degree=1)
        for i in range(5):
            prefetcher.on_access(0x400, i * BLOCK, False)
        assert prefetcher.on_access(0x400, 3 * BLOCK, False) == []  # reversed

    def test_same_block_reaccess_ignored(self):
        prefetcher = StreamPrefetcher(block_size=BLOCK)
        prefetcher.on_access(0x400, 0, False)
        assert prefetcher.on_access(0x400, 0, False) == []

    def test_independent_regions(self):
        prefetcher = StreamPrefetcher(block_size=BLOCK, degree=1)
        # Two streams far apart; each needs its own confirmation.
        for i in range(CONFIRM_THRESHOLD + 2):
            a = prefetcher.on_access(0x400, i * BLOCK, False)
            b = prefetcher.on_access(0x800, (10_000 + i) * BLOCK, False)
        assert a and b

    def test_stream_table_bounded(self):
        prefetcher = StreamPrefetcher(block_size=BLOCK, max_streams=4)
        for region in range(10):
            prefetcher.on_access(0x400, region * 1_000_000 * BLOCK, False)
        assert len(prefetcher._streams) <= 4


class TestIntegration:
    def test_registry(self):
        assert make_prefetcher("stream").name == "stream"

    def test_prefetch_string_s(self):
        assert prefetch_string_config("NNS") == ("next_line", "next_line",
                                                 "stream")

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            StreamPrefetcher(degree=0)
