"""Unit tests for Eq. 3 stability statistics."""

import pytest

from repro.analysis.stability import (
    median,
    normalised_std_dev,
    stability_by_metric,
    std_dev,
)


class TestStdDev:
    def test_constant_series(self):
        assert std_dev([2.0, 2.0, 2.0]) == 0.0

    def test_known_value(self):
        assert std_dev([1.0, 3.0]) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            std_dev([])


class TestNormalisedStdDev:
    def test_eq3(self):
        # mean 2, std 1 -> normalised 0.5
        assert normalised_std_dev([1.0, 3.0]) == pytest.approx(0.5)

    def test_scale_invariant(self):
        a = normalised_std_dev([1.0, 3.0])
        b = normalised_std_dev([100.0, 300.0])
        assert a == pytest.approx(b)

    def test_zero_mean_zero_spread(self):
        assert normalised_std_dev([0.0, 0.0]) == 0.0

    def test_zero_mean_nonzero_spread_rejected(self):
        with pytest.raises(ZeroDivisionError):
            normalised_std_dev([-1.0, 1.0])

    def test_negative_mean_uses_magnitude(self):
        assert normalised_std_dev([-1.0, -3.0]) == pytest.approx(0.5)


class TestStabilityByMetric:
    def test_per_metric(self):
        runs = [{"ipc": 1.0, "mr": 0.2}, {"ipc": 3.0, "mr": 0.2}]
        stability = stability_by_metric(runs)
        assert stability["ipc"] == pytest.approx(0.5)
        assert stability["mr"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stability_by_metric([])


class TestMedian:
    def test_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])
