"""Unit tests for metrics (weighted IPC, aggregation, boxplots)."""

import pytest

from repro.analysis.metrics import (
    average,
    boxplot_stats,
    geometric_mean,
    metric_value,
    summarise,
    weighted_ipc,
)
from repro.sim.results import SimulationResult


def result(name="w", ipc=1.0, mr=0.1, amat=10.0, mode="isolation"):
    return SimulationResult(trace_name=name, mode=mode, instructions=1000,
                            cycles=1000, ipc=ipc, miss_rate=mr, amat=amat)


class TestWeightedIpc:
    def test_eq1(self):
        contention = result(ipc=0.5, mode="pinte")
        isolation = result(ipc=1.0)
        assert weighted_ipc(contention, isolation) == 0.5

    def test_mismatched_workloads_rejected(self):
        with pytest.raises(ValueError, match="matching workloads"):
            weighted_ipc(result(name="a"), result(name="b"))

    def test_zero_isolation_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            weighted_ipc(result(ipc=0.5), result(ipc=0.0))


class TestMetricValue:
    def test_high_level_metrics(self):
        r = result(ipc=1.5, mr=0.2, amat=12.0)
        assert metric_value(r, "ipc") == 1.5
        assert metric_value(r, "miss_rate") == 0.2
        assert metric_value(r, "amat") == 12.0

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            metric_value(result(), "flops")


class TestAggregation:
    def test_average(self):
        assert average([1.0, 2.0, 3.0]) == 2.0

    def test_average_empty(self):
        assert average([]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_summarise(self):
        batch = [result(ipc=1.0, mr=0.1, amat=10.0),
                 result(ipc=2.0, mr=0.3, amat=20.0)]
        summary = summarise(batch)
        assert summary["ipc"] == 1.5
        assert summary["miss_rate"] == pytest.approx(0.2)
        assert summary["amat"] == 15.0


class TestBoxplot:
    def test_median_odd(self):
        stats = boxplot_stats([1.0, 2.0, 3.0])
        assert stats["median"] == 2.0

    def test_median_even(self):
        stats = boxplot_stats([1.0, 2.0, 3.0, 4.0])
        assert stats["median"] == 2.5

    def test_quartiles(self):
        stats = boxplot_stats(list(map(float, range(1, 101))))
        assert stats["q1"] == pytest.approx(25.75)
        assert stats["q3"] == pytest.approx(75.25)

    def test_outliers_detected(self):
        values = [1.0] * 20 + [100.0]
        stats = boxplot_stats(values)
        assert stats["outliers"] == 1
        assert stats["whisker_high"] == 1.0
        assert stats["max"] == 100.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            boxplot_stats([])

    def test_single_value(self):
        stats = boxplot_stats([5.0])
        assert stats["median"] == stats["min"] == stats["max"] == 5.0
