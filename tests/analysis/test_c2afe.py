"""Unit tests for C²AFE curve features."""

import pytest

from repro.analysis.c2afe import (
    curve_agreement,
    extract_features,
    knee_point,
    trend_slope,
)


FLAT = {0.0: 1.0, 0.25: 1.0, 0.5: 1.0, 0.75: 1.0, 1.0: 1.0}
LINEAR_DOWN = {0.0: 1.0, 0.25: 0.875, 0.5: 0.75, 0.75: 0.625, 1.0: 0.5}
KNEE_AT_HALF = {0.0: 1.0, 0.25: 1.0, 0.5: 0.95, 0.75: 0.5, 1.0: 0.2}


class TestTrend:
    def test_flat_curve_zero_slope(self):
        assert trend_slope(FLAT) == pytest.approx(0.0)

    def test_degrading_curve_negative(self):
        assert trend_slope(LINEAR_DOWN) == pytest.approx(-0.5)

    def test_improving_curve_positive(self):
        curve = {x: y for x, y in zip([0, 0.5, 1.0], [0.5, 0.75, 1.0])}
        assert trend_slope(curve) > 0

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            trend_slope({0.5: 1.0})


class TestKnee:
    def test_flat_curve_knee_at_start(self):
        assert knee_point(FLAT) == 0.0

    def test_linear_curve_no_interior_knee(self):
        # Every point lies on the chord; first x wins.
        assert knee_point(LINEAR_DOWN) == 0.0

    def test_bend_detected(self):
        knee = knee_point(KNEE_AT_HALF)
        assert knee in (0.25, 0.5)


class TestFeatures:
    def test_sensitivity_is_range(self):
        features = extract_features(LINEAR_DOWN)
        assert features.sensitivity == pytest.approx(0.5)

    def test_flat_is_flat(self):
        assert extract_features(FLAT).is_flat

    def test_degrading_not_flat(self):
        assert not extract_features(LINEAR_DOWN).is_flat


class TestAgreement:
    def test_flat_curves_agree(self):
        other_flat = {0.0: 0.99, 0.5: 0.995, 1.0: 0.99}
        assert curve_agreement(FLAT, other_flat)

    def test_similar_sensitivity_agrees(self):
        slightly_different = {x: y - 0.02 for x, y in LINEAR_DOWN.items()}
        assert curve_agreement(LINEAR_DOWN, slightly_different)

    def test_flat_vs_steep_disagrees(self):
        assert not curve_agreement(FLAT, KNEE_AT_HALF)
