"""Unit tests for KL divergence (Eq. 5) and histogram utilities."""

import math

import pytest

from repro.analysis.kl_divergence import (
    bucket_samples,
    kl_divergence,
    normalise,
    random_baseline_percentiles,
    series_kl,
)


class TestNormalise:
    def test_sums_to_one(self):
        assert sum(normalise([1, 2, 3])) == pytest.approx(1.0)

    def test_preserves_proportions(self):
        p = normalise([1.0, 3.0], smoothing=0.0)
        assert p == [0.25, 0.75]

    def test_smoothing_fills_zeros(self):
        p = normalise([0, 10])
        assert p[0] > 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            normalise([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            normalise([-1, 2])


class TestKlDivergence:
    def test_identical_distributions_zero(self):
        p = [10, 20, 30, 40]
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_non_negative(self):
        assert kl_divergence([1, 2, 3], [3, 2, 1]) >= 0.0

    def test_asymmetric(self):
        p, q = [9, 1], [5, 5]
        assert kl_divergence(p, q) != kl_divergence(q, p)

    def test_known_value_in_bits(self):
        """Fair coin encoded with a 3/4 coin: D = 1 - 0.5*log2(3) bits."""
        p = [0.5, 0.5]
        q = [0.75, 0.25]
        expected = 0.5 * math.log2(0.5 / 0.75) + 0.5 * math.log2(0.5 / 0.25)
        assert kl_divergence(p, q, already_normalised=True) == pytest.approx(expected)

    def test_mismatched_buckets_rejected(self):
        with pytest.raises(ValueError, match="bucket mismatch"):
            kl_divergence([1, 2], [1, 2, 3])

    def test_smoothing_prevents_infinite(self):
        value = kl_divergence([10, 0], [0, 10])
        assert math.isfinite(value)
        assert value > 1.0  # very different distributions


class TestBucketSamples:
    def test_basic_binning(self):
        counts = bucket_samples([0.0, 0.5, 0.99], 0.0, 1.0, buckets=2)
        assert counts == [1, 2]

    def test_clamping(self):
        counts = bucket_samples([-5.0, 5.0], 0.0, 1.0, buckets=4)
        assert counts[0] == 1
        assert counts[-1] == 1

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            bucket_samples([1.0], 1.0, 1.0)

    def test_rejects_zero_buckets(self):
        with pytest.raises(ValueError):
            bucket_samples([1.0], 0.0, 1.0, buckets=0)


class TestSeriesKl:
    def test_identical_series_near_zero(self):
        series = [0.1, 0.2, 0.3, 0.4] * 10
        assert series_kl(series, list(series)) == pytest.approx(0.0, abs=1e-6)

    def test_constant_series_zero(self):
        assert series_kl([1.0] * 10, [1.0] * 10) == 0.0

    def test_different_series_positive(self):
        a = [0.1] * 20 + [0.9] * 5
        b = [0.9] * 20 + [0.1] * 5
        assert series_kl(a, b) > 0.1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            series_kl([], [1.0])

    def test_shared_support(self):
        """Series with disjoint ranges still compare (shared bucketing)."""
        assert math.isfinite(series_kl([0.0] * 10, [100.0] * 10))


class TestRandomBaseline:
    def test_thresholds_ordered(self):
        reference = [100, 50, 25, 12, 6, 3, 1, 1]
        t99, t95, t90 = random_baseline_percentiles(reference, trials=300)
        assert t99 <= t95 <= t90

    def test_deterministic(self):
        reference = [10, 5, 2, 1]
        a = random_baseline_percentiles(reference, trials=100, seed=3)
        b = random_baseline_percentiles(reference, trials=100, seed=3)
        assert a == b

    def test_identical_histogram_beats_thresholds(self):
        """KL of the reference against itself (0) beats all random bounds."""
        reference = [100, 50, 25, 12, 6, 3, 1, 1]
        thresholds = random_baseline_percentiles(reference, trials=300)
        assert all(t > 0 for t in thresholds)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            random_baseline_percentiles([])
