"""Unit tests for miss-rate-curve analysis."""

import pytest

from repro.analysis.mrc import (
    INFINITE,
    combined_mrc,
    miss_rate_curve,
    stack_distance_histogram,
    trace_addresses,
    trace_mrc,
    working_set_knee,
)
from repro.trace import Trace, TraceRecord, build_trace, get_workload

BLOCK = 64


class TestStackDistances:
    def test_cold_misses_infinite(self):
        histogram = stack_distance_histogram([0, BLOCK, 2 * BLOCK])
        assert histogram == {INFINITE: 3}

    def test_immediate_reuse_distance_zero(self):
        histogram = stack_distance_histogram([0, 0, 0])
        assert histogram[0] == 2

    def test_interleaved_distance(self):
        # 0, 64, 0: block 0 reused with one distinct block between.
        histogram = stack_distance_histogram([0, BLOCK, 0])
        assert histogram[1] == 1

    def test_sub_block_offsets_collapse(self):
        histogram = stack_distance_histogram([0, 16, 48])
        assert histogram[0] == 2

    def test_max_depth_truncates(self):
        addresses = [i * BLOCK for i in range(10)] + [0]
        histogram = stack_distance_histogram(addresses, max_depth=4)
        # Block 0 fell off the 4-deep stack -> counted as infinite.
        assert histogram[INFINITE] == 11


class TestMissRateCurve:
    def test_zero_capacity_all_miss(self):
        histogram = stack_distance_histogram([0, 0, 0])
        curve = miss_rate_curve(histogram, [0])
        assert curve[0] == 1.0

    def test_monotone_nonincreasing(self):
        trace = build_trace(get_workload("450.soplex"), 4000, 1, 65536)
        curve = trace_mrc(trace, [0, 16, 64, 256, 1024], max_depth=1024)
        values = [curve[c] for c in sorted(curve)]
        assert values == sorted(values, reverse=True)

    def test_working_set_fits(self):
        # Cyclic loop over 4 blocks: a 4-block cache hits everything warm.
        addresses = [i % 4 * BLOCK for i in range(100)]
        histogram = stack_distance_histogram(addresses)
        curve = miss_rate_curve(histogram, [3, 4])
        assert curve[4] == pytest.approx(4 / 100)
        assert curve[3] == 1.0  # LRU worst case: cyclic scan one over size

    def test_empty_histogram_rejected(self):
        with pytest.raises(ValueError):
            miss_rate_curve({}, [4])

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            miss_rate_curve({0: 1}, [-1])


class TestTraceHelpers:
    def test_trace_addresses_order(self):
        trace = Trace("t", [
            TraceRecord(0, load_addr=100),
            TraceRecord(4),
            TraceRecord(8, load_addr=200, store_addr=200),
            TraceRecord(12, store_addr=300),
        ])
        assert trace_addresses(trace) == [100, 200, 300]


class TestCombinedMrc:
    def test_single_curve_identity(self):
        curve = {0: 1.0, 4: 0.5, 8: 0.1}
        combined = combined_mrc([curve], [1.0])
        assert combined[8] == pytest.approx(0.1)

    def test_weighted_mixture(self):
        flat = {0: 1.0, 8: 1.0}       # streaming: never hits
        friendly = {0: 1.0, 8: 0.0}   # fits in 8 blocks
        combined = combined_mrc([friendly, flat], [1.0, 1.0])
        # At 16 blocks total, each gets ~8: friendly hits, flat misses.
        assert 0.4 < combined[8] <= 1.0

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            combined_mrc([{0: 1.0}], [1.0, 2.0])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            combined_mrc([{0: 1.0}], [0.0])

    def test_disjoint_capacities_rejected(self):
        with pytest.raises(ValueError):
            combined_mrc([{4: 0.5}, {8: 0.5}], [1, 1])


class TestWorkingSetKnee:
    def test_knee_at_fit(self):
        curve = {4: 1.0, 8: 0.9, 16: 0.02, 32: 0.01}
        assert working_set_knee(curve) == 16

    def test_flat_curve_knee_at_smallest(self):
        assert working_set_knee({4: 0.5, 8: 0.5}) == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            working_set_knee({})


class TestAgainstSimulator:
    def test_mrc_predicts_llc_behaviour(self, config):
        """The MRC of an LLC-bound trace must show high miss rate below the
        footprint and low miss rate above it — consistent with what the
        simulator measures."""
        trace = build_trace(get_workload("470.lbm"), 16_000, 1,
                            config.llc.size)
        llc_blocks = config.llc.size // config.block_size
        curve = trace_mrc(trace, [llc_blocks // 8, llc_blocks * 2],
                          max_depth=llc_blocks * 2)
        assert curve[llc_blocks // 8] > 0.9  # far below the footprint
        assert curve[llc_blocks * 2] < 0.2   # cold misses only
