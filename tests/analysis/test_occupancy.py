"""Unit tests for Eq. 6 change-in-occupancy."""

import pytest

from repro.analysis.occupancy import (
    change_in_occupancy,
    mean_change_in_occupancy,
    occupancy_series,
)
from repro.sim.results import Sample, SimulationResult


def result_with_occupancies(occupancies):
    samples = [
        Sample(instructions=1000, cycles=1000, ipc=1.0, llc_accesses=10,
               llc_misses=1, miss_rate=0.1, amat=10.0, thefts=0,
               interference=0, contention_rate=0.0, interference_rate=0.0,
               occupancy=occ)
        for occ in occupancies
    ]
    return SimulationResult(trace_name="w", mode="2nd-trace",
                            instructions=1000, cycles=1000, ipc=1.0,
                            miss_rate=0.1, amat=10.0, samples=samples)


class TestEq6:
    def test_full_occupancy_is_zero(self):
        assert change_in_occupancy(1.0, 1.0) == 0.0

    def test_half_occupancy(self):
        assert change_in_occupancy(0.5, 1.0) == pytest.approx(-50.0)

    def test_allocation_cap(self):
        # Occupying 0.45 of an 0.9 allocation = half the expected capacity.
        assert change_in_occupancy(0.45, 0.9) == pytest.approx(-50.0)

    def test_over_allocation_positive(self):
        """A workload can exceed its expected share before RDT kicks in."""
        assert change_in_occupancy(1.0, 0.9) > 0

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            change_in_occupancy(1.5, 1.0)
        with pytest.raises(ValueError):
            change_in_occupancy(0.5, 0.0)


class TestSeries:
    def test_per_sample(self):
        result = result_with_occupancies([1.0, 0.5])
        series = occupancy_series(result)
        assert series[0] == 0.0
        assert series[1] == pytest.approx(-50.0)

    def test_mean(self):
        results = [result_with_occupancies([1.0, 0.5]),
                   result_with_occupancies([0.75])]
        assert mean_change_in_occupancy(results) == pytest.approx(-25.0)

    def test_mean_empty(self):
        assert mean_change_in_occupancy([]) == 0.0
