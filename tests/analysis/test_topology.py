"""Tests for contention topology diagnostics."""

import pytest

from repro.analysis.topology import TheftTopology, TopologyRecorder, attach_topology
from repro.core import ContentionTracker, PInTE, PinteConfig
from repro.cache.cache import Cache

BLOCK = 64


class TestTheftTopology:
    def test_record_maps_to_set(self):
        topology = TheftTopology(n_sets=8)
        topology.record(3 * BLOCK)
        topology.record(3 * BLOCK + 8 * BLOCK)  # same set, next way stride
        assert topology.counts[3] == 2
        assert topology.total == 2

    def test_coverage(self):
        topology = TheftTopology(n_sets=4)
        topology.record(0)
        topology.record(BLOCK)
        assert topology.coverage() == 0.5

    def test_entropy_uniform_is_one(self):
        topology = TheftTopology(n_sets=4)
        for set_index in range(4):
            topology.record(set_index * BLOCK)
        assert topology.entropy() == pytest.approx(1.0)

    def test_entropy_concentrated_is_zero(self):
        topology = TheftTopology(n_sets=4)
        for _ in range(10):
            topology.record(0)
        assert topology.entropy() == pytest.approx(0.0)

    def test_entropy_empty(self):
        assert TheftTopology(n_sets=4).entropy() == 0.0

    def test_hottest_sets(self):
        topology = TheftTopology(n_sets=4)
        for _ in range(3):
            topology.record(2 * BLOCK)
        topology.record(0)
        hottest = topology.hottest_sets(count=2)
        assert hottest[0] == (2, 3)
        assert hottest[1] == (0, 1)

    def test_hottest_excludes_untouched(self):
        topology = TheftTopology(n_sets=8)
        topology.record(0)
        assert len(topology.hottest_sets(count=8)) == 1

    def test_histogram_buckets(self):
        topology = TheftTopology(n_sets=8)
        topology.record(0)
        topology.record(7 * BLOCK)
        assert topology.histogram(buckets=2) == [1, 1]

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            TheftTopology(n_sets=8).histogram(buckets=3)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            TheftTopology(n_sets=3)


class TestRecorder:
    def test_wraps_tracker(self):
        tracker = ContentionTracker()
        topology = attach_topology(tracker, n_sets=8)
        tracker.record_theft(0, 1, 2 * BLOCK)
        assert topology.total == 1
        assert tracker.counters(0).thefts_experienced == 1  # original ran too

    def test_victim_filter(self):
        tracker = ContentionTracker()
        topology = attach_topology(tracker, n_sets=8, victim_owner=0)
        tracker.record_theft(0, 1, 0)
        tracker.record_theft(1, 0, BLOCK)
        assert topology.total == 1

    def test_detach_restores(self):
        tracker = ContentionTracker()
        topology = TheftTopology(8)
        recorder = TopologyRecorder(tracker, topology)
        recorder.detach()
        tracker.record_theft(0, 1, 0)
        assert topology.total == 0


class TestWithPinte:
    def test_pinte_thefts_follow_accessed_sets(self):
        """Per-access PInTE steals only where the workload goes — topology
        shows concentration, not blanketing."""
        llc = Cache("LLC", 16 * 4 * BLOCK, 4, BLOCK, latency=1)
        tracker = ContentionTracker()
        topology = attach_topology(tracker, llc.n_sets)
        engine = PInTE(PinteConfig(1.0, seed=1), llc, tracker)
        stride = BLOCK * llc.n_sets
        hot_sets = (2, 5)
        for i in range(200):
            set_index = hot_sets[i % 2]
            for way in range(llc.assoc):
                llc.fill(set_index * BLOCK + way * stride, 0)
            engine.on_llc_access(set_index, i, 0)
        assert topology.total > 0
        assert topology.coverage() == pytest.approx(2 / 16)
        touched = {s for s, _ in topology.hottest_sets(16)}
        assert touched == set(hot_sets)
