"""Tests for bootstrap confidence intervals."""

import pytest

from repro.analysis.bootstrap import (
    ConfidenceInterval,
    bootstrap_mean,
    ipc_interval,
    rank_with_ties,
    statistically_tied,
)
from repro.sim.results import Sample, SimulationResult


def result_with_ipcs(ipcs, name="w"):
    samples = [
        Sample(instructions=1000, cycles=1000, ipc=ipc, llc_accesses=1,
               llc_misses=0, miss_rate=0.0, amat=5.0, thefts=0,
               interference=0, contention_rate=0.0, interference_rate=0.0,
               occupancy=0.1)
        for ipc in ipcs
    ]
    mean = sum(ipcs) / len(ipcs) if ipcs else 0.0
    return SimulationResult(trace_name=name, mode="pinte", instructions=1000,
                            cycles=1000, ipc=mean, miss_rate=0.0, amat=5.0,
                            samples=samples)


class TestBootstrapMean:
    def test_point_estimate_is_mean(self):
        ci = bootstrap_mean([1.0, 2.0, 3.0])
        assert ci.point == pytest.approx(2.0)

    def test_interval_contains_point(self):
        ci = bootstrap_mean([1.0, 2.0, 3.0, 4.0, 5.0])
        assert ci.contains(ci.point)

    def test_constant_sample_zero_width(self):
        ci = bootstrap_mean([2.0] * 10)
        assert ci.width == 0.0

    def test_single_value_degenerate(self):
        ci = bootstrap_mean([7.0])
        assert ci.low == ci.high == 7.0

    def test_deterministic(self):
        values = [1.0, 3.0, 2.0, 5.0]
        assert bootstrap_mean(values, seed=1) == bootstrap_mean(values, seed=1)

    def test_more_spread_wider_interval(self):
        tight = bootstrap_mean([1.0, 1.1, 0.9, 1.05, 0.95])
        wide = bootstrap_mean([1.0, 3.0, -1.0, 2.5, -0.5])
        assert wide.width > tight.width

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean([])
        with pytest.raises(ValueError):
            bootstrap_mean([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_mean([1.0], resamples=2)


class TestConfidenceInterval:
    def test_overlap_symmetric(self):
        a = ConfidenceInterval(0.0, 1.0, 0.5, 0.95)
        b = ConfidenceInterval(0.8, 2.0, 1.4, 0.95)
        c = ConfidenceInterval(1.5, 2.0, 1.75, 0.95)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c) and not c.overlaps(a)


class TestIpcInterval:
    def test_from_samples(self):
        result = result_with_ipcs([0.5, 0.6, 0.55, 0.45, 0.5])
        ci = ipc_interval(result)
        assert 0.4 < ci.low <= ci.point <= ci.high < 0.7

    def test_no_samples_degenerate(self):
        result = result_with_ipcs([])
        result.ipc = 0.7
        ci = ipc_interval(result)
        assert ci.low == ci.high == 0.7


class TestTies:
    def test_identical_runs_tied(self):
        a = result_with_ipcs([0.5, 0.52, 0.48, 0.51])
        b = result_with_ipcs([0.49, 0.51, 0.5, 0.52])
        assert statistically_tied(a, b)

    def test_distant_runs_not_tied(self):
        a = result_with_ipcs([0.5, 0.52, 0.48, 0.51])
        b = result_with_ipcs([1.5, 1.52, 1.48, 1.51])
        assert not statistically_tied(a, b)

    def test_rank_with_ties(self):
        best = result_with_ipcs([1.0, 1.02, 0.98], name="best")
        tied = result_with_ipcs([0.99, 1.01, 1.0], name="tied")
        worse = result_with_ipcs([0.5, 0.52, 0.48], name="worse")
        ranked = rank_with_ties([worse, best, tied])
        assert ranked[0][0].trace_name == "best"
        assert ranked[0][1] is True  # best ties with itself
        assert ranked[1][1] is True  # statistically tied
        assert ranked[2][1] is False

    def test_rank_empty_rejected(self):
        with pytest.raises(ValueError):
            rank_with_ties([])
