"""Unit tests for contention rate grouping."""

import pytest

from repro.analysis.crg import (
    contention_curve,
    coverage,
    group_centre,
    group_of,
    group_results,
    match_by_group,
)
from repro.sim.results import SimulationResult


def result(rate, ipc=1.0, name="w"):
    return SimulationResult(trace_name=name, mode="pinte", instructions=1000,
                            cycles=1000, ipc=ipc, miss_rate=0.1, amat=10.0,
                            contention_rate=rate, interference_rate=rate)


class TestGroupOf:
    def test_rounds_to_nearest_ten_percent(self):
        """The paper rounds observed rates to the nearest 10% group."""
        assert group_of(0.04) == 0
        assert group_of(0.06) == 1
        assert group_of(0.14) == 1
        assert group_of(0.97) == 10

    def test_custom_width(self):
        assert group_of(0.06, width=0.05) == 1
        assert group_of(0.08, width=0.05) == 2

    def test_group_centre_round_trip(self):
        assert group_centre(group_of(0.31)) == pytest.approx(0.3)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            group_of(-0.1)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            group_of(0.5, width=0.0)


class TestGroupResults:
    def test_buckets(self):
        results = [result(0.02), result(0.04), result(0.31)]
        groups = group_results(results)
        assert len(groups[0]) == 2
        assert len(groups[3]) == 1


class TestMatchByGroup:
    def test_same_group_matches(self):
        reference = [result(0.32)]
        model = [result(0.29), result(0.55)]
        matches = match_by_group(reference, model)
        assert len(matches) == 1
        assert matches[0][1].contention_rate == 0.29

    def test_closest_in_group_wins(self):
        reference = [result(0.30)]
        model = [result(0.26), result(0.31), result(0.34)]
        matches = match_by_group(reference, model)
        assert matches[0][1].contention_rate == 0.31

    def test_no_match_skipped(self):
        reference = [result(0.9)]
        model = [result(0.1)]
        assert match_by_group(reference, model) == []


class TestCoverage:
    def test_full_coverage(self):
        reference = [result(0.1), result(0.5)]
        model = [result(0.12), result(0.48)]
        assert coverage(reference, model) == 1.0

    def test_partial_coverage(self):
        reference = [result(0.1), result(0.9)]
        model = [result(0.12)]
        assert coverage(reference, model) == 0.5

    def test_wider_criterion_covers_more(self):
        reference = [result(0.13)]
        model = [result(0.24)]
        assert coverage(reference, model, width=0.10) == 0.0
        assert coverage(reference, model, width=0.20) == 1.0

    def test_empty_reference(self):
        assert coverage([], [result(0.1)]) == 0.0


class TestContentionCurve:
    def test_curve_points(self):
        results = [result(0.05, ipc=0.9), result(0.52, ipc=0.5),
                   result(0.48, ipc=0.6)]
        curve = contention_curve(results, isolation_ipc=1.0)
        assert curve[0.0] == pytest.approx(0.9)
        assert curve[0.5] == pytest.approx(0.55)

    def test_sorted_keys(self):
        results = [result(0.9, ipc=0.2), result(0.1, ipc=0.9)]
        curve = contention_curve(results, isolation_ipc=1.0)
        assert list(curve) == sorted(curve)

    def test_rejects_bad_isolation(self):
        with pytest.raises(ValueError):
            contention_curve([result(0.1)], isolation_ipc=0.0)
