"""Unit tests for multi-programmed throughput metrics."""

import pytest

from repro.analysis.throughput import (
    fairness,
    harmonic_mean_speedup,
    throughput_report,
    weighted_speedup,
)
from repro.sim.results import SimulationResult


def result(name, ipc):
    return SimulationResult(trace_name=name, mode="2nd-trace",
                            instructions=1000, cycles=1000, ipc=ipc,
                            miss_rate=0.1, amat=10.0)


ISO = [result("a", 1.0), result("b", 2.0)]


class TestWeightedSpeedup:
    def test_no_slowdown_equals_core_count(self):
        shared = [result("a", 1.0), result("b", 2.0)]
        assert weighted_speedup(shared, ISO) == pytest.approx(2.0)

    def test_half_speed_each(self):
        shared = [result("a", 0.5), result("b", 1.0)]
        assert weighted_speedup(shared, ISO) == pytest.approx(1.0)

    def test_order_mismatch_rejected(self):
        shared = [result("b", 1.0), result("a", 1.0)]
        with pytest.raises(ValueError, match="order mismatch"):
            weighted_speedup(shared, ISO)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([result("a", 1.0)], ISO)

    def test_zero_isolation_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([result("a", 1.0)], [result("a", 0.0)])


class TestHarmonicMean:
    def test_even_slowdown(self):
        shared = [result("a", 0.5), result("b", 1.0)]
        assert harmonic_mean_speedup(shared, ISO) == pytest.approx(0.5)

    def test_penalises_starvation(self):
        balanced = [result("a", 0.5), result("b", 1.0)]     # 0.5 / 0.5
        starved = [result("a", 0.9), result("b", 0.2)]      # 0.9 / 0.1
        assert (harmonic_mean_speedup(starved, ISO)
                < harmonic_mean_speedup(balanced, ISO))

    def test_zero_weighted_ipc(self):
        shared = [result("a", 0.0), result("b", 1.0)]
        assert harmonic_mean_speedup(shared, ISO) == 0.0


class TestFairness:
    def test_perfectly_fair(self):
        shared = [result("a", 0.7), result("b", 1.4)]
        assert fairness(shared, ISO) == pytest.approx(1.0)

    def test_unfair(self):
        shared = [result("a", 1.0), result("b", 0.4)]  # wIPC 1.0 vs 0.2
        assert fairness(shared, ISO) == pytest.approx(0.2)

    def test_report_keys(self):
        shared = [result("a", 0.5), result("b", 1.0)]
        report = throughput_report(shared, ISO)
        assert set(report) == {"weighted_speedup", "harmonic_mean_speedup",
                               "fairness"}
