"""Tests for phase detection."""

import pytest

from repro.analysis.phases import (
    Phase,
    detect_phases,
    is_phase_changing,
    phase_count,
    result_phases,
)
from repro.sim.results import Sample, SimulationResult


class TestDetectPhases:
    def test_constant_series_one_phase(self):
        phases = detect_phases([1.0] * 10)
        assert len(phases) == 1
        assert phases[0].length == 10
        assert phases[0].mean == 1.0

    def test_step_change_two_phases(self):
        series = [1.0] * 6 + [5.0] * 6
        phases = detect_phases(series, window=2)
        assert len(phases) == 2
        assert phases[0].mean == pytest.approx(1.0)
        assert phases[1].mean == pytest.approx(5.0)

    def test_boundary_position(self):
        series = [1.0] * 6 + [5.0] * 6
        phases = detect_phases(series, window=2)
        assert phases[0].end == 6

    def test_three_phases(self):
        series = [1.0] * 6 + [5.0] * 6 + [1.0] * 6
        assert phase_count(series, window=2) == 3

    def test_noise_does_not_split(self):
        series = [1.0, 1.05, 0.95, 1.02, 0.98, 1.01, 0.97, 1.03]
        assert phase_count(series) == 1

    def test_phases_cover_series(self):
        series = [1.0] * 5 + [9.0] * 5 + [4.0] * 5
        phases = detect_phases(series, window=2)
        assert phases[0].start == 0
        assert phases[-1].end == len(series)
        for first, second in zip(phases, phases[1:]):
            assert first.end == second.start

    def test_short_series_single_phase(self):
        phases = detect_phases([1.0, 5.0], window=2)
        assert len(phases) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            detect_phases([])

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            detect_phases([1.0], window=0)


def result_with_ipcs(ipcs):
    samples = [
        Sample(instructions=1000, cycles=1000, ipc=ipc, llc_accesses=1,
               llc_misses=0, miss_rate=0.0, amat=5.0, thefts=0,
               interference=0, contention_rate=0.0, interference_rate=0.0,
               occupancy=0.1)
        for ipc in ipcs
    ]
    return SimulationResult(trace_name="w", mode="isolation",
                            instructions=1000, cycles=1000, ipc=1.0,
                            miss_rate=0.0, amat=5.0, samples=samples)


class TestResultPhases:
    def test_steady_result(self):
        result = result_with_ipcs([1.0] * 8)
        assert not is_phase_changing(result)

    def test_phase_changing_result(self):
        result = result_with_ipcs([1.0] * 5 + [0.2] * 5)
        assert is_phase_changing(result)

    def test_no_samples_rejected(self):
        result = result_with_ipcs([])
        with pytest.raises(ValueError, match="no samples"):
            result_phases(result)

    def test_mixed_workload_shows_phases(self, config):
        """The gcc-class mixed model must actually change phase in
        simulation — that is what drives its 'mixed' sensitivity."""
        from repro.sim import simulate
        from repro.trace import build_trace, get_workload

        trace = build_trace(get_workload("403.gcc"), 24_000, 1,
                            config.llc.size)
        result = simulate(trace, config, warmup_instructions=2_000,
                          sim_instructions=22_000, sample_interval=1_000)
        assert is_phase_changing(result, metric="miss_rate", threshold=0.8)
