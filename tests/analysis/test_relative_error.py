"""Unit tests for Eq. 4 relative error and Table II machinery."""

import pytest

from repro.analysis.relative_error import (
    ErrorRow,
    average_errors,
    error_table,
    relative_error,
    result_relative_errors,
)
from repro.sim.results import SimulationResult


def result(ipc=1.0, mr=0.1, amat=10.0):
    return SimulationResult(trace_name="w", mode="pinte", instructions=1000,
                            cycles=1000, ipc=ipc, miss_rate=mr, amat=amat)


class TestEq4:
    def test_sign_convention(self):
        """Positive = PInTE underestimates (2nd-Trace larger)."""
        assert relative_error(reference=1.1, pinte=1.0) == pytest.approx(10.0)
        assert relative_error(reference=0.9, pinte=1.0) == pytest.approx(-10.0)

    def test_exact_match_is_zero(self):
        assert relative_error(0.5, 0.5) == 0.0

    def test_zero_zero(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_zero_pinte_nonzero_reference(self):
        with pytest.raises(ZeroDivisionError):
            relative_error(1.0, 0.0)


class TestResultErrors:
    def test_per_metric(self):
        reference = result(ipc=0.9, mr=0.11, amat=11.0)
        model = result(ipc=1.0, mr=0.10, amat=10.0)
        errors = result_relative_errors(reference, model)
        assert errors["ipc"] == pytest.approx(-10.0)
        assert errors["miss_rate"] == pytest.approx(10.0)
        assert errors["amat"] == pytest.approx(10.0)

    def test_zero_metrics_handled(self):
        reference = result(mr=0.0)
        model = result(mr=0.0)
        assert result_relative_errors(reference, model)["miss_rate"] == 0.0

    def test_zero_model_nonzero_reference_is_inf(self):
        errors = result_relative_errors(result(mr=0.5), result(mr=0.0))
        assert errors["miss_rate"] == float("inf")


class TestErrorRow:
    def test_significance_threshold(self):
        row = ErrorRow("w", amat=9.9, miss_rate=10.0, ipc=-10.1)
        assert not row.amat_significant
        assert row.mr_significant
        assert row.ipc_significant

    def test_classify_dram_dependent(self):
        row = ErrorRow("w", amat=31.0, miss_rate=0.5, ipc=-42.0)
        assert row.classify() == "dram_dependent"

    def test_classify_core_bound(self):
        row = ErrorRow("w", amat=0.1, miss_rate=21.0, ipc=-0.4)
        assert row.classify() == "core_bound"

    def test_classify_llc_bound(self):
        row = ErrorRow("w", amat=0.1, miss_rate=-0.5, ipc=-71.5)
        assert row.classify() == "llc_bound"

    def test_classify_ok(self):
        row = ErrorRow("w", amat=-0.1, miss_rate=-1.1, ipc=-0.3)
        assert row.classify() == "ok"


class TestAggregation:
    def test_average_errors(self):
        combined = average_errors([
            {"amat": 1.0, "miss_rate": 2.0, "ipc": -4.0},
            {"amat": 3.0, "miss_rate": 4.0, "ipc": -6.0},
        ])
        assert combined == {"amat": 2.0, "miss_rate": 3.0, "ipc": -5.0}

    def test_average_errors_empty(self):
        assert average_errors([]) == {"amat": 0.0, "miss_rate": 0.0, "ipc": 0.0}

    def test_error_table_splits_suites(self):
        rows = [
            ErrorRow("400.perlbench", 1.0, 1.0, -1.0),
            ErrorRow("600.perlbench", 3.0, 3.0, -3.0),
        ]
        table = error_table(rows)
        assert table["2006"]["amat"] == 1.0
        assert table["2017"]["amat"] == 3.0
        assert table["all"]["amat"] == 2.0
