"""Unit tests for TPL sensitivity classification."""

import pytest

from repro.analysis.sensitivity import (
    HIGH,
    LOW,
    MIXED,
    SensitivityReport,
    class_shares,
    classify,
    classify_fraction,
    sample_weighted_ipcs,
    sensitive_fraction,
)
from repro.sim.results import Sample, SimulationResult


def result_with_samples(ipcs, name="w"):
    samples = [
        Sample(instructions=1000, cycles=1000, ipc=ipc, llc_accesses=10,
               llc_misses=1, miss_rate=0.1, amat=10.0, thefts=0,
               interference=0, contention_rate=0.0, interference_rate=0.0,
               occupancy=0.5)
        for ipc in ipcs
    ]
    return SimulationResult(trace_name=name, mode="pinte", instructions=1000,
                            cycles=1000, ipc=sum(ipcs) / len(ipcs),
                            miss_rate=0.1, amat=10.0, samples=samples)


class TestSensitiveFraction:
    def test_all_sensitive(self):
        assert sensitive_fraction([0.5, 0.6, 0.7], tpl=0.05) == 1.0

    def test_none_sensitive(self):
        assert sensitive_fraction([0.96, 1.0, 1.02], tpl=0.05) == 0.0

    def test_boundary_not_sensitive(self):
        """Exactly TPL loss does not exceed the threshold."""
        assert sensitive_fraction([0.95], tpl=0.05) == 0.0

    def test_empty(self):
        assert sensitive_fraction([]) == 0.0


class TestClassifyFraction:
    def test_high(self):
        assert classify_fraction(0.75) == HIGH
        assert classify_fraction(1.0) == HIGH

    def test_low(self):
        assert classify_fraction(0.25) == LOW
        assert classify_fraction(0.0) == LOW

    def test_mixed(self):
        assert classify_fraction(0.5) == MIXED


class TestClassify:
    def test_pooled_samples(self):
        results = [result_with_samples([1.0, 1.0]),
                   result_with_samples([0.5, 0.5])]
        report = classify("w", results, isolation=1.0)
        assert report.scp == 0.5
        assert report.classification == MIXED
        assert report.n_samples == 4

    def test_insensitive_workload(self):
        report = classify("w", [result_with_samples([0.99, 1.0, 0.98])],
                          isolation=1.0)
        assert report.classification == LOW

    def test_sensitive_workload(self):
        report = classify("w", [result_with_samples([0.5, 0.4, 0.3, 0.6])],
                          isolation=1.0)
        assert report.classification == HIGH

    def test_rejects_zero_isolation(self):
        with pytest.raises(ValueError):
            sample_weighted_ipcs([], isolation=0.0)


class TestClassShares:
    def test_shares(self):
        reports = [
            SensitivityReport("a", 0.9, HIGH, 0.05, 10),
            SensitivityReport("b", 0.1, LOW, 0.05, 10),
            SensitivityReport("c", 0.2, LOW, 0.05, 10),
            SensitivityReport("d", 0.5, MIXED, 0.05, 10),
        ]
        shares = class_shares(reports)
        assert shares[HIGH] == 0.25
        assert shares[LOW] == 0.5
        assert shares[MIXED] == 0.25

    def test_empty(self):
        shares = class_shares([])
        assert shares == {HIGH: 0.0, LOW: 0.0, MIXED: 0.0}
