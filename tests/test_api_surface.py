"""Public API surface checks: everything advertised exists and is importable."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_docstring_flow(self):
        """The module docstring's quickstart snippet must actually work."""
        config = repro.scaled_config()
        trace = repro.build_trace(repro.get_workload("470.lbm"), 6_000,
                                  seed=1, llc_bytes=config.llc.size)
        isolation = repro.simulate(trace, config, warmup_instructions=1_000,
                                   sim_instructions=5_000)
        contended = repro.simulate(trace, config,
                                   pinte=repro.PinteConfig(p_induce=0.5),
                                   warmup_instructions=1_000,
                                   sim_instructions=5_000)
        assert contended.ipc / isolation.ipc < 1.0


SUBPACKAGES = [
    "repro.analysis",
    "repro.branch",
    "repro.cache",
    "repro.cache.partition",
    "repro.cache.replacement",
    "repro.campaign",
    "repro.core",
    "repro.cpu",
    "repro.dram",
    "repro.experiments",
    "repro.obs",
    "repro.prefetch",
    "repro.sim",
    "repro.trace",
    "repro.util",
]


class TestSubpackageApis:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_lists_resolve(self, module_name):
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", [])
        for name in exported:
            assert hasattr(module, name), f"{module_name}.{name}"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_docstrings_present(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, module_name


class TestRegistriesConsistent:
    def test_replacement_policies_have_unique_names(self):
        from repro.cache.replacement import POLICIES

        for name, cls in POLICIES.items():
            assert cls.name == name

    def test_branch_predictors_have_unique_names(self):
        from repro.branch import PREDICTORS

        for name, cls in PREDICTORS.items():
            assert cls.name == name

    def test_prefetchers_have_unique_names(self):
        from repro.prefetch import PREFETCHERS

        for name, cls in PREFETCHERS.items():
            assert cls.name == name

    def test_partitioners_have_unique_names(self):
        from repro.cache.partition import PARTITIONERS

        for name, cls in PARTITIONERS.items():
            assert cls.name == name
