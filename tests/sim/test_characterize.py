"""Tests for empirical workload characterisation."""

import pytest

from repro.sim.characterize import (
    WorkloadProfile,
    characterize,
    profile_from_result,
)
from repro.trace import (
    CACHE_FRIENDLY,
    CORE_BOUND,
    DRAM_BOUND,
    LLC_BOUND,
    build_trace,
    get_workload,
)


@pytest.fixture(scope="module")
def profiles(config):
    names = ("453.povray", "435.gromacs", "470.lbm", "429.mcf")
    return {
        name: characterize(
            build_trace(get_workload(name), 16_000, 1, config.llc.size),
            config, warmup_instructions=4_000, sim_instructions=12_000)
        for name in names
    }


class TestInference:
    def test_core_bound_detected(self, profiles, config):
        assert profiles["453.povray"].inferred_class(config) == CORE_BOUND

    def test_cache_friendly_detected(self, profiles, config):
        assert profiles["435.gromacs"].inferred_class(config) in (
            CACHE_FRIENDLY, CORE_BOUND)

    def test_llc_bound_detected(self, profiles, config):
        assert profiles["470.lbm"].inferred_class(config) == LLC_BOUND

    def test_dram_bound_detected(self, profiles, config):
        assert profiles["429.mcf"].inferred_class(config) == DRAM_BOUND


class TestProfileValues:
    def test_metrics_sane(self, profiles):
        for profile in profiles.values():
            assert profile.ipc > 0
            assert 0.0 <= profile.llc_miss_rate <= 1.0
            assert 0.0 <= profile.branch_accuracy <= 1.0
            assert profile.llc_apki >= 0

    def test_amat_ordering(self, profiles):
        """DRAM-bound AMAT dwarfs core-bound AMAT."""
        assert profiles["429.mcf"].amat > 5 * profiles["453.povray"].amat

    def test_apki_ordering(self, profiles):
        """LLC-bound workloads reach the LLC far more often."""
        assert profiles["470.lbm"].llc_apki > 10 * profiles["453.povray"].llc_apki


class TestProfileFromResult:
    def test_round_trip_fields(self, lbm_isolation):
        profile = profile_from_result(lbm_isolation)
        assert profile.name == lbm_isolation.trace_name
        assert profile.ipc == lbm_isolation.ipc
        assert profile.llc_apki == pytest.approx(
            1000.0 * lbm_isolation.llc_accesses / lbm_isolation.instructions)
