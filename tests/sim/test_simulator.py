"""Unit tests for the single-core simulator (isolation + PInTE modes)."""

import pytest

from repro.core import PinteConfig
from repro.sim import simulate
from repro.trace import Trace, TraceRecord, build_trace, get_workload


class TestBasicRun:
    def test_result_identity(self, lbm_trace, config, lbm_isolation):
        assert lbm_isolation.trace_name == "470.lbm"
        assert lbm_isolation.mode == "isolation"
        assert lbm_isolation.p_induce is None

    def test_instruction_count(self, lbm_isolation, tiny_scale):
        assert lbm_isolation.instructions == tiny_scale.sim_instructions

    def test_positive_ipc(self, lbm_isolation):
        assert lbm_isolation.ipc > 0

    def test_samples_collected(self, lbm_isolation, tiny_scale):
        expected = tiny_scale.sim_instructions // tiny_scale.sample_interval
        assert len(lbm_isolation.samples) == expected

    def test_sample_deltas_sum_to_totals(self, lbm_isolation):
        total = sum(s.instructions for s in lbm_isolation.samples)
        assert total == lbm_isolation.instructions

    def test_wall_time_recorded(self, lbm_isolation):
        assert lbm_isolation.wall_time_seconds > 0

    def test_empty_trace_rejected(self, config):
        with pytest.raises(ValueError, match="empty"):
            simulate(Trace("empty", []), config)

    def test_trace_restarts_when_short(self, config):
        trace = build_trace(get_workload("435.gromacs"), 500, 1, config.llc.size)
        result = simulate(trace, config, sim_instructions=2000)
        assert result.instructions == 2000


class TestTraceInputs:
    """Entry points accept any record iterable, not just ``Trace``
    (regression for the docstring/behaviour mismatch in
    :mod:`repro.trace.record`)."""

    @staticmethod
    def _comparable(result):
        from repro.sim.serialize import result_to_dict

        record = result_to_dict(result)
        record.pop("wall_time_seconds", None)
        # Anonymous inputs (lists, generators) carry no trace name.
        record.pop("trace_name", None)
        record["extra"] = {k: v for k, v in record["extra"].items()
                           if not k.endswith("_seconds")}
        return record

    def test_packed_trace_matches_trace(self, config, lbm_trace):
        baseline = simulate(lbm_trace, config, sim_instructions=2000)
        packed = simulate(lbm_trace.packed(), config, sim_instructions=2000)
        assert self._comparable(packed) == self._comparable(baseline)
        assert packed.trace_name == "470.lbm"

    def test_plain_list_matches_trace(self, config, lbm_trace):
        baseline = simulate(lbm_trace, config, sim_instructions=2000)
        as_list = simulate(list(lbm_trace.records), config,
                           sim_instructions=2000)
        assert self._comparable(as_list) == self._comparable(baseline)

    def test_generator_matches_trace(self, config, lbm_trace):
        from repro.trace import generate_records

        workload = get_workload("470.lbm")
        baseline = simulate(lbm_trace, config, sim_instructions=2000)
        streamed = simulate(
            generate_records(workload, len(lbm_trace), 1, config.llc.size),
            config, sim_instructions=2000)
        assert self._comparable(streamed) == self._comparable(baseline)


class TestWarmup:
    def test_warmup_stats_discarded(self, config, gromacs_trace):
        result = simulate(gromacs_trace, config, warmup_instructions=2000,
                          sim_instructions=2000)
        assert result.instructions == 2000

    def test_warmup_keeps_cache_state(self, config, gromacs_trace):
        """Warmed run must have a lower measured miss rate than a cold run
        of the same window (the whole point of warming)."""
        cold = simulate(gromacs_trace, config, warmup_instructions=0,
                        sim_instructions=2000)
        warm = simulate(gromacs_trace, config, warmup_instructions=4000,
                        sim_instructions=2000)
        assert warm.l1d_miss_rate <= cold.l1d_miss_rate


class TestDeterminism:
    def test_identical_runs_identical_results(self, config, gromacs_trace):
        a = simulate(gromacs_trace, config, sim_instructions=3000, seed=5)
        b = simulate(gromacs_trace, config, sim_instructions=3000, seed=5)
        assert a.ipc == b.ipc
        assert a.miss_rate == b.miss_rate
        assert a.reuse_histogram == b.reuse_histogram


class TestPinteMode:
    def test_mode_and_p_recorded(self, lbm_pinte):
        assert lbm_pinte.mode == "pinte"
        assert lbm_pinte.p_induce == 0.5

    def test_contention_induced(self, lbm_pinte):
        assert lbm_pinte.thefts_experienced > 0
        assert lbm_pinte.contention_rate > 0

    def test_performance_degrades_for_llc_bound(self, lbm_isolation, lbm_pinte):
        assert lbm_pinte.ipc < lbm_isolation.ipc

    def test_insensitive_workload_unaffected(self, config, povray_trace):
        isolation = simulate(povray_trace, config, warmup_instructions=1000,
                             sim_instructions=4000)
        contended = simulate(povray_trace, config, pinte=PinteConfig(1.0),
                             warmup_instructions=1000, sim_instructions=4000)
        assert contended.ipc == pytest.approx(isolation.ipc, rel=0.02)

    def test_trigger_stats_exported(self, lbm_pinte):
        assert lbm_pinte.extra["pinte_triggers"] > 0
        assert 0.4 < lbm_pinte.extra["pinte_trigger_rate"] < 0.6

    def test_higher_p_more_thefts(self, config, lbm_trace):
        low = simulate(lbm_trace, config, pinte=PinteConfig(0.05),
                       warmup_instructions=1000, sim_instructions=4000)
        high = simulate(lbm_trace, config, pinte=PinteConfig(0.8),
                        warmup_instructions=1000, sim_instructions=4000)
        assert high.thefts_experienced > low.thefts_experienced


class TestMetricsConsistency:
    def test_miss_rate_in_unit_range(self, lbm_pinte):
        assert 0.0 <= lbm_pinte.miss_rate <= 1.0

    def test_llc_counters_consistent(self, lbm_pinte):
        assert lbm_pinte.llc_misses <= lbm_pinte.llc_accesses

    def test_interference_bounded_by_misses(self, lbm_pinte):
        assert lbm_pinte.interference_misses <= lbm_pinte.llc_misses

    def test_occupancy_in_unit_range(self, lbm_isolation):
        assert 0.0 <= lbm_isolation.occupancy <= 1.0

    def test_mpki_properties(self, lbm_isolation):
        assert lbm_isolation.llc_mpki >= 0
        assert lbm_isolation.l2_mpki >= lbm_isolation.llc_mpki * 0.5  # sanity


class TestSingleCorePartitioner:
    """``partitioner=`` on single-core simulate() — a session-layer
    capability the original host never exposed."""

    def _partitioner(self, config, owners):
        from repro.cache.partition import make_partitioner
        n_ways = config.llc.assoc
        n_sets = config.llc.size // (n_ways * config.block_size)
        return make_partitioner("static", n_sets, n_ways, owners=owners)

    def test_half_quota_caps_occupancy(self, config, lbm_trace):
        # Owner 1 never runs, so its static half of the ways stays empty:
        # the LLC-bound workload cannot exceed half the LLC.
        unconstrained = simulate(lbm_trace, config, warmup_instructions=500,
                                 sim_instructions=4000)
        capped = simulate(lbm_trace, config,
                          partitioner=self._partitioner(config, [0, 1]),
                          warmup_instructions=500, sim_instructions=4000)
        assert unconstrained.occupancy > 0.5
        assert capped.occupancy <= 0.5
        assert capped.llc_misses >= unconstrained.llc_misses

    def test_deterministic(self, config, lbm_trace):
        a = simulate(lbm_trace, config,
                     partitioner=self._partitioner(config, [0, 1]),
                     sim_instructions=3000)
        b = simulate(lbm_trace, config,
                     partitioner=self._partitioner(config, [0, 1]),
                     sim_instructions=3000)
        assert a.ipc == b.ipc
        assert a.llc_misses == b.llc_misses
