"""Tests for the cache-only fast host."""

import pytest

from repro.core import PinteConfig
from repro.sim import simulate
from repro.sim.fastcache import fast_contention_sweep, simulate_cache_only
from repro.trace import build_trace, get_workload


@pytest.fixture(scope="module")
def lbm(config):
    return build_trace(get_workload("470.lbm"), 20_000, 1, config.llc.size)


class TestCacheOnly:
    def test_counts_memory_accesses(self, lbm, config):
        result = simulate_cache_only(lbm, config, filter_cache=False)
        memory_ops = sum(1 for r in lbm.records if r.is_memory)
        assert result.accesses == memory_ops

    def test_filter_cache_reduces_llc_traffic(self, lbm, config):
        unfiltered = simulate_cache_only(lbm, config, filter_cache=False)
        filtered = simulate_cache_only(lbm, config, filter_cache=True)
        assert filtered.accesses <= unfiltered.accesses

    def test_warmup_resets_statistics(self, config):
        trace = build_trace(get_workload("435.gromacs"), 20_000, 1,
                            config.llc.size)
        cold = simulate_cache_only(trace, config, warmup_accesses=0)
        warm = simulate_cache_only(trace, config, warmup_accesses=100)
        assert warm.accesses == cold.accesses - 100
        assert warm.miss_rate <= cold.miss_rate

    def test_pinte_induces_contention(self, lbm, config):
        result = simulate_cache_only(lbm, config,
                                     pinte=PinteConfig(0.5, seed=1))
        assert result.thefts_experienced > 0
        assert result.contention_rate > 0
        assert result.p_induce == 0.5

    def test_rates_bounded(self, lbm, config):
        result = simulate_cache_only(lbm, config, pinte=PinteConfig(0.3))
        assert 0.0 <= result.miss_rate <= 1.0
        assert result.interference_misses <= result.misses

    def test_deterministic(self, lbm, config):
        a = simulate_cache_only(lbm, config, pinte=PinteConfig(0.5, seed=7))
        b = simulate_cache_only(lbm, config, pinte=PinteConfig(0.5, seed=7))
        assert a.misses == b.misses
        assert a.thefts_experienced == b.thefts_experienced


class TestAgreementWithFullSimulator:
    def test_miss_rate_tracks_full_model(self, lbm, config):
        """The fast host's LLC miss rate approximates the full hierarchy's
        for the same workload and contention level."""
        fast = simulate_cache_only(lbm, config, pinte=PinteConfig(0.3, seed=1),
                                   warmup_accesses=2_000)
        full = simulate(lbm, config, pinte=PinteConfig(0.3, seed=1),
                        warmup_instructions=5_000, sim_instructions=15_000)
        assert fast.miss_rate == pytest.approx(full.miss_rate, abs=0.25)

    def test_speed_advantage(self, lbm, config):
        fast = simulate_cache_only(lbm, config, pinte=PinteConfig(0.3))
        full = simulate(lbm, config, pinte=PinteConfig(0.3),
                        warmup_instructions=0, sim_instructions=20_000)
        assert fast.wall_time_seconds < full.wall_time_seconds


class TestSweep:
    def test_sweep_monotone_contention(self, lbm, config):
        results = fast_contention_sweep(lbm, config, (0.05, 0.3, 1.0),
                                        warmup_accesses=1_000)
        rates = [r.contention_rate for r in results]
        assert rates == sorted(rates)
        assert results[-1].contention_rate > results[0].contention_rate
