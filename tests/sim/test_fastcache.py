"""Tests for the cache-only fast host."""

import pytest

from repro.core import PinteConfig
from repro.sim import simulate
from repro.sim.fastcache import fast_contention_sweep, simulate_cache_only
from repro.trace import build_trace, get_workload


@pytest.fixture(scope="module")
def lbm(config):
    return build_trace(get_workload("470.lbm"), 20_000, 1, config.llc.size)


class TestCacheOnly:
    def test_counts_memory_accesses(self, lbm, config):
        result = simulate_cache_only(lbm, config, filter_cache=False)
        memory_ops = sum(1 for r in lbm.records if r.is_memory)
        assert result.accesses == memory_ops

    def test_filter_cache_reduces_llc_traffic(self, lbm, config):
        unfiltered = simulate_cache_only(lbm, config, filter_cache=False)
        filtered = simulate_cache_only(lbm, config, filter_cache=True)
        assert filtered.accesses <= unfiltered.accesses

    def test_warmup_resets_statistics(self, config):
        trace = build_trace(get_workload("435.gromacs"), 20_000, 1,
                            config.llc.size)
        cold = simulate_cache_only(trace, config, warmup_accesses=0)
        warm = simulate_cache_only(trace, config, warmup_accesses=100)
        assert warm.accesses == cold.accesses - 100
        assert warm.miss_rate <= cold.miss_rate

    def test_pinte_induces_contention(self, lbm, config):
        result = simulate_cache_only(lbm, config,
                                     pinte=PinteConfig(0.5, seed=1))
        assert result.thefts_experienced > 0
        assert result.contention_rate > 0
        assert result.p_induce == 0.5

    def test_rates_bounded(self, lbm, config):
        result = simulate_cache_only(lbm, config, pinte=PinteConfig(0.3))
        assert 0.0 <= result.miss_rate <= 1.0
        assert result.interference_misses <= result.misses

    def test_deterministic(self, lbm, config):
        a = simulate_cache_only(lbm, config, pinte=PinteConfig(0.5, seed=7))
        b = simulate_cache_only(lbm, config, pinte=PinteConfig(0.5, seed=7))
        assert a.misses == b.misses
        assert a.thefts_experienced == b.thefts_experienced


class TestWarmupExhaustion:
    """A stream shorter than the warm-up must fail loudly, not silently
    return warm-up-contaminated statistics (the pre-session-layer bug)."""

    def test_warmup_longer_than_stream_raises(self, config):
        # Cache-friendly workload: its LLC access stream is tiny.
        trace = build_trace(get_workload("400.perlbench"), 5_000, 1,
                            config.llc.size)
        with pytest.raises(ValueError, match="warm-up"):
            simulate_cache_only(trace, config, warmup_accesses=1_000_000)

    def test_error_reports_progress(self, lbm, config):
        available = simulate_cache_only(lbm, config).accesses
        with pytest.raises(ValueError,
                           match=f"only {available} of {available + 1}"):
            simulate_cache_only(lbm, config, warmup_accesses=available + 1)

    def test_exact_warmup_boundary_succeeds(self, lbm, config):
        available = simulate_cache_only(lbm, config).accesses
        result = simulate_cache_only(lbm, config, warmup_accesses=available)
        assert result.accesses == 0


class TestMultiOwnerReplay:
    @pytest.fixture(scope="class")
    def mcf(self, config):
        return build_trace(get_workload("429.mcf"), 20_000, 2,
                           config.llc.size)

    def test_co_results_per_owner(self, lbm, mcf, config):
        result = simulate_cache_only(lbm, config, co_traces=[mcf])
        assert len(result.co_results) == 1
        co = result.co_results[0]
        assert co.trace_name == "429.mcf"
        assert co.accesses > 0
        assert 0.0 <= co.miss_rate <= 1.0

    def test_primary_stream_fully_replayed(self, lbm, mcf, config):
        solo = simulate_cache_only(lbm, config)
        shared = simulate_cache_only(lbm, config, co_traces=[mcf])
        # The primary replays its whole access stream either way; only the
        # LLC outcome changes under contention.
        assert shared.accesses == solo.accesses
        assert shared.misses >= solo.misses

    def test_natural_thefts_recorded(self, lbm, mcf, config):
        result = simulate_cache_only(lbm, config, co_traces=[mcf])
        total_thefts = (result.thefts_experienced
                        + sum(co.thefts_experienced
                              for co in result.co_results))
        assert total_thefts > 0

    def test_deterministic(self, lbm, mcf, config):
        a = simulate_cache_only(lbm, config, co_traces=[mcf],
                                pinte=PinteConfig(0.2, seed=3))
        b = simulate_cache_only(lbm, config, co_traces=[mcf],
                                pinte=PinteConfig(0.2, seed=3))
        assert a.misses == b.misses
        assert a.thefts_experienced == b.thefts_experienced
        assert ([co.misses for co in a.co_results]
                == [co.misses for co in b.co_results])

    def test_empty_co_traces_matches_single_owner(self, lbm, config):
        solo = simulate_cache_only(lbm, config)
        empty = simulate_cache_only(lbm, config, co_traces=[])
        assert empty.accesses == solo.accesses
        assert empty.misses == solo.misses
        assert empty.co_results == []


class TestAgreementWithFullSimulator:
    def test_miss_rate_tracks_full_model(self, lbm, config):
        """The fast host's LLC miss rate approximates the full hierarchy's
        for the same workload and contention level."""
        fast = simulate_cache_only(lbm, config, pinte=PinteConfig(0.3, seed=1),
                                   warmup_accesses=2_000)
        full = simulate(lbm, config, pinte=PinteConfig(0.3, seed=1),
                        warmup_instructions=5_000, sim_instructions=15_000)
        assert fast.miss_rate == pytest.approx(full.miss_rate, abs=0.25)

    def test_speed_advantage(self, lbm, config):
        fast = simulate_cache_only(lbm, config, pinte=PinteConfig(0.3))
        full = simulate(lbm, config, pinte=PinteConfig(0.3),
                        warmup_instructions=0, sim_instructions=20_000)
        assert fast.wall_time_seconds < full.wall_time_seconds


class TestSweep:
    def test_sweep_monotone_contention(self, lbm, config):
        results = fast_contention_sweep(lbm, config, (0.05, 0.3, 1.0),
                                        warmup_accesses=1_000)
        rates = [r.contention_rate for r in results]
        assert rates == sorted(rates)
        assert results[-1].contention_rate > results[0].contention_rate
