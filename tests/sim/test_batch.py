"""Tests for the batch runner and job manifests."""

import pytest

from repro.sim import ExperimentScale
from repro.sim.batch import Job, campaign_jobs, run_batch, run_job

TINY = ExperimentScale(warmup_instructions=500, sim_instructions=2_000,
                       sample_interval=500)


class TestJob:
    def test_isolation_default(self):
        job = Job("470.lbm")
        assert job.mode == "isolation"

    def test_pinte_needs_p(self):
        with pytest.raises(ValueError, match="p_induce"):
            Job("470.lbm", mode="pinte")

    def test_pair_needs_co_runner(self):
        with pytest.raises(ValueError, match="co_runner"):
            Job("470.lbm", mode="pair")

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            Job("470.lbm", mode="oracle")


class TestRunJob:
    def test_isolation(self, config):
        result = run_job(Job("435.gromacs"), config, TINY)
        assert result.mode == "isolation"
        assert result.instructions == 2_000

    def test_pinte(self, config):
        result = run_job(Job("470.lbm", mode="pinte", p_induce=0.5),
                         config, TINY)
        assert result.mode == "pinte"
        assert result.thefts_experienced > 0

    def test_pair(self, config):
        result = run_job(Job("470.lbm", mode="pair", co_runner="450.soplex"),
                         config, TINY)
        assert result.mode == "2nd-trace"
        assert result.co_runner == "450.soplex"


class TestRunBatch:
    def test_inline_order_preserved(self, config):
        jobs = [Job("435.gromacs"), Job("453.povray")]
        results = run_batch(jobs, config, TINY, processes=1)
        assert [r.trace_name for r in results] == ["435.gromacs",
                                                   "453.povray"]

    def test_parallel_matches_inline(self, config):
        jobs = [Job("435.gromacs"),
                Job("470.lbm", mode="pinte", p_induce=0.3)]
        inline = run_batch(jobs, config, TINY, processes=1)
        parallel = run_batch(jobs, config, TINY, processes=2)
        for a, b in zip(inline, parallel):
            assert a.trace_name == b.trace_name
            assert a.ipc == b.ipc  # fully deterministic across processes
            assert a.thefts_experienced == b.thefts_experienced

    def test_single_job_runs_inline(self, config):
        results = run_batch([Job("435.gromacs")], config, TINY, processes=8)
        assert len(results) == 1


class TestCampaignJobs:
    def test_three_contexts(self):
        jobs = campaign_jobs(["a", "b"], p_values=(0.1, 0.5),
                             panel={"a": ["b"], "b": ["a"]})
        modes = [(j.workload, j.mode) for j in jobs]
        assert modes.count(("a", "isolation")) == 1
        assert modes.count(("a", "pinte")) == 2
        assert modes.count(("a", "pair")) == 1
        assert len(jobs) == 8

    def test_isolation_optional(self):
        jobs = campaign_jobs(["a"], p_values=(0.5,), include_isolation=False)
        assert all(j.mode == "pinte" for j in jobs)
