"""Tests for result serialisation."""

import json

import pytest

from repro.sim.serialize import (
    load_results,
    result_from_dict,
    result_to_dict,
    results_to_csv,
    save_results,
)


class TestRoundTrip:
    def test_dict_round_trip(self, lbm_pinte):
        clone = result_from_dict(result_to_dict(lbm_pinte))
        assert clone.trace_name == lbm_pinte.trace_name
        assert clone.ipc == lbm_pinte.ipc
        assert clone.p_induce == lbm_pinte.p_induce
        assert clone.reuse_histogram == lbm_pinte.reuse_histogram
        assert clone.extra == lbm_pinte.extra

    def test_samples_survive(self, lbm_pinte):
        clone = result_from_dict(result_to_dict(lbm_pinte))
        assert len(clone.samples) == len(lbm_pinte.samples)
        assert clone.sample_series("ipc") == lbm_pinte.sample_series("ipc")

    def test_file_round_trip(self, tmp_path, lbm_isolation, lbm_pinte):
        path = tmp_path / "results.json"
        assert save_results([lbm_isolation, lbm_pinte], path) == 2
        loaded = load_results(path)
        assert [r.label() for r in loaded] == [lbm_isolation.label(),
                                               lbm_pinte.label()]

    def test_derived_metrics_work_after_load(self, tmp_path, lbm_pinte):
        path = tmp_path / "r.json"
        save_results([lbm_pinte], path)
        loaded = load_results(path)[0]
        assert loaded.llc_mpki == lbm_pinte.llc_mpki
        assert loaded.prefetch_miss_rate == lbm_pinte.prefetch_miss_rate


class TestValidation:
    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "other", "results": []}))
        with pytest.raises(ValueError, match="format"):
            load_results(path)

    def test_unknown_fields_rejected(self, lbm_isolation):
        payload = result_to_dict(lbm_isolation)
        payload["bogus_field"] = 1
        with pytest.raises(ValueError, match="unknown result fields"):
            result_from_dict(payload)


class TestCsv:
    def test_csv_rows(self, tmp_path, lbm_isolation, lbm_pinte):
        path = tmp_path / "r.csv"
        assert results_to_csv([lbm_isolation, lbm_pinte], path) == 2
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        header = lines[0].split(",")
        assert "ipc" in header
        row = lines[2].split(",")
        assert row[header.index("mode")] == "pinte"

    def test_none_fields_empty(self, tmp_path, lbm_isolation):
        path = tmp_path / "r.csv"
        results_to_csv([lbm_isolation], path)
        lines = path.read_text().strip().splitlines()
        header = lines[0].split(",")
        row = lines[1].split(",")
        assert row[header.index("p_induce")] == ""
