"""Unit tests for the 2nd-Trace multicore simulator."""

import pytest

from repro.sim import simulate, simulate_pair
from repro.sim.multicore import ADDRESS_SPACE_STRIDE, _offset_packed, all_pairs
from repro.trace import Trace, TraceRecord, build_trace, get_workload


@pytest.fixture(scope="module")
def soplex_trace(config):
    return build_trace(get_workload("450.soplex"), 6000, 3, config.llc.size)


@pytest.fixture(scope="module")
def pair_result(config, lbm_trace, soplex_trace):
    return simulate_pair(lbm_trace, soplex_trace, config,
                         warmup_instructions=1000, sim_instructions=5000,
                         sample_interval=1000, return_secondary=True)


class TestPairRun:
    def test_mode_and_co_runner(self, pair_result):
        assert pair_result.mode == "2nd-trace"
        assert pair_result.trace_name == "470.lbm"
        assert pair_result.co_runner == "450.soplex"

    def test_primary_instruction_budget(self, pair_result):
        assert pair_result.instructions == 5000

    def test_contention_arises(self, pair_result):
        assert pair_result.thefts_experienced > 0

    def test_secondary_metrics_exported(self, pair_result):
        assert pair_result.extra["secondary_ipc"] > 0
        # Cycle-synchronised scheduling: the secondary retires however many
        # instructions fit the shared timeline, not a fixed budget.
        assert pair_result.extra["secondary_instructions"] > 0

    def test_contention_hurts_llc_bound_primary(self, config, lbm_trace,
                                                gromacs_trace):
        isolation = simulate(lbm_trace, config, warmup_instructions=1000,
                             sim_instructions=5000)
        pair = simulate_pair(lbm_trace, gromacs_trace, config,
                             warmup_instructions=1000, sim_instructions=5000)
        assert pair.ipc <= isolation.ipc

    def test_empty_trace_rejected(self, config, lbm_trace):
        with pytest.raises(ValueError, match="empty"):
            simulate_pair(lbm_trace, Trace("empty", []), config)

    def test_deterministic(self, config, lbm_trace, gromacs_trace):
        a = simulate_pair(lbm_trace, gromacs_trace, config,
                          sim_instructions=3000)
        b = simulate_pair(lbm_trace, gromacs_trace, config,
                          sim_instructions=3000)
        assert a.ipc == b.ipc
        assert a.thefts_experienced == b.thefts_experienced


class TestAddressSpaces:
    def test_core0_unchanged(self, lbm_trace):
        # Zero offset is a zero-copy passthrough of the packed columns.
        assert _offset_packed(lbm_trace, 0) is lbm_trace.packed()

    def test_core1_offset(self, lbm_trace):
        offset = _offset_packed(lbm_trace, 1)
        for original, shifted in zip(lbm_trace.records[:100],
                                     offset.records[:100]):
            assert shifted.pc == original.pc + ADDRESS_SPACE_STRIDE
            if original.load_addr is not None:
                assert shifted.load_addr == original.load_addr + ADDRESS_SPACE_STRIDE

    def test_flags_preserved(self, lbm_trace):
        offset = _offset_packed(lbm_trace, 1)
        assert offset.flags == lbm_trace.packed().flags

    def test_same_workload_can_pair_with_itself(self, config, gromacs_trace):
        result = simulate_pair(gromacs_trace, gromacs_trace, config,
                               sim_instructions=2000)
        assert result.instructions == 2000


class TestAllPairs:
    def test_count(self):
        names = [f"w{i}" for i in range(8)]
        assert len(all_pairs(names)) == 8 * 7 // 2

    def test_unique_unordered(self):
        pairs = all_pairs(["a", "b", "c"])
        assert pairs == [("a", "b"), ("a", "c"), ("b", "c")]

    def test_paper_scale(self):
        """188 traces -> 17,578 unique mixes, as the paper computes."""
        names = [str(i) for i in range(188)]
        assert len(all_pairs(names)) == 17578
