"""Unit tests for result records and samples."""

import pytest

from repro.sim.results import SAMPLE_METRICS, Sample, SimulationResult


def make_sample(**overrides):
    defaults = dict(instructions=1000, cycles=2000, ipc=0.5, llc_accesses=100,
                    llc_misses=20, miss_rate=0.2, amat=15.0, thefts=5,
                    interference=3, contention_rate=0.05,
                    interference_rate=0.03, occupancy=0.4)
    defaults.update(overrides)
    return Sample(**defaults)


def make_result(**overrides):
    defaults = dict(trace_name="w", mode="isolation", instructions=10_000,
                    cycles=20_000, ipc=0.5, miss_rate=0.2, amat=15.0)
    defaults.update(overrides)
    return SimulationResult(**defaults)


class TestSample:
    def test_metric_accessor(self):
        sample = make_sample()
        for name in SAMPLE_METRICS:
            assert sample.metric(name) == getattr(sample, name)

    def test_metric_unknown_raises_with_known_names(self):
        with pytest.raises(ValueError, match="unknown sample metric"):
            make_sample().metric("flops")
        with pytest.raises(ValueError, match="ipc"):
            make_sample().metric("flops")  # the message lists valid names

    def test_metric_returns_float(self):
        sample = make_sample()
        value = sample.metric("instructions")
        assert isinstance(value, float)
        assert value == 1000.0

    def test_zero_cycle_sample_rates_are_zero(self):
        # The sampler guards every divide; a degenerate interval must not
        # produce NaN/inf when rebuilt from serialised data.
        sample = make_sample(instructions=0, cycles=0, llc_accesses=0,
                             llc_misses=0, ipc=0.0, miss_rate=0.0, amat=0.0,
                             contention_rate=0.0, interference_rate=0.0)
        for name in SAMPLE_METRICS:
            assert sample.metric(name) == 0.0


class TestDerivedMetrics:
    def test_l2_mpki(self):
        result = make_result(l2_misses=50, l2_accesses=100)
        assert result.l2_mpki == 5.0

    def test_llc_mpki(self):
        result = make_result(llc_misses=20)
        assert result.llc_mpki == 2.0

    def test_mpki_zero_instructions(self):
        result = make_result(instructions=0, llc_misses=5)
        assert result.llc_mpki == 0.0
        assert result.l2_mpki == 0.0

    def test_l2_miss_rate(self):
        result = make_result(l2_misses=25, l2_accesses=100)
        assert result.l2_miss_rate == 0.25

    def test_l2_miss_rate_no_accesses(self):
        assert make_result().l2_miss_rate == 0.0

    def test_prefetch_miss_rate(self):
        result = make_result(prefetch_issued=10, prefetch_useful=4)
        assert result.prefetch_miss_rate == pytest.approx(0.6)

    def test_prefetch_miss_rate_none_issued(self):
        assert make_result().prefetch_miss_rate == 0.0


class TestSeriesAndLabels:
    def test_sample_series(self):
        result = make_result(samples=[make_sample(ipc=0.1),
                                      make_sample(ipc=0.2)])
        assert result.sample_series("ipc") == [0.1, 0.2]

    def test_sample_series_empty_run(self):
        assert make_result().sample_series("ipc") == []

    def test_sample_series_unknown_metric(self):
        result = make_result(samples=[make_sample()])
        with pytest.raises(ValueError, match="unknown sample metric"):
            result.sample_series("flops")

    def test_label_isolation(self):
        assert make_result().label() == "w@isolation"

    def test_label_pinte(self):
        result = make_result(mode="pinte", p_induce=0.3)
        assert result.label() == "w@pinte(0.3)"

    def test_label_pair(self):
        result = make_result(mode="2nd-trace", co_runner="x")
        assert result.label() == "w+x"
