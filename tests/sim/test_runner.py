"""Unit tests for the sweep runner and trace library."""

import pytest

from repro.sim import (
    ExperimentScale,
    TraceLibrary,
    adversary_panel,
    run_isolation,
    run_pairs,
    run_pinte_sweep,
)

SCALE = ExperimentScale(warmup_instructions=500, sim_instructions=2000,
                        sample_interval=500)


class TestExperimentScale:
    def test_trace_length(self):
        assert SCALE.trace_length == 2500

    def test_defaults(self):
        scale = ExperimentScale()
        assert scale.trace_length == scale.warmup_instructions + scale.sim_instructions


class TestTraceLibrary:
    def test_caches_traces(self, config):
        library = TraceLibrary(config, SCALE)
        a = library.get("435.gromacs")
        b = library.get("435.gromacs")
        assert a is b

    def test_distinct_lengths_distinct_traces(self, config):
        library = TraceLibrary(config, SCALE)
        a = library.get("435.gromacs")
        b = library.get("435.gromacs", length=1000)
        assert a is not b
        assert len(b) == 1000

    def test_trace_named_after_workload(self, config):
        library = TraceLibrary(config, SCALE)
        assert library.get("470.lbm").name == "470.lbm"


class TestRunners:
    def test_run_isolation(self, config):
        results = run_isolation(["435.gromacs", "453.povray"], config, SCALE)
        assert set(results) == {"435.gromacs", "453.povray"}
        assert all(r.mode == "isolation" for r in results.values())

    def test_run_pinte_sweep(self, config):
        sweep = run_pinte_sweep(["435.gromacs"], config, SCALE,
                                p_values=(0.1, 0.5))
        assert set(sweep["435.gromacs"]) == {0.1, 0.5}
        for p, result in sweep["435.gromacs"].items():
            assert result.p_induce == p
            assert result.mode == "pinte"

    def test_run_pairs(self, config):
        pairs = [("435.gromacs", "470.lbm")]
        results = run_pairs(pairs, config, SCALE)
        result = results[("435.gromacs", "470.lbm")]
        assert result.trace_name == "435.gromacs"
        assert result.co_runner == "470.lbm"


class TestAdversaryPanel:
    NAMES = [f"bench{i}" for i in range(10)]

    def test_excludes_target(self):
        panel = adversary_panel("bench3", self.NAMES, 4)
        assert "bench3" not in panel

    def test_size(self):
        assert len(adversary_panel("bench0", self.NAMES, 4)) == 4

    def test_no_duplicates(self):
        for name in self.NAMES:
            panel = adversary_panel(name, self.NAMES, 7)
            assert len(panel) == len(set(panel))

    def test_caps_at_available(self):
        assert len(adversary_panel("bench0", self.NAMES, 100)) == 9

    def test_deterministic(self):
        assert (adversary_panel("bench1", self.NAMES, 4)
                == adversary_panel("bench1", self.NAMES, 4))

    def test_varies_by_target(self):
        panels = {tuple(adversary_panel(n, self.NAMES, 4)) for n in self.NAMES}
        assert len(panels) > 1
