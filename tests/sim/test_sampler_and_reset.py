"""Tests for the sampler internals and warm-up statistics reset."""

import pytest

from repro.cache.hierarchy import MemoryHierarchy, build_llc
from repro.core import ContentionTracker
from repro.cpu import Core
from repro.sim.simulator import _Sampler, _reset_stats, simulate
from repro.trace import Trace, TraceRecord, build_trace, get_workload


def make_rig(config):
    tracker = ContentionTracker()
    llc = build_llc(config)
    hierarchy = MemoryHierarchy(config, 0, llc=llc, tracker=tracker,
                                registry={})
    core = Core(config.core, hierarchy)
    return core, hierarchy, llc, tracker


class TestSampler:
    """The host owns the cadence: ``sample()`` emits exactly when called."""

    def test_sample_emits_unconditionally(self, config):
        # The sampler never second-guesses the host — even a short interval
        # worth of work produces a sample when the host asks for one.
        core, hierarchy, llc, tracker = make_rig(config)
        sampler = _Sampler(core, llc, 0, tracker, interval=1_000)
        for i in range(500):
            core.execute(TraceRecord(0x400000 + (i % 16) * 4))
        sampler.sample()
        assert len(sampler.samples) == 1
        assert sampler.samples[0].instructions == 500

    def test_samples_are_deltas(self, config):
        core, hierarchy, llc, tracker = make_rig(config)
        sampler = _Sampler(core, llc, 0, tracker, interval=1_000)
        for round_ in range(3):
            for i in range(1_000):
                core.execute(TraceRecord(
                    0x400000 + (i % 16) * 4,
                    load_addr=0x100000000 + (round_ * 1_000 + i) * 64))
            sampler.sample()
        assert len(sampler.samples) == 3
        assert all(s.instructions == 1_000 for s in sampler.samples)
        total_cycles = sum(s.cycles for s in sampler.samples)
        assert total_cycles == core.cycle

    def test_sample_metrics_consistent(self, config):
        core, hierarchy, llc, tracker = make_rig(config)
        sampler = _Sampler(core, llc, 0, tracker, interval=500)
        for i in range(500):
            core.execute(TraceRecord(0x400000,
                                     load_addr=0x100000000 + i * 64))
        sampler.sample()
        sample = sampler.samples[0]
        assert sample.llc_misses <= sample.llc_accesses
        assert 0.0 <= sample.occupancy <= 1.0
        assert sample.ipc == pytest.approx(sample.instructions / sample.cycles)


class TestSamplingCadence:
    """One sample per full interval of the measured region — no more, no
    less. The earlier double-gated design (host modulo AND an internal
    instruction-delta re-check) silently dropped samples whenever warm-up
    left the two conditions misaligned."""

    def test_exact_sample_count(self, config, gromacs_trace):
        result = simulate(gromacs_trace, config, sim_instructions=5_000,
                          sample_interval=1_000)
        assert len(result.samples) == 5
        assert all(s.instructions == 1_000 for s in result.samples)

    def test_warmup_not_multiple_of_interval(self, config, gromacs_trace):
        # Warm-up misaligns the retirement counter from the interval grid;
        # the executed-record count alone must still yield 4 full samples.
        result = simulate(gromacs_trace, config, warmup_instructions=1_357,
                          sim_instructions=4_000, sample_interval=1_000)
        assert len(result.samples) == 4
        assert all(s.instructions == 1_000 for s in result.samples)

    def test_partial_tail_interval_flushed(self, config, gromacs_trace):
        # The final 500 instructions don't fill an interval, but they are
        # still measured work — ``finalize()`` flushes them as a short
        # last sample instead of silently dropping them.
        result = simulate(gromacs_trace, config, sim_instructions=2_500,
                          sample_interval=1_000)
        assert len(result.samples) == 3
        assert [s.instructions for s in result.samples] == [1_000, 1_000, 500]
        assert sum(s.cycles for s in result.samples) == result.cycles

    def test_aligned_run_has_no_tail_sample(self, config, gromacs_trace):
        # finalize() is a no-op when the last interval ended exactly at the
        # instruction budget — no empty trailing sample.
        result = simulate(gromacs_trace, config, sim_instructions=3_000,
                          sample_interval=1_000)
        assert len(result.samples) == 3
        assert all(s.instructions == 1_000 for s in result.samples)

    def test_samples_cover_measured_region_exactly(self, config,
                                                   gromacs_trace):
        result = simulate(gromacs_trace, config, warmup_instructions=777,
                          sim_instructions=3_000, sample_interval=1_000)
        assert sum(s.instructions for s in result.samples) == 3_000
        assert sum(s.cycles for s in result.samples) == result.cycles

    def test_pair_host_samples_primary_only(self, config, gromacs_trace,
                                            lbm_trace):
        from repro.sim.multicore import simulate_pair

        result = simulate_pair(gromacs_trace, lbm_trace, config,
                               warmup_instructions=501,
                               sim_instructions=2_000, sample_interval=500)
        assert len(result.samples) == 4
        assert all(s.instructions == 500 for s in result.samples)


class TestResetStats:
    def test_counters_cleared_state_kept(self, config):
        core, hierarchy, llc, tracker = make_rig(config)
        for i in range(64):
            core.execute(TraceRecord(0x400000,
                                     load_addr=0x100000000 + i * 64))
        occupancy_before = llc.occupancy()
        _reset_stats(core, hierarchy, tracker, 0)
        assert core.stats.instructions == 0
        assert hierarchy.l1d.stats.accesses == 0
        assert llc.stats.accesses == 0
        assert tracker.counters(0).llc_accesses == 0
        assert core.predictor.stats.lookups == 0
        # Cache contents survive — that is the whole point of warming.
        assert llc.occupancy() == occupancy_before

    def test_reuse_histograms_cleared(self, config):
        core, hierarchy, llc, tracker = make_rig(config)
        for _ in range(3):
            for i in range(32):
                core.execute(TraceRecord(0x400000,
                                         load_addr=0x100000000 + i * 4096))
        _reset_stats(core, hierarchy, tracker, 0)
        assert sum(llc.reuse_histogram) == 0
        assert sum(llc.owner_reuse_histogram(0)) == 0


class TestSimulateEdgeCases:
    def test_zero_sim_instructions(self, config, gromacs_trace):
        result = simulate(gromacs_trace, config, warmup_instructions=100,
                          sim_instructions=0)
        assert result.instructions == 0
        assert result.ipc == 0.0

    def test_sample_interval_larger_than_run(self, config, gromacs_trace):
        # A run shorter than one interval still yields its (partial) sample
        # via the tail flush — previously these runs lost all sample data.
        result = simulate(gromacs_trace, config, sim_instructions=500,
                          sample_interval=10_000)
        assert len(result.samples) == 1
        assert result.samples[0].instructions == 500
        assert result.instructions == 500

    def test_xeon_preset_runs(self):
        from repro.config import xeon_config

        config = xeon_config()
        trace = build_trace(get_workload("619.lbm"), 4_000, 1,
                            config.llc.size)
        result = simulate(trace, config, sim_instructions=3_000)
        assert result.instructions == 3_000
        assert result.ipc > 0
