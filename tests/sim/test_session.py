"""Tests for the unified simulation-session core.

The session layer promises two things the hosts rely on:

* *parity* — blocked single-core execution and batched multicore
  scheduling are pure mechanical optimisations, bit-identical to their
  stepwise forms for every configuration where they are legal;
* *legality* — anything that needs a live per-instruction clock (the
  periodic PInTE trigger, background DRAM traffic, event timestamps)
  refuses the fast path loudly instead of silently drifting.

The parity checks are seeded property tests: random workload / policy /
PInTE / budget combinations, each run through both modes and compared on
every counter a scheduling change could disturb.
"""

import random

import pytest

from repro.config import scaled_config
from repro.core import PinteConfig
from repro.sim.multicore import simulate_multiprogrammed, simulate_pair
from repro.sim.session import (
    MultiCoreStepper,
    SessionBuilder,
    SingleCoreStepper,
    drive,
)
from repro.trace import build_trace, get_workload
from repro.trace.packed import as_packed

WORKLOADS = ("470.lbm", "429.mcf", "435.gromacs")
POLICIES = ("lru", "rrip", "plru")


@pytest.fixture(scope="module")
def traces(config):
    return {name: build_trace(get_workload(name), 8_000, 11, config.llc.size)
            for name in WORKLOADS}


def _observables(session):
    """Every counter a scheduling change could disturb, all cores."""
    per_core = []
    for owner, (core, hierarchy) in enumerate(zip(session.cores,
                                                  session.hierarchies)):
        counters = session.tracker.counters(owner)
        per_core.append((
            core.cycle, core.stats.instructions,
            hierarchy.l1d.stats.misses, hierarchy.l2.stats.misses,
            counters.llc_accesses, counters.llc_misses,
            counters.thefts_experienced, counters.interference_misses,
        ))
    llc = session.llc
    engine = session.engine
    return (tuple(per_core), llc.stats.hits, llc.stats.misses,
            llc.stats.writebacks, tuple(llc.reuse_histogram),
            engine.stats.invalidations if engine else 0,
            engine._rng.draws if engine else 0)


class TestSingleCoreParity:
    def _run(self, config, trace, pinte, warmup, sim, blocked):
        session = (SessionBuilder(config, seed=5)
                   .with_pinte(pinte)
                   .build_timing(1))
        stepper = SingleCoreStepper(session, as_packed(trace),
                                    blocked=blocked)
        drive(session, stepper, warmup=warmup, total=sim,
              sample_interval=1_000)
        return _observables(session)

    def test_blocked_matches_stepwise_randomised(self, traces):
        """Seeded property test: random config combos, both modes agree."""
        rng = random.Random(0xB10C)
        for case in range(8):
            workload = rng.choice(WORKLOADS)
            policy = rng.choice(POLICIES)
            p = rng.choice((None, 0.1, 0.5))
            pinte = PinteConfig(p, seed=rng.randrange(100)) if p else None
            warmup = rng.choice((0, 500, 1_700))
            sim = rng.randrange(2_000, 6_000)
            config = scaled_config().with_llc_policy(policy)
            label = f"case {case}: {workload}/{policy}/p={p}/{warmup}+{sim}"
            blocked = self._run(config, traces[workload], pinte,
                                warmup, sim, blocked=True)
            stepwise = self._run(config, traces[workload], pinte,
                                 warmup, sim, blocked=False)
            assert blocked == stepwise, label

    def test_blocked_is_the_default_without_hooks(self, config, traces):
        session = SessionBuilder(config, seed=5).build_timing(1)
        stepper = SingleCoreStepper(session, as_packed(traces["470.lbm"]))
        assert stepper.blocked

    def test_periodic_hook_forces_stepwise(self, config, traces):
        pinte = PinteConfig(0.3, seed=1, trigger="periodic")
        session = (SessionBuilder(config, seed=5)
                   .with_pinte(pinte)
                   .build_timing(1))
        stepper = SingleCoreStepper(session, as_packed(traces["470.lbm"]))
        assert not stepper.blocked
        with pytest.raises(ValueError, match="live-clock hooks"):
            SingleCoreStepper(session, as_packed(traces["470.lbm"]),
                              blocked=True)

    def test_event_trace_forces_stepwise(self, config, traces):
        from repro.obs import Observation
        observe = Observation.with_events()
        session = (SessionBuilder(config, seed=5)
                   .with_observation(observe)
                   .build_timing(1))
        stepper = SingleCoreStepper(session, as_packed(traces["470.lbm"]))
        assert not stepper.blocked
        with pytest.raises(ValueError, match="event trace"):
            SingleCoreStepper(session, as_packed(traces["470.lbm"]),
                              blocked=True)
        session.detach_events()


class TestMultiCoreParity:
    def _run(self, config, streams, pinte, warmup, sim, batched,
             partitioner=False):
        builder = SessionBuilder(config, seed=5).with_pinte(pinte)
        if partitioner:
            from repro.cache.partition import make_partitioner
            n_ways = config.llc.assoc
            n_sets = config.llc.size // (n_ways * config.block_size)
            builder.with_partitioner(
                make_partitioner("ucp", n_sets, n_ways,
                                 owners=list(range(len(streams))),
                                 sampling=4),
                repartition_interval=2_000)
        session = builder.build_timing(len(streams))
        stepper = MultiCoreStepper(session, streams, batched=batched)
        drive(session, stepper, warmup=warmup, total=sim,
              sample_interval=1_000)
        return _observables(session)

    def test_batched_matches_stepwise_randomised(self, traces):
        """Random pair/triple mixes: the hoisted-min schedule is identical."""
        rng = random.Random(0x5E55)
        for case in range(6):
            names = rng.sample(WORKLOADS, rng.choice((2, 2, 3)))
            policy = rng.choice(POLICIES)
            p = rng.choice((None, 0.2))
            pinte = PinteConfig(p, seed=rng.randrange(100)) if p else None
            partitioner = rng.random() < 0.4
            warmup = rng.choice((0, 800))
            sim = rng.randrange(2_000, 5_000)
            config = scaled_config().with_llc_policy(policy)
            from repro.sim.session import ADDRESS_SPACE_STRIDE
            streams = [
                as_packed(traces[name]).offset(i * ADDRESS_SPACE_STRIDE)
                for i, name in enumerate(names)]
            label = f"case {case}: {names}/{policy}/p={p}/{warmup}+{sim}"
            batched = self._run(config, streams, pinte, warmup, sim,
                                batched=True, partitioner=partitioner)
            stepwise = self._run(config, streams, pinte, warmup, sim,
                                 batched=False, partitioner=partitioner)
            assert batched == stepwise, label

    def test_hooks_force_stepwise(self, config, traces):
        pinte = PinteConfig(0.3, seed=1, trigger="periodic")
        session = (SessionBuilder(config, seed=5)
                   .with_pinte(pinte)
                   .build_timing(2))
        streams = [as_packed(traces["470.lbm"]),
                   as_packed(traces["429.mcf"])]
        stepper = MultiCoreStepper(session, streams)
        assert not stepper.batched
        with pytest.raises(ValueError, match="live-clock hooks"):
            MultiCoreStepper(session, streams, batched=True)

    def test_stream_count_must_match_cores(self, config, traces):
        session = SessionBuilder(config, seed=5).build_timing(2)
        with pytest.raises(ValueError, match="streams for"):
            MultiCoreStepper(session, [as_packed(traces["470.lbm"])])


class TestHybridContext:
    """PInTE layered on real co-runner contention — the context the
    unified session core unlocked."""

    @pytest.fixture(scope="class")
    def hybrid(self, config, lbm_trace, gromacs_trace):
        return simulate_pair(lbm_trace, gromacs_trace, config,
                             warmup_instructions=1_000,
                             sim_instructions=4_000,
                             pinte=PinteConfig(0.4, seed=2))

    def test_mode_and_label(self, hybrid):
        assert hybrid.mode == "hybrid"
        assert hybrid.p_induce == 0.4
        assert hybrid.co_runner == "435.gromacs"
        assert hybrid.label() == "470.lbm+435.gromacs@pinte(0.4)"

    def test_engine_extras_on_primary(self, hybrid):
        assert hybrid.extra["pinte_triggers"] > 0

    def test_induced_contention_on_top_of_real(self, config, lbm_trace,
                                               gromacs_trace):
        plain = simulate_pair(lbm_trace, gromacs_trace, config,
                              warmup_instructions=1_000,
                              sim_instructions=4_000)
        hybrid = simulate_pair(lbm_trace, gromacs_trace, config,
                               warmup_instructions=1_000,
                               sim_instructions=4_000,
                               pinte=PinteConfig(0.6, seed=2))
        assert hybrid.thefts_experienced > plain.thefts_experienced

    def test_multiprogrammed_hybrid_marks_every_core(self, config, lbm_trace,
                                                     gromacs_trace,
                                                     povray_trace):
        results = simulate_multiprogrammed(
            [lbm_trace, gromacs_trace, povray_trace], config,
            warmup_instructions=500, sim_instructions=3_000,
            pinte=PinteConfig(0.3, seed=2))
        assert all(r.mode == "hybrid" for r in results)
        assert all(r.p_induce == 0.3 for r in results)

    def test_deterministic(self, config, lbm_trace, gromacs_trace):
        a = simulate_pair(lbm_trace, gromacs_trace, config,
                          sim_instructions=3_000,
                          pinte=PinteConfig(0.4, seed=9))
        b = simulate_pair(lbm_trace, gromacs_trace, config,
                          sim_instructions=3_000,
                          pinte=PinteConfig(0.4, seed=9))
        assert a.ipc == b.ipc
        assert a.thefts_experienced == b.thefts_experienced

    def test_hybrid_job_runs(self, config, tiny_scale):
        from repro.sim.batch import Job, run_job
        job = Job("470.lbm", mode="pair", co_runner="435.gromacs",
                  p_induce=0.4)
        result = run_job(job, config, tiny_scale)
        assert result.mode == "hybrid"
        assert result.p_induce == 0.4
