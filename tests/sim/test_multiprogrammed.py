"""Tests for N-core multi-programmed simulation."""

import pytest

from repro.sim.multicore import simulate_multiprogrammed
from repro.trace import build_trace, get_workload


@pytest.fixture(scope="module")
def traces(config):
    names = ("450.soplex", "470.lbm", "435.gromacs", "453.povray")
    return [build_trace(get_workload(name), 8_000, 1 + i, config.llc.size)
            for i, name in enumerate(names)]


@pytest.fixture(scope="module")
def four_core(traces, config):
    return simulate_multiprogrammed(traces, config,
                                    warmup_instructions=1_000,
                                    sim_instructions=5_000,
                                    sample_interval=1_000)


class TestFourCores:
    def test_one_result_per_core(self, four_core, traces):
        assert len(four_core) == 4
        assert [r.trace_name for r in four_core] == [t.name for t in traces]

    def test_primary_budget_respected(self, four_core):
        assert four_core[0].instructions == 5_000

    def test_secondary_counts_follow_speed(self, four_core):
        """povray (fast, core-bound) retires far more instructions per unit
        of shared time than the slow streaming workloads."""
        by_name = {r.trace_name: r for r in four_core}
        assert (by_name["453.povray"].instructions
                > by_name["470.lbm"].instructions)

    def test_contention_among_llc_bound(self, four_core):
        by_name = {r.trace_name: r for r in four_core}
        assert by_name["450.soplex"].thefts_experienced > 0
        assert by_name["470.lbm"].thefts_caused > 0

    def test_samples_only_for_primary(self, four_core):
        assert len(four_core[0].samples) == 5
        assert all(not r.samples for r in four_core[1:])

    def test_co_runner_labels(self, four_core):
        assert four_core[0].co_runner == "470.lbm+435.gromacs+453.povray"
        assert four_core[1].co_runner == "450.soplex"

    def test_all_modes_second_trace(self, four_core):
        assert all(r.mode == "2nd-trace" for r in four_core)


class TestValidation:
    def test_needs_two_traces(self, traces, config):
        with pytest.raises(ValueError, match="at least 2"):
            simulate_multiprogrammed(traces[:1], config)


class TestScalingBehaviour:
    def test_more_cores_more_contention(self, traces, config):
        """The paper's motivation: higher core counts raise contention.
        soplex experiences more thefts with three adversaries than one."""
        two = simulate_multiprogrammed(traces[:2], config,
                                       warmup_instructions=1_000,
                                       sim_instructions=5_000)
        four = simulate_multiprogrammed(traces, config,
                                        warmup_instructions=1_000,
                                        sim_instructions=5_000)
        assert four[0].contention_rate >= two[0].contention_rate * 0.8

    def test_more_cores_cost_more_wall_time(self, traces, config):
        two = simulate_multiprogrammed(traces[:2], config,
                                       sim_instructions=4_000)
        four = simulate_multiprogrammed(traces, config,
                                        sim_instructions=4_000)
        assert four[0].wall_time_seconds > two[0].wall_time_seconds
