"""Tests for the partitioning extension study."""

import pytest

from repro.experiments import partition_study
from repro.sim import ExperimentScale

TINY = ExperimentScale(warmup_instructions=1_500, sim_instructions=8_000,
                       sample_interval=2_000)


@pytest.fixture(scope="module")
def study(config):
    return partition_study.run_partition_study(
        config, TINY, repartition_interval=2_000)


class TestStudy:
    def test_all_schemes_present(self, study):
        assert set(study.outcomes) == set(partition_study.SCHEMES)

    def test_shared_suffers_thefts(self, study):
        assert study.outcome("shared").victim_thefts > 0

    def test_static_eliminates_thefts(self, study):
        assert study.outcome("static").victim_thefts == 0

    def test_casht_eliminates_thefts(self, study):
        assert study.outcome("casht").victim_thefts == 0

    def test_partitioning_improves_fairness(self, study):
        shared_fairness = study.outcome("shared").throughput["fairness"]
        static_fairness = study.outcome("static").throughput["fairness"]
        assert static_fairness > shared_fairness

    def test_quotas_reported_for_partitioned_schemes(self, study, config):
        assert study.outcome("shared").final_quotas == {}
        static_quotas = study.outcome("static").final_quotas
        assert sum(static_quotas.values()) == config.llc.assoc

    def test_throughput_keys(self, study):
        for outcome in study.outcomes.values():
            assert set(outcome.throughput) == {
                "weighted_speedup", "harmonic_mean_speedup", "fairness"}

    def test_report_renders(self, study):
        text = partition_study.format_report(study)
        assert "Partitioning study" in text
        assert "casht" in text

    def test_unknown_scheme_rejected(self, config):
        with pytest.raises(ValueError, match="unknown scheme"):
            partition_study.run_partition_study(
                config, TINY, schemes=("nucp",))
