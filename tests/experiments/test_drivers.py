"""Tests for the per-table/figure experiment drivers (on the tiny bundle)."""

import pytest

from repro.experiments import (
    fig1,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    table1,
    table2,
)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self, tiny_bundle):
        return table1.run_table1(tiny_bundle)

    def test_row_counts(self, result, tiny_bundle):
        by_source = {row.source: row for row in result.rows}
        n = len(tiny_bundle.names)
        assert by_source["None"].n_sims == n
        assert by_source["PInTE"].n_sims == n * 5
        assert by_source["2nd-Trace"].n_sims == n * 2

    def test_totals_consistent(self, result):
        for row in result.rows:
            assert row.total == pytest.approx(row.avg * row.n_sims)
            assert row.min <= row.avg <= row.max

    def test_pair_sims_slower_on_average(self, result):
        by_source = {row.source: row for row in result.rows}
        assert by_source["2nd-Trace"].avg > by_source["None"].avg

    def test_analytic_counts_match_paper(self, result):
        assert result.analytic["2nd-Trace"] == 17578
        assert result.analytic["None"] == 188

    def test_experiment_ratio_shape(self, result):
        """Fewer PInTE experiments than all-pairs (paper: 7.79x at 12 cfgs)."""
        assert result.experiment_ratio > 1.0

    def test_report_renders(self, result):
        text = table1.format_report(result)
        assert "Table I" in text
        assert "PInTE" in text


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self, tiny_bundle):
        return fig1.run_fig1(tiny_bundle)

    def test_histograms_count_everything(self, result):
        assert sum(result.pair_histogram) == len(result.pair_rates)
        assert sum(result.pinte_histogram) == len(result.pinte_rates)

    def test_pinte_coverage_at_least_pairs(self, result):
        assert result.occupied_bins("pinte") >= result.occupied_bins("pairs")

    def test_rates_clamped(self, result):
        assert all(0.0 <= rate <= 1.0 for rate in result.pinte_rates)

    def test_report_renders(self, result):
        text = fig1.format_report(result)
        assert "Fig 1a" in text and "Fig 1b" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self, tiny_bundle):
        return table2.run_table2(tiny_bundle)

    def test_row_per_benchmark(self, result, tiny_bundle):
        assert [row.benchmark for row in result.rows] == tiny_bundle.names

    def test_summary_suites(self, result):
        assert set(result.summary) == {"2006", "2017", "all"}

    def test_errors_finite(self, result):
        for row in result.rows:
            assert abs(row.ipc) < 1e6
            assert abs(row.amat) < 1e6

    def test_report_renders(self, result):
        text = table2.format_report(result)
        assert "Table II" in text
        assert "IPC" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self, tiny_bundle):
        return fig5.run_fig5(tiny_bundle, workloads=("435.gromacs", "470.lbm"))

    def test_comparisons_built(self, result):
        assert {c.benchmark for c in result.comparisons} == {"435.gromacs",
                                                             "470.lbm"}

    def test_kl_non_negative(self, result):
        assert all(c.kl_bits >= 0 for c in result.comparisons)

    def test_histogram_arity_matches_assoc(self, result, config):
        for comparison in result.comparisons:
            assert len(comparison.pair_histogram) == config.llc.assoc

    def test_sorted_by_alignment(self, result):
        ordered = result.sorted_by_alignment()
        assert ordered[0].kl_bits <= ordered[-1].kl_bits

    def test_unknown_workloads_rejected(self, tiny_bundle):
        with pytest.raises(ValueError):
            fig5.run_fig5(tiny_bundle, workloads=("999.nope",))

    def test_report_renders(self, result):
        assert "reuse under PInTE" in fig5.format_report(result)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self, tiny_bundle):
        return fig6.run_fig6(tiny_bundle)

    def test_kl_per_benchmark(self, result, tiny_bundle):
        # Every benchmark either produced a KL value or was explicitly
        # reported as having no reuse signal at this scale.
        covered = set(result.kl_by_benchmark) | set(result.no_signal)
        assert covered == set(tiny_bundle.names)
        assert set(result.kl_by_benchmark).isdisjoint(result.no_signal)

    def test_thresholds_ordered(self, result):
        t99, t95, t90 = result.thresholds
        assert t99 <= t95 <= t90

    def test_within_threshold_monotone(self, result):
        t99, t95, t90 = result.thresholds
        assert (result.within_threshold(t99) <= result.within_threshold(t95)
                <= result.within_threshold(t90))

    def test_root_cause_stats_present(self, result):
        for stats in result.root_cause.values():
            assert set(stats) == {"l2_mpki", "llc_mpki", "writeback_share"}

    def test_report_renders(self, result):
        assert "Fig 6a" in fig6.format_report(result)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self, tiny_bundle):
        return fig7.run_fig7(tiny_bundle)

    def test_kl_values_non_negative(self, result):
        for values in result.kl_by_metric.values():
            assert all(v >= 0 for v in values)

    def test_coverage_criteria(self, result):
        assert set(result.coverage_by_criterion) == {0.05, 0.10, 0.20}

    def test_coverage_monotone_in_width(self, result):
        c = result.coverage_by_criterion
        assert c[0.05] <= c[0.10] <= c[0.20]

    def test_report_renders(self, result):
        assert "Fig 7a" in fig7.format_report(result)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self, tiny_bundle):
        return fig8.run_fig8(tiny_bundle)

    def test_entry_per_benchmark(self, result, tiny_bundle):
        assert {e.benchmark for e in result.per_benchmark} == set(tiny_bundle.names)

    def test_llc_bound_is_sensitive(self, result):
        entry = result.by_name("470.lbm")
        assert entry.pinte_report.classification == "high"

    def test_core_bound_is_insensitive(self, result):
        entry = result.by_name("453.povray")
        assert entry.pinte_report.classification == "low"

    def test_scp_in_unit_range(self, result):
        for entry in result.per_benchmark:
            assert 0.0 <= entry.pinte_report.scp <= 1.0

    def test_shares_sum_to_one(self, result):
        shares = result.shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_report_renders(self, result):
        assert "Fig 8" in fig8.format_report(result)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self, tiny_bundle):
        return fig9.run_fig9(tiny_bundle)

    def test_stats_per_benchmark(self, result):
        for stats in result.per_benchmark.values():
            assert stats["pair"]["median"] > 0
            assert stats["pinte"]["median"] > 0

    def test_median_gap_non_negative(self, result):
        for name in result.per_benchmark:
            assert result.median_gap(name) >= 0

    def test_report_renders(self, result):
        assert "Fig 9" in fig9.format_report(result)
