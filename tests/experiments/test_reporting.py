"""Unit tests for the plain-text reporting helpers."""

import pytest

from repro.experiments.reporting import (
    format_histogram,
    format_series,
    format_table,
    percent,
)


class TestFormatTable:
    def test_headers_and_rows(self):
        text = format_table(["A", "B"], [(1, 2.5), ("x", "y")])
        lines = text.splitlines()
        assert lines[0].startswith("A")
        assert "2.500" in text
        assert "x" in lines[3]

    def test_title(self):
        text = format_table(["A"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_alignment(self):
        text = format_table(["Name", "V"], [("longbenchname", 1)])
        header, rule, row = text.splitlines()
        assert len(header) == len(rule)

    def test_large_floats_compact(self):
        text = format_table(["V"], [(12345.678,)])
        assert "12345.7" in text


class TestFormatHistogram:
    def test_bars_scale(self):
        text = format_histogram([1, 2, 4], ["a", "b", "c"], width=4)
        lines = text.splitlines()
        assert lines[0].count("#") == 1
        assert lines[2].count("#") == 4

    def test_zero_peak(self):
        text = format_histogram([0, 0], ["a", "b"])
        assert "#" not in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            format_histogram([1], ["a", "b"])


class TestFormatSeries:
    def test_pairs_rendered(self):
        text = format_series([0.1, 0.2], [1.0, 0.9], "curve")
        assert "curve" in text
        assert "0.100" in text


class TestPercent:
    def test_format(self):
        assert percent(0.5) == "50.0%"
        assert percent(0.923) == "92.3%"
