"""Tests for the declarative artifact registry (plan/aggregate/render)."""

import dataclasses

import pytest

from repro.experiments import (
    contexts,
    fig3,
    fig10,
    fig11,
    ncore_study,
    partition_study,
    registry,
)
from repro.experiments.registry import (
    Artifact,
    PlanContext,
    PlannedJob,
    REGISTRY,
    ResultMap,
    artifact_names,
    execute_plan,
    get_artifact,
    plan_bundle,
    plan_union,
    register,
)
from repro.sim import ExperimentScale
from repro.sim.batch import Job

TINY = ExperimentScale(warmup_instructions=500, sim_instructions=2_000,
                       sample_interval=500, seed=7)
SUITE = ("435.gromacs", "453.povray", "470.lbm", "605.mcf")
P_VALUES = (0.05, 0.3, 1.0)

ALL_ARTIFACTS = ("table1", "fig1", "table2", "fig5", "fig6", "fig7", "fig8",
                 "fig9", "fig3", "fig10", "fig11", "ncore_study",
                 "partition_study")


@pytest.fixture()
def ctx(config):
    return PlanContext(config=config, scale=TINY, suite=SUITE,
                       p_values=P_VALUES, panel_size=2)


class TestRegistryContents:
    def test_all_thirteen_artifacts_registered(self):
        assert artifact_names() == list(ALL_ARTIFACTS)

    def test_titles_non_empty(self):
        for name in artifact_names():
            assert get_artifact(name).title.strip(), name

    def test_unknown_artifact_lists_registered(self):
        with pytest.raises(KeyError, match="unknown artifact 'fig99'.*table1"):
            get_artifact("fig99")

    def test_duplicate_registration_rejected(self):
        artifact = REGISTRY["table1"]
        with pytest.raises(ValueError, match="already registered"):
            register(Artifact(name="table1", title="dup",
                              plan=artifact.plan, aggregate=artifact.aggregate,
                              render=artifact.render))


class TestPlanContext:
    def test_coerces_sequences_to_tuples(self, config):
        ctx = PlanContext(config=config, scale=TINY,
                          suite=["470.lbm"], p_values=[0.5])
        assert ctx.suite == ("470.lbm",)
        assert ctx.p_values == (0.5,)


class TestPlanPurity:
    """plan() must enumerate jobs without simulating or building traces."""

    @pytest.fixture()
    def no_simulation(self, monkeypatch):
        def forbidden(*args, **kwargs):
            raise AssertionError("plan() must not simulate or build traces")

        targets = [contexts, fig3, fig10, fig11, ncore_study, partition_study]
        attrs = ("simulate", "simulate_pair", "simulate_multiprogrammed",
                 "TraceLibrary", "run_isolation", "run_pinte_sweep",
                 "run_pairs", "build_trace")
        for module in targets:
            for attr in attrs:
                if hasattr(module, attr):
                    monkeypatch.setattr(module, attr, forbidden)
        import repro.sim.batch as batch
        monkeypatch.setattr(batch, "run_job", forbidden)
        import repro.trace.synthetic as synthetic
        monkeypatch.setattr(synthetic, "build_packed", forbidden)

    def test_every_plan_is_pure_and_non_empty(self, ctx, no_simulation):
        for name in artifact_names():
            planned = get_artifact(name).plan(ctx)
            assert planned, name
            assert all(isinstance(item, PlannedJob) for item in planned)

    def test_union_planning_is_pure(self, ctx, no_simulation):
        plan = plan_union(artifact_names(), ctx)
        assert plan.unique_total > 0


class TestPlannedJobs:
    def test_bundle_plan_matches_build_contexts_job_list(self, ctx):
        planned = plan_bundle(ctx)
        jobs = [item.job for item in planned]
        # isolation first, then the sweep, then the panel pairs
        assert jobs[:4] == [Job(name) for name in SUITE]
        assert all(job.mode == "pinte" for job in jobs[4:16])
        assert all(job.mode == "pair" and job.co_seed == TINY.seed
                   for job in jobs[16:])
        assert len(jobs) == 4 + 4 * len(P_VALUES) + 4 * 2

    def test_ids_are_stable_and_distinct(self, ctx):
        planned = plan_bundle(ctx)
        ids = [item.id for item in planned]
        assert len(set(ids)) == len(ids)
        assert ids == [item.id for item in plan_bundle(ctx)]

    def test_panel_size_zero_plans_no_pairs(self, config):
        ctx = PlanContext(config=config, scale=TINY, suite=SUITE,
                          p_values=P_VALUES, panel_size=0)
        assert all(item.job.mode != "pair" for item in plan_bundle(ctx))


class TestUnionPlan:
    def test_bundle_artifacts_fully_dedup(self, ctx):
        bundle_names = ["table1", "fig1", "table2", "fig5", "fig6", "fig7",
                        "fig8", "fig9"]
        plan = plan_union(bundle_names, ctx)
        assert plan.unique_total == len(plan_bundle(ctx))
        assert plan.planned_total == 8 * plan.unique_total
        assert plan.dedup_ratio == pytest.approx(8.0)

    def test_partition_study_shares_the_victim_isolation(self, config):
        ctx = PlanContext(config=config, scale=TINY,
                          suite=("450.soplex", "470.lbm"),
                          p_values=P_VALUES, panel_size=0)
        plan = plan_union(["table1", "partition_study"], ctx)
        # 450.soplex's isolation job is planned by both artifacts but
        # executes once.
        assert plan.planned_total == plan.unique_total + 1

    def test_empty_plan_ratio_is_one(self):
        from repro.experiments.registry import UnionPlan
        empty = UnionPlan(artifacts=(), per_artifact={}, unique=[])
        assert empty.dedup_ratio == 1.0

    def test_unknown_artifact_rejected(self, ctx):
        with pytest.raises(KeyError, match="unknown artifact"):
            plan_union(["fig99"], ctx)


class TestResultMap:
    def test_missing_id_error_names_the_id(self):
        results = ResultMap({})
        with pytest.raises(KeyError, match="no result for job id deadbeef"):
            results.for_id("deadbeef")

    def test_contains_and_len(self, ctx):
        results = ResultMap({"abc": object()})
        assert "abc" in results
        assert len(results) == 1


class TestExecutePlan:
    @pytest.fixture(scope="class")
    def small_ctx(self, config):
        return PlanContext(config=config, scale=TINY,
                           suite=("435.gromacs", "470.lbm"),
                           p_values=(0.5,), panel_size=1)

    def test_results_cover_every_planned_job(self, small_ctx):
        plan = plan_union(["fig1"], small_ctx)
        outcome = execute_plan(plan)
        assert outcome.ok
        assert outcome.executed == plan.unique_total
        for item in plan.unique:
            assert item.id in outcome.results

    def test_store_and_resume_skip_completed_jobs(self, small_ctx, tmp_path):
        plan = plan_union(["fig1"], small_ctx)
        store = tmp_path / "results.jsonl"
        first = execute_plan(plan, store=store)
        assert first.executed == plan.unique_total
        resumed = execute_plan(plan, store=store, resume=True)
        assert resumed.executed == 0
        assert resumed.skipped == plan.unique_total
        # The resumed ResultMap rebuilds the same artifact byte-for-byte.
        artifact = get_artifact("fig1")
        assert (artifact.report(small_ctx, resumed.results)
                == artifact.report(small_ctx, first.results))

    def test_injected_fault_is_recorded_not_raised(self, small_ctx):
        from repro.campaign.engine import RetryPolicy

        plan = plan_union(["fig1"], small_ctx)
        outcome = execute_plan(plan, inject="raise", raise_on_failure=False,
                               retry=RetryPolicy(max_attempts=1))
        assert outcome.failed == 1
        assert outcome.executed == plan.unique_total
        assert not outcome.ok

    def test_multi_context_plans_execute_in_groups(self, small_ctx):
        plan = plan_union(["partition_study"], small_ctx)
        outcome = execute_plan(plan)
        assert outcome.ok
        report = get_artifact("partition_study").report(small_ctx,
                                                        outcome.results)
        assert "Partitioning study" in report


class TestAggregateReconstruction:
    def test_bundle_roundtrip_matches_direct_bundle(self, tiny_bundle):
        """bundle_from_results over planned-and-executed jobs rebuilds the
        same structure build_contexts produced (spot-check via fig1)."""
        from repro.experiments import fig1
        from repro.experiments.registry import bundle_from_results

        ctx = PlanContext(config=tiny_bundle.config, scale=tiny_bundle.scale,
                          suite=tuple(tiny_bundle.names),
                          p_values=tuple(next(iter(
                              tiny_bundle.pinte.values()))),
                          panel_size=2)
        plan = plan_union(["fig1"], ctx)
        outcome = execute_plan(plan)
        rebuilt = bundle_from_results(ctx, outcome.results)
        assert rebuilt.names == tiny_bundle.names
        assert (fig1.format_report(fig1.run_fig1(rebuilt))
                == fig1.format_report(fig1.run_fig1(tiny_bundle)))
