"""Unit tests for the shared context bundle."""

from repro.experiments.contexts import ContextBundle, build_contexts


class TestBundleContents:
    def test_names(self, tiny_bundle):
        assert tiny_bundle.names == ["435.gromacs", "453.povray", "470.lbm",
                                     "605.mcf"]

    def test_isolation_per_name(self, tiny_bundle):
        assert set(tiny_bundle.isolation) == set(tiny_bundle.names)

    def test_pinte_sweep_per_name(self, tiny_bundle):
        for name in tiny_bundle.names:
            assert len(tiny_bundle.pinte[name]) == 5

    def test_pairs_panel_size(self, tiny_bundle):
        for name in tiny_bundle.names:
            assert len(tiny_bundle.pair_results(name)) == 2

    def test_pair_primary_is_name(self, tiny_bundle):
        for name in tiny_bundle.names:
            for result in tiny_bundle.pair_results(name):
                assert result.trace_name == name
                assert result.co_runner != name

    def test_accessors(self, tiny_bundle):
        n = len(tiny_bundle.names)
        assert len(tiny_bundle.all_isolation()) == n
        assert len(tiny_bundle.all_pinte()) == n * 5
        assert len(tiny_bundle.all_pairs()) == n * 2

    def test_modes(self, tiny_bundle):
        assert all(r.mode == "isolation" for r in tiny_bundle.all_isolation())
        assert all(r.mode == "pinte" for r in tiny_bundle.all_pinte())
        assert all(r.mode == "2nd-trace" for r in tiny_bundle.all_pairs())


class TestBuildOptions:
    def test_pairs_optional(self, config, tiny_scale):
        bundle = build_contexts(["435.gromacs"], config, tiny_scale,
                                p_values=(0.5,), include_pairs=False)
        assert bundle.pairs == {}
        assert bundle.pair_results("435.gromacs") == []

    def test_parallel_bundle_matches_serial(self, config, tiny_scale):
        """Campaign-engine fan-out must be bit-identical to the serial
        path (pair jobs pin the serial runners' trace seeds)."""
        from repro.sim.serialize import result_to_dict

        names = ["435.gromacs", "470.lbm"]
        serial = build_contexts(names, config, tiny_scale, p_values=(0.5,),
                                panel_size=1)
        parallel = build_contexts(names, config, tiny_scale, p_values=(0.5,),
                                  panel_size=1, processes=2)

        def comparable(result):
            record = result_to_dict(result)
            record.pop("wall_time_seconds", None)
            # Wall-clock spans and trace-cache tallies are run bookkeeping,
            # not simulation output — only the campaign path records them.
            record["extra"] = {k: v for k, v in record["extra"].items()
                               if not k.endswith("_seconds")
                               and not k.startswith("trace_cache_")}
            return record

        for name in names:
            assert (comparable(serial.isolation[name])
                    == comparable(parallel.isolation[name]))
            assert (comparable(serial.pinte[name][0.5])
                    == comparable(parallel.pinte[name][0.5]))
            for a, b in zip(serial.pair_results(name),
                            parallel.pair_results(name)):
                assert comparable(a) == comparable(b)
