"""Unit tests for the shared context bundle."""

from repro.experiments.contexts import ContextBundle, build_contexts


class TestBundleContents:
    def test_names(self, tiny_bundle):
        assert tiny_bundle.names == ["435.gromacs", "453.povray", "470.lbm",
                                     "605.mcf"]

    def test_isolation_per_name(self, tiny_bundle):
        assert set(tiny_bundle.isolation) == set(tiny_bundle.names)

    def test_pinte_sweep_per_name(self, tiny_bundle):
        for name in tiny_bundle.names:
            assert len(tiny_bundle.pinte[name]) == 5

    def test_pairs_panel_size(self, tiny_bundle):
        for name in tiny_bundle.names:
            assert len(tiny_bundle.pair_results(name)) == 2

    def test_pair_primary_is_name(self, tiny_bundle):
        for name in tiny_bundle.names:
            for result in tiny_bundle.pair_results(name):
                assert result.trace_name == name
                assert result.co_runner != name

    def test_accessors(self, tiny_bundle):
        n = len(tiny_bundle.names)
        assert len(tiny_bundle.all_isolation()) == n
        assert len(tiny_bundle.all_pinte()) == n * 5
        assert len(tiny_bundle.all_pairs()) == n * 2

    def test_modes(self, tiny_bundle):
        assert all(r.mode == "isolation" for r in tiny_bundle.all_isolation())
        assert all(r.mode == "pinte" for r in tiny_bundle.all_pinte())
        assert all(r.mode == "2nd-trace" for r in tiny_bundle.all_pairs())


class TestBuildOptions:
    def test_pairs_optional(self, config, tiny_scale):
        bundle = build_contexts(["435.gromacs"], config, tiny_scale,
                                p_values=(0.5,), include_pairs=False)
        assert bundle.pairs == {}
        assert bundle.pair_results("435.gromacs") == []
