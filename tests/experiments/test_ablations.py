"""Unit tests for the ablation drivers (tiny scale)."""

import pytest

from repro.experiments import ablations
from repro.sim import ExperimentScale

TINY = ExperimentScale(warmup_instructions=1_000, sim_instructions=5_000,
                       sample_interval=1_000)


class TestPromoteInvalid:
    @pytest.fixture(scope="class")
    def result(self, config):
        return ablations.run_promote_invalid_ablation(config, TINY)

    def test_variants_present(self, result):
        assert set(result.variants) == {"promote-invalid ON (paper)",
                                        "promote-invalid OFF"}

    def test_both_induce(self, result):
        for variant in result.variants.values():
            assert variant.thefts_experienced > 0

    def test_report_renders(self, result):
        text = ablations.format_report(result)
        assert "promote_invalid" in text


class TestMaxEvictions:
    @pytest.fixture(scope="class")
    def result(self, config):
        return ablations.run_max_evictions_ablation(config, TINY,
                                                    caps=(1, 4, 0))

    def test_cap_labels(self, result, config):
        assert f"cap={config.llc.assoc} (paper)" in result.variants

    def test_contention_monotone_in_cap(self, result):
        rates = [v.contention_rate for v in result.variants.values()]
        assert rates == sorted(rates)

    def test_weighted_ipc_accessor(self, result):
        for label in result.variants:
            assert result.weighted_ipc(label) > 0


class TestTriggerMode:
    @pytest.fixture(scope="class")
    def results(self, config):
        return ablations.run_trigger_mode_ablation(config, TINY)

    def test_one_result_per_workload(self, results):
        assert {r.workload for r in results} == {"638.imagick", "470.lbm"}

    def test_periodic_reaches_core_bound(self, results):
        core_bound = next(r for r in results if r.workload == "638.imagick")
        assert (core_bound.variants["periodic"].thefts_experienced
                > core_bound.variants["per-access (paper)"].thefts_experienced)


class TestDramBackground:
    @pytest.fixture(scope="class")
    def result(self, config):
        return ablations.run_dram_background_ablation(
            config, TINY, rates=(0.0, 100.0))

    def test_baseline_labelled(self, result):
        assert any("(paper)" in label for label in result.variants)

    def test_background_raises_amat(self, result):
        amats = [v.amat for v in result.variants.values()]
        assert amats[-1] >= amats[0]
