"""Tests for the self-contained drivers: Fig 3 (stability), Fig 10 (real
system) and Fig 11 (case study). These run their own small campaigns."""

import pytest

from repro.config import scaled_config, xeon_config
from repro.experiments import fig3, fig10, fig11
from repro.sim import ExperimentScale

SMALL = ExperimentScale(warmup_instructions=1_000, sim_instructions=4_000,
                        sample_interval=1_000)


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self, config):
        return fig3.run_fig3(["435.gromacs", "470.lbm"], config, SMALL,
                             p_values=(0.1, 0.5), n_repeats=3)

    def test_structure(self, result):
        assert set(result.per_benchmark) == {"435.gromacs", "470.lbm"}
        assert set(result.per_config) == {0.1, 0.5}
        assert result.n_repeats == 3

    def test_spreads_non_negative(self, result):
        for by_metric in result.per_benchmark.values():
            for values in by_metric.values():
                assert all(v >= 0 for v in values)

    def test_stability_shape(self, result):
        """PInTE re-runs must be stable: normalised std dev well under 1."""
        assert result.worst("ipc") < 0.5
        assert result.worst("miss_rate") < 0.5

    def test_medians_accessible(self, result):
        assert result.benchmark_median("470.lbm", "ipc") >= 0
        assert result.config_median(0.5, "miss_rate") >= 0

    def test_needs_two_repeats(self, config):
        with pytest.raises(ValueError):
            fig3.run_fig3(["435.gromacs"], config, SMALL, n_repeats=1)

    def test_report_renders(self, result):
        text = fig3.format_report(result)
        assert "Fig 3" in text


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10.run_fig10(
            names=("619.lbm", "648.exchange2"),
            config=xeon_config(),
            scale=SMALL,
            p_values=(0.05, 0.5, 1.0),
            panel_size=1,
        )

    def test_points_per_benchmark(self, result):
        assert set(result.real_points) == {"619.lbm", "648.exchange2"}
        assert all(len(points) == 3 for points in result.pinte_points.values())

    def test_allocation_fraction(self, result):
        assert result.allocation_fraction == pytest.approx(14 / 16)

    def test_occupancy_proxy_non_positive_under_contention(self, result):
        """Eq. 6 measures loss from expected capacity; under a co-runner the
        LLC-bound workload cannot exceed its allocation for long."""
        lbm_points = result.real_points["619.lbm"]
        assert all(point.x <= 20.0 for point in lbm_points)

    def test_ipc_changes_are_relative_to_best(self, result):
        for points in result.pinte_points.values():
            assert max(point.ipc_change_percent for point in points) == \
                pytest.approx(0.0)

    def test_sensitive_vs_insensitive_shape(self, result):
        """lbm loses performance under PInTE; exchange2 does not."""
        assert result.max_loss("619.lbm", "pinte") < -5.0
        assert result.max_loss("648.exchange2", "pinte") > -5.0

    def test_report_renders(self, result):
        assert "Fig 10" in fig10.format_report(result)


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self, config):
        return fig11.run_fig11(
            config, SMALL,
            workloads=("450.soplex", "470.lbm"),
            p_values=(0.0, 0.5),
            dimensions=[d for d in fig11.DIMENSIONS
                        if d.name in ("replacement", "branching")],
        )

    def test_dimensions_present(self, result):
        assert set(result.sweeps) == {"replacement", "branching"}

    def test_win_shares_sum_to_one(self, result):
        for sweep in result.sweeps.values():
            for p in result.p_values:
                assert sum(sweep.win_share[p].values()) == pytest.approx(1.0)

    def test_tie_share_in_unit_range(self, result):
        for sweep in result.sweeps.values():
            for p in result.p_values:
                assert 0.0 <= sweep.tie_share[p] <= 1.0

    def test_metrics_recorded(self, result):
        sweep = result.sweeps["replacement"]
        for p in result.p_values:
            assert set(sweep.primary[p]) == set(sweep.options)
            assert set(sweep.secondary[p]) == set(sweep.options)

    def test_winner_is_an_option(self, result):
        sweep = result.sweeps["branching"]
        for p in result.p_values:
            assert sweep.winner(p) in sweep.options

    def test_report_renders(self, result):
        text = fig11.format_report(result)
        assert "replacement" in text and "branching" in text
