"""Sanity tests for the experiment suites and the experiments package API."""

import pytest

from repro.experiments import (
    CASE_STUDY_SUITE,
    CORE_SUITE,
    FIG10_SUITE,
    FIG5_WORKLOADS,
    FULL_SUITE,
    QUICK_SUITE,
)
from repro.trace import (
    CACHE_FRIENDLY,
    CORE_BOUND,
    DRAM_BOUND,
    LLC_BOUND,
    MIXED,
    get_workload,
)


class TestSuiteContents:
    def test_full_suite_is_everything(self):
        assert len(FULL_SUITE) == 49
        assert FULL_SUITE == sorted(FULL_SUITE)

    def test_all_suite_members_exist(self):
        for suite in (CORE_SUITE, QUICK_SUITE, FIG10_SUITE, CASE_STUDY_SUITE,
                      list(FIG5_WORKLOADS)):
            for name in suite:
                get_workload(name)  # raises on unknown names

    def test_core_suite_spans_all_classes(self):
        classes = {get_workload(name).klass for name in CORE_SUITE}
        assert classes == {CORE_BOUND, CACHE_FRIENDLY, LLC_BOUND, DRAM_BOUND,
                           MIXED}

    def test_quick_suite_subset_of_core(self):
        assert set(QUICK_SUITE) <= set(CORE_SUITE)

    def test_fig10_suite_is_spec17(self):
        """The paper's Fig 10 evaluates six SPEC 17 benchmarks."""
        assert len(FIG10_SUITE) == 6
        for name in FIG10_SUITE:
            assert get_workload(name).suite == "spec2017"

    def test_fig5_exemplars_cover_good_and_bad_alignment(self):
        classes = {get_workload(name).klass for name in FIG5_WORKLOADS}
        assert CORE_BOUND in classes  # the worst-alignment case
        assert CACHE_FRIENDLY in classes  # the good-alignment case

    def test_no_duplicates_within_suites(self):
        for suite in (CORE_SUITE, QUICK_SUITE, FIG10_SUITE, CASE_STUDY_SUITE):
            assert len(suite) == len(set(suite))


class TestDriverRegistry:
    def test_every_driver_importable(self):
        from repro.experiments import (  # noqa: F401
            ablations,
            fig1,
            fig3,
            fig5,
            fig6,
            fig7,
            fig8,
            fig9,
            fig10,
            fig11,
            ncore_study,
            partition_study,
            table1,
            table2,
        )

    def test_drivers_expose_format_report(self):
        import repro.experiments as experiments

        for name in ("table1", "fig1", "fig3", "fig5", "fig6", "fig7",
                     "fig8", "fig9", "fig10", "fig11"):
            module = getattr(experiments, name)
            assert hasattr(module, "format_report"), name
