"""Tests for the one-shot reproduction driver."""

import pytest

from repro.experiments.reproduce import (
    BUNDLE_ARTIFACTS,
    run_reproduction,
    suite_for_name,
)
from repro.sim import ExperimentScale

TINY = ExperimentScale(warmup_instructions=1_000, sim_instructions=4_000,
                       sample_interval=1_000)


class TestSuiteNames:
    def test_known_suites(self):
        assert len(suite_for_name("quick")) >= 4
        assert len(suite_for_name("core")) >= len(suite_for_name("quick"))

    def test_unknown_suite(self):
        with pytest.raises(ValueError, match="unknown suite"):
            suite_for_name("everything")


class TestRunReproduction:
    @pytest.fixture(scope="class")
    def reports(self, config, tmp_path_factory):
        output = tmp_path_factory.mktemp("reports")
        reports = run_reproduction(
            config=config, scale=TINY,
            suite=("435.gromacs", "453.povray", "470.lbm", "605.mcf"),
            p_values=(0.05, 0.3, 1.0), panel_size=2,
            output_dir=output,
        )
        return reports, output

    def test_all_bundle_artifacts_rendered(self, reports):
        texts, _ = reports
        assert set(texts) == set(BUNDLE_ARTIFACTS)

    def test_reports_non_empty(self, reports):
        texts, _ = reports
        for artifact, text in texts.items():
            assert text.strip(), artifact

    def test_files_written(self, reports):
        texts, output = reports
        for artifact in texts:
            path = output / f"{artifact}.txt"
            assert path.exists(), artifact
            assert path.read_text().strip()

    def test_headline_strings_present(self, reports):
        texts, _ = reports
        assert "Table I" in texts["table1"]
        assert "Fig 1a" in texts["fig1"]
        assert "Table II" in texts["table2"]
        assert "Fig 8" in texts["fig8"]
