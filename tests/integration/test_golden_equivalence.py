"""Golden-trace equivalence: the data path must be bit-identical to the seed.

``tests/golden/golden_traces.json`` was captured from the original
object-per-block implementation immediately before the flat-array
``CacheSetState`` refactor. These tests replay the exact same harnesses
(shared via :mod:`repro.goldens`) and assert every observable — miss counts,
theft/interference counters, reuse histograms, occupancy, exact eviction
sequences, and RNG draw counts — is unchanged. Any divergence means the
refactor altered behaviour, not just representation.

The captures are session-scoped fixtures so the whole matrix runs once per
pytest invocation regardless of how many assertions consume it.
"""

import json
from pathlib import Path

import pytest

from repro import goldens

GOLDEN_FILE = Path(__file__).resolve().parent.parent / "golden" / "golden_traces.json"

GOLDEN = json.loads(GOLDEN_FILE.read_text())

FULL_SIM_KEYS = sorted(GOLDEN["full_sim"])
FASTCACHE_KEYS = sorted(GOLDEN["fastcache"])
VICTIM_KEYS = sorted(GOLDEN["victim_sequences"])
MULTICORE_KEYS = sorted(GOLDEN["multicore"])
HYBRID_KEYS = sorted(GOLDEN["hybrid"])


@pytest.fixture(scope="session")
def full_sim_capture():
    return goldens.full_sim_goldens()


@pytest.fixture(scope="session")
def fastcache_capture():
    return goldens.fastcache_goldens()


@pytest.fixture(scope="session")
def victim_capture():
    return goldens.victim_sequence_goldens()


@pytest.fixture(scope="session")
def multicore_capture():
    return goldens.multicore_goldens()


@pytest.fixture(scope="session")
def hybrid_capture():
    return goldens.hybrid_goldens()


class TestMatrixPinned:
    """The harness constants must match what the golden file was built from."""

    def test_matrix_matches(self):
        assert GOLDEN["matrix"] == {
            "workloads": list(goldens.GOLDEN_WORKLOADS),
            "policies": list(goldens.GOLDEN_POLICIES),
            "seed": goldens.GOLDEN_SEED,
            "warmup": goldens.WARMUP,
            "sim": goldens.SIM,
            "p_induce": goldens.P_INDUCE,
        }

    def test_expected_config_counts(self):
        assert len(FULL_SIM_KEYS) == 18
        assert len(FASTCACHE_KEYS) == 18
        assert len(VICTIM_KEYS) == 12
        assert len(MULTICORE_KEYS) == 5

    def test_total_config_count(self):
        # The 53-config matrix every session-layer change must preserve.
        assert (len(FULL_SIM_KEYS) + len(FASTCACHE_KEYS) + len(VICTIM_KEYS)
                + len(MULTICORE_KEYS)) == 53

    def test_hybrid_config_count(self):
        # Captured separately (from the session-layer implementation that
        # introduced the context), one per replacement policy.
        assert len(HYBRID_KEYS) == 3


class TestFullSimEquivalence:
    """End-to-end simulate(): cycles, misses, thefts, histograms, IPC."""

    @pytest.mark.parametrize("key", FULL_SIM_KEYS)
    def test_config(self, full_sim_capture, key):
        assert key in full_sim_capture, f"capture missing config {key}"
        assert full_sim_capture[key] == GOLDEN["full_sim"][key]

    def test_no_extra_configs(self, full_sim_capture):
        assert sorted(full_sim_capture) == FULL_SIM_KEYS


class TestFastcacheEquivalence:
    """Cache-only host: accesses, misses, contention counters, histograms."""

    @pytest.mark.parametrize("key", FASTCACHE_KEYS)
    def test_config(self, fastcache_capture, key):
        assert key in fastcache_capture, f"capture missing config {key}"
        assert fastcache_capture[key] == GOLDEN["fastcache"][key]

    def test_no_extra_configs(self, fastcache_capture):
        assert sorted(fastcache_capture) == FASTCACHE_KEYS


class TestMulticoreEquivalence:
    """2nd-Trace host: per-core counters under the furthest-behind schedule."""

    @pytest.mark.parametrize("key", MULTICORE_KEYS)
    def test_config(self, multicore_capture, key):
        assert key in multicore_capture, f"capture missing config {key}"
        expected = GOLDEN["multicore"][key]
        actual = multicore_capture[key]
        assert sorted(actual) == sorted(expected)
        for core, observables in expected.items():
            assert actual[core] == observables, (
                f"{key}: {core} diverged")

    def test_no_extra_configs(self, multicore_capture):
        assert sorted(multicore_capture) == MULTICORE_KEYS


class TestHybridEquivalence:
    """Hybrid context: induced thefts on real co-runner contention."""

    @pytest.mark.parametrize("key", HYBRID_KEYS)
    def test_config(self, hybrid_capture, key):
        assert key in hybrid_capture, f"capture missing config {key}"
        expected = GOLDEN["hybrid"][key]
        actual = hybrid_capture[key]
        assert sorted(actual) == sorted(expected)
        for core, observables in expected.items():
            assert actual[core] == observables, (
                f"{key}: {core} diverged")

    def test_no_extra_configs(self, hybrid_capture):
        assert sorted(hybrid_capture) == HYBRID_KEYS


class TestVictimSequenceEquivalence:
    """Exact eviction order, RNG draw counts, occupancy, per-owner reuse."""

    @pytest.mark.parametrize("key", VICTIM_KEYS)
    def test_config(self, victim_capture, key):
        assert key in victim_capture, f"capture missing config {key}"
        expected = GOLDEN["victim_sequences"][key]
        actual = victim_capture[key]
        assert sorted(actual) == sorted(expected)
        for field in expected:
            assert actual[field] == expected[field], (
                f"{key}: field {field!r} diverged")

    def test_no_extra_configs(self, victim_capture):
        assert sorted(victim_capture) == VICTIM_KEYS
