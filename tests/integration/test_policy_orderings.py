"""End-to-end sanity orderings: do the modelled techniques rank plausibly?

These pin the substrate behaviours the Fig 11 case study builds on: better
predictors predict better on hard branch streams, scan-resistant replacement
beats LRU on streaming-with-reuse mixes, and prefetchers help streams.
"""

import pytest

from repro.config import scaled_config
from repro.sim import simulate
from repro.trace import build_trace, get_workload

CFG = scaled_config()
WARM, SIM = 4_000, 14_000


def run(name, config, seed=1):
    trace = build_trace(get_workload(name), WARM + SIM, seed, config.llc.size)
    return simulate(trace, config, warmup_instructions=WARM,
                    sim_instructions=SIM)


class TestBranchPredictorOrdering:
    @pytest.fixture(scope="class")
    def accuracies(self):
        # deepsjeng: branch-heavy, high-entropy sites.
        return {
            predictor: run("631.deepsjeng",
                           CFG.with_branch_predictor(predictor)).branch_accuracy
            for predictor in ("bimodal", "gshare", "perceptron",
                              "hashed_perceptron", "tournament")
        }

    def test_perceptrons_beat_bimodal(self, accuracies):
        """Perceptron-family predictors handle the mixed easy/hard sites at
        least as well as bimodal — the Fig 11 branching-row substrate."""
        assert accuracies["perceptron"] >= accuracies["bimodal"] - 0.02
        assert accuracies["hashed_perceptron"] >= accuracies["bimodal"] - 0.02

    def test_gshare_pays_for_uncorrelated_history(self, accuracies):
        """The synthetic hard branches are *independent* coin flips, so
        history indexing only dilutes training — gshare trails bimodal here
        (its unit tests cover the correlated patterns where it wins)."""
        assert accuracies["gshare"] <= accuracies["bimodal"] + 0.02

    def test_tournament_tracks_its_better_component(self, accuracies):
        best_component = max(accuracies["bimodal"], accuracies["gshare"])
        assert accuracies["tournament"] >= best_component - 0.05

    def test_all_predict_most_branches(self, accuracies):
        assert all(accuracy > 0.55 for accuracy in accuracies.values())


class TestReplacementOrdering:
    def test_rrip_scan_resistance_end_to_end(self):
        """A working-set + streaming phase mix: RRIP protects the hot set
        through scans where LRU lets the stream flush it."""
        lru = run("401.bzip2", CFG.with_llc_policy("lru"))
        rrip = run("401.bzip2", CFG.with_llc_policy("rrip"))
        assert rrip.miss_rate <= lru.miss_rate + 0.02

    @pytest.mark.parametrize("policy", ["lru", "plru", "nmru", "rrip",
                                        "drrip"])
    def test_all_policies_complete(self, policy):
        result = run("450.soplex", CFG.with_llc_policy(policy))
        assert result.instructions == SIM
        assert 0.0 <= result.miss_rate <= 1.0


class TestPrefetcherOrdering:
    def test_stream_prefetcher_helps_streaming(self):
        import dataclasses

        base = CFG.with_prefetch_string("000")
        config = dataclasses.replace(
            CFG, l2=dataclasses.replace(CFG.l2, prefetcher="stream"))
        plain = run("619.lbm", base)
        prefetched = run("619.lbm", config)
        assert prefetched.ipc >= plain.ipc

    def test_prefetching_cannot_help_pointer_chase_much(self):
        plain = run("429.mcf", CFG.with_prefetch_string("000"))
        prefetched = run("429.mcf", CFG.with_prefetch_string("NNI"))
        # Dependent chains defeat spatial prefetchers: no big win expected.
        assert prefetched.ipc < plain.ipc * 1.5
