"""Integration tests: the paper's headline shapes, end to end.

These exercise the full stack — trace generation, hierarchy, core, PInTE,
analysis — and assert the qualitative results the reproduction must hold
(DESIGN.md Section 5).
"""

import pytest

from repro.analysis import kl_divergence, series_kl, weighted_ipc
from repro.config import scaled_config
from repro.core import PinteConfig
from repro.sim import simulate, simulate_pair
from repro.trace import build_trace, get_workload

CFG = scaled_config()
WARM, SIM = 4_000, 16_000


def run(name, p=None, seed=1):
    trace = build_trace(get_workload(name), WARM + SIM, seed, CFG.llc.size)
    return simulate(trace, CFG,
                    pinte=PinteConfig(p_induce=p) if p is not None else None,
                    warmup_instructions=WARM, sim_instructions=SIM,
                    sample_interval=2_000)


@pytest.fixture(scope="module")
def lbm_iso():
    return run("470.lbm")


@pytest.fixture(scope="module")
def lbm_sweep():
    return {p: run("470.lbm", p) for p in (0.05, 0.2, 0.5, 1.0)}


class TestContentionDoseResponse:
    def test_weighted_ipc_monotone_for_llc_bound(self, lbm_iso, lbm_sweep):
        """More induced contention -> monotonically lower weighted IPC."""
        wipcs = [weighted_ipc(lbm_sweep[p], lbm_iso) for p in (0.05, 0.2, 0.5, 1.0)]
        assert all(w <= 1.02 for w in wipcs)
        assert wipcs == sorted(wipcs, reverse=True)
        assert wipcs[-1] < 0.6  # heavy contention really hurts

    def test_miss_rate_monotone(self, lbm_iso, lbm_sweep):
        rates = [lbm_iso.miss_rate] + [lbm_sweep[p].miss_rate
                                       for p in (0.05, 0.2, 0.5, 1.0)]
        assert rates == sorted(rates)

    def test_contention_rate_tracks_p(self, lbm_sweep):
        rates = [lbm_sweep[p].contention_rate for p in (0.05, 0.2, 0.5, 1.0)]
        assert rates == sorted(rates)

    def test_core_bound_immune(self):
        iso = run("638.imagick")
        contended = run("638.imagick", 1.0)
        assert weighted_ipc(contended, iso) > 0.97


class TestPinteApproximates2ndTrace:
    """The central claim: PInTE contention looks like real contention."""

    @pytest.fixture(scope="class")
    def contexts(self):
        trace = build_trace(get_workload("471.omnetpp"), WARM + SIM, 1,
                            CFG.llc.size)
        adversary = build_trace(get_workload("435.gromacs"), WARM + SIM, 2,
                                CFG.llc.size)
        pair = simulate_pair(trace, adversary, CFG, warmup_instructions=WARM,
                             sim_instructions=SIM, sample_interval=2_000)
        # Match PInTE contention to the pair's observed contention rate.
        target = pair.contention_rate
        pinte = None
        for p in (0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0):
            candidate = simulate(trace, CFG, pinte=PinteConfig(p),
                                 warmup_instructions=WARM,
                                 sim_instructions=SIM, sample_interval=2_000)
            if pinte is None or (abs(candidate.contention_rate - target)
                                 < abs(pinte.contention_rate - target)):
                pinte = candidate
        return pair, pinte

    def test_ipc_within_tolerance(self, contexts):
        pair, pinte = contexts
        assert pinte.ipc == pytest.approx(pair.ipc, rel=0.25)

    def test_reuse_histogram_alignment(self, contexts):
        """omnetpp has rich LLC reuse in both contexts: low KL divergence."""
        pair, pinte = contexts
        assert sum(pair.reuse_histogram) > 0
        assert kl_divergence(pair.reuse_histogram, pinte.reuse_histogram) < 0.6

    def test_runtime_series_low_entropy(self, contexts):
        # Paper: << 1 bit at 47 samples/run; with only 8 samples per run the
        # estimator is coarser, so the bound is looser here (the bench-scale
        # Fig 7 reproduction checks the tighter bound with more samples).
        pair, pinte = contexts
        divergence = series_kl(pair.sample_series("ipc"),
                               pinte.sample_series("ipc"))
        assert divergence < 1.6


class TestSingleVsMultiCost:
    def test_pinte_cheaper_than_second_trace(self):
        """PInTE runs near isolation cost; a 2nd trace roughly doubles work."""
        trace = build_trace(get_workload("435.gromacs"), WARM + SIM, 1,
                            CFG.llc.size)
        adversary = build_trace(get_workload("450.soplex"), WARM + SIM, 2,
                                CFG.llc.size)
        iso = simulate(trace, CFG, warmup_instructions=WARM,
                       sim_instructions=SIM)
        pinte = simulate(trace, CFG, pinte=PinteConfig(0.5),
                         warmup_instructions=WARM, sim_instructions=SIM)
        pair = simulate_pair(trace, adversary, CFG, warmup_instructions=WARM,
                             sim_instructions=SIM)
        assert pinte.wall_time_seconds < pair.wall_time_seconds
        assert pinte.wall_time_seconds < 2.5 * iso.wall_time_seconds


class TestStabilityShape:
    def test_reruns_agree(self):
        """Different PInTE seeds, same configuration -> near-identical
        headline metrics (paper Fig 3)."""
        trace = build_trace(get_workload("450.soplex"), WARM + SIM, 1,
                            CFG.llc.size)
        ipcs = []
        for seed in range(4):
            result = simulate(trace, CFG,
                              pinte=PinteConfig(0.3, seed=seed),
                              warmup_instructions=WARM, sim_instructions=SIM)
            ipcs.append(result.ipc)
        mean = sum(ipcs) / len(ipcs)
        spread = (max(ipcs) - min(ipcs)) / mean
        assert spread < 0.1


class TestInclusionAndPolicySweeps:
    @pytest.mark.parametrize("inclusion", ["non-inclusive", "inclusive",
                                           "exclusive"])
    def test_all_inclusions_simulate_under_pinte(self, inclusion):
        config = CFG.with_inclusion(inclusion)
        trace = build_trace(get_workload("435.gromacs"), 6_000, 1,
                            config.llc.size)
        result = simulate(trace, config, pinte=PinteConfig(0.5),
                          warmup_instructions=1_000, sim_instructions=5_000)
        assert result.instructions == 5_000
        assert result.thefts_experienced >= 0

    @pytest.mark.parametrize("policy", ["lru", "plru", "nmru", "rrip"])
    def test_all_policies_simulate_under_pinte(self, policy):
        config = CFG.with_llc_policy(policy)
        trace = build_trace(get_workload("450.soplex"), 6_000, 1,
                            config.llc.size)
        result = simulate(trace, config, pinte=PinteConfig(0.5),
                          warmup_instructions=1_000, sim_instructions=5_000)
        assert result.thefts_experienced > 0

    @pytest.mark.parametrize("prefetch", ["000", "NN0", "NNN", "NNI"])
    def test_all_prefetch_strings_simulate(self, prefetch):
        config = CFG.with_prefetch_string(prefetch)
        trace = build_trace(get_workload("470.lbm"), 6_000, 1, config.llc.size)
        result = simulate(trace, config, pinte=PinteConfig(0.3),
                          warmup_instructions=1_000, sim_instructions=5_000)
        if prefetch == "000":
            assert result.prefetch_issued == 0
        else:
            assert result.prefetch_issued > 0

    def test_prefetching_helps_streaming(self):
        """Next-line prefetching must raise streaming IPC — the substrate
        behaviour behind the paper's Fig 11 prefetch row."""
        trace_cfg = CFG
        trace = build_trace(get_workload("619.lbm"), WARM + SIM, 1,
                            trace_cfg.llc.size)
        plain = simulate(trace, CFG.with_prefetch_string("000"),
                         warmup_instructions=WARM, sim_instructions=SIM)
        prefetched = simulate(trace, CFG.with_prefetch_string("NNI"),
                              warmup_instructions=WARM, sim_instructions=SIM)
        assert prefetched.ipc > plain.ipc
