"""Registry-vs-seed-driver equivalence: every artifact byte-identical.

The artifact registry replans each table/figure as campaign jobs and
reconstructs the driver's result object from id-keyed results. These
tests render all thirteen artifacts both ways — the seed serial drivers
exactly as the pre-registry ``run_reproduction`` invoked them, and the
registry's plan → execute → aggregate → render pipeline — and assert the
report text is byte-identical.

Wall-clock metrics (Table I and the n-core study render per-run seconds)
would differ between runs on a real clock, so both sides run under a
deterministic fake ``time.perf_counter`` that advances a fixed step per
call: durations become step x call-count, which is identical for
identical simulations regardless of execution order or host load.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

import pytest

from repro.config import scaled_config
from repro.experiments import (
    build_contexts,
    fig1,
    fig3,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    ncore_study,
    partition_study,
    table1,
    table2,
)
from repro.experiments.registry import (
    PlanContext,
    execute_plan,
    get_artifact,
    plan_union,
)
from repro.experiments.reproduce import run_reproduction
from repro.sim import ExperimentScale

SCALE = ExperimentScale(warmup_instructions=500, sim_instructions=2_000,
                        sample_interval=500, seed=7)
SUITE = ("435.gromacs", "453.povray", "470.lbm", "605.mcf")
P_VALUES = (0.05, 0.3, 1.0)
PANEL = 2

ALL_ARTIFACTS = ("table1", "fig1", "table2", "fig5", "fig6", "fig7", "fig8",
                 "fig9", "fig3", "fig10", "fig11", "ncore_study",
                 "partition_study")


class FakeClock:
    """Deterministic ``perf_counter``: a fixed step per call."""

    def __init__(self, step: float = 0.001) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


@contextmanager
def fake_perf_counter():
    """Swap ``time.perf_counter`` for the deterministic fake."""
    real = time.perf_counter
    time.perf_counter = FakeClock()
    try:
        yield
    finally:
        time.perf_counter = real


@pytest.fixture(scope="module")
def seed_texts():
    """Every artifact rendered by the seed serial drivers, with the exact
    parameters the pre-registry ``run_reproduction`` used."""
    config = scaled_config()
    with fake_perf_counter():
        bundle = build_contexts(list(SUITE), config, SCALE,
                                p_values=P_VALUES, panel_size=PANEL)
        texts = {
            "table1": table1.format_report(table1.run_table1(bundle)),
            "fig1": fig1.format_report(fig1.run_fig1(bundle)),
            "table2": table2.format_report(table2.run_table2(bundle)),
            "fig6": fig6.format_report(fig6.run_fig6(bundle)),
            "fig7": fig7.format_report(fig7.run_fig7(bundle)),
            "fig8": fig8.format_report(fig8.run_fig8(bundle)),
            "fig9": fig9.format_report(fig9.run_fig9(bundle)),
        }
        try:
            texts["fig5"] = fig5.format_report(fig5.run_fig5(bundle))
        except ValueError:
            texts["fig5"] = fig5.format_report(
                fig5.run_fig5(bundle, workloads=tuple(bundle.names[:3])))
        texts["fig3"] = fig3.format_report(
            fig3.run_fig3(list(SUITE)[:4], config, SCALE,
                          p_values=P_VALUES[::3] or P_VALUES, n_repeats=3))
        texts["fig10"] = fig10.format_report(fig10.run_fig10(scale=SCALE))
        texts["fig11"] = fig11.format_report(fig11.run_fig11(config, SCALE))
        texts["ncore_study"] = ncore_study.format_report(
            ncore_study.run_ncore_study(config, SCALE))
        texts["partition_study"] = partition_study.format_report(
            partition_study.run_partition_study(config, SCALE))
    return texts


@pytest.fixture(scope="module")
def registry_texts():
    """The same artifacts through plan -> execute -> aggregate -> render."""
    config = scaled_config()
    ctx = PlanContext(config=config, scale=SCALE, suite=SUITE,
                      p_values=P_VALUES, panel_size=PANEL)
    with fake_perf_counter():
        plan = plan_union(list(ALL_ARTIFACTS), ctx)
        outcome = execute_plan(plan)
        assert outcome.ok
        return {name: get_artifact(name).report(ctx, outcome.results)
                for name in ALL_ARTIFACTS}


@pytest.mark.parametrize("artifact", ALL_ARTIFACTS)
def test_artifact_byte_identical(seed_texts, registry_texts, artifact):
    assert registry_texts[artifact] == seed_texts[artifact]


def test_run_reproduction_matches_seed_bundle_reports(seed_texts):
    """The public reproduce loop renders the same bundle reports."""
    with fake_perf_counter():
        reports = run_reproduction(scale=SCALE, suite=SUITE,
                                   p_values=P_VALUES, panel_size=PANEL)
    for artifact, text in reports.items():
        assert text == seed_texts[artifact], artifact
