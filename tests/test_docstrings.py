"""The docstring lint (scripts/check_docstrings.py) must stay clean."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_public_surface_fully_documented():
    """Every module and public module-level def/class has a docstring."""
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_docstrings.py")],
        capture_output=True, text=True)
    assert proc.returncode == 0, f"\n{proc.stdout}{proc.stderr}"
