"""Smoke tests: the example scripts must run and produce their key output.

Only the fast examples run here (the long ones are exercised by the CLI and
experiment tests that share their code paths).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv, capsys):
    old_argv = sys.argv
    sys.argv = [name] + list(argv)
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestTheftMechanics:
    def test_narrates_both_parts(self, capsys):
        out = run_example("theft_mechanics.py", [], capsys)
        assert "THEFT" in out
        assert "PInTE trigger" in out
        assert "thefts experienced" in out

    def test_real_part_shows_both_cores_stealing(self, capsys):
        out = run_example("theft_mechanics.py", [], capsys)
        assert "core 0: thefts experienced=1" in out
        assert "core 1: thefts experienced=1" in out


class TestExampleFiles:
    def test_all_examples_present(self):
        names = {path.name for path in EXAMPLES.glob("*.py")}
        assert {"quickstart.py", "sensitivity_curve.py",
                "theft_mechanics.py", "design_under_contention.py",
                "characterize_suite.py", "contention_topology.py",
                "batch_campaign.py"} <= names

    @pytest.mark.parametrize("name", [
        "quickstart.py", "sensitivity_curve.py", "theft_mechanics.py",
        "design_under_contention.py", "characterize_suite.py",
        "contention_topology.py", "batch_campaign.py",
    ])
    def test_examples_compile(self, name):
        source = (EXAMPLES / name).read_text()
        compile(source, name, "exec")

    @pytest.mark.parametrize("name", [
        "quickstart.py", "sensitivity_curve.py", "theft_mechanics.py",
        "design_under_contention.py", "characterize_suite.py",
        "contention_topology.py", "batch_campaign.py",
    ])
    def test_examples_have_usage_docs(self, name):
        source = (EXAMPLES / name).read_text()
        assert source.startswith("#!/usr/bin/env python3")
        assert '"""' in source
