"""Tests for campaign watch/status-follow views and the merged timeline.

The end-to-end cases run a real (tiny) campaign with telemetry enabled
and then assert the acceptance property of the bus: the folded per-job
registries agree *exactly* with what each job reported home through
``result.extra`` — same numbers, two independent channels.
"""

import io
import json

import pytest

from repro.campaign import (
    Job,
    RetryPolicy,
    TelemetrySettings,
    build_view,
    render_dashboard,
    render_status_line,
    run_campaign,
    telemetry_dir_for,
    write_campaign_manifest,
    write_campaign_timeline,
)
from repro.campaign.watch import watch_campaign
from repro.obs.telemetry import spool_path
from repro.sim import ExperimentScale

TINY = ExperimentScale(warmup_instructions=500, sim_instructions=2_000,
                       sample_interval=500)
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_seconds=0.01,
                         backoff_factor=1.0)

JOBS = [Job("470.lbm"), Job("605.mcf", mode="pinte", p_induce=0.5),
        Job("619.lbm")]


@pytest.fixture(scope="module")
def campaign(tmp_path_factory, config):
    """One completed telemetry-enabled campaign, shared by the module."""
    store = tmp_path_factory.mktemp("watch") / "results.jsonl"
    write_campaign_manifest(store, JOBS, config, TINY,
                            machine_preset="scaled",
                            retry=FAST_RETRY.to_dict(), processes=2,
                            telemetry_interval=0.05)
    report = run_campaign(JOBS, config, TINY, processes=2, store=store,
                          retry=FAST_RETRY, telemetry=0.05)
    assert report.ok
    return store, report


class TestTelemetrySpools:
    def test_one_spool_per_job(self, campaign):
        store, report = campaign
        directory = telemetry_dir_for(store)
        assert report.telemetry_dir == directory
        for jid in report.job_ids:
            assert spool_path(directory, jid).exists()

    def test_folded_registry_matches_result_extras_exactly(self, campaign):
        """Acceptance: per-job telemetry totals == stored result extras."""
        store, report = campaign
        telemetry = report.telemetry
        assert telemetry is not None
        for jid in report.job_ids:
            result = report.results_by_id[jid]
            job = telemetry.jobs[jid]
            folded = job.registry
            hits = (folded.value("trace.cache.hit")
                    if "trace.cache.hit" in folded else 0)
            assert hits == int(result.extra["trace_cache_hits"])
            assert (folded.value("trace.cache.miss")
                    == int(result.extra["trace_cache_misses"]))
            assert folded.value("core0.instructions") == result.instructions
            assert job.instructions == result.instructions
            assert job.status == "ok"

    def test_campaign_aggregates_published(self, campaign):
        store, report = campaign
        view = build_view(store)
        registry = view.registry
        assert registry.value("campaign.telemetry.jobs_seen") == len(JOBS)
        assert registry.value("campaign.telemetry.jobs_completed") == len(JOBS)
        assert registry.value("campaign.telemetry.jobs_running") == 0
        assert registry.value("campaign.peak_rss_kb") > 0
        wall = registry.get("campaign.job_wall_seconds")
        assert wall.total == len(JOBS)
        attempts = registry.get("campaign.job_attempts")
        assert attempts.total == len(JOBS)
        assert attempts.percentile(50) == 1  # no retries in this campaign


class TestCampaignView:
    def test_complete_view(self, campaign):
        store, report = campaign
        view = build_view(store)
        assert view.total == len(JOBS)
        assert view.completed == len(JOBS)
        assert view.failed == 0
        assert view.pending == 0
        assert view.is_complete
        assert view.eta_seconds == 0.0
        assert view.running == []
        assert view.spool_count == len(JOBS)

    def test_missing_manifest_view(self, tmp_path):
        view = build_view(tmp_path / "nothing.jsonl")
        assert view.total is None
        assert view.pending is None
        assert not view.is_complete

    def test_torn_spool_line_mid_tail_does_not_crash_view(self, campaign):
        """Regression: a worker killed mid-write leaves a torn trailing
        spool line; build_view must skip it and keep rendering."""
        store, report = campaign
        victim = spool_path(telemetry_dir_for(store), report.job_ids[0])
        original = victim.read_bytes()
        try:
            with open(victim, "ab") as handle:
                handle.write(b'{"k":"delta","seq":99,"counters":{"x"')
            view = build_view(store)
            assert view.is_complete
            assert view.corrupt_spool_lines == 0  # torn, not corrupt
        finally:
            victim.write_bytes(original)

    def test_view_counts_only_manifest_jobs(self, campaign, config):
        """Stale store records from a superseded manifest are ignored."""
        store, report = campaign
        view = build_view(store)
        assert view.completed == len(JOBS)  # not raw store record count


class TestRendering:
    def test_dashboard_mentions_progress_and_completion(self, campaign):
        store, _ = campaign
        text = render_dashboard(build_view(store))
        assert f"{len(JOBS)}/{len(JOBS)} done" in text
        assert "campaign complete." in text
        assert "telemetry:" in text

    def test_status_line_is_one_line(self, campaign):
        store, _ = campaign
        line = render_status_line(build_view(store))
        assert "\n" not in line
        assert f"{len(JOBS)}/{len(JOBS)} done" in line

    def test_watch_loop_stops_when_complete(self, campaign):
        store, _ = campaign
        buffer = io.StringIO()
        view = watch_campaign(store, interval_seconds=0.01,
                              stream=buffer, clear=False)
        assert view.is_complete
        assert "campaign complete." in buffer.getvalue()

    def test_watch_iterations_bound(self, tmp_path):
        # Store with no manifest never completes; iterations must bound it.
        buffer = io.StringIO()
        view = watch_campaign(tmp_path / "empty.jsonl",
                              interval_seconds=0.0, iterations=2,
                              stream=buffer, clear=False,
                              render=render_status_line)
        assert buffer.getvalue().count("\n") == 2

    def test_clear_mode_emits_ansi(self, campaign):
        store, _ = campaign
        buffer = io.StringIO()
        watch_campaign(store, interval_seconds=0.01, iterations=1,
                       stream=buffer, clear=True)
        assert buffer.getvalue().startswith("\x1b[2J\x1b[H")


class TestTimeline:
    def test_merged_chrome_trace(self, campaign, tmp_path):
        store, report = campaign
        output = tmp_path / "timeline.json"
        count = write_campaign_timeline(store, output)
        document = json.loads(output.read_text())
        events = document["traceEvents"]
        assert len(events) == count
        # One process track per job (pids 1..N) plus the campaign meta.
        pids = {event["pid"] for event in events}
        assert pids == set(range(len(JOBS) + 1))
        phases = {event["ph"] for event in events}
        assert {"M", "X", "C"} <= phases
        # Every job contributes a whole-attempt span with its outcome.
        attempts = [event for event in events
                    if event["ph"] == "X" and event.get("cat") == "job"]
        assert len(attempts) == len(JOBS)
        assert all(event["args"]["status"] == "ok" for event in attempts)
        assert all(event["ts"] >= 0 for event in attempts)
        # Per-job phase spans (trace-gen, simulate...) ride along.
        names = {event["name"] for event in events
                 if event.get("cat") == "phase"}
        assert "trace-gen" in names

    def test_without_telemetry_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            write_campaign_timeline(tmp_path / "bare.jsonl",
                                    tmp_path / "out.json")


class TestFailureBreakdown:
    def test_view_classifies_failures(self, tmp_path, config):
        store = tmp_path / "results.jsonl"
        jobs = [Job("470.lbm"), Job("__fault:raise")]
        write_campaign_manifest(store, jobs, config, TINY,
                                machine_preset="scaled",
                                retry=FAST_RETRY.to_dict(), processes=1,
                                telemetry_interval=0.05)
        report = run_campaign(jobs, config, TINY, processes=1, store=store,
                              retry=FAST_RETRY, telemetry=0.05)
        assert report.failed == 1
        view = build_view(store)
        assert view.failure_kinds == {"error": 1}
        assert view.retries_exhausted == 1  # burned all 3 attempts
        assert view.is_complete  # failed counts as an outcome
        text = render_dashboard(view)
        assert "failures: error=1" in text
        assert "retries exhausted: 1" in text


class TestTelemetrySettingsGate:
    def test_telemetry_without_store_rejected(self, config):
        with pytest.raises(ValueError):
            run_campaign([Job("470.lbm")], config, TINY, telemetry=True)

    def test_settings_coercion_exported(self):
        assert TelemetrySettings.coerce(0.5).interval_seconds == 0.5
