"""Tests for the fault-tolerant campaign engine.

The timing-sensitive cases (timeout kill, crash capture) use tiny
simulations and aggressive backoffs so the whole module stays in the
seconds range.
"""

import pytest

from repro.campaign import (
    CampaignError,
    Job,
    ResultStore,
    RetryPolicy,
    campaign_jobs,
    fault_workload,
    run_campaign,
)
from repro.campaign.ids import job_id
from repro.sim import ExperimentScale
from repro.sim.batch import run_batch, run_job
from repro.sim.serialize import result_to_dict

TINY = ExperimentScale(warmup_instructions=500, sim_instructions=2_000,
                       sample_interval=500)

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_seconds=0.01,
                         backoff_factor=1.0)
NO_RETRY = RetryPolicy(max_attempts=1)


def canonical(result):
    """Serialised result with wall-clock timing stripped (the only
    fields that legitimately differ between identical runs)."""
    record = result_to_dict(result)
    record.pop("wall_time_seconds", None)
    record["extra"] = {key: value for key, value in record["extra"].items()
                       if not key.endswith("_seconds")}
    return record


def result_dicts(report):
    """Comparable per-job serialised results, keyed by job id."""
    return {jid: canonical(result)
            for jid, result in report.results_by_id.items()}


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_seconds=1.0, backoff_factor=4.0,
                             max_backoff_seconds=10.0)
        assert policy.delay_after(1) == 1.0
        assert policy.delay_after(2) == 4.0
        assert policy.delay_after(3) == 10.0  # capped

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestRetries:
    def test_transient_failure_heals(self, config):
        """A flaky job retried past its faults equals the direct run."""
        flaky = Job(fault_workload("flaky", 2, "470.lbm"))
        report = run_campaign([flaky], config, TINY, retry=FAST_RETRY)
        assert report.ok
        assert report.retries == 2
        direct = run_job(Job("470.lbm"), config, TINY)
        assert canonical(report.results[0]) == canonical(direct)

    def test_permanent_failure_recorded_not_raised(self, config):
        jobs = [Job("435.gromacs"), Job(fault_workload("raise"))]
        report = run_campaign(jobs, config, TINY, retry=FAST_RETRY)
        assert report.executed == 1 and report.failed == 1
        assert not report.ok
        [failure] = report.failures
        assert failure.kind == "error"
        assert failure.error_type == "InjectedFault"
        assert failure.attempts == FAST_RETRY.max_attempts
        assert "InjectedFault" in failure.traceback
        # The healthy job still produced its result.
        assert report.results[0].trace_name == "435.gromacs"

    def test_raise_on_failure_after_completion(self, config):
        jobs = [Job("435.gromacs"), Job(fault_workload("raise"))]
        with pytest.raises(CampaignError, match="InjectedFault"):
            run_campaign(jobs, config, TINY, retry=NO_RETRY,
                         raise_on_failure=True)


class TestTimeoutsAndCrashes:
    def test_hung_worker_killed_sibling_completes(self, config):
        jobs = [Job("435.gromacs"), Job(fault_workload("hang"))]
        report = run_campaign(jobs, config, TINY, processes=2,
                              retry=NO_RETRY, timeout_seconds=1.0)
        assert report.executed == 1 and report.failed == 1
        [failure] = report.failures
        assert failure.kind == "timeout"
        assert "1s" in failure.message and "killed" in failure.message
        assert report.results[0].trace_name == "435.gromacs"

    def test_timeout_forces_subprocess_even_single_process(self, config):
        # Inline execution could never kill a hang; the engine must switch
        # to a worker subprocess as soon as a timeout is requested.
        report = run_campaign([Job(fault_workload("hang"))], config, TINY,
                              processes=1, retry=NO_RETRY,
                              timeout_seconds=1.0)
        assert report.failed == 1
        assert report.failures[0].kind == "timeout"

    def test_worker_crash_captured(self, config):
        report = run_campaign([Job(fault_workload("exit"))], config, TINY,
                              processes=2, retry=NO_RETRY,
                              timeout_seconds=30.0)
        [failure] = report.failures
        assert failure.kind == "crash"
        assert "code 17" in failure.message


class TestInlineExecution:
    def test_single_process_runs_without_pool(self, config, monkeypatch):
        """processes=1 with no timeout must never spawn a subprocess."""
        import repro.campaign.engine as engine

        def no_processes(*args, **kwargs):
            raise AssertionError("inline campaign spawned a subprocess")

        monkeypatch.setattr(engine.multiprocessing, "Process", no_processes)
        jobs = [Job("435.gromacs"), Job("453.povray")]
        report = run_campaign(jobs, config, TINY, processes=1)
        assert report.ok
        assert [r.trace_name for r in report.results] == ["435.gromacs",
                                                          "453.povray"]

    def test_run_batch_single_process_inline(self, config, monkeypatch):
        import repro.campaign.engine as engine

        def no_processes(*args, **kwargs):
            raise AssertionError("run_batch(processes=1) spawned a subprocess")

        monkeypatch.setattr(engine.multiprocessing, "Process", no_processes)
        results = run_batch([Job("435.gromacs")], config, TINY, processes=1)
        assert results[0].trace_name == "435.gromacs"

    def test_parallel_matches_inline(self, config):
        jobs = [Job("435.gromacs"),
                Job("470.lbm", mode="pinte", p_induce=0.3),
                Job("470.lbm", mode="pair", co_runner="450.soplex")]
        inline = run_campaign(jobs, config, TINY, processes=1)
        parallel = run_campaign(jobs, config, TINY, processes=3,
                                timeout_seconds=300.0)
        assert result_dicts(inline) == result_dicts(parallel)


class TestRunBatchShim:
    def test_failure_raises_campaign_error(self, config):
        with pytest.raises(CampaignError):
            run_batch([Job(fault_workload("raise"))], config, TINY,
                      processes=1)

    def test_empty_batch(self, config):
        assert run_batch([], config, TINY) == []


class TestStoreIntegration:
    def test_existing_store_refused_without_resume(self, config, tmp_path):
        store = tmp_path / "results.jsonl"
        run_campaign([Job("435.gromacs")], config, TINY, store=store)
        with pytest.raises(FileExistsError, match="resume"):
            run_campaign([Job("435.gromacs")], config, TINY, store=store)

    def test_failure_manifest_written(self, config, tmp_path):
        store = tmp_path / "results.jsonl"
        report = run_campaign([Job(fault_workload("raise"))], config, TINY,
                              retry=NO_RETRY, store=store)
        assert report.failure_manifest_path.exists()
        import json
        document = json.loads(report.failure_manifest_path.read_text())
        assert document["count"] == 1
        assert document["failures"][0]["failure"]["error_type"] == \
            "InjectedFault"

    def test_clean_campaign_writes_empty_failure_manifest(self, config,
                                                          tmp_path):
        store = tmp_path / "results.jsonl"
        report = run_campaign([Job("435.gromacs")], config, TINY, store=store)
        import json
        assert json.loads(
            report.failure_manifest_path.read_text())["count"] == 0

    def test_stored_failure_retried_on_resume(self, config, tmp_path):
        store = tmp_path / "results.jsonl"
        flaky = Job(fault_workload("flaky", 1, "470.lbm"))
        first = run_campaign([flaky], config, TINY, retry=NO_RETRY,
                             store=store)
        assert first.failed == 1
        # Attempt numbering restarts on resume, so the retry budget must
        # cover the fault again; this time it heals.
        second = run_campaign([flaky], config, TINY, retry=FAST_RETRY,
                              store=store, resume=True)
        assert second.ok and second.executed == 1
        contents = ResultStore(store).load()
        assert len(contents.results) == 1 and not contents.failures


class TestResume:
    def test_interrupted_campaign_resumes_identically(self, config, tmp_path):
        """The acceptance test: kill mid-run, resume, identical results."""
        names = ["435.gromacs", "453.povray", "470.lbm"]
        jobs = campaign_jobs(names, p_values=(0.5,),
                             panel={"470.lbm": ["453.povray"]})
        reference = run_campaign(jobs, config, TINY,
                                 store=tmp_path / "ref.jsonl")
        assert reference.ok

        # "Interrupted" run: only shard 0/2 lands, then the driver dies
        # mid-append (a partial trailing line, as SIGKILL leaves behind).
        store = tmp_path / "results.jsonl"
        partial = run_campaign(jobs, config, TINY, store=store,
                               shard=(0, 2))
        with open(store, "a") as handle:
            handle.write('{"kind": "result", "job_id": "dead')
        resumed = run_campaign(jobs, config, TINY, store=store, resume=True)
        assert resumed.ok
        assert resumed.skipped == partial.executed  # nothing re-ran
        assert resumed.executed == len(jobs) - partial.executed
        assert result_dicts(resumed) == result_dicts(reference)

    def test_second_resume_skips_everything(self, config, tmp_path):
        store = tmp_path / "results.jsonl"
        jobs = [Job("435.gromacs"), Job("453.povray")]
        run_campaign(jobs, config, TINY, store=store)
        again = run_campaign(jobs, config, TINY, store=store, resume=True)
        assert again.skipped == 2 and again.executed == 0
        assert len(again.results) == 2  # resumed results still returned

    def test_resume_refuses_foreign_id_scheme(self, config, tmp_path):
        """A pre-v3 store fails loudly: its ids cannot match v3 ids."""
        import json

        store = tmp_path / "results.jsonl"
        jobs = [Job("435.gromacs")]
        run_campaign(jobs, config, TINY, store=store)
        lines = store.read_text().splitlines()
        header = json.loads(lines[0])
        header["id_scheme"] = "pinte-job-v2"
        store.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(ValueError, match="pinte-job-v2.*pinte-job-v3"):
            run_campaign(jobs, config, TINY, store=store, resume=True)

    def test_resume_refuses_unversioned_store(self, config, tmp_path):
        """A store whose header predates id-scheme stamping is refused."""
        import json

        store = tmp_path / "results.jsonl"
        jobs = [Job("435.gromacs")]
        run_campaign(jobs, config, TINY, store=store)
        lines = store.read_text().splitlines()
        header = json.loads(lines[0])
        del header["id_scheme"]
        store.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(ValueError, match="unversioned"):
            run_campaign(jobs, config, TINY, store=store, resume=True)


class TestSharding:
    def test_shards_union_into_complete_store(self, config, tmp_path):
        store = tmp_path / "results.jsonl"
        jobs = campaign_jobs(["435.gromacs", "453.povray"],
                             p_values=(0.5, 1.0))
        first = run_campaign(jobs, config, TINY, store=store, shard=(0, 2))
        second = run_campaign(jobs, config, TINY, store=store, shard=(1, 2),
                              resume=True)
        assert first.total + second.total - second.skipped == len(jobs)
        ids = {job_id(job, config, TINY) for job in jobs}
        assert set(ResultStore(store).load().results) == ids


class TestObservability:
    def test_progress_events_and_metrics(self, config):
        from repro.obs import Observation

        events = []
        observe = Observation()
        jobs = [Job("435.gromacs"), Job(fault_workload("raise"))]
        run_campaign(jobs, config, TINY, retry=FAST_RETRY, observe=observe,
                     progress=events.append)
        kinds = [event["event"] for event in events]
        assert kinds.count("done") == 1
        assert kinds.count("retry") == FAST_RETRY.max_attempts - 1
        assert kinds.count("failed") == 1
        done = next(e for e in events if e["event"] == "done")
        assert done["label"] == "435.gromacs"
        assert done["total"] == 2
        registry = observe.registry
        assert registry.value("campaign.success") == 1
        assert registry.value("campaign.failure") == 1
        assert registry.value("campaign.retry") == 2
        assert registry.value("campaign.jobs_total") == 2
        assert registry.value("campaign.wall_seconds") > 0
