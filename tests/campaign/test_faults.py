"""Tests for the fault-injection workload grammar."""

import pytest

from repro.campaign.faults import (
    FAULT_PREFIX,
    FaultSpec,
    InjectedFault,
    fault_workload,
    parse_fault,
)


class TestParseFault:
    def test_real_workload_is_not_a_fault(self):
        assert parse_fault("470.lbm") is None

    def test_raise(self):
        assert parse_fault("__fault:raise") == FaultSpec("raise")

    def test_exit_and_hang(self):
        assert parse_fault("__fault:exit").kind == "exit"
        assert parse_fault("__fault:hang").kind == "hang"

    def test_flaky(self):
        spec = parse_fault("__fault:flaky:2+470.lbm")
        assert spec == FaultSpec("flaky", fail_attempts=2,
                                 real_workload="470.lbm")

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_fault("__fault:segv")

    def test_flaky_needs_count(self):
        with pytest.raises(ValueError, match="count"):
            parse_fault("__fault:flaky+470.lbm")

    def test_flaky_needs_real_workload(self):
        with pytest.raises(ValueError, match="real workload"):
            parse_fault("__fault:flaky:2")

    def test_simple_kind_takes_no_parameter(self):
        with pytest.raises(ValueError, match="no parameter"):
            parse_fault("__fault:raise:3")


class TestFaultApply:
    def test_raise_always_raises(self):
        spec = parse_fault("__fault:raise")
        for attempt in (1, 2, 5):
            with pytest.raises(InjectedFault):
                spec.apply(attempt)

    def test_flaky_deterministic_by_attempt(self):
        spec = parse_fault("__fault:flaky:2+470.lbm")
        with pytest.raises(InjectedFault):
            spec.apply(1)
        with pytest.raises(InjectedFault):
            spec.apply(2)
        assert spec.apply(3) == "470.lbm"
        assert spec.apply(3) == "470.lbm"  # no hidden state


class TestFaultWorkload:
    def test_builds_parseable_names(self):
        assert fault_workload("raise") == "__fault:raise"
        assert (fault_workload("flaky", 2, "470.lbm")
                == "__fault:flaky:2+470.lbm")
        assert fault_workload("raise").startswith(FAULT_PREFIX)

    def test_validates_eagerly(self):
        with pytest.raises(ValueError):
            fault_workload("segv")
        with pytest.raises(ValueError):
            fault_workload("flaky", 2)  # missing real workload
