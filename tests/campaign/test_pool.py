"""Tests for the persistent work-stealing pool executor.

The spawn executor's semantics are the contract; every scenario here
checks the pool preserves one of them — results, retries, crash capture,
timeouts, resume — or exercises the behaviour only the pool has (work
stealing, worker respawn, per-worker trace memo, liveness records).
Timing-sensitive cases use tiny simulations and sub-second sleeps.
"""

import pytest

from repro.campaign import (
    Job,
    ResultStore,
    RetryPolicy,
    canonical_records,
    fault_workload,
    load_campaign_manifest,
    load_worker_records,
    run_campaign,
    write_campaign_manifest,
)
from repro.campaign.pool import DEFAULT_EXECUTOR, EXECUTORS, WorkerTraceMemo
from repro.sim import ExperimentScale
from repro.sim.batch import run_job
from repro.sim.serialize import result_to_dict
from repro.trace.store import MemoryTraceStore

TINY = ExperimentScale(warmup_instructions=500, sim_instructions=2_000,
                       sample_interval=500)

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_seconds=0.01,
                         backoff_factor=1.0)
NO_RETRY = RetryPolicy(max_attempts=1)


def canonical(result):
    """Serialised result with wall-clock timing stripped."""
    record = result_to_dict(result)
    record.pop("wall_time_seconds", None)
    record["extra"] = {key: value for key, value in record["extra"].items()
                       if not key.endswith("_seconds")}
    return record


def result_dicts(report):
    return {jid: canonical(result)
            for jid, result in report.results_by_id.items()}


class TestExecutorSelection:
    def test_pool_is_the_default(self):
        assert DEFAULT_EXECUTOR == "pool"
        assert DEFAULT_EXECUTOR in EXECUTORS

    def test_unknown_executor_rejected(self, config):
        with pytest.raises(ValueError, match="unknown executor"):
            run_campaign([Job("470.lbm")], config, TINY, processes=2,
                         executor="threads")

    def test_manifest_remembers_executor(self, config, tmp_path):
        store = tmp_path / "results.jsonl"
        path = write_campaign_manifest(store, [Job("470.lbm")], config, TINY,
                                       machine_preset="scaled",
                                       executor="spawn")
        assert load_campaign_manifest(path)["executor"] == "spawn"


class TestPoolSemantics:
    def test_pool_matches_spawn_and_inline(self, config):
        jobs = [Job("435.gromacs"),
                Job("470.lbm", mode="pinte", p_induce=0.3),
                Job("470.lbm", mode="pair", co_runner="450.soplex")]
        inline = run_campaign(jobs, config, TINY, processes=1)
        pool = run_campaign(jobs, config, TINY, processes=3, executor="pool")
        spawn = run_campaign(jobs, config, TINY, processes=3,
                             executor="spawn")
        assert result_dicts(inline) == result_dicts(pool)
        assert result_dicts(pool) == result_dicts(spawn)
        assert pool.executor == "pool" and spawn.executor == "spawn"

    def test_error_capture_matches_spawn(self, config):
        jobs = [Job("435.gromacs"), Job(fault_workload("raise"))]
        report = run_campaign(jobs, config, TINY, processes=2,
                              retry=NO_RETRY, executor="pool")
        assert report.executed == 1 and report.failed == 1
        [failure] = report.failures
        assert failure.kind == "error"
        assert failure.error_type == "InjectedFault"
        assert "InjectedFault" in failure.traceback


class TestWorkStealing:
    def test_idle_worker_steals_from_straggler(self, config):
        """One worker parks on a sleeper; its queued jobs get stolen.

        Round-robin seeding puts jobs 0 and 2 on worker 0 and jobs 1 and
        3 on worker 1. Worker 0 sleeps through job 0, so worker 1 must
        steal job 2 from its deque to finish the campaign promptly.
        """
        jobs = [Job(fault_workload("sleep", real_workload="470.lbm",
                                   sleep_seconds=0.8)),
                Job("435.gromacs"),
                Job("453.povray"),
                Job("444.namd")]
        report = run_campaign(jobs, config, TINY, processes=2,
                              retry=NO_RETRY, executor="pool")
        assert report.ok and report.executed == 4
        assert report.pool_steals >= 1

    def test_steal_from_dying_worker_loses_no_jobs(self, config):
        """A crashing worker's queued jobs still run (stolen or requeued)."""
        jobs = [Job(fault_workload("crash", 99, "470.lbm")),
                Job("435.gromacs"),
                Job("453.povray"),
                Job("444.namd")]
        report = run_campaign(jobs, config, TINY, processes=2,
                              retry=NO_RETRY, executor="pool")
        assert report.executed == 3 and report.failed == 1
        [failure] = report.failures
        assert failure.kind == "crash"
        assert "code 17" in failure.message
        assert report.pool_respawns >= 1


class TestCrashAndTimeout:
    def test_crash_respawns_worker_and_retry_heals(self, config):
        """A transient crash kills one worker; its respawn runs attempt 2."""
        job = Job(fault_workload("crash", 1, "470.lbm"))
        # A timeout forces subprocess execution even for a single job —
        # inline, the injected os._exit would take the test runner down.
        report = run_campaign([job], config, TINY, processes=2,
                              retry=FAST_RETRY, timeout_seconds=30.0,
                              executor="pool")
        assert report.ok
        assert report.retries == 1
        assert report.pool_respawns >= 1
        direct = run_job(Job("470.lbm"), config, TINY)
        assert canonical(report.results[0]) == canonical(direct)

    def test_timeout_kills_only_the_offender(self, config):
        jobs = [Job("435.gromacs"), Job(fault_workload("hang"))]
        report = run_campaign(jobs, config, TINY, processes=2,
                              retry=NO_RETRY, timeout_seconds=1.0,
                              executor="pool")
        assert report.executed == 1 and report.failed == 1
        [failure] = report.failures
        assert failure.kind == "timeout"
        assert "1s" in failure.message and "killed" in failure.message
        assert report.results[0].trace_name == "435.gromacs"
        assert report.pool_respawns >= 1

    def test_crash_leaves_clean_telemetry_tail(self, config, tmp_path):
        """The healing attempt supersedes the crashed attempt's spool."""
        from repro.campaign import telemetry_dir_for
        from repro.obs.telemetry import CampaignTelemetry

        store = tmp_path / "results.jsonl"
        job = Job(fault_workload("crash", 1, "470.lbm"))
        report = run_campaign([job], config, TINY, processes=2,
                              retry=FAST_RETRY, store=store,
                              timeout_seconds=30.0,
                              telemetry=0.05, executor="pool")
        assert report.ok
        telemetry = CampaignTelemetry(telemetry_dir_for(store))
        telemetry.poll()
        [job_view] = [view for key, view in telemetry.jobs.items()
                      if not key.startswith("_")]
        assert job_view.attempt == 2
        assert job_view.status == "ok"


class TestCrossExecutorResume:
    def _check_cross_resume(self, config, tmp_path, first, second):
        jobs = [Job("435.gromacs"), Job("453.povray"), Job("470.lbm"),
                Job("444.namd")]
        reference = run_campaign(jobs, config, TINY,
                                 store=tmp_path / "ref.jsonl",
                                 executor=second)
        store = tmp_path / "results.jsonl"
        partial = run_campaign(jobs, config, TINY, store=store,
                               shard=(0, 2), executor=first)
        resumed = run_campaign(jobs, config, TINY, store=store, resume=True,
                               executor=second)
        assert resumed.ok
        assert resumed.skipped == partial.executed
        assert canonical_records(ResultStore(store).load()) == \
            canonical_records(ResultStore(tmp_path / "ref.jsonl").load())

    def test_pool_store_resumed_by_spawn(self, config, tmp_path):
        self._check_cross_resume(config, tmp_path, "pool", "spawn")

    def test_spawn_store_resumed_by_pool(self, config, tmp_path):
        self._check_cross_resume(config, tmp_path, "spawn", "pool")


class TestLiveness:
    def test_worker_records_written_and_stopped(self, config, tmp_path):
        store = tmp_path / "results.jsonl"
        report = run_campaign([Job("435.gromacs"), Job("453.povray")],
                              config, TINY, processes=2, store=store,
                              executor="pool")
        assert report.ok
        document = load_worker_records(store)
        assert document is not None
        assert document["running"] is False
        assert len(document["workers"]) == 2
        assert sum(row["jobs_done"] for row in document["workers"]) == 2

    def test_load_worker_records_tolerates_absence(self, tmp_path):
        assert load_worker_records(tmp_path / "nothing.jsonl") is None


class TestWorkerTraceMemo:
    def test_storeless_counts_every_request_as_miss(self, config):
        memo = WorkerTraceMemo(None)
        first = memo.get_or_build("470.lbm", config.llc.size, 2_500, 1)
        second = memo.get_or_build("470.lbm", config.llc.size, 2_500, 1)
        assert first is second  # memoised object, not a rebuild
        assert memo.hits == 0
        assert memo.misses == 2  # matches the storeless spawn worker

    def test_store_backed_memo_hit_counts_as_hit(self, config):
        store = MemoryTraceStore()
        memo = WorkerTraceMemo(store)
        memo.get_or_build("470.lbm", config.llc.size, 2_500, 1)
        memo.get_or_build("470.lbm", config.llc.size, 2_500, 1)
        assert memo.misses == 1  # the store build
        assert memo.hits == 1    # the memo hit — provably in the store
        assert store.misses == 1  # memo shielded the store from call 2

    def test_capacity_bounds_memo(self, config):
        memo = WorkerTraceMemo(None, capacity=2)
        for seed in (1, 2, 3):
            memo.get_or_build("470.lbm", config.llc.size, 2_500, seed)
        assert len(memo._traces) == 2
        # Seed 1 was evicted FIFO; re-requesting it rebuilds.
        memo.get_or_build("470.lbm", config.llc.size, 2_500, 1)
        assert memo.misses == 4
