"""Tests for the JSONL result store and campaign/failure manifests."""

import json

import pytest

from repro.campaign.ids import job_id
from repro.campaign.store import (
    FAILURES_FORMAT,
    MANIFEST_FORMAT,
    STORE_FORMAT,
    ResultStore,
    failures_path_for,
    load_campaign_manifest,
    manifest_path_for,
    write_campaign_manifest,
    write_failure_manifest,
)
from repro.sim import ExperimentScale
from repro.sim.batch import Job, run_job

TINY = ExperimentScale(warmup_instructions=500, sim_instructions=2_000,
                       sample_interval=500)


@pytest.fixture(scope="module")
def result(config):
    return run_job(Job("435.gromacs"), config, TINY)


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "results.jsonl")


class TestResultStore:
    def test_missing_file_loads_empty(self, store):
        contents = store.load()
        assert contents.results == {} and contents.failures == {}
        assert not store.exists()

    def test_header_written_once(self, store):
        store.ensure_header({"note": "first"})
        store.ensure_header({"note": "second"})
        lines = store.path.read_text().strip().split("\n")
        assert len(lines) == 1
        header = store.load().header
        assert header["format"] == STORE_FORMAT
        assert header["note"] == "first"

    def test_result_round_trip(self, store, config, result):
        job = Job("435.gromacs")
        jid = job_id(job, config, TINY)
        store.ensure_header()
        store.append_result(jid, job, result, attempts=2,
                            wall_time_seconds=1.5)
        contents = store.load()
        assert list(contents.results) == [jid]
        assert contents.results[jid]["attempts"] == 2
        assert contents.job_for(jid) == job
        loaded = contents.result_objects()[jid]
        assert loaded.trace_name == result.trace_name
        assert loaded.ipc == result.ipc
        assert loaded.thefts_experienced == result.thefts_experienced

    def test_failure_round_trip(self, store):
        job = Job("__fault:raise")
        store.append_failure("deadbeef00000000", job,
                             {"kind": "error", "error_type": "InjectedFault",
                              "message": "boom", "traceback": "tb",
                              "attempts": 3})
        contents = store.load()
        failure = contents.failures["deadbeef00000000"]
        assert failure["failure"]["error_type"] == "InjectedFault"
        assert contents.job_for("deadbeef00000000") == job

    def test_later_result_supersedes_failure(self, store, config, result):
        job = Job("435.gromacs")
        jid = job_id(job, config, TINY)
        store.append_failure(jid, job, {"kind": "timeout", "attempts": 3,
                                        "error_type": "JobTimeout",
                                        "message": "", "traceback": ""})
        store.append_result(jid, job, result, attempts=1,
                            wall_time_seconds=0.1)
        contents = store.load()
        assert jid in contents.results
        assert jid not in contents.failures

    def test_truncated_final_line_tolerated(self, store, config, result):
        job = Job("435.gromacs")
        jid = job_id(job, config, TINY)
        store.append_result(jid, job, result, attempts=1,
                            wall_time_seconds=0.1)
        with open(store.path, "a") as handle:
            handle.write('{"kind": "result", "job_id": "tru')  # SIGKILLed
        contents = store.load()
        assert contents.truncated_lines == 1
        assert list(contents.results) == [jid]

    def test_append_after_truncation_repairs_tail(self, store, config,
                                                  result):
        """Appending over a SIGKILL-truncated tail must not corrupt the
        store mid-file — the partial line is dropped first."""
        job = Job("435.gromacs")
        jid = job_id(job, config, TINY)
        store.ensure_header()
        with open(store.path, "a") as handle:
            handle.write('{"kind": "result", "job_id": "tru')
        store.append_result(jid, job, result, attempts=1,
                            wall_time_seconds=0.1)
        contents = store.load()  # no mid-file corruption error
        assert contents.truncated_lines == 0
        assert list(contents.results) == [jid]

    def test_mid_file_corruption_raises(self, store, config, result):
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_text('not json\n{"kind": "header", '
                              f'"format": "{STORE_FORMAT}"}}\n')
        with pytest.raises(ValueError, match="corrupt store record"):
            store.load()

    def test_foreign_format_rejected(self, store):
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_text('{"kind": "header", "format": "other-v9"}\n')
        with pytest.raises(ValueError, match="not a pinte-campaign"):
            store.load()

    def test_unknown_record_kind_rejected(self, store):
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_text('{"kind": "mystery"}\n\n')
        with pytest.raises(ValueError, match="unknown record kind"):
            store.load()


class TestManifests:
    def test_paths_derive_from_store_stem(self, tmp_path):
        store_path = tmp_path / "run7.jsonl"
        assert manifest_path_for(store_path) == tmp_path / "run7.manifest.json"
        assert failures_path_for(store_path) == tmp_path / "run7.failures.json"

    def test_campaign_manifest_round_trip(self, tmp_path, config):
        jobs = [Job("470.lbm"),
                Job("470.lbm", mode="pinte", p_induce=0.5)]
        path = write_campaign_manifest(
            tmp_path / "results.jsonl", jobs, config, TINY,
            machine_preset="scaled", retry={"max_attempts": 3},
            timeout_seconds=60.0, shard=(1, 4), processes=2)
        document = load_campaign_manifest(path)
        assert document["format"] == MANIFEST_FORMAT
        assert document["jobs"] == jobs  # deserialised back into Job objects
        assert document["scale"] == TINY
        assert document["shard"] == [1, 4]
        assert document["timeout_seconds"] == 60.0

    def test_campaign_manifest_foreign_format_rejected(self, tmp_path):
        path = tmp_path / "x.manifest.json"
        path.write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ValueError, match="not a pinte-campaign-manifest"):
            load_campaign_manifest(path)

    def test_failure_manifest_always_written(self, tmp_path):
        path = write_failure_manifest(tmp_path / "results.jsonl", [])
        document = json.loads(path.read_text())
        assert document["format"] == FAILURES_FORMAT
        assert document["count"] == 0 and document["failures"] == []


class TestRepairedTailCounter:
    def test_counts_each_repair(self, store, config, result):
        job = Job("435.gromacs")
        jid = job_id(job, config, TINY)
        assert store.repaired_tails == 0
        store.ensure_header()
        assert store.repaired_tails == 0  # clean appends repair nothing
        with open(store.path, "a") as handle:
            handle.write('{"kind": "result", "job_id": "tru')
        store.append_result(jid, job, result, attempts=1,
                            wall_time_seconds=0.1)
        assert store.repaired_tails == 1
        with open(store.path, "a") as handle:
            handle.write("torn again")
        store.append_failure(jid, job, {"kind": "error", "error_type": "E",
                                        "message": "m", "traceback": "",
                                        "attempts": 1})
        assert store.repaired_tails == 2

    def test_telemetry_dir_for_shares_stem(self, tmp_path):
        from repro.campaign.store import telemetry_dir_for

        store_path = tmp_path / "campaign" / "results.jsonl"
        assert (telemetry_dir_for(store_path)
                == tmp_path / "campaign" / "results.telemetry")

    def test_manifest_records_telemetry_interval(self, tmp_path, config):
        path = write_campaign_manifest(tmp_path / "results.jsonl",
                                       [Job("470.lbm")], config, TINY,
                                       telemetry_interval=0.25)
        document = json.loads(path.read_text())
        assert document["telemetry_interval"] == 0.25
        # And absent/off campaigns record null, not a missing key.
        path = write_campaign_manifest(tmp_path / "other.jsonl",
                                       [Job("470.lbm")], config, TINY)
        assert json.loads(path.read_text())["telemetry_interval"] is None
