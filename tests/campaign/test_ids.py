"""Tests for deterministic job ids and shard partitioning."""

import pytest

from repro.campaign.ids import (
    ID_SCHEME,
    canonical_job_payload,
    job_from_dict,
    job_id,
    job_to_dict,
    parse_shard,
    shard_jobs,
)
from repro.config import scaled_config
from repro.sim import ExperimentScale
from repro.sim.batch import Job, campaign_jobs

TINY = ExperimentScale(warmup_instructions=500, sim_instructions=2_000,
                       sample_interval=500)


class TestJobDict:
    def test_round_trip(self):
        job = Job("470.lbm", mode="pair", co_runner="450.soplex", co_seed=7)
        assert job_from_dict(job_to_dict(job)) == job

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown job fields"):
            job_from_dict({"workload": "470.lbm", "llc_ways": 16})


class TestJobId:
    def test_stable_across_calls(self, config):
        job = Job("470.lbm", mode="pinte", p_induce=0.5)
        assert job_id(job, config, TINY) == job_id(job, config, TINY)

    def test_shape(self, config):
        jid = job_id(Job("470.lbm"), config, TINY)
        assert len(jid) == 16
        int(jid, 16)  # hex digits only

    def test_sensitive_to_job_fields(self, config):
        base = job_id(Job("470.lbm"), config, TINY)
        assert job_id(Job("453.povray"), config, TINY) != base
        assert job_id(Job("470.lbm", mode="pinte", p_induce=0.5),
                      config, TINY) != base

    def test_sensitive_to_scale(self, config):
        job = Job("470.lbm")
        other = ExperimentScale(warmup_instructions=500,
                                sim_instructions=2_000,
                                sample_interval=500, seed=99)
        assert job_id(job, config, TINY) != job_id(job, config, other)

    def test_sensitive_to_machine(self, config):
        import dataclasses
        job = Job("470.lbm")
        smaller = dataclasses.replace(
            config, llc=dataclasses.replace(config.llc, assoc=4))
        assert job_id(job, config, TINY) != job_id(job, smaller, TINY)

    def test_scheme_versioned_into_payload(self, config):
        payload = canonical_job_payload(Job("470.lbm"), config, TINY)
        assert payload["scheme"] == ID_SCHEME


class TestV3CanonicalForm:
    """The v3 scheme hashes the versioned schema payload, not asdict."""

    def test_machine_payload_is_canonical_schema(self, config):
        from repro.configio import CONFIG_SCHEMA, machine_to_dict

        payload = canonical_job_payload(Job("470.lbm"), config, TINY)
        assert payload["machine"] == machine_to_dict(config)
        assert payload["machine"]["schema"] == CONFIG_SCHEMA

    def test_toml_twin_hashes_identically(self, config):
        """A config round-tripped through TOML keeps its job ids — the
        point of hashing the canonical form."""
        from repro.configio import machine_from_toml, machine_to_toml

        job = Job("470.lbm", mode="pinte", p_induce=0.5)
        twin = machine_from_toml(machine_to_toml(config))
        assert job_id(job, twin, TINY) == job_id(job, config, TINY)

    def test_golden_ids_pinned(self):
        """Committed golden ids: any drift here is an id-scheme change and
        must come with an ID_SCHEME bump (old stores become unreadable)."""
        import json
        from pathlib import Path

        from repro.configs import get_machine_config

        golden = json.loads(
            (Path(__file__).resolve().parent.parent / "golden"
             / "golden_job_ids.json").read_text())
        assert golden["id_scheme"] == ID_SCHEME
        scale = ExperimentScale(**golden["scale"])
        jobs = {
            "470.lbm isolation on scaled": (Job("470.lbm"), "scaled"),
            "453.povray pinte 0.5 on scaled":
                (Job("453.povray", mode="pinte", p_induce=0.5), "scaled"),
            "470.lbm pair 450.soplex on skylake":
                (Job("470.lbm", mode="pair", co_runner="450.soplex"),
                 "skylake"),
            "429.mcf isolation on xeon": (Job("429.mcf"), "xeon"),
            "470.lbm isolation on scaled@replacement=nmru":
                (Job("470.lbm"), "scaled@replacement=nmru"),
            "470.lbm isolation on scaled@prefetching=NNI":
                (Job("470.lbm"), "scaled@prefetching=NNI"),
        }
        assert set(jobs) == set(golden["ids"])
        for label, (job, machine) in jobs.items():
            computed = job_id(job, get_machine_config(machine), scale)
            assert computed == golden["ids"][label], label


class TestParseShard:
    def test_parses(self):
        assert parse_shard("0/2") == (0, 2)
        assert parse_shard("3/4") == (3, 4)

    @pytest.mark.parametrize("text", ["2/2", "-1/2", "0/0", "1", "a/b"])
    def test_rejects(self, text):
        with pytest.raises(ValueError):
            parse_shard(text)


class TestShardJobs:
    @pytest.fixture(scope="class")
    def jobs(self):
        names = ["435.gromacs", "450.soplex", "453.povray", "470.lbm"]
        panel = {n: [m for m in names if m != n][:2] for n in names}
        return campaign_jobs(names, p_values=(0.1, 0.5, 1.0), panel=panel)

    def test_disjoint_and_exhaustive(self, jobs, config):
        shards = [shard_jobs(jobs, i, 3, config, TINY) for i in range(3)]
        merged = [job for shard in shards for job in shard]
        assert len(merged) == len(jobs)
        assert sorted(map(repr, merged)) == sorted(map(repr, jobs))

    def test_balanced_within_one(self, jobs, config):
        sizes = [len(shard_jobs(jobs, i, 3, config, TINY)) for i in range(3)]
        assert max(sizes) - min(sizes) <= 1

    def test_order_independent(self, jobs, config):
        shuffled = list(reversed(jobs))
        for i in range(3):
            assert (shard_jobs(jobs, i, 3, config, TINY)
                    == shard_jobs(shuffled, i, 3, config, TINY))

    def test_single_shard_is_identity_set(self, jobs, config):
        shard = shard_jobs(jobs, 0, 1, config, TINY)
        assert sorted(map(repr, shard)) == sorted(map(repr, jobs))

    def test_bad_index_rejected(self, jobs, config):
        with pytest.raises(ValueError):
            shard_jobs(jobs, 2, 2, config, TINY)
