"""Shared fixtures for the whole test suite.

Simulation-backed fixtures are session-scoped: the expensive campaigns run
once and every analysis/experiment test reads from them.
"""

from __future__ import annotations

import pytest

from repro.config import scaled_config
from repro.core import PinteConfig
from repro.sim import ExperimentScale, TraceLibrary, simulate
from repro.trace import build_trace, get_workload

#: Tiny scale so unit tests stay fast.
TINY = ExperimentScale(warmup_instructions=1_000, sim_instructions=6_000,
                       sample_interval=1_000)


@pytest.fixture(scope="session")
def config():
    return scaled_config()


@pytest.fixture(scope="session")
def tiny_scale():
    return TINY


@pytest.fixture(scope="session")
def library(config):
    return TraceLibrary(config, TINY)


@pytest.fixture(scope="session")
def lbm_trace(config):
    """An LLC-bound streaming trace (contention-sensitive)."""
    return build_trace(get_workload("470.lbm"), TINY.trace_length, 1,
                       config.llc.size)


@pytest.fixture(scope="session")
def povray_trace(config):
    """A core-bound trace (contention-insensitive)."""
    return build_trace(get_workload("453.povray"), TINY.trace_length, 1,
                       config.llc.size)


@pytest.fixture(scope="session")
def gromacs_trace(config):
    """A cache-friendly trace with real LLC reuse."""
    return build_trace(get_workload("435.gromacs"), TINY.trace_length, 1,
                       config.llc.size)


@pytest.fixture(scope="session")
def lbm_isolation(lbm_trace, config):
    return simulate(lbm_trace, config,
                    warmup_instructions=TINY.warmup_instructions,
                    sim_instructions=TINY.sim_instructions,
                    sample_interval=TINY.sample_interval)


@pytest.fixture(scope="session")
def lbm_pinte(lbm_trace, config):
    return simulate(lbm_trace, config, pinte=PinteConfig(p_induce=0.5),
                    warmup_instructions=TINY.warmup_instructions,
                    sim_instructions=TINY.sim_instructions,
                    sample_interval=TINY.sample_interval)


@pytest.fixture(scope="session")
def tiny_bundle(config):
    """A small but complete three-context campaign for experiment tests."""
    from repro.experiments import build_contexts

    names = ["435.gromacs", "453.povray", "470.lbm", "605.mcf"]
    return build_contexts(
        names, config, TINY,
        p_values=(0.02, 0.1, 0.3, 0.7, 1.0),
        panel_size=2,
    )
