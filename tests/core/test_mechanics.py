"""Tests pinning the paper's Fig 2 mechanics via the narrative module."""

import pytest

from repro.core.mechanics import (
    FIG2A_SCRIPT,
    HIT,
    INDUCED_THEFT,
    INTERFERENCE,
    MISS,
    MOCKED_THEFT,
    SELF_EVICTION,
    THEFT,
    TRIGGER,
    induced_contention_narrative,
    real_contention_narrative,
)


class TestRealContention:
    @pytest.fixture(scope="class")
    def narrative(self):
        return real_contention_narrative(FIG2A_SCRIPT)

    def test_thefts_occur_both_ways(self, narrative):
        thefts = narrative.of_kind(THEFT)
        assert thefts
        victims = {event.victim_owner for event in thefts}
        assert victims == {0, 1}

    def test_counters_match_events(self, narrative):
        thefts = narrative.of_kind(THEFT)
        total = (narrative.tracker.counters(0).thefts_experienced
                 + narrative.tracker.counters(1).thefts_experienced)
        assert total == len(thefts)

    def test_interference_follows_theft(self, narrative):
        """A theft victim re-accessing its block records interference."""
        interference = narrative.of_kind(INTERFERENCE)
        assert interference
        first = interference[0]
        theft_steps = [e.step for e in narrative.of_kind(THEFT)
                       if e.victim_owner == first.owner]
        assert theft_steps and min(theft_steps) < first.step

    def test_self_evictions_are_not_thefts(self, narrative):
        for event in narrative.of_kind(SELF_EVICTION):
            assert event.owner is not None
        self_evicted = len(narrative.of_kind(SELF_EVICTION))
        assert (narrative.tracker.counters(0).thefts_caused
                + narrative.tracker.counters(1).thefts_caused
                == len(narrative.of_kind(THEFT)))
        assert self_evicted > 0  # the Fig 2a script includes them

    def test_all_accesses_narrated(self, narrative):
        hits_and_misses = len(narrative.of_kind(HIT)) + len(narrative.of_kind(MISS))
        assert hits_and_misses == len(FIG2A_SCRIPT)


class TestInducedContention:
    @pytest.fixture(scope="class")
    def narrative(self):
        # Cyclic re-use over 4 blocks while PInTE plays the adversary.
        return induced_contention_narrative([1, 2, 3, 4] * 4, p_induce=0.6)

    def test_triggers_fire(self, narrative):
        assert narrative.of_kind(TRIGGER)

    def test_induced_thefts_recorded_as_system(self, narrative):
        induced = narrative.of_kind(INDUCED_THEFT)
        assert induced
        counters = narrative.tracker.counters(0)
        assert counters.induced_thefts == len(induced)
        assert counters.thefts_experienced == len(induced)

    def test_interference_from_induced_thefts(self, narrative):
        assert narrative.of_kind(INTERFERENCE)

    def test_mocked_thefts_on_invalid_ways(self, narrative):
        """Promotions exceeding invalidations are the Fig 2b mocked thefts."""
        assert narrative.of_kind(MOCKED_THEFT)

    def test_zero_probability_is_pure_isolation(self):
        narrative = induced_contention_narrative([1, 2, 3, 4] * 4,
                                                 p_induce=0.0)
        assert not narrative.of_kind(TRIGGER)
        assert not narrative.of_kind(INDUCED_THEFT)
        assert narrative.tracker.counters(0).thefts_experienced == 0

    def test_event_descriptions_render(self, narrative):
        for event in narrative.events:
            assert event.describe()

    def test_counts_summary(self, narrative):
        counts = narrative.counts()
        assert counts[MISS] >= 4  # at least the cold misses
        assert sum(counts.values()) == len(narrative.events)
