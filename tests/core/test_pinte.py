"""Unit tests for the PInTE engine — the paper's Fig 4 state machine."""

import pytest

from repro.cache.cache import Cache
from repro.core import ContentionTracker, PInTE, PinteConfig
from repro.core.pinte_config import PAPER_PINDUCE_SWEEP
from repro.owners import SYSTEM_OWNER

BLOCK = 64


def make_llc(assoc=4, sets=4, policy="lru"):
    return Cache("LLC", assoc * sets * BLOCK, assoc, BLOCK, latency=38,
                 policy=policy, track_reuse=True)


def make_engine(p=1.0, llc=None, tracker=None, **config_kw):
    llc = llc if llc is not None else make_llc()
    tracker = tracker if tracker is not None else ContentionTracker()
    engine = PInTE(PinteConfig(p_induce=p, **config_kw), llc, tracker)
    return engine, llc, tracker


def fill_set(llc, set_index, owner=0, dirty=False):
    """Fill every way of one set with owner's blocks."""
    stride = BLOCK * llc.n_sets
    for way in range(llc.assoc):
        llc.fill(set_index * BLOCK + way * stride, owner, dirty=dirty)


class TestConfig:
    def test_p_induce_bounds(self):
        with pytest.raises(ValueError):
            PinteConfig(p_induce=-0.1)
        with pytest.raises(ValueError):
            PinteConfig(p_induce=1.1)

    def test_paper_sweep_has_12_configurations(self):
        assert len(PAPER_PINDUCE_SWEEP) == 12
        assert all(0 < p <= 1 for p in PAPER_PINDUCE_SWEEP)

    def test_negative_max_evictions_rejected(self):
        with pytest.raises(ValueError):
            PinteConfig(p_induce=0.5, max_evictions=-1)


class TestGenProbability:
    def test_zero_probability_never_triggers(self):
        engine, llc, _ = make_engine(p=0.0)
        fill_set(llc, 0)
        for cycle in range(500):
            engine.on_llc_access(0, cycle, 0)
        assert engine.stats.triggers == 0
        assert llc.occupancy() == llc.assoc  # nothing invalidated

    def test_full_probability_always_triggers(self):
        engine, llc, _ = make_engine(p=1.0)
        fill_set(llc, 0)
        for cycle in range(100):
            engine.on_llc_access(0, cycle, 0)
        assert engine.stats.triggers == 100

    def test_trigger_rate_converges_to_p(self):
        engine, llc, _ = make_engine(p=0.3)
        fill_set(llc, 0)
        for cycle in range(4000):
            engine.on_llc_access(0, cycle, 0)
        assert engine.stats.trigger_rate == pytest.approx(0.3, abs=0.05)


class TestGenEvictCount:
    def test_eviction_count_bounded_by_associativity(self):
        engine, llc, _ = make_engine(p=1.0)
        for _ in range(200):
            fill_set(llc, 0)
            invalidated = engine.on_llc_access(0, 0, 0)
            assert 0 <= invalidated <= llc.assoc

    def test_max_evictions_override(self):
        engine, llc, _ = make_engine(p=1.0, max_evictions=1)
        for _ in range(100):
            fill_set(llc, 0)
            assert engine.on_llc_access(0, 0, 0) <= 1

    def test_average_draw_near_half_assoc(self):
        engine, llc, _ = make_engine(p=1.0)
        for _ in range(2000):
            engine.on_llc_access(0, 0, 0)
        mean_draw = engine.stats.evict_draws_total / engine.stats.triggers
        assert mean_draw == pytest.approx(llc.assoc / 2, rel=0.15)


class TestBlockSelectAndInvalidate:
    def test_invalidates_from_eviction_end(self):
        engine, llc, _ = make_engine(p=1.0, max_evictions=1)
        fill_set(llc, 0)
        lru_way = llc.policy.eviction_order(0)[0]
        lru_tag = llc.sets[0][lru_way].tag
        invalidated = 0
        while invalidated == 0:
            invalidated = engine.on_llc_access(0, 0, 0)
        assert llc.probe(lru_tag) == -1

    def test_induced_theft_recorded(self):
        engine, llc, tracker = make_engine(p=1.0)
        fill_set(llc, 0, owner=0)
        while engine.stats.invalidations == 0:
            engine.on_llc_access(0, 0, 0)
        counters = tracker.counters(0)
        assert counters.thefts_experienced >= 1
        assert counters.induced_thefts == counters.thefts_experienced
        assert tracker.counters(SYSTEM_OWNER).thefts_caused >= 1

    def test_dirty_invalidation_triggers_writeback(self):
        writebacks = []
        engine, llc, _ = make_engine(p=1.0)
        engine.writeback = lambda addr, cycle: writebacks.append((addr, cycle))
        fill_set(llc, 0, dirty=True)
        while engine.stats.invalidations == 0:
            engine.on_llc_access(0, 123, 0)
        assert writebacks
        assert engine.stats.dirty_writebacks == len(writebacks)

    def test_clean_invalidation_no_writeback(self):
        writebacks = []
        engine, llc, _ = make_engine(p=1.0)
        engine.writeback = lambda addr, cycle: writebacks.append(addr)
        fill_set(llc, 0, dirty=False)
        for _ in range(50):
            engine.on_llc_access(0, 0, 0)
        assert not writebacks

    def test_back_invalidate_hook(self):
        invalidated = []
        engine, llc, _ = make_engine(p=1.0)
        engine.back_invalidate = lambda addr, cycle: invalidated.append(addr)
        fill_set(llc, 0)
        while engine.stats.invalidations == 0:
            engine.on_llc_access(0, 0, 0)
        assert len(invalidated) == engine.stats.invalidations


class TestPromote:
    def test_promotion_happens_even_for_invalid_blocks(self):
        """The 'mocked theft' of Fig 2b: invalid blocks get promoted too."""
        engine, llc, _ = make_engine(p=1.0)
        # Empty set: every selected block is invalid.
        for _ in range(20):
            engine.on_llc_access(0, 0, 0)
        assert engine.stats.promotions > 0
        assert engine.stats.invalidations == 0

    def test_promote_invalid_ablation_skips_empty_ways(self):
        engine, llc, _ = make_engine(p=1.0, promote_invalid=False)
        for _ in range(20):
            engine.on_llc_access(0, 0, 0)
        assert engine.stats.promotions == 0

    def test_promoted_victim_moves_to_protected_end(self):
        engine, llc, _ = make_engine(p=1.0, max_evictions=1)
        fill_set(llc, 0)
        before = llc.policy.eviction_order(0)
        while engine.on_llc_access(0, 0, 0) == 0:
            pass
        after = llc.policy.eviction_order(0)
        # The previously most-evictable way is now at the protected end.
        assert after[-1] == before[0]


class TestDeterminism:
    def test_same_seed_same_behaviour(self):
        results = []
        for _ in range(2):
            engine, llc, _ = make_engine(p=0.5, seed=42)
            total = 0
            for cycle in range(300):
                fill_set(llc, 0)
                total += engine.on_llc_access(0, cycle, 0)
            results.append((total, engine.stats.triggers))
        assert results[0] == results[1]

    def test_different_seed_different_behaviour(self):
        totals = []
        for seed in (1, 2):
            engine, llc, _ = make_engine(p=0.5, seed=seed)
            total = 0
            for cycle in range(300):
                fill_set(llc, 0)
                total += engine.on_llc_access(0, cycle, 0)
            totals.append(total)
        assert totals[0] != totals[1]


@pytest.mark.parametrize("policy", ["lru", "plru", "nmru", "rrip"])
class TestPolicyAgnostic:
    def test_induction_works_on_all_policies(self, policy):
        llc = make_llc(policy=policy)
        engine, llc, tracker = make_engine(p=1.0, llc=llc)
        fill_set(llc, 0)
        total = 0
        for cycle in range(50):
            total += engine.on_llc_access(0, cycle, 0)
            fill_set(llc, 0)
        assert total > 0
        assert tracker.counters(0).thefts_experienced == total
