"""Unit tests for contention counters and the tracker."""

from repro.core.counters import STOLEN_SET_CAP, ContentionCounters, ContentionTracker
from repro.owners import SYSTEM_OWNER


class TestContentionCounters:
    def test_rates_zero_without_accesses(self):
        counters = ContentionCounters()
        assert counters.contention_rate == 0.0
        assert counters.interference_rate == 0.0

    def test_contention_rate(self):
        counters = ContentionCounters()
        counters.llc_accesses = 100
        counters.thefts_experienced = 25
        assert counters.contention_rate == 0.25

    def test_interference_rate(self):
        counters = ContentionCounters()
        counters.llc_accesses = 200
        counters.interference_misses = 20
        assert counters.interference_rate == 0.1

    def test_snapshot_is_copy(self):
        counters = ContentionCounters()
        counters.llc_accesses = 5
        snap = counters.snapshot()
        counters.llc_accesses = 10
        assert snap["llc_accesses"] == 5


class TestTrackerAccess:
    def test_access_counts(self):
        tracker = ContentionTracker()
        tracker.record_access(0, 0x1000, hit=True)
        tracker.record_access(0, 0x2000, hit=False)
        counters = tracker.counters(0)
        assert counters.llc_accesses == 2
        assert counters.llc_misses == 1

    def test_owners_listed(self):
        tracker = ContentionTracker()
        tracker.record_access(0, 0x1000, True)
        tracker.record_access(1, 0x2000, True)
        assert tracker.owners == [0, 1]

    def test_workload_owners_excludes_system(self):
        tracker = ContentionTracker()
        tracker.record_access(0, 0x1000, True)
        tracker.counters(SYSTEM_OWNER)
        assert tracker.workload_owners() == [0]


class TestTheftAccounting:
    def test_theft_updates_both_sides(self):
        tracker = ContentionTracker()
        tracker.record_theft(victim_owner=0, thief_owner=1, block_addr=0x1000)
        assert tracker.counters(0).thefts_experienced == 1
        assert tracker.counters(1).thefts_caused == 1

    def test_induced_flag(self):
        tracker = ContentionTracker()
        tracker.record_theft(0, SYSTEM_OWNER, 0x1000, induced=True)
        assert tracker.counters(0).induced_thefts == 1

    def test_total_thefts(self):
        tracker = ContentionTracker()
        tracker.record_theft(0, 1, 0x1000)
        tracker.record_theft(1, 0, 0x2000)
        tracker.record_theft(0, SYSTEM_OWNER, 0x3000, induced=True)
        assert tracker.total_thefts() == 3


class TestInterferenceDetection:
    def test_miss_on_stolen_block_is_interference(self):
        tracker = ContentionTracker()
        tracker.record_theft(0, 1, 0x1000)
        tracker.record_access(0, 0x1000, hit=False)
        assert tracker.counters(0).interference_misses == 1

    def test_interference_counted_once(self):
        tracker = ContentionTracker()
        tracker.record_theft(0, 1, 0x1000)
        tracker.record_access(0, 0x1000, hit=False)
        tracker.record_access(0, 0x1000, hit=False)
        assert tracker.counters(0).interference_misses == 1

    def test_miss_on_unstolen_block_is_not_interference(self):
        tracker = ContentionTracker()
        tracker.record_access(0, 0x9999, hit=False)
        assert tracker.counters(0).interference_misses == 0

    def test_hit_clears_nothing(self):
        tracker = ContentionTracker()
        tracker.record_theft(0, 1, 0x1000)
        tracker.record_access(0, 0x1000, hit=True)  # found elsewhere
        tracker.record_access(0, 0x1000, hit=False)
        assert tracker.counters(0).interference_misses == 1

    def test_refill_clears_stolen(self):
        tracker = ContentionTracker()
        tracker.record_theft(0, 1, 0x1000)
        tracker.record_refill(0, 0x1000)  # e.g. prefetched back
        tracker.record_access(0, 0x1000, hit=False)
        assert tracker.counters(0).interference_misses == 0

    def test_stolen_set_capped(self):
        tracker = ContentionTracker()
        for i in range(STOLEN_SET_CAP + 100):
            tracker.record_theft(0, 1, i * 64)
        assert len(tracker._stolen[0]) == STOLEN_SET_CAP
        # Thefts beyond the cap still count as thefts.
        assert tracker.counters(0).thefts_experienced == STOLEN_SET_CAP + 100


class TestTriggerBookkeeping:
    def test_trigger_and_promotion(self):
        tracker = ContentionTracker()
        tracker.record_trigger(0)
        tracker.record_promotion(SYSTEM_OWNER)
        assert tracker.counters(0).pinte_triggers == 1
        assert tracker.counters(SYSTEM_OWNER).induced_promotions == 1
