"""Unit tests for the PInTE extensions (periodic trigger, DRAM background)."""

import pytest

from repro.cache.cache import Cache
from repro.core import (
    BackgroundDramTraffic,
    ContentionTracker,
    PInTE,
    PeriodicPinte,
    PinteConfig,
)
from repro.dram import Dram, DramConfig

BLOCK = 64


def make_engine(p=1.0, seed=0):
    llc = Cache("LLC", 8 * 4 * BLOCK, 4, BLOCK, latency=1, policy="lru")
    tracker = ContentionTracker()
    return PInTE(PinteConfig(p_induce=p, seed=seed), llc, tracker), llc, tracker


def fill_all_sets(llc, owner=0):
    stride = BLOCK * llc.n_sets
    for set_index in range(llc.n_sets):
        for way in range(llc.assoc):
            llc.fill(set_index * BLOCK + way * stride, owner)


class TestPinteConfigModes:
    def test_default_is_per_access(self):
        assert PinteConfig(0.5).trigger == "per-access"

    def test_bad_trigger_rejected(self):
        with pytest.raises(ValueError, match="trigger"):
            PinteConfig(0.5, trigger="clockwork")

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            PinteConfig(0.5, trigger="periodic", period_cycles=0)

    def test_negative_background_rejected(self):
        with pytest.raises(ValueError):
            PinteConfig(0.5, dram_background_rpkc=-1.0)


class TestPeriodicPinte:
    def test_fires_on_schedule(self):
        engine, llc, _ = make_engine(p=1.0)
        periodic = PeriodicPinte(engine, period_cycles=100)
        fill_all_sets(llc)
        assert periodic.maybe_tick(50, 0) == 0  # before the first period
        assert periodic.maybe_tick(100, 0) > 0

    def test_probability_zero_never_invalidates(self):
        engine, llc, _ = make_engine(p=0.0)
        periodic = PeriodicPinte(engine, period_cycles=10)
        fill_all_sets(llc)
        assert periodic.maybe_tick(10_000, 0) == 0
        assert llc.occupancy() == llc.capacity_blocks

    def test_rotates_through_sets(self):
        engine, llc, tracker = make_engine(p=1.0)
        periodic = PeriodicPinte(engine, period_cycles=10)
        fill_all_sets(llc)
        for cycle in range(10, 1000, 10):
            periodic.maybe_tick(cycle, 0)
            fill_all_sets(llc)  # keep refilling so every set has victims
        # Every set should have lost blocks at some point: total thefts far
        # exceed one set's associativity.
        assert tracker.counters(0).thefts_experienced > llc.assoc * llc.n_sets

    def test_catch_up_bounded(self):
        engine, llc, _ = make_engine(p=1.0)
        periodic = PeriodicPinte(engine, period_cycles=10)
        fill_all_sets(llc)
        # A huge stall does not replay thousands of rounds at once.
        periodic.maybe_tick(1_000_000, 0)
        assert periodic.rounds <= 8

    def test_rejects_bad_period(self):
        engine, _, _ = make_engine()
        with pytest.raises(ValueError):
            PeriodicPinte(engine, period_cycles=0)

    def test_deterministic(self):
        counts = []
        for _ in range(2):
            engine, llc, _ = make_engine(p=0.5, seed=3)
            periodic = PeriodicPinte(engine, period_cycles=10)
            fill_all_sets(llc)
            total = 0
            for cycle in range(10, 2000, 10):
                total += periodic.maybe_tick(cycle, 0)
                fill_all_sets(llc)
            counts.append(total)
        assert counts[0] == counts[1]


class TestBackgroundDramTraffic:
    def test_issues_at_configured_rate(self):
        dram = Dram(DramConfig())
        traffic = BackgroundDramTraffic(dram, rate_per_kilocycle=10.0, seed=1)
        for cycle in range(0, 100_001, 1000):
            traffic.advance(cycle)
        # ~10 requests per kilocycle over 100 kilocycles = ~1000 requests.
        assert 700 <= traffic.requests <= 1300
        assert dram.stats.accesses == traffic.requests

    def test_occupies_channels(self):
        dram = Dram(DramConfig(channels=1))
        traffic = BackgroundDramTraffic(dram, rate_per_kilocycle=200.0, seed=1)
        traffic.advance(50_000)
        # A demand request arriving now queues behind background traffic.
        latency = dram.access(0x1234000, 50_000)
        assert latency > dram.config.row_conflict_latency * 0 + 0  # sanity
        assert dram.stats.queue_cycles >= 0

    def test_mix_of_reads_and_writes(self):
        dram = Dram(DramConfig())
        traffic = BackgroundDramTraffic(dram, rate_per_kilocycle=50.0, seed=2)
        for cycle in range(0, 200_001, 500):
            traffic.advance(cycle)
        assert dram.stats.reads > 0
        assert dram.stats.writes > 0

    def test_catch_up_bounded(self):
        dram = Dram(DramConfig())
        traffic = BackgroundDramTraffic(dram, rate_per_kilocycle=1000.0, seed=1)
        traffic.advance(10_000_000)  # enormous jump
        assert traffic.requests <= 64

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            BackgroundDramTraffic(Dram(DramConfig()), rate_per_kilocycle=0.0)

    def test_rejects_bad_write_fraction(self):
        with pytest.raises(ValueError):
            BackgroundDramTraffic(Dram(DramConfig()), 10.0, write_fraction=2.0)


class TestSimulatorIntegration:
    def test_periodic_mode_reaches_core_bound(self, config):
        """The extension's whole point: contention lands on a workload whose
        LLC accesses are too rare for the per-access trigger."""
        from repro.sim import simulate
        from repro.trace import build_trace, get_workload

        trace = build_trace(get_workload("638.imagick"), 10_000, 1,
                            config.llc.size)
        per_access = simulate(trace, config, pinte=PinteConfig(1.0),
                              warmup_instructions=2_000,
                              sim_instructions=8_000)
        periodic = simulate(trace, config,
                            pinte=PinteConfig(1.0, trigger="periodic",
                                              period_cycles=200),
                            warmup_instructions=2_000, sim_instructions=8_000)
        assert periodic.thefts_experienced > per_access.thefts_experienced
        assert periodic.extra["pinte_periodic_rounds"] > 0

    def test_background_traffic_raises_amat(self, config):
        from repro.sim import simulate
        from repro.trace import build_trace, get_workload

        trace = build_trace(get_workload("470.lbm"), 10_000, 1,
                            config.llc.size)
        plain = simulate(trace, config, pinte=PinteConfig(0.3),
                         warmup_instructions=2_000, sim_instructions=8_000)
        loaded = simulate(trace, config,
                          pinte=PinteConfig(0.3, dram_background_rpkc=100.0),
                          warmup_instructions=2_000, sim_instructions=8_000)
        assert loaded.amat > plain.amat
        assert loaded.extra["dram_background_requests"] > 0
