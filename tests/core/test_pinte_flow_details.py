"""Fine-grained checks on the Fig 4 state-machine flow details."""

import pytest

from repro.cache.cache import Cache
from repro.core import ContentionTracker, PInTE, PinteConfig
from repro.owners import SYSTEM_OWNER

BLOCK = 64


def make(p=1.0, assoc=4, sets=2, policy="lru", **kw):
    llc = Cache("LLC", assoc * sets * BLOCK, assoc, BLOCK, latency=1,
                policy=policy)
    tracker = ContentionTracker()
    return PInTE(PinteConfig(p_induce=p, **kw), llc, tracker), llc, tracker


def fill_set(llc, set_index, owner=0, dirty=False):
    stride = BLOCK * llc.n_sets
    for way in range(llc.assoc):
        llc.fill(set_index * BLOCK + way * stride, owner, dirty=dirty)


class TestFlowOrdering:
    def test_walk_starts_at_eviction_end(self):
        """With Blocks_evict == 1 the invalidated block is always the one
        the replacement policy would have evicted next."""
        engine, llc, _ = make(p=1.0, max_evictions=1)
        for _ in range(30):
            fill_set(llc, 0)
            expected_way = llc.policy.eviction_order(0)[0]
            expected_tag = llc.sets[0][expected_way].tag
            if engine.on_llc_access(0, 0, 0):
                assert llc.probe(expected_tag) == -1

    def test_partial_set_exhaustion(self):
        """When the draw exceeds the valid population the walk stops at the
        set boundary (the paper's 'set has been exhausted' exit)."""
        engine, llc, _ = make(p=1.0)
        stride = BLOCK * llc.n_sets
        for _ in range(50):
            llc.fill(0, 0)
            llc.fill(stride, 0)  # only 2 of 4 ways ever valid
            invalidated = engine.on_llc_access(0, 0, 0)
            assert invalidated <= 2

    def test_accessed_set_only(self):
        """Per-access induction touches only the accessed set."""
        engine, llc, _ = make(p=1.0)
        fill_set(llc, 0)
        fill_set(llc, 1)
        before_set1 = [block.tag for block in llc.sets[1] if block.valid]
        for cycle in range(50):
            engine.on_llc_access(0, cycle, 0)
        after_set1 = [block.tag for block in llc.sets[1] if block.valid]
        assert before_set1 == after_set1

    def test_second_owners_blocks_also_stolen(self):
        """The system steals from whoever owns the blocks — in a shared-LLC
        setting PInTE can victimise both co-runners."""
        engine, llc, tracker = make(p=1.0)
        stride = BLOCK * llc.n_sets
        llc.fill(0 * stride, 0)
        llc.fill(1 * stride, 1)
        llc.fill(2 * stride, 0)
        llc.fill(3 * stride, 1)
        for cycle in range(20):
            engine.on_llc_access(0, cycle, 0)
        assert tracker.counters(0).thefts_experienced > 0
        assert tracker.counters(1).thefts_experienced > 0
        assert tracker.counters(SYSTEM_OWNER).thefts_caused == (
            tracker.counters(0).thefts_experienced
            + tracker.counters(1).thefts_experienced)


class TestEngineStats:
    def test_accesses_seen_counts_every_call(self):
        engine, llc, _ = make(p=0.0)
        for cycle in range(100):
            engine.on_llc_access(cycle % llc.n_sets, cycle, 0)
        assert engine.stats.accesses_seen == 100

    def test_trigger_rate_zero_before_use(self):
        engine, _, _ = make()
        assert engine.stats.trigger_rate == 0.0

    def test_promotions_at_least_invalidations(self):
        engine, llc, _ = make(p=1.0)
        for cycle in range(100):
            fill_set(llc, cycle % llc.n_sets)
            engine.on_llc_access(cycle % llc.n_sets, cycle, 0)
        assert engine.stats.promotions >= engine.stats.invalidations


class TestRripInteraction:
    def test_promote_then_invalidate_leaves_way_attractive(self):
        """After PInTE processes a way (promote + invalidate), the next fill
        should prefer that invalid way — the 'mock insertion' effect."""
        engine, llc, _ = make(p=1.0, policy="rrip", max_evictions=1)
        fill_set(llc, 0)
        while engine.on_llc_access(0, 0, 0) == 0:
            pass
        stride = BLOCK * llc.n_sets
        evicted = llc.fill(99 * stride, 0)
        assert evicted is None  # used the invalidated way, displaced no one
