"""Tests for workload-mix construction and coverage."""

import pytest

from repro.trace.mixes import (
    class_balanced_mixes,
    pair_coverage,
    pairs_covered,
    random_mixes,
)
from repro.trace.spec_models import get_workload

NAMES = [f"w{i}" for i in range(10)]


class TestRandomMixes:
    def test_count_and_size(self):
        mixes = random_mixes(NAMES, n_mixes=5, mix_size=2, seed=1)
        assert len(mixes) == 5
        assert all(len(mix) == 2 for mix in mixes)

    def test_distinct_members(self):
        for mix in random_mixes(NAMES, 10, 4, seed=2):
            assert len(set(mix)) == 4

    def test_no_duplicate_mixes(self):
        mixes = random_mixes(NAMES, 20, 2, seed=3)
        assert len(set(mixes)) == 20

    def test_deterministic(self):
        assert random_mixes(NAMES, 5, 3, seed=4) == random_mixes(NAMES, 5, 3,
                                                                 seed=4)

    def test_exhausting_pool_raises(self):
        with pytest.raises(ValueError, match="distinct mixes"):
            random_mixes(["a", "b", "c"], n_mixes=10, mix_size=2)

    def test_mix_size_validation(self):
        with pytest.raises(ValueError):
            random_mixes(NAMES, 1, 1)
        with pytest.raises(ValueError):
            random_mixes(["a", "b"], 1, 3)


class TestClassBalanced:
    def test_one_per_class(self):
        mixes = class_balanced_mixes(4, ["core_bound", "llc_bound"], seed=1)
        assert len(mixes) == 4
        for mix in mixes:
            assert get_workload(mix[0]).klass == "core_bound"
            assert get_workload(mix[1]).klass == "llc_bound"

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="no workloads"):
            class_balanced_mixes(1, ["gpu_bound"])


class TestCoverage:
    def test_pairs_covered(self):
        covered = pairs_covered([("a", "b", "c")])
        assert covered == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_full_coverage(self):
        names = ["a", "b", "c"]
        mixes = [("a", "b"), ("a", "c"), ("b", "c")]
        assert pair_coverage(mixes, names) == 1.0

    def test_partial_coverage(self):
        names = ["a", "b", "c", "d"]  # 6 pairs
        assert pair_coverage([("a", "b")], names) == pytest.approx(1 / 6)

    def test_paper_scale_coverage_is_tiny(self):
        """The paper's Table I point: an affordable mix set covers a sliver
        of the 188-trace pair matrix."""
        names = [f"t{i}" for i in range(188)]
        mixes = random_mixes(names, n_mixes=100, mix_size=2, seed=5)
        assert pair_coverage(mixes, names) < 0.01

    def test_empty_names(self):
        assert pair_coverage([], []) == 0.0
