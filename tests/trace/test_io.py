"""Unit tests for trace file I/O."""

import gzip

import pytest

from repro.trace.io import read_trace, write_trace
from repro.trace.record import Trace, TraceRecord
from repro.trace.spec_models import get_workload
from repro.trace.synthetic import build_trace


def sample_trace():
    return Trace("sample", [
        TraceRecord(0x400000),
        TraceRecord(0x400004, load_addr=0x1000),
        TraceRecord(0x400008, load_addr=0x2000, store_addr=0x2000),
        TraceRecord(0x40000C, is_branch=True, taken=True),
        TraceRecord(0x400010, load_addr=0x3000, dependent=True),
    ])


class TestRoundTrip:
    def test_records_survive(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        trace = sample_trace()
        count = write_trace(trace, path)
        assert count == 5
        loaded = read_trace(path)
        assert loaded.records == trace.records

    def test_name_survives(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        write_trace(sample_trace(), path)
        assert read_trace(path).name == "sample"

    def test_name_override(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        write_trace(sample_trace(), path, name="other")
        assert read_trace(path).name == "other"

    def test_iterable_input(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        write_trace(iter(sample_trace().records), path, name="it")
        assert len(read_trace(path)) == 5

    def test_synthetic_round_trip(self, tmp_path):
        trace = build_trace(get_workload("435.gromacs"), 3000, 1, 65536)
        path = tmp_path / "g.trace.gz"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded.records == trace.records
        assert loaded.name == trace.name

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.trace.gz"
        write_trace(Trace("empty", []), path)
        assert len(read_trace(path)) == 0


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.trace.gz"
        with gzip.open(path, "wb") as fh:
            fh.write(b"NOTATRACE")
        with pytest.raises(ValueError, match="bad magic"):
            read_trace(path)

    def test_truncated_record(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        write_trace(sample_trace(), path)
        raw = gzip.decompress(path.read_bytes())
        with gzip.open(path, "wb") as fh:
            fh.write(raw[:-3])  # chop the last record
        with pytest.raises(ValueError, match="truncated"):
            read_trace(path)
