"""Unit tests for trace file I/O — both PNTR format versions.

The property the suite guards: for any record stream, ``read_trace``
after ``write_trace`` reproduces the records exactly — including the
``None``-vs-``0`` address distinction — whichever on-disk version was
written, and legacy ``PNTR1`` files stay readable forever.
"""

import gzip

import pytest

from repro.trace.io import FORMAT_VERSION, read_trace, write_trace
from repro.trace.packed import as_packed
from repro.trace.record import Trace, TraceRecord
from repro.trace.spec_models import get_workload
from repro.trace.synthetic import build_trace

VERSIONS = (1, 2)


def sample_trace():
    return Trace("sample", [
        TraceRecord(0x400000),
        TraceRecord(0x400004, load_addr=0x1000),
        TraceRecord(0x400008, load_addr=0x2000, store_addr=0x2000),
        TraceRecord(0x40000C, is_branch=True, taken=True),
        TraceRecord(0x400010, load_addr=0x3000, dependent=True),
    ])


#: Edge-case record streams, parametrised by name.
EDGE_CASES = {
    "zero_load_addr": [
        # Address 0 is a real address — must not collapse to None.
        TraceRecord(0x400000, load_addr=0),
        TraceRecord(0x400004, load_addr=0, store_addr=0),
    ],
    "store_only": [
        # A store with no load (not produced by the synthetic generator,
        # but legal in the record model and in external traces).
        TraceRecord(0x400000, store_addr=0x8000),
        TraceRecord(0x400004, store_addr=0),
    ],
    "no_memory": [
        TraceRecord(0x400000),
        TraceRecord(0x400004, is_branch=True, taken=False),
        TraceRecord(0x400008, is_branch=True, taken=True),
    ],
    "all_flags": [
        TraceRecord(0x400000, load_addr=0x1000, store_addr=0x1000,
                    is_branch=True, taken=True, dependent=True),
    ],
    "huge_addresses": [
        TraceRecord(2**63, load_addr=2**64 - 1, store_addr=2**64 - 64),
    ],
    "empty": [],
}


class TestRoundTrip:
    @pytest.mark.parametrize("version", VERSIONS)
    def test_records_survive(self, tmp_path, version):
        path = tmp_path / "t.trace.gz"
        trace = sample_trace()
        count = write_trace(trace, path, version=version)
        assert count == 5
        loaded = read_trace(path)
        assert loaded.records == trace.records

    @pytest.mark.parametrize("version", VERSIONS)
    @pytest.mark.parametrize("case", sorted(EDGE_CASES))
    def test_edge_case_round_trip(self, tmp_path, version, case):
        records = EDGE_CASES[case]
        path = tmp_path / f"{case}.trace.gz"
        assert write_trace(Trace(case, records), path,
                           version=version) == len(records)
        loaded = read_trace(path)
        assert loaded.records == records

    def test_zero_addr_stays_distinct_from_none(self, tmp_path):
        path = tmp_path / "zero.trace.gz"
        write_trace(Trace("z", EDGE_CASES["zero_load_addr"]), path)
        loaded = read_trace(path).records
        assert loaded[0].load_addr == 0       # real zero address...
        assert loaded[0].store_addr is None   # ...absent operand is None
        assert loaded[1].store_addr == 0

    def test_name_survives(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        write_trace(sample_trace(), path)
        assert read_trace(path).name == "sample"

    @pytest.mark.parametrize("version", VERSIONS)
    def test_name_override(self, tmp_path, version):
        path = tmp_path / "t.trace.gz"
        write_trace(sample_trace(), path, name="other", version=version)
        assert read_trace(path).name == "other"

    def test_iterable_input(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        write_trace(iter(sample_trace().records), path, name="it")
        assert len(read_trace(path)) == 5

    def test_packed_input(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        packed = as_packed(sample_trace())
        write_trace(packed, path)
        assert as_packed(read_trace(path)) == packed

    def test_synthetic_round_trip(self, tmp_path):
        trace = build_trace(get_workload("435.gromacs"), 3000, 1, 65536)
        path = tmp_path / "g.trace.gz"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded.records == trace.records
        assert loaded.name == trace.name

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.trace.gz"
        write_trace(Trace("empty", []), path)
        assert len(read_trace(path)) == 0

    def test_default_version_is_current(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        write_trace(sample_trace(), path)
        with gzip.open(path, "rb") as fh:
            assert fh.read(6) == f"PNTR{FORMAT_VERSION}\n".encode()


class TestLegacyCompatibility:
    def test_v1_and_v2_read_back_identical(self, tmp_path):
        """The same stream through both formats loads to identical columns."""
        trace = build_trace(get_workload("470.lbm"), 2000, 3, 65536)
        v1 = tmp_path / "v1.trace.gz"
        v2 = tmp_path / "v2.trace.gz"
        write_trace(trace, v1, version=1)
        write_trace(trace, v2, version=2)
        loaded_v1 = as_packed(read_trace(v1))
        loaded_v2 = as_packed(read_trace(v2))
        assert loaded_v1 == loaded_v2
        assert loaded_v1 == as_packed(trace)

    def test_v1_magic(self, tmp_path):
        path = tmp_path / "v1.trace.gz"
        write_trace(sample_trace(), path, version=1)
        with gzip.open(path, "rb") as fh:
            assert fh.read(6) == b"PNTR1\n"

    def test_v2_smaller_than_v1_for_synthetic(self, tmp_path):
        """Columnar blocks compress better than interleaved records."""
        trace = build_trace(get_workload("429.mcf"), 20_000, 1, 65536)
        v1 = tmp_path / "v1.trace.gz"
        v2 = tmp_path / "v2.trace.gz"
        write_trace(trace, v1, version=1)
        write_trace(trace, v2, version=2)
        assert v2.stat().st_size < v1.stat().st_size


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.trace.gz"
        with gzip.open(path, "wb") as fh:
            fh.write(b"NOTATRACE")
        with pytest.raises(ValueError, match="bad magic"):
            read_trace(path)

    def test_unknown_version_refused(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            write_trace(sample_trace(), tmp_path / "x.trace.gz", version=3)

    @pytest.mark.parametrize("version", VERSIONS)
    def test_truncated_tail(self, tmp_path, version):
        path = tmp_path / "t.trace.gz"
        write_trace(sample_trace(), path, version=version)
        raw = gzip.decompress(path.read_bytes())
        with gzip.open(path, "wb") as fh:
            fh.write(raw[:-3])  # chop mid-record / mid-column
        with pytest.raises(ValueError, match="truncated"):
            read_trace(path)

    @pytest.mark.parametrize("cut", ("count", "pcs", "flags"))
    def test_truncated_v2_sections(self, tmp_path, cut):
        path = tmp_path / "t.trace.gz"
        write_trace(sample_trace(), path, version=2)
        raw = gzip.decompress(path.read_bytes())
        header = 6 + 2 + len(b"sample")
        offsets = {
            "count": header + 4,             # mid record-count field
            "pcs": header + 8 + 3 * 8,       # mid pc column
            "flags": len(raw) - 2,           # mid flags column
        }
        with gzip.open(path, "wb") as fh:
            fh.write(raw[:offsets[cut]])
        with pytest.raises(ValueError, match="truncated"):
            read_trace(path)

    def test_trailing_bytes_rejected(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        write_trace(sample_trace(), path, version=2)
        raw = gzip.decompress(path.read_bytes())
        with gzip.open(path, "wb") as fh:
            fh.write(raw + b"junk")
        with pytest.raises(ValueError, match="trailing bytes"):
            read_trace(path)

    def test_truncated_name(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        with gzip.open(path, "wb") as fh:
            fh.write(b"PNTR2\n" + (200).to_bytes(2, "little") + b"short")
        with pytest.raises(ValueError, match="truncated name"):
            read_trace(path)
