"""Unit tests for the access-pattern generators."""

import pytest

from repro.trace.patterns import (
    BLOCK,
    MixedPhasePattern,
    PointerChasePattern,
    RandomPattern,
    StencilPattern,
    StreamPattern,
    WorkingSetPattern,
    pattern_summary,
    reuse_distances,
)
from repro.util.rng import DeterministicRng


def rng():
    return DeterministicRng(1, "test")


class TestStream:
    def test_sequential(self):
        pattern = StreamPattern(footprint=4 * BLOCK, stride=BLOCK)
        r = rng()
        assert [pattern.next_address(r) for _ in range(5)] == [
            0, BLOCK, 2 * BLOCK, 3 * BLOCK, 0
        ]

    def test_stays_in_footprint(self):
        pattern = StreamPattern(footprint=1024)
        r = rng()
        assert all(0 <= pattern.next_address(r) < 1024 for _ in range(100))

    def test_reset(self):
        pattern = StreamPattern(footprint=1024)
        r = rng()
        first = pattern.next_address(r)
        pattern.next_address(r)
        pattern.reset()
        assert pattern.next_address(r) == first

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            StreamPattern(0)


class TestPointerChase:
    def test_single_cycle_covers_all_blocks(self):
        n_blocks = 32
        pattern = PointerChasePattern(n_blocks * BLOCK, rng())
        r = rng()
        seen = {pattern.next_address(r) // BLOCK for _ in range(n_blocks)}
        assert seen == set(range(n_blocks))

    def test_periodic(self):
        n_blocks = 16
        pattern = PointerChasePattern(n_blocks * BLOCK, rng())
        r = rng()
        first_lap = [pattern.next_address(r) for _ in range(n_blocks)]
        second_lap = [pattern.next_address(r) for _ in range(n_blocks)]
        assert first_lap == second_lap

    def test_stays_in_footprint(self):
        pattern = PointerChasePattern(2048, rng())
        r = rng()
        assert all(0 <= pattern.next_address(r) < 2048 for _ in range(200))

    def test_rejects_tiny_footprint(self):
        with pytest.raises(ValueError):
            PointerChasePattern(BLOCK - 1, rng())


class TestWorkingSet:
    def test_hot_set_dominates(self):
        pattern = WorkingSetPattern(100 * BLOCK, hot_fraction=0.2,
                                    hot_probability=0.8)
        r = rng()
        hot = sum(
            1 for _ in range(2000)
            if pattern.next_address(r) // BLOCK < 20
        )
        assert hot / 2000 > 0.7

    def test_stays_in_footprint(self):
        pattern = WorkingSetPattern(4096)
        r = rng()
        assert all(0 <= pattern.next_address(r) < 4096 for _ in range(200))

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            WorkingSetPattern(4096, hot_fraction=0.0)
        with pytest.raises(ValueError):
            WorkingSetPattern(4096, hot_probability=1.5)


class TestStencil:
    def test_three_point_reuse(self):
        pattern = StencilPattern(16 * 4096, row_bytes=4096)
        r = rng()
        a, b, c = (pattern.next_address(r) for _ in range(3))
        assert b - a == 4096
        assert c - b == 4096

    def test_stays_in_footprint(self):
        pattern = StencilPattern(16 * 4096, row_bytes=4096)
        r = rng()
        assert all(0 <= pattern.next_address(r) < 16 * 4096 for _ in range(500))

    def test_rejects_small_footprint(self):
        with pytest.raises(ValueError):
            StencilPattern(2 * 4096, row_bytes=4096)


class TestRandom:
    def test_block_aligned(self):
        pattern = RandomPattern(64 * BLOCK)
        r = rng()
        assert all(pattern.next_address(r) % BLOCK == 0 for _ in range(100))

    def test_covers_footprint_eventually(self):
        pattern = RandomPattern(8 * BLOCK)
        r = rng()
        seen = {pattern.next_address(r) // BLOCK for _ in range(500)}
        assert seen == set(range(8))


class TestMixedPhase:
    def test_phase_switching(self):
        stream = StreamPattern(4 * BLOCK)
        random_pattern = RandomPattern(1024 * BLOCK)
        mixed = MixedPhasePattern([stream, random_pattern], phase_length=4)
        r = rng()
        first_phase = [mixed.next_address(r) for _ in range(4)]
        assert first_phase == [0, BLOCK, 2 * BLOCK, 3 * BLOCK]
        # Next phase comes from the big random pattern: almost surely outside
        # the 4-block stream footprint at least once.
        second_phase = [mixed.next_address(r) for _ in range(4)]
        assert any(address >= 4 * BLOCK for address in second_phase)

    def test_footprint_is_max(self):
        mixed = MixedPhasePattern([StreamPattern(1024), RandomPattern(8192)])
        assert mixed.footprint == 8192

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MixedPhasePattern([])


class TestReuseDistances:
    def test_first_touch_is_minus_one(self):
        assert reuse_distances([0, 64, 128]) == [-1, -1, -1]

    def test_immediate_reuse_is_zero(self):
        assert reuse_distances([0, 0]) == [-1, 0]

    def test_stack_distance(self):
        # 0, 64, 0: one distinct block touched between reuses of 0.
        assert reuse_distances([0, 64, 0]) == [-1, -1, 1]

    def test_same_block_different_offset(self):
        assert reuse_distances([0, 32]) == [-1, 0]


class TestPatternSummary:
    def test_stream_has_no_short_reuse(self):
        median, distinct = pattern_summary(StreamPattern(1024 * BLOCK), rng(),
                                           n=512)
        assert distinct == 512  # never wrapped

    def test_working_set_has_short_reuse(self):
        median, distinct = pattern_summary(WorkingSetPattern(64 * BLOCK), rng(),
                                           n=2048)
        assert median < 32
