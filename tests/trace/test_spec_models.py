"""Unit tests for the SPEC-like workload registry."""

import pytest

from repro.trace.spec_models import (
    CACHE_FRIENDLY,
    CORE_BOUND,
    DRAM_BOUND,
    LLC_BOUND,
    MIXED,
    SPEC_WORKLOADS,
    WorkloadSpec,
    get_workload,
    suite_names,
    workloads_by_class,
    workloads_by_suite,
)
from repro.util.rng import DeterministicRng

LLC_BYTES = 65536


class TestRegistry:
    def test_covers_all_table2_benchmarks(self):
        """Table II lists 29 SPEC 2006 and 20 SPEC 2017 speed benchmarks."""
        assert len(workloads_by_suite("spec2006")) == 29
        assert len(workloads_by_suite("spec2017")) == 20

    def test_every_class_represented(self):
        for klass in (CORE_BOUND, CACHE_FRIENDLY, LLC_BOUND, DRAM_BOUND, MIXED):
            assert workloads_by_class(klass), f"no workloads in class {klass}"

    def test_paper_llc_bound_annotations(self):
        """The paper's '+' benchmarks must be modelled as LLC-bound."""
        for name in ("450.soplex", "471.omnetpp", "473.astar", "605.mcf"):
            assert get_workload(name).klass == LLC_BOUND, name

    def test_paper_core_bound_annotations(self):
        """The paper's '*' benchmarks must be modelled as core-bound."""
        for name in ("456.hmmer", "465.tonto", "638.imagick", "641.leela"):
            assert get_workload(name).klass == CORE_BOUND, name

    def test_dram_bound_annotations(self):
        for name in ("429.mcf", "462.libquantum", "602.gcc"):
            assert get_workload(name).klass == DRAM_BOUND, name

    def test_get_workload_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("999.nope")

    def test_suite_names_sorted_and_complete(self):
        names = suite_names()
        assert names == sorted(names)
        assert len(names) == len(SPEC_WORKLOADS) == 49


class TestFootprints:
    def test_llc_bound_fit_isolation(self):
        """LLC-bound models must (mostly) fit the LLC so contention can hurt."""
        for spec in workloads_by_class(LLC_BOUND):
            assert spec.footprint_factor <= 1.2, spec.name

    def test_dram_bound_exceed_llc(self):
        for spec in workloads_by_class(DRAM_BOUND):
            assert spec.footprint_factor >= 2.0, spec.name

    def test_core_bound_fit_private_caches(self):
        for spec in workloads_by_class(CORE_BOUND):
            assert spec.footprint_factor <= 0.1, spec.name


class TestValidation:
    def test_rejects_negative_footprint(self):
        with pytest.raises(ValueError):
            WorkloadSpec("x", "synthetic", CORE_BOUND, "stream", -1.0)

    def test_rejects_out_of_range_fraction(self):
        with pytest.raises(ValueError):
            WorkloadSpec("x", "synthetic", CORE_BOUND, "stream", 1.0,
                         mem_fraction=1.5)

    def test_mixed_requires_phases(self):
        with pytest.raises(ValueError, match="phase_patterns"):
            WorkloadSpec("x", "synthetic", MIXED, "mixed", 1.0)


class TestBuildPattern:
    def test_every_spec_builds(self):
        for spec in SPEC_WORKLOADS.values():
            pattern = spec.build_pattern(LLC_BYTES, DeterministicRng(1, spec.name))
            rng = DeterministicRng(2, spec.name)
            addresses = [pattern.next_address(rng) for _ in range(64)]
            assert all(0 <= a < max(4096, pattern.footprint) for a in addresses)

    def test_footprint_scales_with_llc(self):
        spec = get_workload("470.lbm")
        small = spec.build_pattern(65536, DeterministicRng(1))
        large = spec.build_pattern(65536 * 4, DeterministicRng(1))
        assert large.footprint == pytest.approx(4 * small.footprint, rel=0.001)

    def test_minimum_footprint_clamp(self):
        spec = get_workload("648.exchange2")  # 0.005 factor
        pattern = spec.build_pattern(65536, DeterministicRng(1))
        assert pattern.footprint >= 4096

    def test_unknown_pattern_kind_raises(self):
        from repro.trace.spec_models import _build_pattern

        with pytest.raises(ValueError, match="unknown pattern"):
            _build_pattern("bogus", 4096, DeterministicRng(1))
