"""Unit tests for the shared on-disk trace store."""

import gzip

from repro.obs.profile import PhaseProfiler
from repro.obs.registry import MetricRegistry
from repro.trace.io import FORMAT_VERSION
from repro.trace.packed import as_packed
from repro.trace.spec_models import get_workload
from repro.trace.store import TraceStore, trace_key
from repro.trace.synthetic import build_trace

LLC = 65536


class TestKeying:
    def test_key_fields(self):
        key = trace_key("470.lbm", LLC, 1000, 7)
        assert key == f"470.lbm|llc={LLC}|len=1000|seed=7|fmt={FORMAT_VERSION}"

    def test_path_is_deterministic(self, tmp_path):
        store = TraceStore(tmp_path)
        a = store.path_for("470.lbm", LLC, 1000, 7)
        b = store.path_for("470.lbm", LLC, 1000, 7)
        assert a == b
        assert a.name.startswith("470.lbm-")
        assert a.name.endswith(".trace.gz")

    def test_every_key_field_changes_the_path(self, tmp_path):
        store = TraceStore(tmp_path)
        base = store.path_for("470.lbm", LLC, 1000, 7)
        assert store.path_for("429.mcf", LLC, 1000, 7) != base
        assert store.path_for("470.lbm", LLC * 2, 1000, 7) != base
        assert store.path_for("470.lbm", LLC, 2000, 7) != base
        assert store.path_for("470.lbm", LLC, 1000, 8) != base

    def test_unsafe_names_sanitised(self, tmp_path):
        store = TraceStore(tmp_path)
        path = store.path_for("a/b c", LLC, 10, 1)
        assert "/" not in path.name and " " not in path.name


class TestGetPut:
    def test_get_on_empty_store_misses(self, tmp_path):
        assert TraceStore(tmp_path).get("470.lbm", LLC, 1000, 7) is None

    def test_put_then_get_round_trips(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = build_trace(get_workload("470.lbm"), 1000, 7, LLC)
        store.put(trace, LLC, 1000, 7)
        loaded = store.get("470.lbm", LLC, 1000, 7)
        assert loaded is not None
        assert as_packed(loaded) == as_packed(trace)
        assert loaded.name == "470.lbm"

    def test_get_or_build_generates_then_serves(self, tmp_path):
        store = TraceStore(tmp_path)
        first = store.get_or_build("470.lbm", LLC, 1000, 7)
        assert (store.hits, store.misses) == (0, 1)
        second = store.get_or_build("470.lbm", LLC, 1000, 7)
        assert (store.hits, store.misses) == (1, 1)
        assert as_packed(first) == as_packed(second)

    def test_corrupt_file_treated_as_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        store.get_or_build("470.lbm", LLC, 1000, 7)
        path = store.path_for("470.lbm", LLC, 1000, 7)
        raw = gzip.decompress(path.read_bytes())
        with gzip.open(path, "wb") as fh:
            fh.write(raw[: len(raw) // 2])  # truncate mid-column
        assert store.get("470.lbm", LLC, 1000, 7) is None
        rebuilt = store.get_or_build("470.lbm", LLC, 1000, 7)
        assert store.misses == 2
        assert store.get("470.lbm", LLC, 1000, 7).records == rebuilt.records

    def test_garbage_bytes_treated_as_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        path = store.path_for("470.lbm", LLC, 1000, 7)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not even gzip")
        assert store.get("470.lbm", LLC, 1000, 7) is None

    def test_no_stray_temp_files(self, tmp_path):
        store = TraceStore(tmp_path)
        store.get_or_build("470.lbm", LLC, 1000, 7)
        assert not list(tmp_path.glob("*.tmp.*"))


class TestObservability:
    def test_registry_counters(self, tmp_path):
        store = TraceStore(tmp_path)
        registry = MetricRegistry()
        store.get_or_build("470.lbm", LLC, 1000, 7, registry=registry)
        store.get_or_build("470.lbm", LLC, 1000, 7, registry=registry)
        store.get_or_build("470.lbm", LLC, 1000, 7, registry=registry)
        assert registry.counter("trace.cache.miss").value == 1
        assert registry.counter("trace.cache.hit").value == 2

    def test_profiler_spans(self, tmp_path):
        store = TraceStore(tmp_path)
        profiler = PhaseProfiler()
        store.get_or_build("470.lbm", LLC, 1000, 7, profiler=profiler)
        store.get_or_build("470.lbm", LLC, 1000, 7, profiler=profiler)
        totals = profiler.totals()
        assert totals["trace.generate"] > 0
        assert totals["trace.load"] > 0


class TestMaintenance:
    def test_prime_counts_generated_and_reused(self, tmp_path):
        store = TraceStore(tmp_path)
        names = ["470.lbm", "429.mcf"]
        assert store.prime(names, LLC, 500, 1) == (2, 0)
        assert store.prime(names + ["435.gromacs"], LLC, 500, 1) == (1, 2)

    def test_entries_lists_cached_traces(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.entries() == []
        store.prime(["470.lbm", "429.mcf"], LLC, 500, 1)
        listed = store.entries()
        assert sorted(e.name for e in listed) == ["429.mcf", "470.lbm"]
        assert all(e.records == 500 for e in listed)
        assert all(e.size_bytes > 0 for e in listed)

    def test_clear_removes_everything(self, tmp_path):
        store = TraceStore(tmp_path)
        store.prime(["470.lbm", "429.mcf"], LLC, 500, 1)
        assert store.clear() == 2
        assert store.entries() == []
        assert store.clear() == 0
