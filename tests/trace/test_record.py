"""Unit tests for trace records."""

import pytest

from repro.trace.record import Trace, TraceRecord


class TestTraceRecord:
    def test_defaults(self):
        record = TraceRecord(pc=0x400000)
        assert record.load_addr is None
        assert record.store_addr is None
        assert not record.is_branch
        assert not record.taken
        assert not record.dependent

    def test_is_memory_load(self):
        assert TraceRecord(0x400000, load_addr=0x1000).is_memory

    def test_is_memory_store(self):
        assert TraceRecord(0x400000, store_addr=0x1000).is_memory

    def test_is_memory_false_for_alu(self):
        assert not TraceRecord(0x400000).is_memory

    def test_equality(self):
        a = TraceRecord(1, load_addr=2, is_branch=True, taken=True)
        b = TraceRecord(1, load_addr=2, is_branch=True, taken=True)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        a = TraceRecord(1, load_addr=2)
        b = TraceRecord(1, load_addr=3)
        assert a != b

    def test_not_equal_to_other_types(self):
        assert TraceRecord(1) != "TraceRecord"

    def test_slots_prevent_new_attributes(self):
        record = TraceRecord(1)
        with pytest.raises(AttributeError):
            record.bogus = 1


class TestTrace:
    def test_len_and_iter(self):
        records = [TraceRecord(i) for i in range(5)]
        trace = Trace("t", records)
        assert len(trace) == 5
        assert list(trace) == records

    def test_indexing(self):
        records = [TraceRecord(i) for i in range(5)]
        trace = Trace("t", records)
        assert trace[2].pc == 2
        assert [r.pc for r in trace[1:3]] == [1, 2]
