"""Unit tests for simpoint weighting."""

import pytest

from repro.trace.simpoint import (
    SimpointWeight,
    normalise,
    uniform_weights,
    weighted_metric,
    weighted_metrics,
)


class TestNormalise:
    def test_sums_to_one(self):
        weights = normalise([SimpointWeight("a", 2), SimpointWeight("b", 6)])
        assert abs(sum(w.weight for w in weights) - 1.0) < 1e-12
        assert weights[0].weight == pytest.approx(0.25)

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            normalise([SimpointWeight("a", 0.0)])

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            SimpointWeight("a", -1.0)


class TestWeightedMetric:
    def test_weighted_average(self):
        weights = [SimpointWeight("a", 1), SimpointWeight("b", 3)]
        value = weighted_metric({"a": 1.0, "b": 2.0}, weights)
        assert value == pytest.approx(1.75)

    def test_missing_trace_raises(self):
        weights = [SimpointWeight("a", 1), SimpointWeight("b", 1)]
        with pytest.raises(KeyError, match="missing"):
            weighted_metric({"a": 1.0}, weights)

    def test_unnormalised_weights_accepted(self):
        weights = [SimpointWeight("a", 10), SimpointWeight("b", 30)]
        assert weighted_metric({"a": 1.0, "b": 2.0}, weights) == pytest.approx(1.75)


class TestUniformWeights:
    def test_equal_shares(self):
        weights = uniform_weights(["a", "b", "c", "d"])
        assert all(w.weight == pytest.approx(0.25) for w in weights)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            uniform_weights([])


class TestWeightedMetrics:
    def test_multiple_metrics(self):
        weights = [SimpointWeight("a", 1), SimpointWeight("b", 1)]
        per_trace = {
            "a": {"ipc": 1.0, "mr": 0.2},
            "b": {"ipc": 3.0, "mr": 0.4},
        }
        combined = weighted_metrics(per_trace, weights)
        assert combined["ipc"] == pytest.approx(2.0)
        assert combined["mr"] == pytest.approx(0.3)

    def test_only_common_keys(self):
        weights = [SimpointWeight("a", 1), SimpointWeight("b", 1)]
        per_trace = {"a": {"ipc": 1.0, "extra": 5.0}, "b": {"ipc": 3.0}}
        assert set(weighted_metrics(per_trace, weights)) == {"ipc"}
