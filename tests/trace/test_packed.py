"""Unit tests for the columnar trace representation."""

from array import array

import pytest

from repro.trace.packed import (
    FLAG_BRANCH,
    FLAG_DEPENDENT,
    FLAG_HAS_LOAD,
    FLAG_HAS_STORE,
    FLAG_MEMORY,
    FLAG_TAKEN,
    PackedTrace,
    as_packed,
)
from repro.trace.record import Trace, TraceRecord
from repro.trace.spec_models import get_workload
from repro.trace.synthetic import build_packed, build_trace, generate_records


def sample_records():
    return [
        TraceRecord(0x400000),
        TraceRecord(0x400004, load_addr=0x1000),
        TraceRecord(0x400008, store_addr=0x2000),
        TraceRecord(0x40000C, load_addr=0x3000, store_addr=0x3000,
                    dependent=True),
        TraceRecord(0x400010, is_branch=True, taken=True),
        TraceRecord(0x400014, load_addr=0),
    ]


class TestConstruction:
    def test_from_records_round_trips(self):
        packed = PackedTrace.from_records(sample_records(), name="s")
        assert packed.name == "s"
        assert len(packed) == 6
        assert packed.to_records() == sample_records()

    def test_flag_bits(self):
        packed = PackedTrace.from_records(sample_records())
        assert packed.flags[0] == 0
        assert packed.flags[1] == FLAG_HAS_LOAD
        assert packed.flags[2] == FLAG_HAS_STORE
        assert packed.flags[3] == (FLAG_HAS_LOAD | FLAG_HAS_STORE
                                   | FLAG_DEPENDENT)
        assert packed.flags[4] == FLAG_BRANCH | FLAG_TAKEN
        assert packed.flags[5] == FLAG_HAS_LOAD

    def test_memory_mask_covers_both_operands(self):
        assert FLAG_MEMORY == FLAG_HAS_LOAD | FLAG_HAS_STORE
        packed = PackedTrace.from_records(sample_records())
        touches = [bool(flag & FLAG_MEMORY) for flag in packed.flags]
        assert touches == [False, True, True, True, False, True]

    def test_zero_load_addr_is_not_none(self):
        packed = PackedTrace.from_records(sample_records())
        record = packed[5]
        assert record.load_addr == 0
        assert record.store_addr is None

    def test_column_types(self):
        packed = PackedTrace.from_records(sample_records())
        assert isinstance(packed.pcs, array) and packed.pcs.typecode == "Q"
        assert isinstance(packed.loads, array)
        assert isinstance(packed.stores, array)
        assert isinstance(packed.flags, bytearray)

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError, match="column length mismatch"):
            PackedTrace(pcs=array("Q", [1, 2]), loads=array("Q", [1]),
                        stores=array("Q", [1]), flags=bytearray(1))


class TestRecordView:
    def test_indexing_and_iter(self):
        records = sample_records()
        packed = PackedTrace.from_records(records)
        assert packed[1] == records[1]
        assert packed[-1] == records[-1]
        assert list(packed) == records

    def test_records_property_memoised(self):
        packed = PackedTrace.from_records(sample_records())
        assert packed.records is packed.records

    def test_append_invalidates_memo(self):
        packed = PackedTrace.from_records(sample_records())
        before = packed.records
        packed.append_record(TraceRecord(0x400018))
        assert len(packed.records) == len(before) + 1

    def test_slice_returns_packed(self):
        packed = PackedTrace.from_records(sample_records(), name="s")
        window = packed[1:4]
        assert isinstance(window, PackedTrace)
        assert window.name == "s"
        assert window.to_records() == sample_records()[1:4]

    def test_equality_is_columnwise(self):
        a = PackedTrace.from_records(sample_records(), name="a")
        b = PackedTrace.from_records(sample_records(), name="b")
        assert a == b  # name is not part of the stream identity
        b.append_record(TraceRecord(0x1))
        assert a != b


class TestOffset:
    def test_zero_offset_is_identity(self):
        packed = PackedTrace.from_records(sample_records())
        assert packed.offset(0) is packed

    def test_addresses_shift_but_flags_do_not(self):
        packed = PackedTrace.from_records(sample_records())
        moved = packed.offset(1 << 40)
        assert moved.flags == packed.flags
        assert moved[1].load_addr == 0x1000 + (1 << 40)
        assert moved[1].store_addr is None
        assert moved[0].pc == 0x400000 + (1 << 40)

    def test_rename(self):
        packed = PackedTrace.from_records(sample_records(), name="s")
        assert packed.offset(0, name="t").name == "t"


class TestAsPacked:
    def test_packed_passthrough(self):
        packed = PackedTrace.from_records(sample_records())
        assert as_packed(packed) is packed

    def test_trace_uses_backing(self):
        trace = Trace("s", sample_records())
        assert as_packed(trace) is trace.packed()

    def test_plain_iterable(self):
        packed = as_packed(iter(sample_records()), name="gen")
        assert packed.name == "gen"
        assert packed.to_records() == sample_records()

    def test_generator_matches_trace(self):
        workload = get_workload("470.lbm")
        from_gen = as_packed(generate_records(workload, 2000, 7, 65536),
                             name="470.lbm")
        from_build = as_packed(build_trace(workload, 2000, 7, 65536))
        assert from_gen == from_build


class TestStreamingBuilder:
    """build_packed must emit exactly what the record generator emits."""

    @pytest.mark.parametrize("name", ["435.gromacs", "429.mcf", "605.mcf"])
    def test_matches_generate_records(self, name):
        workload = get_workload(name)
        streamed = build_packed(workload, 3000, 5, 65536)
        reference = PackedTrace.from_records(
            generate_records(workload, 3000, 5, 65536))
        assert streamed == reference

    def test_build_trace_is_packed_backed(self):
        trace = build_trace(get_workload("470.lbm"), 1000, 1, 65536)
        assert isinstance(trace.packed(), PackedTrace)
        assert len(trace) == len(trace.packed())
