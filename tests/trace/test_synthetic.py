"""Unit tests for synthetic trace generation."""

import pytest

from repro.trace.record import TraceRecord
from repro.trace.spec_models import get_workload
from repro.trace.synthetic import (
    CODE_BASE,
    DATA_BASE,
    DEFAULT_BODY_SIZE,
    PC_STRIDE,
    build_trace,
    generate_records,
)

LLC = 65536


class TestDeterminism:
    def test_same_inputs_same_trace(self):
        spec = get_workload("435.gromacs")
        a = list(generate_records(spec, 2000, 7, LLC))
        b = list(generate_records(spec, 2000, 7, LLC))
        assert a == b

    def test_different_seed_different_addresses(self):
        spec = get_workload("450.soplex")
        a = [r.load_addr for r in generate_records(spec, 2000, 1, LLC) if r.load_addr]
        b = [r.load_addr for r in generate_records(spec, 2000, 2, LLC) if r.load_addr]
        assert a != b


class TestInstructionMix:
    def test_exact_count(self):
        spec = get_workload("400.perlbench")
        assert len(build_trace(spec, 12345, 1, LLC)) == 12345

    def test_zero_instructions(self):
        spec = get_workload("400.perlbench")
        assert len(build_trace(spec, 0, 1, LLC)) == 0

    def test_negative_rejected(self):
        spec = get_workload("400.perlbench")
        with pytest.raises(ValueError):
            list(generate_records(spec, -1, 1, LLC))

    def test_mem_fraction_approximate(self):
        spec = get_workload("470.lbm")  # mem_fraction 0.45
        trace = build_trace(spec, 20000, 1, LLC)
        loads = sum(1 for r in trace if r.load_addr is not None)
        assert abs(loads / len(trace) - spec.mem_fraction) < 0.08

    def test_branch_fraction_approximate(self):
        spec = get_workload("445.gobmk")  # branch_fraction 0.22
        trace = build_trace(spec, 20000, 1, LLC)
        branches = sum(1 for r in trace if r.is_branch)
        assert abs(branches / len(trace) - spec.branch_fraction) < 0.08

    def test_store_only_on_load_slots(self):
        spec = get_workload("456.hmmer")
        trace = build_trace(spec, 5000, 1, LLC)
        for record in trace:
            if record.store_addr is not None:
                assert record.store_addr == record.load_addr

    def test_always_at_least_one_branch_site(self):
        """Even a 0-branch spec gets a loop-closing branch."""
        from repro.trace.spec_models import WorkloadSpec

        spec = WorkloadSpec("nobranch", "synthetic", "core_bound",
                            "working_set", 0.1, branch_fraction=0.0)
        trace = build_trace(spec, 1000, 1, LLC)
        assert any(r.is_branch for r in trace)


class TestAddressLayout:
    def test_pcs_in_code_segment(self):
        spec = get_workload("435.gromacs")
        trace = build_trace(spec, 2000, 1, LLC)
        for record in trace:
            assert CODE_BASE <= record.pc < CODE_BASE + DEFAULT_BODY_SIZE * PC_STRIDE

    def test_data_in_data_segment(self):
        spec = get_workload("435.gromacs")
        trace = build_trace(spec, 2000, 1, LLC)
        for record in trace:
            if record.load_addr is not None:
                assert record.load_addr >= DATA_BASE

    def test_pc_stream_loops(self):
        """Branch PCs must repeat so predictors can learn them."""
        spec = get_workload("435.gromacs")
        trace = build_trace(spec, 4 * DEFAULT_BODY_SIZE, 1, LLC)
        branch_pcs = [r.pc for r in trace if r.is_branch]
        assert len(set(branch_pcs)) < len(branch_pcs)


class TestDependency:
    def test_chase_marks_dependent_loads(self):
        spec = get_workload("429.mcf")  # dependency 0.9
        trace = build_trace(spec, 10000, 1, LLC)
        loads = [r for r in trace if r.load_addr is not None]
        dependent = sum(1 for r in loads if r.dependent)
        assert dependent / len(loads) > 0.8

    def test_stream_has_no_dependent_loads(self):
        spec = get_workload("470.lbm")  # dependency 0.0
        trace = build_trace(spec, 5000, 1, LLC)
        assert not any(r.dependent for r in trace)
