"""Tests for the declarative config schema (:mod:`repro.configio`)."""

import dataclasses

import pytest

from repro import configio
from repro.config import CacheLevelConfig, CoreConfig, MachineConfig
from repro.configio import (
    CONFIG_SCHEMA,
    dumps_toml,
    load_machine_config,
    loads_toml,
    machine_from_dict,
    machine_from_toml,
    machine_to_dict,
    machine_to_toml,
)
from repro.configs import MACHINE_CONFIGS, get_machine_config
from repro.core import PinteConfig
from repro.dram import DramConfig
from repro.sim import ExperimentScale


class TestMachineRoundTrip:
    @pytest.mark.parametrize("name", sorted(MACHINE_CONFIGS))
    def test_every_named_config_roundtrips_exactly(self, name):
        """Presets and every fig11 variant: config -> dict -> TOML -> config."""
        config = get_machine_config(name)
        payload = machine_to_dict(config)
        assert payload["schema"] == CONFIG_SCHEMA
        assert machine_from_dict(payload) == config
        assert machine_from_toml(machine_to_toml(config)) == config

    def test_llc_way_allocation_omitted_when_none(self):
        scaled = get_machine_config("scaled")
        assert scaled.llc_way_allocation is None
        assert "llc_way_allocation" not in machine_to_dict(scaled)

    def test_llc_way_allocation_present_when_set(self):
        xeon = get_machine_config("xeon")
        payload = machine_to_dict(xeon)
        assert payload["llc_way_allocation"] == 14
        assert machine_from_dict(payload).llc_way_allocation == 14

    def test_omitted_sections_fall_back_to_defaults(self):
        config = machine_from_toml('schema = 1\nname = "bare"\n')
        assert config == MachineConfig(name="bare")

    def test_serde_mixin_methods(self):
        config = get_machine_config("skylake")
        assert MachineConfig.from_dict(config.to_dict()) == config
        assert MachineConfig.from_toml(config.to_toml()) == config


class TestStrictness:
    def test_missing_schema_tag_rejected(self):
        payload = machine_to_dict(get_machine_config("scaled"))
        del payload["schema"]
        with pytest.raises(ValueError, match="no 'schema' tag"):
            machine_from_dict(payload)

    def test_wrong_schema_version_rejected(self):
        payload = machine_to_dict(get_machine_config("scaled"))
        payload["schema"] = 99
        with pytest.raises(ValueError, match="unsupported machine config"):
            machine_from_dict(payload)

    def test_unknown_machine_key_rejected(self):
        payload = machine_to_dict(get_machine_config("scaled"))
        payload["turbo"] = True
        with pytest.raises(ValueError, match="unknown machine config keys: "
                                             "turbo"):
            machine_from_dict(payload)

    def test_unknown_nested_key_rejected(self):
        payload = machine_to_dict(get_machine_config("scaled"))
        payload["llc"]["bogus"] = 1
        with pytest.raises(ValueError, match="unknown cache level config "
                                             "keys: bogus"):
            machine_from_dict(payload)

    def test_missing_name_rejected(self):
        with pytest.raises(ValueError, match="missing 'name'"):
            machine_from_dict({"schema": CONFIG_SCHEMA})

    def test_non_mapping_payload_rejected(self):
        with pytest.raises(ValueError, match="table/mapping"):
            machine_from_dict([1, 2, 3])


class TestFlatClasses:
    @pytest.mark.parametrize("obj", [
        CacheLevelConfig(1024, 8, 4),
        CoreConfig(),
        DramConfig(),
        PinteConfig(p_induce=0.25, seed=7, trigger="periodic"),
        ExperimentScale(warmup_instructions=123, sim_instructions=456,
                        sample_interval=78, seed=9),
    ])
    def test_dict_roundtrip(self, obj):
        assert configio.from_dict(type(obj), configio.to_dict(obj)) == obj

    def test_serde_mixin_on_flat_classes(self):
        scale = ExperimentScale(seed=3)
        assert ExperimentScale.from_dict(scale.to_dict()) == scale
        assert ExperimentScale.from_toml(scale.to_toml()) == scale

    def test_non_config_type_rejected(self):
        with pytest.raises(TypeError, match="not a config dataclass"):
            configio.to_dict(object())
        with pytest.raises(TypeError, match="not a config dataclass"):
            configio.from_dict(dict, {})


class TestTomlEmitter:
    def test_deterministic_and_parseable(self):
        payload = machine_to_dict(get_machine_config("scaled"))
        text = dumps_toml(payload)
        assert text == dumps_toml(payload)  # deterministic
        assert loads_toml(text) == payload

    def test_string_escaping(self):
        assert loads_toml(dumps_toml({"s": 'a "quoted" \\ path'})) == {
            "s": 'a "quoted" \\ path'}

    def test_depth_limit(self):
        with pytest.raises(TypeError, match="deeper"):
            dumps_toml({"a": {"b": {"c": 1}}})

    def test_bad_key_rejected(self):
        with pytest.raises(TypeError, match="bare TOML key"):
            dumps_toml({"bad key": 1})


class TestFallbackParser:
    """The 3.10 fallback must agree with tomllib on the emitter's subset."""

    def parse(self, text):
        return configio._loads_toml_fallback(text)

    @pytest.mark.parametrize("name", ["scaled", "skylake", "xeon",
                                      "scaled@prefetching=NNI"])
    def test_agrees_with_tomllib_on_emitted_configs(self, name):
        text = machine_to_toml(get_machine_config(name))
        if configio.tomllib is not None:
            assert self.parse(text) == configio.tomllib.loads(text)
        assert machine_from_dict(self.parse(text)) == \
            get_machine_config(name)

    def test_comments_and_blank_lines(self):
        text = '# header\na = 1  # trailing\ns = "with # inside"\n\n[t]\nb = true\n'
        assert self.parse(text) == {"a": 1, "s": "with # inside",
                                    "t": {"b": True}}

    @pytest.mark.parametrize("bad, fragment", [
        ("a = 1\na = 2\n", "duplicate key"),
        ("[t]\n[t]\n", "duplicate table"),
        ("just garbage\n", "malformed line"),
        ("[unclosed\n", "malformed table header"),
        ('a = "unterminated\n', "unterminated string"),
        ("a = nope\n", "unsupported TOML value"),
    ])
    def test_errors_carry_line_context(self, bad, fragment):
        with pytest.raises(ValueError, match=fragment):
            self.parse(bad)


class TestLoadMachineConfig:
    def test_reads_file(self, tmp_path):
        path = tmp_path / "m.toml"
        path.write_text(machine_to_toml(get_machine_config("xeon")))
        assert load_machine_config(path) == get_machine_config("xeon")

    def test_missing_file_is_value_error_with_path(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read machine config"):
            load_machine_config(tmp_path / "absent.toml")

    def test_parse_error_names_the_file(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text('name = "x"\n')  # no schema tag
        with pytest.raises(ValueError, match="broken.toml.*schema"):
            load_machine_config(path)


class TestPrefetchGeometryValidation:
    """Bugfix: ``with_prefetch_string`` must respect component constraints.

    It used to silently accept an IP-stride prefetcher on a level too
    small to hold its table; now the component's ``spec()`` constraints
    are checked against the level geometry.
    """

    def test_scaled_nni_still_fits(self):
        # scaled L2 = 8192 B / 64 B = 128 blocks >= the 64-block floor;
        # the fig11 'NNI' variant must keep working.
        config = get_machine_config("scaled").with_prefetch_string("NNI")
        assert config.l2.prefetcher == "ip_stride"

    def test_too_small_level_rejected_with_constraint(self):
        scaled = get_machine_config("scaled")
        tiny = dataclasses.replace(
            scaled, l2=dataclasses.replace(scaled.l2, size=2048))
        with pytest.raises(ValueError) as excinfo:
            tiny.with_prefetch_string("NNI")
        message = str(excinfo.value)
        assert "ip_stride" in message and "l2" in message
        assert "min_level_blocks" in message
        assert "32 blocks" in message  # 2048 B / 64 B lines

    def test_no_prefetching_never_constrained(self):
        scaled = get_machine_config("scaled")
        tiny = dataclasses.replace(
            scaled, l2=dataclasses.replace(scaled.l2, size=128))
        assert tiny.with_prefetch_string("000").l2.prefetcher == "none"
