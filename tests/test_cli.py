"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.trace import read_trace


class TestList:
    def test_lists_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "49 synthetic" in out
        assert "470.lbm" in out

    def test_class_filter(self, capsys):
        assert main(["list", "--class", "core_bound"]) == 0
        out = capsys.readouterr().out
        assert "453.povray" in out
        assert "470.lbm" not in out


class TestRun:
    ARGS = ["--instructions", "3000", "--warmup", "500"]

    def test_isolation(self, capsys):
        assert main(["run", "435.gromacs"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "isolation" in out
        assert "IPC" in out

    def test_pinte(self, capsys):
        assert main(["run", "470.lbm", "--p-induce", "0.5"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "pinte(0.5)" in out

    def test_periodic_mode(self, capsys):
        assert main(["run", "638.imagick", "--p-induce", "1.0",
                     "--periodic"] + self.ARGS) == 0

    def test_dram_background(self, capsys):
        assert main(["run", "470.lbm", "--p-induce", "0.3",
                     "--dram-background", "50"] + self.ARGS) == 0

    def test_versus(self, capsys):
        assert main(["run", "470.lbm", "--versus", "450.soplex"]
                    + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "470.lbm+450.soplex" in out

    def test_versus_with_p_induce_is_hybrid(self, capsys):
        assert main(["run", "470.lbm", "--versus", "450.soplex",
                     "--p-induce", "0.3"] + self.ARGS) == 0
        out = capsys.readouterr().out
        # The hybrid label: co-runner AND induction probability together.
        assert "470.lbm+450.soplex@pinte(0.3)" in out

    def test_unknown_workload(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["run", "999.bogus"] + self.ARGS)

    def test_unknown_machine_rejected(self):
        with pytest.raises(SystemExit, match="unknown machine config"):
            main(["run", "470.lbm", "--machine", "cray"])

    def test_unknown_machine_suggests_candidates(self):
        with pytest.raises(SystemExit, match="did you mean"):
            main(["run", "470.lbm", "--machine", "scalde"])


class TestRunObservability:
    ARGS = ["--instructions", "3000", "--warmup", "500"]

    def test_json_to_stdout_suppresses_table(self, capsys):
        assert main(["run", "435.gromacs", "--json", "-"] + self.ARGS) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)  # the whole stdout is one JSON document
        assert payload["trace_name"] == "435.gromacs"
        assert payload["instructions"] == 3000
        assert payload["samples"]  # serialised samples ride along

    def test_json_to_file_keeps_table(self, tmp_path, capsys):
        output = tmp_path / "result.json"
        assert main(["run", "435.gromacs", "--json", str(output)]
                    + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "IPC" in out  # human table still printed
        payload = json.loads(output.read_text())
        assert payload["mode"] == "isolation"

    def test_json_roundtrips_through_serialize(self, tmp_path):
        from repro.sim.serialize import result_from_dict

        output = tmp_path / "result.json"
        assert main(["run", "470.lbm", "--p-induce", "0.5",
                     "--json", str(output)] + self.ARGS) == 0
        result = result_from_dict(json.loads(output.read_text()))
        assert result.mode == "pinte"
        assert result.p_induce == 0.5

    def test_metrics_dump(self, capsys):
        assert main(["run", "470.lbm", "--p-induce", "0.5",
                     "--metrics", "-"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "llc.miss " in out
        assert "pinte.theft " in out
        assert "core0.ipc " in out

    def test_events_and_chrome_trace(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        chrome_path = tmp_path / "chrome.json"
        assert main(["run", "470.lbm", "--p-induce", "0.5",
                     "--events", str(events_path),
                     "--chrome-trace", str(chrome_path)] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "events to" in out

        from repro.obs import load_events_jsonl

        events, meta = load_events_jsonl(events_path)
        assert events
        assert meta["recorded"] == len(events) + meta["dropped"]

        document = json.loads(chrome_path.read_text())
        phase_names = {e["name"] for e in document["traceEvents"]
                       if e["ph"] == "X"}
        assert {"trace-gen", "warmup", "simulate", "report"} <= phase_names

    def test_event_capacity_bounds_the_log(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        assert main(["run", "470.lbm", "--p-induce", "0.5",
                     "--events", str(events_path),
                     "--event-capacity", "64"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "dropped past capacity" in out
        from repro.obs import load_events_jsonl

        events, meta = load_events_jsonl(events_path)
        assert len(events) == 64
        assert meta["dropped"] > 0


class TestObsCommand:
    def _write_log(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        assert main(["run", "470.lbm", "--p-induce", "0.5",
                     "--events", str(events_path),
                     "--instructions", "3000", "--warmup", "500"]) == 0
        return events_path

    def test_summarises_log(self, tmp_path, capsys):
        events_path = self._write_log(tmp_path)
        capsys.readouterr()
        assert main(["obs", str(events_path), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "theft" in out
        assert "hottest sets" in out
        assert "heatmap" in out

    def test_kind_filter(self, tmp_path, capsys):
        events_path = self._write_log(tmp_path)
        capsys.readouterr()
        assert main(["obs", str(events_path), "--kinds", "fill"]) == 0
        out = capsys.readouterr().out
        assert "(fill)" in out

    def test_empty_log(self, tmp_path, capsys):
        events_path = tmp_path / "empty.jsonl"
        events_path.write_text("")
        assert main(["obs", str(events_path)]) == 0
        out = capsys.readouterr().out
        assert "0 events" in out


class TestSweep:
    def test_sweep_classifies(self, capsys):
        assert main(["sweep", "453.povray", "--p-induce", "0.1", "0.9",
                     "--instructions", "3000", "--warmup", "500"]) == 0
        out = capsys.readouterr().out
        assert "weighted IPC" in out
        assert "sensitivity: LOW" in out

    def test_sensitive_workload_flagged(self, capsys):
        assert main(["sweep", "470.lbm", "--p-induce", "0.2", "0.6", "1.0",
                     "--instructions", "6000", "--warmup", "1500"]) == 0
        out = capsys.readouterr().out
        assert "sensitivity: HIGH" in out


class TestCharacterize:
    def test_runs(self, capsys):
        assert main(["characterize", "453.povray", "--instructions", "6000",
                     "--warmup", "2000"]) == 0
        out = capsys.readouterr().out
        assert "Declared" in out
        assert "core_bound" in out


class TestMrc:
    def test_curve_monotone(self, capsys):
        assert main(["mrc", "470.lbm", "--length", "8000"]) == 0
        out = capsys.readouterr().out
        assert "Miss rate" in out
        assert "working-set knee" in out

    def test_core_bound_tiny_knee(self, capsys):
        assert main(["mrc", "453.povray", "--length", "8000"]) == 0
        out = capsys.readouterr().out
        assert "knee" in out


class TestPartitionStudyCommand:
    def test_runs(self, capsys):
        assert main(["partition-study", "--instructions", "6000",
                     "--warmup", "1500"]) == 0
        out = capsys.readouterr().out
        assert "Partitioning study" in out
        assert "casht" in out


class TestTrace:
    def test_writes_trace(self, tmp_path, capsys):
        output = tmp_path / "out.trace.gz"
        assert main(["trace", "build", "435.gromacs", str(output),
                     "--length", "2000"]) == 0
        trace = read_trace(output)
        assert len(trace) == 2000
        assert trace.name == "435.gromacs"

    def test_build_legacy_format(self, tmp_path, capsys):
        output = tmp_path / "legacy.trace.gz"
        assert main(["trace", "build", "435.gromacs", str(output),
                     "--length", "500", "--format", "1"]) == 0
        assert "PNTR1" in capsys.readouterr().out
        assert len(read_trace(output)) == 500

    def test_info_reports_counts(self, tmp_path, capsys):
        output = tmp_path / "out.trace.gz"
        main(["trace", "build", "470.lbm", str(output), "--length", "1000"])
        capsys.readouterr()
        assert main(["trace", "info", str(output)]) == 0
        out = capsys.readouterr().out
        assert "470.lbm" in out
        assert "1000" in out
        assert "PNTR2" in out

    def test_cache_prime_ls_clear(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(["trace", "cache", "prime", "--dir", str(store_dir),
                     "--workloads", "470.lbm", "429.mcf",
                     "--length", "1000"]) == 0
        assert "2 generated" in capsys.readouterr().out
        # Second prime reuses everything.
        assert main(["trace", "cache", "prime", "--dir", str(store_dir),
                     "--workloads", "470.lbm", "429.mcf",
                     "--length", "1000"]) == 0
        assert "2 already cached" in capsys.readouterr().out
        assert main(["trace", "cache", "ls", "--dir", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "470.lbm" in out and "429.mcf" in out
        assert main(["trace", "cache", "clear", "--dir", str(store_dir)]) == 0
        assert "removed 2" in capsys.readouterr().out


class TestBench:
    def test_no_record_prints_json(self, capsys):
        assert main(["bench", "--scale", "0.05", "--repeats", "1",
                     "--no-record"]) == 0
        out = capsys.readouterr().out
        assert "data-path microbenchmark" in out
        assert "fastcache (records/s)" in out
        # --no-record emits the JSON record instead of touching the file.
        assert '"fastcache_records_per_sec"' in out

    def test_record_appends_to_bench_file(self, tmp_path, capsys, monkeypatch):
        import repro.bench.datapath as datapath

        bench_file = tmp_path / "BENCH_datapath.json"
        monkeypatch.setattr(datapath, "BENCH_FILE", bench_file)
        assert main(["bench", "--scale", "0.05", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "appended run #1" in out
        document = json.loads(bench_file.read_text())
        assert len(document["runs"]) == 1
        assert document["current"]["repeats"] == 1
        assert document["current"]["fastcache_records_per_sec"] > 0

    def test_speedup_shown_when_baseline_exists(self, capsys):
        assert main(["bench", "--scale", "0.05", "--repeats", "1",
                     "--no-record"]) == 0
        out = capsys.readouterr().out
        # The repo ships a seed baseline, so ratios must be reported.
        assert "speedup vs seed: fastcache" in out
        assert "speedup vs seed: simulate" in out


class TestCampaignCommands:
    ARGS = ["--instructions", "2000", "--warmup", "500"]

    def _store(self, tmp_path):
        return str(tmp_path / "results.jsonl")

    def test_run_writes_store_and_manifests(self, tmp_path, capsys):
        store = self._store(tmp_path)
        assert main(["campaign", "run", "--store", store,
                     "--workloads", "435.gromacs", "453.povray",
                     "--p-induce", "0.5", "--processes", "1"]
                    + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "campaign summary" in out
        assert "executed" in out
        assert (tmp_path / "results.jsonl").exists()
        assert (tmp_path / "results.manifest.json").exists()
        assert (tmp_path / "results.failures.json").exists()
        manifest = json.loads((tmp_path / "results.manifest.json").read_text())
        assert len(manifest["jobs"]) == 4  # 2 isolation + 2 pinte

    def test_injected_failure_reported_not_fatal(self, tmp_path, capsys):
        store = self._store(tmp_path)
        assert main(["campaign", "run", "--store", store,
                     "--workloads", "435.gromacs",
                     "--inject", "raise", "--retries", "2",
                     "--backoff", "0.01", "--processes", "1"]
                    + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "retrying" in out
        assert "FAILED" in out and "InjectedFault" in out

    def test_strict_exit_code_on_failure(self, tmp_path, capsys):
        store = self._store(tmp_path)
        assert main(["campaign", "run", "--store", store,
                     "--workloads", "435.gromacs",
                     "--inject", "raise", "--retries", "1",
                     "--strict", "--processes", "1"] + self.ARGS) == 1

    def test_status_and_resume_flow(self, tmp_path, capsys):
        store = self._store(tmp_path)
        # Shard 0/2 first — the campaign is deliberately left incomplete.
        assert main(["campaign", "run", "--store", store,
                     "--workloads", "435.gromacs", "453.povray",
                     "--p-induce", "0.5", "--shard", "0/2",
                     "--processes", "1"] + self.ARGS) == 0
        capsys.readouterr()
        assert main(["campaign", "status", store]) == 0
        out = capsys.readouterr().out
        assert "campaign jobs" in out and "pending" in out
        assert "0/2" in out

        assert main(["campaign", "resume", store, "--processes", "1"]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", store]) == 0
        out = capsys.readouterr().out
        contents_done = [line for line in out.splitlines()
                         if "completed" in line]
        assert contents_done and "4" in contents_done[0]
        assert any("pending" in line and "0" in line
                   for line in out.splitlines())

    def test_resume_without_manifest_fails(self, tmp_path):
        store = tmp_path / "results.jsonl"
        store.write_text("")
        with pytest.raises(SystemExit, match="manifest"):
            main(["campaign", "resume", str(store)])

    def test_status_missing_manifest_still_reports(self, tmp_path, capsys):
        store = self._store(tmp_path)
        assert main(["campaign", "run", "--store", store,
                     "--workloads", "435.gromacs", "--processes", "1"]
                    + self.ARGS) == 0
        (tmp_path / "results.manifest.json").unlink()
        capsys.readouterr()
        assert main(["campaign", "status", store]) == 0
        out = capsys.readouterr().out
        assert "missing" in out

    def test_status_missing_store_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no result store"):
            main(["campaign", "status", str(tmp_path / "nothing.jsonl")])

    def test_watch_missing_store_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no result store"):
            main(["campaign", "watch", str(tmp_path / "nothing.jsonl"),
                  "--iterations", "1"])

    def test_status_empty_orphan_store_is_clean_error(self, tmp_path):
        """An empty file with no manifest cannot be a campaign store."""
        store = tmp_path / "orphan.jsonl"
        store.write_text("")
        with pytest.raises(SystemExit, match="empty"):
            main(["campaign", "status", str(store)])

    def test_executor_recorded_and_selectable(self, tmp_path, capsys):
        store = self._store(tmp_path)
        assert main(["campaign", "run", "--store", store,
                     "--workloads", "435.gromacs", "453.povray",
                     "--executor", "spawn", "--processes", "2"]
                    + self.ARGS) == 0
        manifest = json.loads((tmp_path / "results.manifest.json").read_text())
        assert manifest["executor"] == "spawn"


class TestArtifactCommands:
    ARGS = ["--instructions", "2000", "--warmup", "500", "--panel", "1"]

    def test_ls_lists_all_thirteen(self, capsys):
        assert main(["artifact", "ls"]) == 0
        out = capsys.readouterr().out
        assert "13 registered artifacts" in out
        for name in ("table1", "fig11", "ncore_study", "partition_study"):
            assert name in out

    def test_plan_reports_dedup(self, capsys):
        assert main(["artifact", "plan", "table1", "fig1"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "dedup ratio" in out
        assert "2.00x" in out  # two artifacts sharing one bundle plan

    def test_plan_defaults_to_all_artifacts(self, capsys):
        assert main(["artifact", "plan"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "13 artifact(s)" in out

    def test_run_renders_selected_artifact(self, tmp_path, capsys):
        output = tmp_path / "reports"
        assert main(["artifact", "run", "fig1", "--output", str(output),
                     "--suite", "quick"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "[fig1]" in out
        assert "dedup" in out
        assert (output / "fig1.txt").read_text().strip()

    def test_run_with_store_then_resume_executes_nothing(self, tmp_path,
                                                         capsys):
        store = tmp_path / "artifact.jsonl"
        assert main(["artifact", "run", "fig1", "--store", str(store)]
                    + self.ARGS) == 0
        first = capsys.readouterr().out
        assert "skipped 0 (resume)" in first
        assert main(["artifact", "run", "fig1", "--store", str(store),
                     "--resume"] + self.ARGS) == 0
        second = capsys.readouterr().out
        assert "executed 0 job(s)" in second

    def test_unknown_artifact_rejected(self):
        with pytest.raises(KeyError, match="unknown artifact"):
            main(["artifact", "plan", "fig99"] + self.ARGS)


class TestReproduceResume:
    ARGS = ["--instructions", "2000", "--warmup", "500", "--panel", "1",
            "--artifacts", "fig1"]

    def test_store_resume_roundtrip(self, tmp_path, capsys):
        store = tmp_path / "repro.jsonl"
        out_a = tmp_path / "a"
        out_b = tmp_path / "b"
        assert main(["reproduce", "--store", str(store),
                     "--output", str(out_a)] + self.ARGS) == 0
        capsys.readouterr()
        assert main(["reproduce", "--store", str(store), "--resume",
                     "--output", str(out_b)] + self.ARGS) == 0
        capsys.readouterr()
        assert ((out_a / "fig1.txt").read_text()
                == (out_b / "fig1.txt").read_text())

    def test_store_without_resume_refuses_overwrite(self, tmp_path, capsys):
        store = tmp_path / "repro.jsonl"
        assert main(["reproduce", "--store", str(store)] + self.ARGS) == 0
        capsys.readouterr()
        with pytest.raises(FileExistsError):
            main(["reproduce", "--store", str(store)] + self.ARGS)


class TestBenchReproduce:
    def test_no_record_prints_json(self, capsys):
        assert main(["bench", "--suite", "reproduce", "--scale", "0.25",
                     "--repeats", "1", "--no-record"]) == 0
        out = capsys.readouterr().out
        assert "reproduce benchmark" in out
        assert "dedup ratio" in out
        assert '"bundle_dedup_ratio"' in out

    def test_record_appends_to_bench_file(self, tmp_path, capsys,
                                          monkeypatch):
        import repro.bench.reproduce as bench_reproduce

        bench_file = tmp_path / "BENCH_reproduce.json"
        monkeypatch.setattr(bench_reproduce, "BENCH_FILE", bench_file)
        assert main(["bench", "--suite", "reproduce", "--scale", "0.25",
                     "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "appended run #1" in out
        document = json.loads(bench_file.read_text())
        assert document["current"]["bundle_dedup_ratio"] > 1.0
        assert (document["dedup_planned_vs_executed"]["full_registry"]
                > 1.0)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_help_builds(self):
        parser = build_parser()
        assert parser.prog == "repro"


class TestCampaignTelemetryCommands:
    ARGS = ["--instructions", "2000", "--warmup", "500"]

    def run_with_telemetry(self, tmp_path, capsys):
        store = str(tmp_path / "results.jsonl")
        assert main(["campaign", "run", "--store", store,
                     "--workloads", "435.gromacs", "453.povray",
                     "--telemetry", "0.05", "--processes", "2",
                     "--retries", "2", "--backoff", "0.01"]
                    + self.ARGS) == 0
        capsys.readouterr()
        return store

    def test_run_records_telemetry_and_spools(self, tmp_path, capsys):
        store = self.run_with_telemetry(tmp_path, capsys)
        manifest = json.loads((tmp_path / "results.manifest.json").read_text())
        assert manifest["telemetry_interval"] == 0.05
        spools = sorted((tmp_path / "results.telemetry").glob("*.jsonl"))
        job_spools = [s for s in spools if not s.stem.startswith("_")]
        assert len(job_spools) == 2
        # The pool executor adds its own scheduler-gauge pseudo-spool.
        assert (tmp_path / "results.telemetry" / "_pool.jsonl") in spools

    def test_status_shows_spools_and_failure_classes(self, tmp_path, capsys):
        store = self.run_with_telemetry(tmp_path, capsys)
        assert main(["campaign", "status", store]) == 0
        out = capsys.readouterr().out
        assert "telemetry spools" in out

    def test_status_failure_breakdown(self, tmp_path, capsys):
        store = str(tmp_path / "results.jsonl")
        assert main(["campaign", "run", "--store", store,
                     "--workloads", "435.gromacs", "--inject", "raise",
                     "--retries", "2", "--backoff", "0.01",
                     "--processes", "1"] + self.ARGS) == 0
        capsys.readouterr()
        assert main(["campaign", "status", store]) == 0
        out = capsys.readouterr().out
        assert "failures: error" in out
        assert "retries exhausted" in out

    def test_status_surfaces_torn_tail(self, tmp_path, capsys):
        store = self.run_with_telemetry(tmp_path, capsys)
        with open(store, "a") as handle:
            handle.write('{"kind": "result", "job_id": "tor')
        assert main(["campaign", "status", store]) == 0
        out = capsys.readouterr().out
        assert "torn trailing lines repaired" in out

    def test_status_follow(self, tmp_path, capsys):
        store = self.run_with_telemetry(tmp_path, capsys)
        assert main(["campaign", "status", store, "--follow",
                     "--interval", "0.01", "--iterations", "3"]) == 0
        out = capsys.readouterr().out
        # Complete campaign: the loop stops after the first line.
        assert out.count("\n") == 1
        assert "2/2 done" in out

    def test_watch_frames(self, tmp_path, capsys):
        store = self.run_with_telemetry(tmp_path, capsys)
        assert main(["campaign", "watch", store, "--iterations", "1",
                     "--no-clear"]) == 0
        out = capsys.readouterr().out
        assert "campaign watch" in out
        assert "2/2 done" in out
        assert "campaign complete." in out

    def test_timeline_export(self, tmp_path, capsys):
        store = self.run_with_telemetry(tmp_path, capsys)
        output = tmp_path / "timeline.json"
        assert main(["campaign", "timeline", store, "-o", str(output)]) == 0
        document = json.loads(output.read_text())
        assert document["traceEvents"]

    def test_timeline_without_telemetry_exits(self, tmp_path, capsys):
        store = str(tmp_path / "bare.jsonl")
        assert main(["campaign", "run", "--store", store,
                     "--workloads", "435.gromacs", "--processes", "1"]
                    + self.ARGS) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="telemetry"):
            main(["campaign", "timeline", store, "-o",
                  str(tmp_path / "out.json")])

    def test_resume_inherits_manifest_telemetry(self, tmp_path, capsys):
        store = str(tmp_path / "results.jsonl")
        assert main(["campaign", "run", "--store", store,
                     "--workloads", "435.gromacs", "453.povray",
                     "--telemetry", "0.05", "--shard", "0/2",
                     "--processes", "1"] + self.ARGS) == 0
        capsys.readouterr()
        assert main(["campaign", "resume", store, "--processes", "1"]) == 0
        capsys.readouterr()
        spools = sorted((tmp_path / "results.telemetry").glob("*.jsonl"))
        assert len(spools) == 2  # the resumed job spooled too


class TestComponentsCommand:
    def test_ls_shows_every_registry_kind(self, capsys):
        assert main(["components", "ls"]) == 0
        out = capsys.readouterr().out
        for kind in ("replacement policy", "partition scheme", "prefetcher",
                     "branch predictor", "workload", "machine config"):
            assert kind in out
        assert "scaled@replacement=nmru" in out  # fig11 variants enumerated
        # Introspected capability column: nmru takes a seed, lru doesn't.
        nmru = [line for line in out.splitlines()
                if line.split() and "nmru" == line.split()[2]]
        assert nmru and "seed" in nmru[0]

    def test_kind_filter(self, capsys):
        assert main(["components", "ls", "--kind", "prefetcher"]) == 0
        out = capsys.readouterr().out
        assert "ip_stride" in out
        assert "machine config" not in out

    def test_unknown_kind_exits_nonzero(self, capsys):
        assert main(["components", "ls", "--kind", "flux-capacitor"]) == 1


class TestConfigCommands:
    def test_show_emits_parseable_canonical_toml(self, capsys):
        from repro.configio import machine_from_toml
        from repro.configs import get_machine_config

        assert main(["config", "show", "scaled"]) == 0
        out = capsys.readouterr().out
        assert machine_from_toml(out) == get_machine_config("scaled")

    def test_show_variant_to_file_then_run_config(self, tmp_path, capsys):
        cfg = tmp_path / "cfg.toml"
        assert main(["config", "show", "scaled@inclusion=exclusive",
                     "-o", str(cfg)]) == 0
        capsys.readouterr()
        assert main(["run", "435.gromacs", "--config", str(cfg),
                     "--instructions", "2000", "--warmup", "500"]) == 0
        assert "IPC" in capsys.readouterr().out

    def test_run_config_matches_machine_byte_for_byte(self, tmp_path,
                                                      capsys):
        """The acceptance check: preset path == TOML round-trip path."""
        cfg = tmp_path / "cfg.toml"
        args = ["run", "470.lbm", "--instructions", "2000", "--warmup", "500"]
        assert main(["config", "show", "scaled", "-o", str(cfg)]) == 0
        capsys.readouterr()
        assert main(args + ["--machine", "scaled"]) == 0
        via_preset = capsys.readouterr().out
        assert main(args + ["--config", str(cfg)]) == 0
        assert capsys.readouterr().out == via_preset

    def test_validate_mixed_files(self, tmp_path, capsys):
        good = tmp_path / "good.toml"
        assert main(["config", "show", "xeon", "-o", str(good)]) == 0
        bad = tmp_path / "bad.toml"
        bad.write_text('schema = 1\nname = "x"\nwarp_drive = true\n')
        capsys.readouterr()
        assert main(["config", "validate", str(good)]) == 0
        assert main(["config", "validate", str(good), str(bad)]) == 1
        out = capsys.readouterr().out
        assert "ok" in out and "FAIL" in out and "warp_drive" in out

    def test_diff_reports_fields_and_exit_code(self, capsys):
        assert main(["config", "diff", "scaled", "scaled"]) == 0
        assert "identical" in capsys.readouterr().out
        assert main(["config", "diff", "scaled", "xeon"]) == 1
        out = capsys.readouterr().out
        assert "llc.size" in out

    def test_bad_config_file_is_clean_error(self, tmp_path):
        cfg = tmp_path / "broken.toml"
        cfg.write_text('name = "x"\n')  # missing schema tag
        with pytest.raises(SystemExit, match="schema"):
            main(["run", "470.lbm", "--config", str(cfg),
                  "--instructions", "2000", "--warmup", "500"])


class TestPluginFlag:
    PLUGIN = "examples/plugin_policy.py"

    def test_plugin_registers_component(self, capsys):
        assert main(["--plugin", self.PLUGIN, "components", "ls",
                     "--kind", "replacement"]) == 0
        assert "fifo" in capsys.readouterr().out

    def test_plugin_config_end_to_end(self, capsys):
        assert main(["--plugin", self.PLUGIN, "run", "435.gromacs",
                     "--config", "examples/fifo_scaled.toml",
                     "--instructions", "2000", "--warmup", "500"]) == 0
        assert "scaled-fifo" in capsys.readouterr().out

    def test_missing_plugin_is_clean_error(self):
        with pytest.raises(SystemExit, match="--plugin"):
            main(["--plugin", "no/such/plugin.py", "list"])

    def test_campaign_records_and_replays_plugin(self, tmp_path, capsys):
        store = str(tmp_path / "results.jsonl")
        assert main(["--plugin", self.PLUGIN, "campaign", "run",
                     "--store", store, "--workloads", "435.gromacs",
                     "--config", "examples/fifo_scaled.toml",
                     "--processes", "1", "--shard", "0/2",
                     "--instructions", "2000", "--warmup", "500"]) == 0
        manifest = json.loads(
            (tmp_path / "results.manifest.json").read_text())
        assert manifest["plugins"] == [self.PLUGIN]
        assert manifest["machine_preset"] == "scaled-fifo"
        assert manifest["machine_config"]["llc"]["policy"] == "fifo"
        capsys.readouterr()
        # Resume replays the plugin from the manifest (no --plugin here)
        # and rebuilds the machine from the canonical machine_config.
        assert main(["campaign", "resume", store, "--processes", "1"]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", store]) == 0
        out = capsys.readouterr().out
        assert any("pending" in line and " 0" in line
                   for line in out.splitlines())


class TestCampaignIdSchemeGate:
    def test_resume_against_v2_store_fails_loudly(self, tmp_path, capsys):
        store = tmp_path / "results.jsonl"
        assert main(["campaign", "run", "--store", str(store),
                     "--workloads", "435.gromacs", "--processes", "1",
                     "--instructions", "2000", "--warmup", "500"]) == 0
        lines = store.read_text().splitlines()
        header = json.loads(lines[0])
        header["id_scheme"] = "pinte-job-v2"
        store.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        capsys.readouterr()
        with pytest.raises(ValueError,
                           match="pinte-job-v2.*cannot be matched"):
            main(["campaign", "resume", str(store), "--processes", "1"])


class TestBenchGateCommand:
    def baseline(self, tmp_path, current):
        path = tmp_path / "BENCH_datapath.json"
        path.write_text(json.dumps({"current": current}))
        return str(path)

    def test_check_needs_baseline(self):
        with pytest.raises(SystemExit, match="baseline"):
            main(["bench", "--check"])

    def test_gate_passes_within_tolerance(self, tmp_path, capsys,
                                          monkeypatch):
        import repro.bench.gate as gate

        monkeypatch.setattr(gate, "_run_suite",
                            lambda suite, repeats, scale:
                            {"a_per_sec": 95.0})
        path = self.baseline(tmp_path, {"a_per_sec": 100.0})
        assert main(["bench", "--baseline", path, "--check"]) == 0
        out = capsys.readouterr().out
        assert "gate passed" in out
        assert "a_per_sec" in out

    def test_gate_fails_on_regression(self, tmp_path, capsys, monkeypatch):
        import repro.bench.gate as gate

        monkeypatch.setattr(gate, "_run_suite",
                            lambda suite, repeats, scale:
                            {"a_per_sec": 10.0})
        path = self.baseline(tmp_path, {"a_per_sec": 100.0})
        assert main(["bench", "--baseline", path, "--check"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "REGRESSION" in out

    def test_report_only_never_fails(self, tmp_path, capsys, monkeypatch):
        import repro.bench.gate as gate

        monkeypatch.setattr(gate, "_run_suite",
                            lambda suite, repeats, scale:
                            {"a_per_sec": 10.0})
        path = self.baseline(tmp_path, {"a_per_sec": 100.0})
        assert main(["bench", "--baseline", path, "--check",
                     "--report-only"]) == 0
        out = capsys.readouterr().out
        assert "report-only" in out

    def test_tolerance_flag_respected(self, tmp_path, capsys, monkeypatch):
        import repro.bench.gate as gate

        monkeypatch.setattr(gate, "_run_suite",
                            lambda suite, repeats, scale:
                            {"a_per_sec": 60.0})
        path = self.baseline(tmp_path, {"a_per_sec": 100.0})
        assert main(["bench", "--baseline", path, "--check",
                     "--tolerance", "0.5"]) == 0
