"""Execute every ``bash runnable`` fence in the docs.

Documentation rots when its examples are aspirational. Any fenced block
whose info string is exactly ``bash runnable`` is a contract: this test
extracts them and runs each document's blocks *in order* inside one
shared scratch directory per document (so a later block may read files
an earlier one wrote — e.g. CAMPAIGNS.md's run → status → resume flow),
under ``bash -euo pipefail`` with the repo's ``src/`` on ``PYTHONPATH``.

Plain ``bash`` fences stay illustrative; tag a fence ``bash runnable``
only when it is self-contained, side-effect-free outside its cwd, and
fast (seconds, not minutes).
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The documents swept for runnable fences.
RUNNABLE_DOCS = ("docs/USAGE.md", "docs/CAMPAIGNS.md", "docs/OBSERVABILITY.md",
                 "docs/CONFIGURATION.md")

_FENCE = re.compile(r"^```bash runnable\n(.*?)^```$", re.MULTILINE | re.DOTALL)


def runnable_blocks(doc: str):
    """The ``bash runnable`` fence bodies of one document, in order."""
    text = (REPO_ROOT / doc).read_text()
    return [match.group(1) for match in _FENCE.finditer(text)]


def test_every_swept_doc_has_runnable_coverage():
    """Each swept document carries at least one executable example."""
    missing = [doc for doc in RUNNABLE_DOCS if not runnable_blocks(doc)]
    assert not missing, f"no `bash runnable` fences in: {missing}"


@pytest.mark.parametrize("doc", RUNNABLE_DOCS)
def test_doc_snippets_run(doc, tmp_path):
    """Every runnable fence in ``doc`` exits 0, run in document order."""
    blocks = runnable_blocks(doc)
    assert blocks, f"{doc} has no `bash runnable` fences"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    # Snippets say `python`; make sure that is *this* interpreter.
    shim = tmp_path / "bin"
    shim.mkdir()
    (shim / "python").symlink_to(sys.executable)
    env["PATH"] = str(shim) + os.pathsep + env.get("PATH", "")
    workdir = tmp_path / Path(doc).stem
    workdir.mkdir()
    for index, block in enumerate(blocks, start=1):
        proc = subprocess.run(
            ["bash", "-euo", "pipefail", "-c", block],
            cwd=workdir, env=env, capture_output=True, text=True,
            timeout=120)
        assert proc.returncode == 0, (
            f"{doc} runnable block #{index} exited "
            f"{proc.returncode}:\n{block}\n"
            f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}")
