"""Self-verifying documentation: generated references and runnable snippets."""
