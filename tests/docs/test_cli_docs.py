"""The committed docs/CLI.md must match the live argparse tree.

``scripts/gen_cli_docs.py`` derives the CLI reference from
``repro.cli.build_parser``; this test runs its ``--check`` mode in a
subprocess (the generator pins ``COLUMNS`` for deterministic wrapping,
which must not leak into the test process). A failure means someone
changed the CLI without regenerating — the assertion message carries the
diff the script printed.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
GENERATOR = REPO_ROOT / "scripts" / "gen_cli_docs.py"


def test_cli_reference_is_current():
    """`gen_cli_docs.py --check` passes against the committed docs/CLI.md."""
    proc = subprocess.run(
        [sys.executable, str(GENERATOR), "--check"],
        capture_output=True, text=True)
    assert proc.returncode == 0, (
        "docs/CLI.md is stale — regenerate with "
        f"`python scripts/gen_cli_docs.py`\n{proc.stdout}{proc.stderr}")


def test_generator_writes_what_check_checks(monkeypatch):
    """Write mode and check mode agree on the same document."""
    monkeypatch.setenv("COLUMNS", "80")  # generate() mutates it; undo after
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        import gen_cli_docs
    finally:
        sys.path.pop(0)
    document = gen_cli_docs.generate()
    committed = (REPO_ROOT / "docs" / "CLI.md").read_text()
    assert document == committed
    assert document.startswith("# CLI reference")
    assert "## `repro campaign run`" in document
    assert "--executor" in document
