"""Capture golden-trace equivalence data for the cache data path.

Thin wrapper around :mod:`repro.goldens` — the same harness the equivalence
suite (``tests/integration/test_golden_equivalence.py``) replays. Runs the
pinned golden matrix (3 workload classes x {lru, srrip, plru} x
{isolation, PInTE p=0.1}) through ``simulate()``, the fastcache host, and a
direct Cache+PInTE eviction-sequence harness, and writes the observed
counters to ``tests/golden/golden_traces.json``.

The file checked into the repo was generated from the original
object-per-block (``CacheBlock``) implementation, immediately before the
flat-array ``CacheSetState`` refactor. Regenerate only when an *intentional*
behaviour change is made:

    PYTHONPATH=src python scripts/capture_goldens.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.goldens import capture_all

OUT = Path(__file__).resolve().parent.parent / "tests" / "golden" / "golden_traces.json"


def main() -> None:
    payload = capture_all()
    OUT.parent.mkdir(parents=True, exist_ok=True)
    OUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {OUT} "
          f"({len(payload['full_sim'])} full_sim, "
          f"{len(payload['fastcache'])} fastcache, "
          f"{len(payload['victim_sequences'])} victim-sequence, "
          f"{len(payload['multicore'])} multicore, "
          f"{len(payload['hybrid'])} hybrid goldens)")


if __name__ == "__main__":
    main()
