#!/usr/bin/env python3
"""Assert two campaign result stores hold equivalent records.

Equivalence is :func:`repro.campaign.canonical_records` — the stores'
result and failure records compared after stripping everything an
executor is allowed to vary (wall-clock timings, ``*_seconds`` extras,
trace-cache provenance, failure tracebacks). Two runs of the same
campaign through different executors (``pool`` vs ``spawn``), process
counts, or resume paths must pass; any divergence in *simulated* values
fails with a per-job diff summary.

Usage::

    python scripts/check_store_equivalence.py A.jsonl B.jsonl

Exit 0 when equivalent, 1 with the first differing job ids otherwise.
CI's ``pool-smoke`` job runs this against a pool store and a spawn
rerun of the same jobs.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: How many differing job ids to print before truncating.
MAX_REPORTED = 10


def _by_id(records):
    """Canonical records keyed by (job id, record kind)."""
    return {(entry.get("job_id"), entry.get("kind")): entry
            for entry in records}


def main(argv) -> int:
    """Compare the two store paths in ``argv``; return the exit code."""
    if len(argv) != 2:
        print("usage: check_store_equivalence.py STORE_A STORE_B",
              file=sys.stderr)
        return 2
    from repro.campaign import ResultStore, canonical_records

    left_path, right_path = argv
    left = canonical_records(ResultStore(left_path).load())
    right = canonical_records(ResultStore(right_path).load())
    if left == right:
        results = sum(1 for entry in left if entry.get("kind") == "result")
        print(f"stores equivalent: {results} result(s), "
              f"{len(left) - results} failure(s) "
              f"({left_path} == {right_path})")
        return 0
    left_map, right_map = _by_id(left), _by_id(right)
    differing = sorted(
        key for key in set(left_map) | set(right_map)
        if left_map.get(key) != right_map.get(key))
    print(f"stores differ: {left_path} vs {right_path} "
          f"({len(differing)} differing record(s))", file=sys.stderr)
    for job_id, kind in differing[:MAX_REPORTED]:
        in_left = (job_id, kind) in left_map
        in_right = (job_id, kind) in right_map
        if in_left and in_right:
            detail = "records differ"
        else:
            detail = ("only in " + (left_path if in_left else right_path))
        print(f"  {job_id} [{kind}]: {detail}", file=sys.stderr)
    if len(differing) > MAX_REPORTED:
        print(f"  ... and {len(differing) - MAX_REPORTED} more",
              file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
