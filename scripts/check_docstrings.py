#!/usr/bin/env python3
"""Docstring lint for the public surface of ``src/repro``.

Every module, and every public (non-underscore) module-level function and
class, must carry a docstring. This is the check CI runs (the
``docstring-lint`` job) and ``tests/test_docstrings.py`` wraps, so gaps
fail fast locally too.

Usage::

    python scripts/check_docstrings.py [root]

``root`` defaults to ``src/repro`` relative to the repository root. Exits
non-zero listing every offender as ``path:line: missing docstring ...``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def missing_docstrings(path: Path) -> list:
    """``(line, description)`` pairs for every gap in one source file."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    gaps = []
    if ast.get_docstring(tree) is None:
        gaps.append((1, "module docstring"))
    for node in tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            continue
        if node.name.startswith("_"):
            continue
        if ast.get_docstring(node) is None:
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            gaps.append((node.lineno, f"{kind} {node.name!r}"))
    return gaps


def main(argv: list) -> int:
    """Walk the tree, print offenders, return the exit status."""
    root = Path(argv[1]) if len(argv) > 1 else REPO_ROOT / "src" / "repro"
    failures = 0
    for path in sorted(root.rglob("*.py")):
        for line, description in missing_docstrings(path):
            rel = path.relative_to(REPO_ROOT) if path.is_relative_to(
                REPO_ROOT) else path
            print(f"{rel}:{line}: missing docstring for {description}")
            failures += 1
    if failures:
        print(f"\n{failures} missing docstring(s) under {root}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
