#!/usr/bin/env python3
"""Generate ``docs/CLI.md`` from the live argparse tree.

The CLI reference is *derived*, never hand-written: this script walks
:func:`repro.cli.build_parser` recursively (every subcommand at every
depth), renders one section per command — usage line, help text, a table
of flags with metavars, choices and defaults — and writes the result to
``docs/CLI.md``. Output is deterministic (fixed formatter width, flags in
definition order), so a plain text diff is a faithful drift detector.

Usage::

    python scripts/gen_cli_docs.py            # (re)write docs/CLI.md
    python scripts/gen_cli_docs.py --check    # exit 1 + diff on drift

``tests/docs/test_cli_docs.py`` runs the ``--check`` mode in tier-1, and
the CI ``pool-smoke`` job uploads the diff when it fails — adding a flag
without regenerating the reference cannot land.
"""

from __future__ import annotations

import argparse
import difflib
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CLI_DOC = REPO_ROOT / "docs" / "CLI.md"

#: Fixed terminal width so usage strings wrap identically everywhere.
FORMAT_COLUMNS = "79"

HEADER = """\
# CLI reference

> **Generated file — do not edit.** This reference is produced from the
> live argparse tree by `scripts/gen_cli_docs.py`; regenerate it with
> `python scripts/gen_cli_docs.py` after changing `src/repro/cli.py`.
> A tier-1 test (`tests/docs/test_cli_docs.py`) fails on drift.

All commands are invoked as `python -m repro <command> ...` (abbreviated
to `repro <command>` below) and print plain text; exit codes are
meaningful, so every recipe is scriptable.
"""


def iter_commands(parser: argparse.ArgumentParser, prog: str):
    """Yield ``(prog, parser, help)`` for a parser and all descendants."""
    yield prog, parser, None
    for action in parser._actions:
        if not isinstance(action, argparse._SubParsersAction):
            continue
        helps = {pseudo.dest: pseudo.help
                 for pseudo in action._choices_actions}
        for name, sub in action.choices.items():
            for child_prog, child, child_help in iter_commands(
                    sub, f"{prog} {name}"):
                if child is sub and child_help is None:
                    child_help = helps.get(name)
                yield child_prog, child, child_help


def _escape(text: str) -> str:
    """Make help text safe inside a Markdown table cell."""
    return text.replace("|", "\\|").replace("\n", " ")


def _argument_name(action: argparse.Action) -> str:
    """The left column: flag spellings (with metavar) or positional name."""
    if not action.option_strings:
        metavar = action.metavar or action.dest
        return f"`{metavar}`"
    if action.nargs == 0:
        return ", ".join(f"`{flag}`" for flag in action.option_strings)
    metavar = action.metavar or action.dest.upper()
    if action.choices is not None and action.metavar is None:
        metavar = "{" + ",".join(str(c) for c in action.choices) + "}"
    if action.nargs in ("?", "*"):
        metavar = f"[{metavar}]"
    elif action.nargs == "+":
        metavar = f"{metavar}..."
    return ", ".join(f"`{flag} {metavar}`"
                     for flag in action.option_strings)


def _default_cell(action: argparse.Action) -> str:
    """The default column: required / a literal / blank when meaningless."""
    if not action.option_strings:
        return "required"
    if action.required:
        return "required"
    if action.nargs == 0 or action.default is None:
        return ""
    return f"`{action.default!r}`"


def render_command(prog: str, parser: argparse.ArgumentParser,
                   help_text: str) -> str:
    """One Markdown section: heading, help, usage block, argument table."""
    lines = [f"## `{prog}`", ""]
    blurb = help_text or parser.description
    if blurb:
        lines.extend([_escape(blurb).strip(), ""])
    usage = parser.format_usage().replace("usage: ", "", 1).rstrip()
    lines.extend(["```", usage, "```", ""])
    rows = []
    for action in parser._actions:
        if isinstance(action, (argparse._HelpAction,
                               argparse._SubParsersAction)):
            continue
        rows.append((_argument_name(action), _default_cell(action),
                     _escape(action.help or "")))
    if rows:
        lines.append("| Argument | Default | Description |")
        lines.append("|----------|---------|-------------|")
        lines.extend(f"| {name} | {default} | {help_} |"
                     for name, default, help_ in rows)
        lines.append("")
    subcommands = [action for action in parser._actions
                   if isinstance(action, argparse._SubParsersAction)]
    for action in subcommands:
        names = ", ".join(f"[`{prog} {pseudo.dest}`](#{anchor(prog, pseudo.dest)})"
                          for pseudo in action._choices_actions)
        lines.extend([f"Subcommands: {names}", ""])
    return "\n".join(lines)


def anchor(prog: str, name: str) -> str:
    """GitHub-style anchor for a generated ``## `prog name``` heading."""
    return f"{prog} {name}".replace(" ", "-").replace(".", "")


def generate() -> str:
    """The full docs/CLI.md document text."""
    os.environ["COLUMNS"] = FORMAT_COLUMNS
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.cli import build_parser

    parser = build_parser()
    sections = [render_command(prog, sub, help_text)
                for prog, sub, help_text in iter_commands(parser, "repro")]
    return HEADER + "\n" + "\n".join(sections).rstrip() + "\n"


def main(argv) -> int:
    """Write or check docs/CLI.md; returns the process exit code."""
    check = "--check" in argv
    document = generate()
    if not check:
        CLI_DOC.write_text(document)
        print(f"wrote {CLI_DOC.relative_to(REPO_ROOT)} "
              f"({len(document.splitlines())} lines)")
        return 0
    committed = CLI_DOC.read_text() if CLI_DOC.exists() else ""
    if committed == document:
        print("docs/CLI.md is up to date")
        return 0
    diff = difflib.unified_diff(
        committed.splitlines(keepends=True), document.splitlines(keepends=True),
        fromfile="docs/CLI.md (committed)", tofile="docs/CLI.md (generated)")
    sys.stdout.writelines(diff)
    print("\ndocs/CLI.md is stale; regenerate with "
          "`python scripts/gen_cli_docs.py`", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
