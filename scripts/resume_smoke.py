#!/usr/bin/env python
"""Resumable-reproduce smoke drill: interrupt, resume, byte-compare.

Runs the quick-suite reproduction three ways:

1. **baseline** — uninterrupted, reports written to ``<out>/baseline/``;
2. **interrupted** — the same campaign in a subprocess with an injected
   ``__fault:exit`` job that kills the process mid-campaign (exit 17),
   leaving a partial result store behind;
3. **resumed** — the same invocation with ``resume=True``, which re-plans,
   skips every stored job id, and finishes the rest.

The drill passes iff the resumed reports are byte-identical to the
baseline and no stored job id was executed twice (each id appears exactly
once in the store). Wall-clock metrics (Table I renders per-run seconds)
are made deterministic by replacing ``time.perf_counter`` with a fixed
step-per-call clock in every phase, so "byte-identical" is exact.

CI runs this as the reproduce-resume smoke job; it is also runnable by
hand: ``python scripts/resume_smoke.py [--out DIR]``.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.reproduce import run_reproduction  # noqa: E402
from repro.sim import ExperimentScale  # noqa: E402

SCALE = ExperimentScale(warmup_instructions=1_000, sim_instructions=4_000,
                        sample_interval=1_000, seed=1)
P_VALUES = (0.05, 0.3, 1.0)
PANEL = 2
#: ``__fault:exit`` calls os._exit with this code mid-campaign.
EXIT_CODE = 17


class FakeClock:
    """Deterministic ``perf_counter``: a fixed step per call, so per-run
    durations depend only on the (deterministic) number of calls."""

    def __init__(self, step: float = 0.001) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def reproduce(output_dir: Path, store: Path, *, resume: bool = False,
              inject: str | None = None) -> dict:
    """One quick-suite reproduction under the deterministic clock."""
    time.perf_counter = FakeClock()
    return run_reproduction(scale=SCALE, p_values=P_VALUES,
                            panel_size=PANEL, output_dir=output_dir,
                            store=store, resume=resume, inject=inject)


def stored_ids(store: Path) -> list:
    """Job ids of the result records in a campaign store, in order."""
    ids = []
    for line in store.read_text().splitlines():
        record = json.loads(line)
        if record.get("kind") == "result":
            ids.append(record["job_id"])
    return ids


def main() -> int:
    """Run the drill; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="out/resume-smoke",
                        help="working directory (default: out/resume-smoke)")
    parser.add_argument("--interrupted", metavar="STORE", default=None,
                        help=argparse.SUPPRESS)  # internal child mode
    args = parser.parse_args()

    if args.interrupted is not None:
        # Child mode: die mid-campaign via the injected fault job.
        store = Path(args.interrupted)
        reproduce(store.parent / "interrupted-reports", store,
                  inject="exit")
        print("interrupted run unexpectedly completed", file=sys.stderr)
        return 1

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    baseline_dir = out / "baseline"
    resumed_dir = out / "resumed"
    store = out / "reproduction.jsonl"
    for stale in (store, *out.glob("baseline/*.txt"),
                  *out.glob("resumed/*.txt")):
        stale.unlink(missing_ok=True)

    print("[1/3] baseline reproduction (uninterrupted)")
    baseline = reproduce(baseline_dir, out / "baseline.jsonl")

    print("[2/3] interrupted reproduction (injected __fault:exit)")
    child = subprocess.run(
        [sys.executable, __file__, "--interrupted", str(store)],
        cwd=Path.cwd(), check=False)
    if child.returncode != EXIT_CODE:
        print(f"expected the fault to kill the child with exit {EXIT_CODE}, "
              f"got {child.returncode}", file=sys.stderr)
        return 1
    partial = stored_ids(store)
    if not partial or len(partial) >= len(baseline) * 6:
        print(f"interrupted store holds {len(partial)} results — "
              "the campaign was not actually cut short", file=sys.stderr)
        return 1
    print(f"      store holds {len(partial)} partial results")

    print("[3/3] resumed reproduction (--resume)")
    resumed = reproduce(resumed_dir, store, resume=True)

    failures = []
    for artifact in sorted(baseline):
        a = (baseline_dir / f"{artifact}.txt").read_bytes()
        b = (resumed_dir / f"{artifact}.txt").read_bytes()
        if a != b:
            failures.append(f"{artifact}: resumed report differs "
                            "from baseline")
    final = stored_ids(store)
    re_executed = len(final) - len(set(final))
    if re_executed:
        failures.append(f"{re_executed} job id(s) executed twice "
                        "after resume")
    if set(resumed) != set(baseline):
        failures.append("resumed run rendered a different artifact set")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"OK: {len(baseline)} reports byte-identical after resume; "
          f"{len(partial)} stored + {len(final) - len(partial)} resumed "
          f"jobs, 0 re-executed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
