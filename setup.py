"""Setup shim: lets ``pip install -e .`` work on environments without the
``wheel`` package (legacy develop install path)."""

from setuptools import setup

setup()
