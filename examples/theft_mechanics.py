#!/usr/bin/env python3
"""Walk through the theft mechanics of the paper's Fig 2 and Fig 4.

Part 1 replays Fig 2a: two owners interleave accesses in one 4-way LRU set
and we narrate every inter-core eviction (theft) as it happens.

Part 2 replays Fig 2b / Fig 4: the PInTE engine acts as the adversary on a
single-owner set — we print each state-machine step (trigger draw, eviction
count, promote, invalidate) so you can see the induced thefts and the
"mocked theft" promotion of an invalidated way.

For the programmatic (testable) version of these walkthroughs see
:mod:`repro.core.mechanics`, which returns the same stories as typed event
logs.
"""

from repro import ContentionTracker, PInTE, PinteConfig, SYSTEM_OWNER
from repro.cache.cache import Cache

BLOCK = 64


def banner(text: str) -> None:
    print(f"\n{'-' * 64}\n{text}\n{'-' * 64}")


def show_set(cache: Cache, set_index: int) -> None:
    order = cache.policy.eviction_order(set_index)
    cells = []
    for way in order[::-1]:  # protected end first
        block = cache.sets[set_index][way]
        if block.valid:
            owner = "sys" if block.owner == SYSTEM_OWNER else f"c{block.owner}"
            cells.append(f"[{block.tag // BLOCK:>3} {owner}]")
        else:
            cells.append("[ -- inv]")
    print("  set (MRU -> LRU):", " ".join(cells))


def real_contention() -> None:
    banner("Part 1 — real thefts: two cores share a 4-way set (Fig 2a)")
    cache = Cache("LLC", 4 * BLOCK, 4, BLOCK, latency=1, policy="lru")
    tracker = ContentionTracker()

    def access(owner: int, block_id: int) -> None:
        address = block_id * BLOCK * cache.n_sets
        hit = cache.access(address, False, owner)
        tracker.record_access(owner, address, hit)
        if not hit:
            evicted = cache.fill(address, owner)
            note = ""
            if evicted is not None and evicted.owner != owner:
                tracker.record_theft(evicted.owner, owner, evicted.tag)
                note = (f"  << THEFT: core {owner} evicted core "
                        f"{evicted.owner}'s block {evicted.tag // BLOCK}")
            elif evicted is not None:
                note = "  (self-eviction)"
            print(f"  core {owner} MISS on block {block_id}{note}")
        else:
            print(f"  core {owner} hit  on block {block_id}")
        show_set(cache, 0)

    # Interleaving in the spirit of Fig 2a: green (core 0) vs gray (core 1).
    for owner, block_id in [(0, 1), (0, 2), (1, 10), (1, 11), (0, 3),
                            (1, 12), (0, 1), (1, 13), (0, 2)]:
        access(owner, block_id)

    for owner in (0, 1):
        counters = tracker.counters(owner)
        print(f"core {owner}: thefts experienced={counters.thefts_experienced} "
              f"caused={counters.thefts_caused} "
              f"interference={counters.interference_misses}")


def induced_contention() -> None:
    banner("Part 2 — induced thefts: PInTE mimics the adversary (Fig 2b/4)")
    cache = Cache("LLC", 4 * BLOCK, 4, BLOCK, latency=1, policy="lru")
    tracker = ContentionTracker()
    engine = PInTE(PinteConfig(p_induce=0.6, seed=11), cache, tracker)

    def access(block_id: int, step: int) -> None:
        address = block_id * BLOCK * cache.n_sets
        hit = cache.access(address, False, 0)
        tracker.record_access(0, address, hit)
        if not hit:
            cache.fill(address, 0)
        interference = ("  << INTERFERENCE (miss on a stolen block)"
                        if not hit and tracker.counters(0).interference_misses
                        > interference_seen[0] else "")
        interference_seen[0] = tracker.counters(0).interference_misses
        print(f"  step {step}: core 0 {'hit ' if hit else 'MISS'} on block "
              f"{block_id}{interference}")
        invalidated = engine.on_llc_access(0, step, 0)
        if invalidated:
            print(f"          PInTE trigger -> {invalidated} induced theft(s)")
        show_set(cache, 0)

    interference_seen = [0]
    for step, block_id in enumerate([1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4]):
        access(block_id, step)

    counters = tracker.counters(0)
    print(f"\nworkload: LLC accesses={counters.llc_accesses} "
          f"thefts experienced={counters.thefts_experienced} "
          f"interference misses={counters.interference_misses}")
    print(f"engine: triggers={engine.stats.triggers} "
          f"promotions={engine.stats.promotions} "
          f"invalidations={engine.stats.invalidations} "
          f"(promotions > invalidations means some were 'mocked thefts' on "
          f"already-invalid ways)")


if __name__ == "__main__":
    real_contention()
    induced_contention()
