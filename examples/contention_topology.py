#!/usr/bin/env python3
"""Where does contention land? PInTE vs a real co-runner, spatially.

Runs the same victim under (a) PInTE and (b) a streaming co-runner, records
which LLC sets lose blocks to thefts, and prints the spatial distribution of
contention: coverage (sets touched), entropy (blanketing vs targeting) and
the hottest sets. This visualises the paper's design point — PInTE triggers
on the *victim's own accesses*, so induced thefts track the victim's hot
sets instead of blanketing the cache like tune-able adversary workloads do.

Usage::

    python examples/contention_topology.py [victim] [adversary]
"""

import sys

from repro import PinteConfig, build_trace, get_workload, scaled_config
from repro.analysis.topology import attach_topology
from repro.cache.hierarchy import MemoryHierarchy, build_llc
from repro.core import ContentionTracker, PInTE
from repro.cpu import Core
from repro.dram import Dram
from repro.sim import simulate_pair
from repro.sim.simulator import simulate

WARMUP, MEASURE = 6_000, 20_000


def describe(topology, label: str) -> None:
    print(f"\n{label}")
    print(f"  thefts recorded : {topology.total}")
    print(f"  set coverage    : {topology.coverage():.0%} of "
          f"{topology.n_sets} sets")
    print(f"  entropy         : {topology.entropy():.3f} "
          f"(1.0 = uniform blanket, 0 = single hot set)")
    buckets = topology.histogram(buckets=8)
    peak = max(buckets) or 1
    for index, count in enumerate(buckets):
        bar = "#" * int(30 * count / peak)
        print(f"  sets {index * topology.n_sets // 8:3d}-"
              f"{(index + 1) * topology.n_sets // 8 - 1:3d} |{bar} {count}")


def run_pinte(victim_trace, config):
    tracker = ContentionTracker()
    llc = build_llc(config)
    topology = attach_topology(tracker, llc.n_sets, victim_owner=0)
    hierarchy = MemoryHierarchy(config, 0, llc=llc, tracker=tracker,
                                registry={})
    engine = PInTE(PinteConfig(p_induce=0.3, seed=1), llc, tracker)
    hierarchy.attach_pinte(engine)
    core = Core(config.core, hierarchy)
    for record in victim_trace.records[:WARMUP + MEASURE]:
        core.execute(record)
    return topology


def run_pair(victim_trace, adversary_trace, config):
    # simulate_pair builds its own tracker internally, so for topology we
    # re-create the shared fabric by hand.
    tracker = ContentionTracker()
    llc = build_llc(config)
    topology = attach_topology(tracker, llc.n_sets, victim_owner=0)
    dram = Dram(config.dram)
    registry = {}
    h0 = MemoryHierarchy(config, 0, llc=llc, dram=dram, tracker=tracker,
                         registry=registry)
    h1 = MemoryHierarchy(config, 1, llc=llc, dram=dram, tracker=tracker,
                         registry=registry)
    cores = [Core(config.core, h0), Core(config.core, h1)]
    from repro.sim.multicore import _offset_trace

    streams = [victim_trace.records, _offset_trace(adversary_trace, 1)]
    indices = [0, 0]
    executed = 0
    while executed < WARMUP + MEASURE:
        core_id = 0 if cores[0].cycle <= cores[1].cycle else 1
        cores[core_id].execute(streams[core_id][indices[core_id]])
        indices[core_id] = (indices[core_id] + 1) % len(streams[core_id])
        if core_id == 0:
            executed += 1
    return topology


def main() -> None:
    victim_name = sys.argv[1] if len(sys.argv) > 1 else "450.soplex"
    adversary_name = sys.argv[2] if len(sys.argv) > 2 else "470.lbm"
    config = scaled_config()
    victim = build_trace(get_workload(victim_name), WARMUP + MEASURE, 1,
                         config.llc.size)
    adversary = build_trace(get_workload(adversary_name), WARMUP + MEASURE, 2,
                            config.llc.size)
    print(f"victim: {victim_name}  adversary: {adversary_name}  "
          f"LLC: {config.llc.size // 1024} KB / "
          f"{config.llc.size // (config.llc.assoc * 64)} sets")
    describe(run_pinte(victim, config), f"PInTE p=0.3 thefts of {victim_name}")
    describe(run_pair(victim, adversary, config),
             f"2nd-Trace ({adversary_name}) thefts of {victim_name}")


if __name__ == "__main__":
    main()
