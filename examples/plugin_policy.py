"""Example third-party component plugin: a FIFO replacement policy.

Load it with the CLI's opt-in plugin flag and the new policy becomes
selectable anywhere a replacement policy is named::

    repro --plugin examples/plugin_policy.py components ls --kind replacement
    repro --plugin examples/plugin_policy.py run 470.lbm \
        --config examples/fifo_scaled.toml

Importing the module *is* the registration mechanism: the
``@POLICIES.register`` decorator below adds the class to the built-in
replacement-policy registry under its ``name`` attribute, with capability
metadata introspected from the constructor signature. Campaign workers
inherit the registration through ``fork``, and ``campaign run`` records
the plugin spec in its manifest so ``campaign resume`` replays it.
"""

from typing import List

from repro.cache.replacement import POLICIES
from repro.cache.replacement.base import ReplacementPolicy


@POLICIES.register
class FifoPolicy(ReplacementPolicy):
    """First-in first-out: evict the oldest-filled way, ignore hits.

    The textbook contrast to LRU — hits never refresh a block's position,
    so the replacement stack is purely an insertion queue. PInTE's
    ``promote`` is modelled as a re-insertion (the adversary's access
    moves the block to the young end), which keeps the stack semantics
    the theft-eviction walk expects.
    """

    name = "fifo"

    def __init__(self, n_sets: int, n_ways: int) -> None:
        super().__init__(n_sets, n_ways)
        # Per-set insertion queues, oldest way first. Seeded with every
        # way so the eviction order is total from the first access.
        self._queues: List[List[int]] = [list(range(n_ways))
                                         for _ in range(n_sets)]

    def _touch(self, set_index: int, way: int) -> None:
        queue = self._queues[set_index]
        queue.remove(way)
        queue.append(way)

    def on_hit(self, set_index: int, way: int) -> None:
        pass  # FIFO ignores hits by definition.

    def on_insert(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def promote(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def eviction_order_into(self, set_index: int, out: List[int]) -> List[int]:
        queue = self._queues[set_index]
        for position, way in enumerate(queue):
            out[position] = way
        return out

    def hit_position(self, set_index: int, way: int) -> int:
        return self.n_ways - 1 - self._queues[set_index].index(way)
