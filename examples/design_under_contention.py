#!/usr/bin/env python3
"""Case study: does your design choice survive contention? (paper Section VI)

Compares LLC replacement policies (and optionally any other dimension from
the Fig 11 driver) on a small workload suite at increasing ``P_induce`` and
prints which option wins, by how much, and how often the result is a
statistical tie — the paper's headline that isolation-tuned advantages
dissolve in a contended LLC.

Usage::

    python examples/design_under_contention.py [replacement|inclusion|
                                                prefetching|branching]
"""

import sys

from repro import scaled_config
from repro.experiments import fig11
from repro.sim import ExperimentScale

SCALE = ExperimentScale(warmup_instructions=5_000, sim_instructions=15_000,
                        sample_interval=3_000)
WORKLOADS = ("450.soplex", "470.lbm", "435.gromacs")


def main() -> None:
    wanted = sys.argv[1] if len(sys.argv) > 1 else "replacement"
    dimensions = [d for d in fig11.DIMENSIONS if d.name == wanted]
    if not dimensions:
        known = ", ".join(d.name for d in fig11.DIMENSIONS)
        raise SystemExit(f"unknown dimension {wanted!r}; pick one of: {known}")

    print(f"sweeping {wanted} options {dimensions[0].options} over "
          f"P_induce {fig11.FIG11_PINDUCE} on {len(WORKLOADS)} workloads...")
    result = fig11.run_fig11(scaled_config(), SCALE, workloads=WORKLOADS,
                             dimensions=dimensions)
    sweep = result.sweeps[wanted]

    print(f"\n{'P_induce':>9}  {'winner':>16}  {'win share':>9}  {'ties':>6}")
    for p in result.p_values:
        winner = sweep.winner(p)
        print(f"{p:9.3f}  {winner:>16}  "
              f"{sweep.win_share[p][winner]:9.0%}  "
              f"{sweep.tie_share[p]:6.0%}")

    p_low, p_high = result.p_values[0], result.p_values[-1]
    if sweep.tie_share[p_high] > sweep.tie_share[p_low]:
        print("\nties grew with contention: the options' advantages are "
              "being absorbed by the contended LLC (the paper's replacement/"
              "inclusion finding).")
    else:
        print("\nties did not grow: this dimension keeps its advantage "
              "under contention (the paper's speculation finding).")


if __name__ == "__main__":
    main()
