#!/usr/bin/env python3
"""Characterise the synthetic SPEC suite on a machine configuration.

For each workload, runs an isolation simulation and prints the measured
fingerprint (IPC, AMAT, MPKI profile, LLC access rate) alongside the
declared behaviour class and the empirically inferred one — a quick sanity
check that a model behaves as labelled before using it in a contention
study.

Usage::

    python examples/characterize_suite.py [workload ...]

Defaults to one representative workload per behaviour class.
"""

import sys

from repro import build_trace, get_workload, scaled_config
from repro.sim.characterize import characterize

DEFAULTS = [
    "453.povray",    # declared core-bound
    "435.gromacs",   # declared cache-friendly
    "470.lbm",       # declared LLC-bound
    "429.mcf",       # declared DRAM-bound
    "403.gcc",       # declared mixed
]


def main() -> None:
    names = sys.argv[1:] or DEFAULTS
    config = scaled_config()
    print(f"machine: {config.name} (LLC {config.llc.size // 1024} KB "
          f"{config.llc.assoc}-way, {config.llc.policy})\n")
    header = (f"{'workload':>15} {'declared':>14} {'measured':>14} "
              f"{'IPC':>7} {'AMAT':>7} {'L2 MPKI':>8} {'LLC MPKI':>9} "
              f"{'LLC APKI':>9}")
    print(header)
    print("-" * len(header))
    for name in names:
        spec = get_workload(name)
        trace = build_trace(spec, 40_000, seed=1, llc_bytes=config.llc.size)
        profile = characterize(trace, config, warmup_instructions=10_000,
                               sim_instructions=30_000)
        measured = profile.inferred_class(config)
        marker = "" if measured == spec.klass else "  <- differs"
        print(f"{name:>15} {spec.klass:>14} {measured:>14} "
              f"{profile.ipc:7.3f} {profile.amat:7.1f} "
              f"{profile.l2_mpki:8.1f} {profile.llc_mpki:9.1f} "
              f"{profile.llc_apki:9.1f}{marker}")
    print("\n'mixed' workloads legitimately measure as whichever phase "
          "dominates the sampled window.")


if __name__ == "__main__":
    main()
