#!/usr/bin/env python3
"""Quickstart: measure one workload's response to induced cache contention.

Runs an LLC-bound synthetic workload (modelled after 470.lbm) in isolation,
then under PInTE contention at three ``P_induce`` settings, and prints the
weighted IPC (Eq. 1), miss rate, AMAT, and observed contention rate for each.

Usage::

    python examples/quickstart.py [workload]

e.g. ``python examples/quickstart.py 453.povray`` to see an insensitive,
core-bound workload shrug contention off.
"""

import sys

from repro import PinteConfig, build_trace, get_workload, scaled_config, simulate

WARMUP = 10_000
MEASURE = 40_000


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "470.lbm"
    config = scaled_config()
    workload = get_workload(name)
    print(f"workload: {workload.name}  class={workload.klass}  "
          f"pattern={workload.pattern}  "
          f"footprint={workload.footprint_factor:.2f}x LLC")

    trace = build_trace(workload, WARMUP + MEASURE, seed=1,
                        llc_bytes=config.llc.size)

    isolation = simulate(trace, config, warmup_instructions=WARMUP,
                         sim_instructions=MEASURE)
    print(f"\n{'context':>14}  {'wIPC':>6}  {'IPC':>6}  {'MR':>6}  "
          f"{'AMAT':>7}  {'contention':>10}")
    print(f"{'isolation':>14}  {1.0:6.3f}  {isolation.ipc:6.3f}  "
          f"{isolation.miss_rate:6.3f}  {isolation.amat:7.1f}  "
          f"{isolation.contention_rate:10.3f}")

    for p_induce in (0.05, 0.3, 1.0):
        result = simulate(trace, config, pinte=PinteConfig(p_induce=p_induce),
                          warmup_instructions=WARMUP, sim_instructions=MEASURE)
        weighted = result.ipc / isolation.ipc
        print(f"{f'PInTE p={p_induce}':>14}  {weighted:6.3f}  {result.ipc:6.3f}  "
              f"{result.miss_rate:6.3f}  {result.amat:7.1f}  "
              f"{result.contention_rate:10.3f}")

    print("\nweighted IPC < 1 means the workload lost performance to the "
          "induced theft evictions;\nsweep P_induce to chart the full "
          "contention-sensitivity curve (see examples/sensitivity_curve.py).")


if __name__ == "__main__":
    main()
