#!/usr/bin/env python3
"""Contention-sensitivity characterisation, paper Section V style.

For each requested workload this example:

1. runs the isolation context,
2. sweeps the 12 paper ``P_induce`` configurations,
3. builds the weighted-IPC-vs-interference-rate contention curve (CRG
   grouped),
4. classifies sensitivity at a 5% Tolerable Performance Loss via the
   Sensitive-Curve Population, and
5. prints the curve as ASCII alongside its C²AFE features (knee / trend /
   sensitivity).

Usage::

    python examples/sensitivity_curve.py [workload ...]
"""

import sys

from repro import PAPER_PINDUCE_SWEEP, scaled_config
from repro.analysis import classify, contention_curve, extract_features
from repro.sim import ExperimentScale, TraceLibrary, run_isolation, run_pinte_sweep

DEFAULT_WORKLOADS = ["470.lbm", "605.mcf", "435.gromacs", "453.povray"]
SCALE = ExperimentScale(warmup_instructions=10_000, sim_instructions=40_000,
                        sample_interval=4_000)


def ascii_curve(curve: dict, width: int = 40) -> str:
    lines = []
    for rate, weighted in sorted(curve.items()):
        bar = "#" * int(width * max(0.0, min(1.2, weighted)) / 1.2)
        lines.append(f"  rate {rate:4.1f} | {bar} {weighted:.3f}")
    return "\n".join(lines)


def main() -> None:
    names = sys.argv[1:] or DEFAULT_WORKLOADS
    config = scaled_config()
    library = TraceLibrary(config, SCALE)

    print("running isolation context...")
    isolation = run_isolation(names, config, SCALE, library=library)
    print(f"sweeping {len(PAPER_PINDUCE_SWEEP)} P_induce configurations "
          f"per workload...")
    sweep = run_pinte_sweep(names, config, SCALE, library=library)

    for name in names:
        results = list(sweep[name].values())
        curve = contention_curve(results, isolation[name].ipc)
        report = classify(name, results, isolation[name])
        print(f"\n=== {name} ===")
        print(ascii_curve(curve))
        if len(curve) >= 2:
            features = extract_features(curve)
            print(f"  C2AFE: knee at rate {features.knee:.2f}, "
                  f"trend {features.trend:+.3f}, "
                  f"sensitivity {features.sensitivity:.3f}")
        print(f"  classification: {report.classification.upper()} "
              f"(SCP {report.scp:.0%} of {report.n_samples} samples at "
              f"TPL {report.tpl:.0%})")


if __name__ == "__main__":
    main()
