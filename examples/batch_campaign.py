#!/usr/bin/env python3
"""Run a fault-tolerant contention campaign and keep every result.

Demonstrates the campaign subsystem (``repro.campaign``): declare jobs
with :func:`~repro.campaign.campaign_jobs`, execute them through
:func:`~repro.campaign.run_campaign` — worker processes with per-job
timeouts, bounded retries and failure capture — into an append-only JSONL
result store, then resume the same campaign (everything is skipped by
deterministic job id) and reload the results for analysis without
re-simulating. An injected transient fault shows retries healing a job
instead of poisoning the run.

The CLI equivalent is ``repro campaign run|status|resume``; the full
story (manifest formats, ids, shard semantics) is docs/CAMPAIGNS.md.

Usage::

    python examples/batch_campaign.py [output_dir] [n_processes]
"""

import sys
from pathlib import Path

from repro import scaled_config
from repro.analysis import weighted_ipc
from repro.campaign import (
    ResultStore,
    RetryPolicy,
    campaign_jobs,
    fault_workload,
    run_campaign,
)
from repro.sim import ExperimentScale
from repro.sim.batch import Job
from repro.sim.serialize import results_to_csv

WORKLOADS = ["435.gromacs", "450.soplex", "470.lbm", "453.povray"]
P_VALUES = (0.1, 0.5, 1.0)
SCALE = ExperimentScale(warmup_instructions=5_000, sim_instructions=20_000,
                        sample_interval=4_000)


def main() -> None:
    """Run, resume and analyse a small persistent campaign."""
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("campaign_out")
    processes = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    store = output / "results.jsonl"

    panel = {name: [other for other in WORKLOADS if other != name][:1]
             for name in WORKLOADS}
    jobs = campaign_jobs(WORKLOADS, p_values=P_VALUES, panel=panel)
    # One deliberately flaky job: fails its first attempt, then simulates
    # 450.soplex normally — the retry path in action.
    jobs.append(Job(fault_workload("flaky", 1, "450.soplex")))

    print(f"running {len(jobs)} jobs on {processes} processes "
          f"into {store} ...")
    report = run_campaign(
        jobs, scaled_config(), SCALE, processes=processes,
        retry=RetryPolicy(max_attempts=3, backoff_seconds=0.1),
        timeout_seconds=600, store=store, resume=store.exists())
    print(f"done: {report.executed} executed, {report.skipped} resumed, "
          f"{report.failed} failed, {report.retries} retries "
          f"in {report.wall_time_seconds:.1f}s")

    # Run the campaign again: every job id is already stored, so nothing
    # re-simulates — this is what `repro campaign resume` does after a
    # crash or across machines.
    again = run_campaign(jobs, scaled_config(), SCALE, processes=processes,
                         store=store, resume=True)
    print(f"resume pass: {again.skipped} of {again.total} jobs "
          "skipped (already stored)")

    # Reload from the store (proving persistence round-trips) + CSV export.
    loaded = list(ResultStore(store).load().result_objects().values())
    csv_path = output / "results.csv"
    results_to_csv(loaded, csv_path)
    print(f"wrote {csv_path}")

    isolation = {r.trace_name: r for r in loaded if r.mode == "isolation"}
    print(f"\n{'context':>28}  {'wIPC':>6}  {'contention':>10}")
    for result in sorted(loaded, key=lambda r: r.label()):
        if result.mode == "isolation":
            continue
        weighted = weighted_ipc(result, isolation[result.trace_name])
        print(f"{result.label():>28}  {weighted:6.3f}  "
              f"{result.contention_rate:10.3f}")


if __name__ == "__main__":
    main()
