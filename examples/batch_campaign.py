#!/usr/bin/env python3
"""Run a contention campaign in parallel and persist the results.

Demonstrates the campaign infrastructure: declare jobs (isolation + PInTE
sweep + 2nd-Trace panel) with :func:`repro.sim.batch.campaign_jobs`, execute
them across worker processes with :func:`repro.sim.batch.run_batch`, save
everything to JSON/CSV with :mod:`repro.sim.serialize`, and reload for
analysis without re-simulating.

Usage::

    python examples/batch_campaign.py [output_dir] [n_processes]
"""

import sys
from pathlib import Path

from repro import scaled_config
from repro.analysis import weighted_ipc
from repro.sim import ExperimentScale
from repro.sim.batch import campaign_jobs, run_batch
from repro.sim.serialize import load_results, results_to_csv, save_results

WORKLOADS = ["435.gromacs", "450.soplex", "470.lbm", "453.povray"]
P_VALUES = (0.1, 0.5, 1.0)
SCALE = ExperimentScale(warmup_instructions=5_000, sim_instructions=20_000,
                        sample_interval=4_000)


def main() -> None:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("campaign_out")
    processes = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    output.mkdir(parents=True, exist_ok=True)

    panel = {name: [other for other in WORKLOADS if other != name][:1]
             for name in WORKLOADS}
    jobs = campaign_jobs(WORKLOADS, p_values=P_VALUES, panel=panel)
    print(f"running {len(jobs)} simulations on {processes} processes...")
    results = run_batch(jobs, scaled_config(), SCALE, processes=processes)

    json_path = output / "results.json"
    csv_path = output / "results.csv"
    save_results(results, json_path)
    results_to_csv(results, csv_path)
    print(f"wrote {json_path} and {csv_path}")

    # Reload (proving persistence round-trips) and summarise.
    loaded = load_results(json_path)
    isolation = {r.trace_name: r for r in loaded if r.mode == "isolation"}
    print(f"\n{'context':>28}  {'wIPC':>6}  {'contention':>10}")
    for result in loaded:
        if result.mode == "isolation":
            continue
        weighted = weighted_ipc(result, isolation[result.trace_name])
        print(f"{result.label():>28}  {weighted:6.3f}  "
              f"{result.contention_rate:10.3f}")


if __name__ == "__main__":
    main()
