"""Static Re-Reference Interval Prediction (SRRIP, Jaleel et al. ISCA 2010)."""

from __future__ import annotations

from typing import List

from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.state import CacheSetState


class RripPolicy(ReplacementPolicy):
    """SRRIP with ``m``-bit re-reference prediction values (RRPV).

    Hits promote to RRPV 0 (near-immediate re-reference); inserts use
    ``long`` re-reference (max - 1); victims are the first way at max RRPV,
    ageing the whole set until one appears.

    RRPVs are stored one ``bytearray`` per set so the victim scan, the
    ageing step and the hit-position count all run through C-speed byte
    primitives (``find``/``max``/``count``); this caps ``rrpv_bits`` at 8,
    far above any published configuration (2-3 bits).
    """

    name = "rrip"

    def __init__(self, n_sets: int, n_ways: int, rrpv_bits: int = 2) -> None:
        super().__init__(n_sets, n_ways)
        if not 1 <= rrpv_bits <= 8:
            raise ValueError("rrpv_bits must be in [1, 8]")
        self.max_rrpv = (1 << rrpv_bits) - 1
        self.insert_rrpv = self.max_rrpv - 1
        self._rrpv: List[bytearray] = [
            bytearray([self.max_rrpv]) * n_ways for _ in range(n_sets)
        ]

    def on_hit(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = 0

    def on_insert(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = self.insert_rrpv

    def promote(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = 0

    def _victim_valid(self, set_index: int, state: CacheSetState) -> int:
        # RRPVs never exceed max_rrpv, so "first way at max RRPV" is an
        # exact byte search; when none matches, one ageing step of
        # ``max_rrpv - max(rrpv)`` lands the highest way exactly on max —
        # identical to repeating +1 ageing rounds until a victim appears.
        rrpv = self._rrpv[set_index]
        max_rrpv = self.max_rrpv
        way = rrpv.find(max_rrpv)
        if way >= 0:
            return way
        deficit = max_rrpv - max(rrpv)
        for index in range(self.n_ways):
            rrpv[index] += deficit
        return rrpv.find(max_rrpv)

    def eviction_order_into(self, set_index: int, out: List[int]) -> List[int]:
        """Ways sorted by descending RRPV (most distant re-reference first);
        ties broken by way index, matching hardware scan order."""
        rrpv = self._rrpv[set_index]
        n_ways = self.n_ways
        position = 0
        # Counting sort over the (tiny) RRPV value range: for each value from
        # most to least distant, emit matching ways in index order via the
        # C-speed byte search.
        for value in range(self.max_rrpv, -1, -1):
            way = rrpv.find(value)
            while way >= 0:
                out[position] = way
                position += 1
                way = rrpv.find(value, way + 1)
            if position == n_ways:
                break
        return out

    def hit_position(self, set_index: int, way: int) -> int:
        # Position from the protected end = how many ways sort *after* this
        # one under (-rrpv, way): every way with a lower RRPV, plus
        # equal-RRPV ways at a higher index. Counted with C-speed byte
        # counts instead of the per-hit sort the histogram used to pay for;
        # counting the protected side keeps the loop short for the common
        # case (a previously-promoted block at RRPV 0 needs one count).
        rrpv = self._rrpv[set_index]
        mine = rrpv[way]
        position = rrpv.count(mine, way + 1)
        for value in range(mine):
            position += rrpv.count(value)
        return position
