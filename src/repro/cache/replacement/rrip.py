"""Static Re-Reference Interval Prediction (SRRIP, Jaleel et al. ISCA 2010)."""

from __future__ import annotations

from typing import List, Sequence

from repro.cache.block import CacheBlock
from repro.cache.replacement.base import ReplacementPolicy


class RripPolicy(ReplacementPolicy):
    """SRRIP with ``m``-bit re-reference prediction values (RRPV).

    Hits promote to RRPV 0 (near-immediate re-reference); inserts use
    ``long`` re-reference (max - 1); victims are the first way at max RRPV,
    ageing the whole set until one appears.
    """

    name = "rrip"

    def __init__(self, n_sets: int, n_ways: int, rrpv_bits: int = 2) -> None:
        super().__init__(n_sets, n_ways)
        if rrpv_bits < 1:
            raise ValueError("rrpv_bits must be >= 1")
        self.max_rrpv = (1 << rrpv_bits) - 1
        self.insert_rrpv = self.max_rrpv - 1
        self._rrpv: List[List[int]] = [
            [self.max_rrpv] * n_ways for _ in range(n_sets)
        ]

    def on_hit(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = 0

    def on_insert(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = self.insert_rrpv

    def promote(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = 0

    def _victim_valid(self, set_index: int, blocks: Sequence[CacheBlock]) -> int:
        rrpv = self._rrpv[set_index]
        while True:
            for way in range(self.n_ways):
                if rrpv[way] >= self.max_rrpv:
                    return way
            for way in range(self.n_ways):
                rrpv[way] += 1

    def eviction_order(self, set_index: int) -> List[int]:
        """Ways sorted by descending RRPV (most distant re-reference first);
        ties broken by way index, matching hardware scan order."""
        rrpv = self._rrpv[set_index]
        return sorted(range(self.n_ways), key=lambda way: (-rrpv[way], way))
