"""True LRU replacement: an explicit recency stack per set."""

from __future__ import annotations

from typing import List

from repro.cache.replacement.base import ReplacementPolicy


class LruPolicy(ReplacementPolicy):
    """Least Recently Used with an exact per-set recency order.

    ``_stacks[s]`` lists ways MRU-first; the eviction end is the tail.
    """

    name = "lru"

    def __init__(self, n_sets: int, n_ways: int) -> None:
        super().__init__(n_sets, n_ways)
        self._stacks: List[List[int]] = [list(range(n_ways)) for _ in range(n_sets)]

    def _touch(self, set_index: int, way: int) -> None:
        stack = self._stacks[set_index]
        stack.remove(way)
        stack.insert(0, way)

    def on_hit(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def on_insert(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def eviction_order(self, set_index: int) -> List[int]:
        return list(reversed(self._stacks[set_index]))

    def promote(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)
