"""True LRU replacement: an explicit recency stack per set."""

from __future__ import annotations

from typing import List

from repro.cache.replacement.base import ReplacementPolicy


class LruPolicy(ReplacementPolicy):
    """Least Recently Used with an exact per-set recency order.

    ``_stacks[s]`` lists ways MRU-first; the eviction end is the tail.
    """

    name = "lru"

    def __init__(self, n_sets: int, n_ways: int) -> None:
        super().__init__(n_sets, n_ways)
        self._stacks: List[List[int]] = [list(range(n_ways)) for _ in range(n_sets)]

    def _touch(self, set_index: int, way: int) -> None:
        stack = self._stacks[set_index]
        stack.remove(way)
        stack.insert(0, way)

    def on_hit(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def on_insert(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def eviction_order_into(self, set_index: int, out: List[int]) -> List[int]:
        stack = self._stacks[set_index]
        last = self.n_ways - 1
        for position, way in enumerate(stack):
            out[last - position] = way
        return out

    def promote(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def _victim_valid(self, set_index, state) -> int:
        # The eviction end is the recency stack's tail — O(1), no read-out.
        return self._stacks[set_index][-1]

    def hit_position(self, set_index: int, way: int) -> int:
        # The recency stack is MRU-first, so the position from the protected
        # end is just the way's index in the stack — no copy, no reversal.
        return self._stacks[set_index].index(way)
