"""Replacement policies (paper Section III-C a) behind one registry."""

from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.drrip import DrripPolicy
from repro.cache.replacement.lru import LruPolicy
from repro.cache.replacement.nmru import NmruPolicy
from repro.cache.replacement.plru import TreePlruPolicy
from repro.cache.replacement.random_policy import RandomPolicy
from repro.cache.replacement.rrip import RripPolicy
from repro.components import ComponentRegistry

POLICIES = ComponentRegistry("replacement policy", {
    LruPolicy.name: LruPolicy,
    TreePlruPolicy.name: TreePlruPolicy,
    NmruPolicy.name: NmruPolicy,
    RripPolicy.name: RripPolicy,
    DrripPolicy.name: DrripPolicy,
    RandomPolicy.name: RandomPolicy,
})

#: Legacy alias: names whose constructor accepts a ``seed`` keyword.
#: Derived from the registry's introspected capability metadata (snapshot
#: at import time — live call sites consult ``POLICIES.spec(name)`` so
#: plugin policies registered later are seen too).
SEEDED_POLICIES = frozenset(
    spec.name for spec in POLICIES.specs() if spec.accepts_seed)


def make_policy(name: str, n_sets: int, n_ways: int,
                **kwargs) -> ReplacementPolicy:
    """Instantiate a replacement policy by registry name."""
    cls = POLICIES[name]
    return cls(n_sets, n_ways, **kwargs)


__all__ = [
    "DrripPolicy",
    "LruPolicy",
    "NmruPolicy",
    "POLICIES",
    "RandomPolicy",
    "ReplacementPolicy",
    "RripPolicy",
    "SEEDED_POLICIES",
    "TreePlruPolicy",
    "make_policy",
]
