"""Replacement policies (paper Section III-C a) behind one registry."""

from typing import Dict, Type

from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.drrip import DrripPolicy
from repro.cache.replacement.lru import LruPolicy
from repro.cache.replacement.nmru import NmruPolicy
from repro.cache.replacement.plru import TreePlruPolicy
from repro.cache.replacement.random_policy import RandomPolicy
from repro.cache.replacement.rrip import RripPolicy

POLICIES: Dict[str, Type[ReplacementPolicy]] = {
    LruPolicy.name: LruPolicy,
    TreePlruPolicy.name: TreePlruPolicy,
    NmruPolicy.name: NmruPolicy,
    RripPolicy.name: RripPolicy,
    DrripPolicy.name: DrripPolicy,
    RandomPolicy.name: RandomPolicy,
}

#: Policies whose constructor accepts a ``seed`` keyword.
SEEDED_POLICIES = frozenset({"nmru", "random", "drrip"})


def make_policy(name: str, n_sets: int, n_ways: int, **kwargs) -> ReplacementPolicy:
    """Instantiate a replacement policy by registry name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise KeyError(f"unknown replacement policy {name!r}; known: {known}") from None
    return cls(n_sets, n_ways, **kwargs)


__all__ = [
    "DrripPolicy",
    "LruPolicy",
    "NmruPolicy",
    "POLICIES",
    "RandomPolicy",
    "ReplacementPolicy",
    "RripPolicy",
    "SEEDED_POLICIES",
    "TreePlruPolicy",
    "make_policy",
]
