"""Not-Most-Recently-Used replacement.

Only the MRU way is protected; victims are drawn (pseudo-randomly but
deterministically) from the remaining ways. A *recency* policy in the
paper's taxonomy — sensitive to contention frequency rather than to data
movement through a stack.
"""

from __future__ import annotations

from typing import List

from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.state import CacheSetState
from repro.util.rng import DeterministicRng


class NmruPolicy(ReplacementPolicy):
    """Protects the single MRU way; everything else is fair game."""

    name = "nmru"

    def __init__(self, n_sets: int, n_ways: int, seed: int = 0) -> None:
        super().__init__(n_sets, n_ways)
        self._mru: List[int] = [0] * n_sets
        self._rng = DeterministicRng(seed, "nmru")

    def on_hit(self, set_index: int, way: int) -> None:
        self._mru[set_index] = way

    def on_insert(self, set_index: int, way: int) -> None:
        self._mru[set_index] = way

    def promote(self, set_index: int, way: int) -> None:
        self._mru[set_index] = way

    def _victim_valid(self, set_index: int, state: CacheSetState) -> int:
        if self.n_ways == 1:
            return 0
        way = self._rng.randint(0, self.n_ways - 2)
        if way >= self._mru[set_index]:
            way += 1
        return way

    def eviction_order_into(self, set_index: int, out: List[int]) -> List[int]:
        """Non-MRU ways (deterministic rotation for spread), MRU last.

        The rotation of ``others = [w for w != mru]`` by ``set_index`` is
        computed arithmetically: ``others[j]`` is ``j``, bumped past the MRU
        way — no intermediate lists.
        """
        n_ways = self.n_ways
        mru = self._mru[set_index]
        n_others = n_ways - 1
        if n_others:
            # Rotate by set index so PInTE's walk doesn't always hammer way 0.
            pivot = set_index % n_others
            for position in range(n_others):
                other = (pivot + position) % n_others
                out[position] = other + 1 if other >= mru else other
        out[n_ways - 1] = mru
        return out

    def hit_position(self, set_index: int, way: int) -> int:
        # MRU sits at the protected end; everything else inverts the
        # rotation above.
        mru = self._mru[set_index]
        if way == mru:
            return 0
        n_others = self.n_ways - 1
        pivot = set_index % n_others
        other = way - 1 if way > mru else way
        position = (other - pivot) % n_others
        return self.n_ways - 1 - position
