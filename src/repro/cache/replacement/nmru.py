"""Not-Most-Recently-Used replacement.

Only the MRU way is protected; victims are drawn (pseudo-randomly but
deterministically) from the remaining ways. A *recency* policy in the
paper's taxonomy — sensitive to contention frequency rather than to data
movement through a stack.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cache.block import CacheBlock
from repro.cache.replacement.base import ReplacementPolicy
from repro.util.rng import DeterministicRng


class NmruPolicy(ReplacementPolicy):
    """Protects the single MRU way; everything else is fair game."""

    name = "nmru"

    def __init__(self, n_sets: int, n_ways: int, seed: int = 0) -> None:
        super().__init__(n_sets, n_ways)
        self._mru: List[int] = [0] * n_sets
        self._rng = DeterministicRng(seed, "nmru")

    def on_hit(self, set_index: int, way: int) -> None:
        self._mru[set_index] = way

    def on_insert(self, set_index: int, way: int) -> None:
        self._mru[set_index] = way

    def promote(self, set_index: int, way: int) -> None:
        self._mru[set_index] = way

    def _victim_valid(self, set_index: int, blocks: Sequence[CacheBlock]) -> int:
        if self.n_ways == 1:
            return 0
        way = self._rng.randint(0, self.n_ways - 2)
        if way >= self._mru[set_index]:
            way += 1
        return way

    def eviction_order(self, set_index: int) -> List[int]:
        """Non-MRU ways (deterministic rotation for spread), MRU last."""
        mru = self._mru[set_index]
        others = [w for w in range(self.n_ways) if w != mru]
        # Rotate by set index so PInTE's walk doesn't always hammer way 0.
        if others:
            pivot = set_index % len(others)
            others = others[pivot:] + others[:pivot]
        return others + [mru]
