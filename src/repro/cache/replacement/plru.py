"""Tree pseudo-LRU replacement.

A binary tree of direction bits per set; each access flips the bits along
its path to point away from the accessed way, and the victim is found by
following the bits from the root. Standard hardware pLRU (e.g. the
partitioned-cache patent the paper cites).
"""

from __future__ import annotations

from typing import List

from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.state import CacheSetState
from repro.util.bitops import is_power_of_two


class TreePlruPolicy(ReplacementPolicy):
    """Tree-pLRU over a power-of-two number of ways."""

    name = "plru"

    def __init__(self, n_sets: int, n_ways: int) -> None:
        super().__init__(n_sets, n_ways)
        if not is_power_of_two(n_ways):
            raise ValueError(f"tree pLRU requires power-of-two ways, got {n_ways}")
        # Bits stored as a heap: node i has children 2i+1 / 2i+2; n_ways - 1
        # internal nodes. Bit value 0 means "LRU side is left".
        self._bits: List[List[int]] = [[0] * (n_ways - 1) for _ in range(n_sets)]
        # Reusable scratch for the eviction-order extraction walk.
        self._scratch_bits: List[int] = [0] * (n_ways - 1)
        self._scratch_taken = bytearray(n_ways)

    def _leaf_base(self) -> int:
        return self.n_ways - 1

    def _touch(self, set_index: int, way: int) -> None:
        """Set bits along the path to point away from ``way``."""
        bits = self._bits[set_index]
        node = self._leaf_base() + way
        while node > 0:
            parent = (node - 1) // 2
            went_left = node == 2 * parent + 1
            # Point toward the other child (the not-recently-used side).
            bits[parent] = 1 if went_left else 0
            node = parent

    def on_hit(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def on_insert(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def promote(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def _victim_from(self, bits: List[int], node: int) -> int:
        while node < self._leaf_base():
            node = 2 * node + 1 + bits[node]
        return node - self._leaf_base()

    def _victim_valid(self, set_index: int, state: CacheSetState) -> int:
        return self._victim_from(self._bits[set_index], 0)

    def eviction_order_into(self, set_index: int, out: List[int]) -> List[int]:
        """Approximate full stack: repeatedly extract victims on a scratch
        copy of the tree, touching each extracted way."""
        bits = self._scratch_bits
        bits[:] = self._bits[set_index]
        taken = self._scratch_taken
        for way in range(self.n_ways):
            taken[way] = 0
        leaf_base = self._leaf_base()
        for position in range(self.n_ways):
            way = self._victim_from(bits, 0)
            if taken[way]:
                # Defensive: flip the lowest untouched path instead.
                way = next(w for w in range(self.n_ways) if not taken[w])
            out[position] = way
            taken[way] = 1
            # Touch on the scratch tree so the next extraction differs.
            node = leaf_base + way
            while node > 0:
                parent = (node - 1) // 2
                bits[parent] = 1 if node == 2 * parent + 1 else 0
                node = parent
        return out
