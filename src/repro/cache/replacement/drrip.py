"""Dynamic RRIP (DRRIP) with set dueling (Jaleel et al., ISCA 2010).

SRRIP inserts at ``long`` re-reference; BRRIP inserts at ``distant``
re-reference most of the time (scan/thrash resistance). DRRIP dedicates a
few *leader* sets to each policy and a policy-selection counter (PSEL),
trained by misses in the leader sets, picks the insertion policy for the
follower sets. Included as an extension beyond the paper's four policies —
useful for ablating how adaptive insertion interacts with induced thefts.
"""

from __future__ import annotations

from repro.cache.replacement.rrip import RripPolicy
from repro.util.rng import DeterministicRng

#: One in ``BRRIP_LONG_PERIOD`` BRRIP insertions uses long re-reference.
BRRIP_LONG_PERIOD = 32
PSEL_BITS = 10


class DrripPolicy(RripPolicy):
    """RRIP with set-dueling between SRRIP and BRRIP insertion."""

    name = "drrip"

    def __init__(self, n_sets: int, n_ways: int, rrpv_bits: int = 2,
                 n_leader_sets: int = 4, seed: int = 0) -> None:
        super().__init__(n_sets, n_ways, rrpv_bits=rrpv_bits)
        n_leader_sets = min(n_leader_sets, max(1, n_sets // 2))
        # Leader sets spread across the cache: first N for SRRIP, last N for
        # BRRIP — the standard static-simple assignment.
        self._srrip_leaders = set(range(n_leader_sets))
        self._brrip_leaders = set(range(n_sets - n_leader_sets, n_sets))
        self._psel = 1 << (PSEL_BITS - 1)  # mid-point
        self._psel_max = (1 << PSEL_BITS) - 1
        self._brrip_counter = 0
        self._rng = DeterministicRng(seed, "drrip")

    # -- policy selection -------------------------------------------------
    def _use_srrip(self, set_index: int) -> bool:
        if set_index in self._srrip_leaders:
            return True
        if set_index in self._brrip_leaders:
            return False
        # Follower: PSEL below midpoint means SRRIP leaders miss less.
        return self._psel < (1 << (PSEL_BITS - 1))

    def record_miss(self, set_index: int) -> None:
        """Train PSEL on leader-set misses (caller: the owning cache)."""
        if set_index in self._srrip_leaders and self._psel < self._psel_max:
            self._psel += 1
        elif set_index in self._brrip_leaders and self._psel > 0:
            self._psel -= 1

    # -- insertion ------------------------------------------------------------
    def on_insert(self, set_index: int, way: int) -> None:
        if self._use_srrip(set_index):
            self._rrpv[set_index][way] = self.insert_rrpv
            return
        # BRRIP: distant re-reference, occasionally long.
        self._brrip_counter = (self._brrip_counter + 1) % BRRIP_LONG_PERIOD
        if self._brrip_counter == 0:
            self._rrpv[set_index][way] = self.insert_rrpv
        else:
            self._rrpv[set_index][way] = self.max_rrpv

    @property
    def psel(self) -> int:
        """Current policy-selection counter (exposed for tests/ablations)."""
        return self._psel
