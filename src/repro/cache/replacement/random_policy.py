"""Random replacement — a baseline/ablation policy, not in the paper's set."""

from __future__ import annotations

from typing import List

from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.state import CacheSetState
from repro.util.rng import DeterministicRng


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim; eviction order is a seeded permutation."""

    name = "random"

    def __init__(self, n_sets: int, n_ways: int, seed: int = 0) -> None:
        super().__init__(n_sets, n_ways)
        self._rng = DeterministicRng(seed, "random-repl")

    def on_hit(self, set_index: int, way: int) -> None:
        pass

    def on_insert(self, set_index: int, way: int) -> None:
        pass

    def promote(self, set_index: int, way: int) -> None:
        pass

    def _victim_valid(self, set_index: int, state: CacheSetState) -> int:
        return self._rng.randint(0, self.n_ways - 1)

    def eviction_order_into(self, set_index: int, out: List[int]) -> List[int]:
        # Each read-out draws a fresh permutation; callers relying on RNG
        # reproducibility (golden traces) count on exactly one shuffle here.
        for way in range(self.n_ways):
            out[way] = way
        self._rng.shuffle(out)
        return out
