"""Replacement policy interface.

PInTE manipulates the replacement stack directly (BLOCK-SELECT walks from the
eviction end; PROMOTE moves a block to the protected end), so on top of the
usual ``victim`` / ``on_hit`` / ``on_insert`` hooks every policy must expose:

* :meth:`eviction_order` — ways ordered most-evictable first (the
  "replacement stack" read out from its eviction end), and
* :meth:`promote` — move one way to the most-protected position, as if the
  adversary had just accessed it.

Policies keep their own per-set state and never touch block contents; the
:class:`~repro.cache.cache.Cache` coordinates the two.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cache.block import CacheBlock


class ReplacementPolicy:
    """Base class: per-set replacement state for ``n_sets`` x ``n_ways``."""

    name = "base"

    def __init__(self, n_sets: int, n_ways: int) -> None:
        if n_sets <= 0 or n_ways <= 0:
            raise ValueError("n_sets and n_ways must be positive")
        self.n_sets = n_sets
        self.n_ways = n_ways

    # -- normal cache operation -------------------------------------------
    def victim(self, set_index: int, blocks: Sequence[CacheBlock]) -> int:
        """Choose the way to evict for a fill into ``set_index``.

        Invalid ways must be preferred over valid ones — that is a cache
        invariant, enforced here for all subclasses.
        """
        for way, block in enumerate(blocks):
            if not block.valid:
                return way
        return self._victim_valid(set_index, blocks)

    def on_hit(self, set_index: int, way: int) -> None:
        """Update state after a demand hit on ``way``."""
        raise NotImplementedError

    def on_insert(self, set_index: int, way: int) -> None:
        """Update state after a fill into ``way``."""
        raise NotImplementedError

    # -- PInTE hooks --------------------------------------------------------
    def eviction_order(self, set_index: int) -> List[int]:
        """All ways, most-evictable first (the replacement stack, read from
        its eviction end)."""
        raise NotImplementedError

    def promote(self, set_index: int, way: int) -> None:
        """Move ``way`` to the most-protected position (adversary access)."""
        raise NotImplementedError

    # -- subclass internals --------------------------------------------------
    def _victim_valid(self, set_index: int, blocks: Sequence[CacheBlock]) -> int:
        """Victim among all-valid ways; default: head of the eviction order."""
        return self.eviction_order(set_index)[0]
