"""Replacement policy interface.

PInTE manipulates the replacement stack directly (BLOCK-SELECT walks from the
eviction end; PROMOTE moves a block to the protected end), so on top of the
usual ``victim`` / ``on_hit`` / ``on_insert`` hooks every policy must expose:

* :meth:`eviction_order_into` — ways ordered most-evictable first (the
  "replacement stack" read out from its eviction end), written into a
  caller-owned buffer so the per-event hot paths never allocate;
* :meth:`promote` — move one way to the most-protected position, as if the
  adversary had just accessed it; and
* :meth:`hit_position` — a hit way's distance from the protected end, the
  quantity the reuse histograms (paper Fig 5) record on every tracked hit.

Policies keep their own per-set state and read block metadata from the flat
:class:`~repro.cache.state.CacheSetState`; the
:class:`~repro.cache.cache.Cache` coordinates the two.
"""

from __future__ import annotations

from typing import List

from repro.cache.state import CacheSetState


class ReplacementPolicy:
    """Base class: per-set replacement state for ``n_sets`` x ``n_ways``."""

    name = "base"

    def __init__(self, n_sets: int, n_ways: int) -> None:
        if n_sets <= 0 or n_ways <= 0:
            raise ValueError("n_sets and n_ways must be positive")
        self.n_sets = n_sets
        self.n_ways = n_ways
        #: Reusable eviction-order buffer for internal queries, so default
        #: ``hit_position`` / ``_victim_valid`` stay allocation-free.
        self._scratch_order: List[int] = [0] * n_ways

    # -- normal cache operation -------------------------------------------
    def victim(self, set_index: int, state: CacheSetState) -> int:
        """Choose the way to evict for a fill into ``set_index``.

        Invalid ways must be preferred over valid ones — that is a cache
        invariant, enforced here for all subclasses (the scan runs at C
        speed over the state's ``valid`` byte array).
        """
        way = state.find_invalid_way(set_index)
        if way >= 0:
            return way
        return self._victim_valid(set_index, state)

    def on_hit(self, set_index: int, way: int) -> None:
        """Update state after a demand hit on ``way``."""
        raise NotImplementedError

    def on_insert(self, set_index: int, way: int) -> None:
        """Update state after a fill into ``way``."""
        raise NotImplementedError

    # -- PInTE hooks --------------------------------------------------------
    def eviction_order_into(self, set_index: int,
                            out: List[int]) -> List[int]:
        """Write all ways, most-evictable first, into ``out`` (length
        ``n_ways``); returns ``out``. Must not allocate per call."""
        raise NotImplementedError

    def eviction_order(self, set_index: int) -> List[int]:
        """Allocating convenience wrapper over :meth:`eviction_order_into`."""
        return self.eviction_order_into(set_index, [0] * self.n_ways)

    def promote(self, set_index: int, way: int) -> None:
        """Move ``way`` to the most-protected position (adversary access)."""
        raise NotImplementedError

    def hit_position(self, set_index: int, way: int) -> int:
        """Replacement-stack position of ``way`` from the protected end
        (0 = most protected / MRU-most).

        Default: read the stack through :meth:`eviction_order_into` on the
        policy's scratch buffer. Policies with cheap closed forms override
        this (LRU reads its recency stack, SRRIP counts RRPVs) so the
        per-hit path neither allocates nor sorts.
        """
        order = self.eviction_order_into(set_index, self._scratch_order)
        return self.n_ways - 1 - order.index(way)

    # -- subclass internals --------------------------------------------------
    def _victim_valid(self, set_index: int, state: CacheSetState) -> int:
        """Victim among all-valid ways; default: head of the eviction order."""
        return self.eviction_order_into(set_index, self._scratch_order)[0]
