"""Flat, array-backed cache-set state — the data-path substrate.

One :class:`CacheSetState` holds the metadata of *all* sets of one cache in
five parallel flat arrays (``tags``, ``valid``, ``dirty``, ``prefetched``,
``owners``) indexed by ``set_index * assoc + way``. Compared with the
previous object-per-block grid this removes an attribute-chase per field
touch, keeps the hot arrays in a handful of contiguous buffers, and lets the
victim scan for an invalid way run at C speed (``bytearray.find``).

Occupancy is maintained *incrementally*: every install/clear updates a total
counter and a per-owner counter, so ``occupancy()`` — polled by the sampler
every interval — is an O(1) dict read instead of an O(n_sets x assoc) scan.

The struct-of-arrays layout is also the substrate later PRs need for
vectorising (numpy views over ``tags``/``valid``) or sharding the LLC across
workers: the state of a set range is a contiguous slice.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, Optional

from repro.owners import SYSTEM_OWNER

__all__ = ["BlockView", "CacheSetState", "SYSTEM_OWNER"]


@dataclass(frozen=True)
class BlockView:
    """Read-only snapshot of one (set, way) slot — for tests and debugging.

    The live state lives in the flat arrays; mutate through
    :class:`~repro.cache.cache.Cache` or :class:`CacheSetState` methods.
    """

    tag: int
    valid: bool
    dirty: bool
    owner: int
    prefetched: bool

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.valid:
            return "BlockView(invalid)"
        flags = "".join(
            flag for flag, on in (("D", self.dirty), ("P", self.prefetched)) if on
        )
        return (f"BlockView(tag={self.tag:#x}, owner={self.owner}"
                f"{', ' + flags if flags else ''})")


class CacheSetState:
    """Struct-of-arrays block metadata for ``n_sets`` x ``assoc`` slots."""

    __slots__ = ("n_sets", "assoc", "tags", "valid", "dirty", "prefetched",
                 "owners", "owner_counts", "total_valid")

    def __init__(self, n_sets: int, assoc: int) -> None:
        if n_sets <= 0 or assoc <= 0:
            raise ValueError("n_sets and assoc must be positive")
        n = n_sets * assoc
        self.n_sets = n_sets
        self.assoc = assoc
        #: Full block addresses; meaningful only where ``valid`` is set.
        self.tags = array("q", bytes(8 * n))
        self.valid = bytearray(n)
        self.dirty = bytearray(n)
        self.prefetched = bytearray(n)
        self.owners = array("q", [SYSTEM_OWNER]) * n
        #: owner -> number of valid blocks, maintained on install/clear.
        self.owner_counts: Dict[int, int] = {}
        self.total_valid = 0

    # -- indexing -----------------------------------------------------------
    def base(self, set_index: int) -> int:
        """Flat index of way 0 of ``set_index``."""
        return set_index * self.assoc

    def find_invalid_way(self, set_index: int) -> int:
        """Lowest-numbered invalid way of ``set_index``, or -1 when full."""
        base = set_index * self.assoc
        index = self.valid.find(0, base, base + self.assoc)
        return -1 if index < 0 else index - base

    # -- mutation ------------------------------------------------------------
    def install(self, index: int, tag: int, owner: int, dirty: bool = False,
                prefetched: bool = False) -> None:
        """Fill the (invalid) slot at flat ``index``; updates counters."""
        self.tags[index] = tag
        self.valid[index] = 1
        self.dirty[index] = 1 if dirty else 0
        self.prefetched[index] = 1 if prefetched else 0
        self.owners[index] = owner
        self.total_valid += 1
        counts = self.owner_counts
        counts[owner] = counts.get(owner, 0) + 1

    def clear(self, index: int) -> None:
        """Invalidate the (valid) slot at flat ``index``; updates counters."""
        self.valid[index] = 0
        self.dirty[index] = 0
        self.prefetched[index] = 0
        self.total_valid -= 1
        self.owner_counts[self.owners[index]] -= 1

    # -- queries -------------------------------------------------------------
    def occupancy(self, owner: Optional[int] = None) -> int:
        """Number of valid blocks (optionally one owner's) — O(1)."""
        if owner is None:
            return self.total_valid
        return self.owner_counts.get(owner, 0)

    def owner_ways_in_set(self, set_index: int, owner: int) -> int:
        """How many ways of ``set_index`` the owner holds (O(assoc) scan)."""
        base = set_index * self.assoc
        valid = self.valid
        owners = self.owners
        count = 0
        for index in range(base, base + self.assoc):
            if valid[index] and owners[index] == owner:
                count += 1
        return count

    def scan_occupancy(self, owner: Optional[int] = None) -> int:
        """Occupancy by full scan — the counters' ground truth (tests)."""
        valid = self.valid
        if owner is None:
            return sum(valid)
        owners = self.owners
        return sum(1 for index, bit in enumerate(valid)
                   if bit and owners[index] == owner)

    def view(self, set_index: int, way: int) -> BlockView:
        """Read-only :class:`BlockView` of one slot."""
        index = set_index * self.assoc + way
        return BlockView(
            tag=self.tags[index],
            valid=bool(self.valid[index]),
            dirty=bool(self.dirty[index]),
            owner=self.owners[index],
            prefetched=bool(self.prefetched[index]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CacheSetState({self.n_sets}x{self.assoc}, "
                f"{self.total_valid}/{self.n_sets * self.assoc} valid)")
