"""Cache substrate: flat set state, set-associative caches, replacement,
hierarchy."""

from repro.cache.cache import Cache, CacheStats, EvictedBlock
from repro.cache.hierarchy import MemoryHierarchy, build_llc
from repro.cache.replacement import (
    LruPolicy,
    NmruPolicy,
    POLICIES,
    RandomPolicy,
    ReplacementPolicy,
    RripPolicy,
    TreePlruPolicy,
    make_policy,
)
from repro.cache.state import BlockView, CacheSetState, SYSTEM_OWNER

__all__ = [
    "BlockView",
    "Cache",
    "CacheSetState",
    "CacheStats",
    "EvictedBlock",
    "LruPolicy",
    "MemoryHierarchy",
    "NmruPolicy",
    "POLICIES",
    "RandomPolicy",
    "ReplacementPolicy",
    "RripPolicy",
    "SYSTEM_OWNER",
    "TreePlruPolicy",
    "build_llc",
    "make_policy",
]
