"""Cache substrate: blocks, set-associative caches, replacement, hierarchy."""

from repro.cache.block import SYSTEM_OWNER, CacheBlock
from repro.cache.cache import Cache, CacheStats, EvictedBlock
from repro.cache.hierarchy import MemoryHierarchy, build_llc
from repro.cache.replacement import (
    LruPolicy,
    NmruPolicy,
    POLICIES,
    RandomPolicy,
    ReplacementPolicy,
    RripPolicy,
    TreePlruPolicy,
    make_policy,
)

__all__ = [
    "Cache",
    "CacheBlock",
    "CacheStats",
    "EvictedBlock",
    "LruPolicy",
    "MemoryHierarchy",
    "NmruPolicy",
    "POLICIES",
    "RandomPolicy",
    "ReplacementPolicy",
    "RripPolicy",
    "SYSTEM_OWNER",
    "TreePlruPolicy",
    "build_llc",
    "make_policy",
]
