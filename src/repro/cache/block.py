"""Cache block (line) state.

Owner tracking is what makes theft accounting possible: every valid block
remembers which core inserted it, and the PInTE engine inserts blocks owned
by the synthetic ``SYSTEM`` adversary.
"""

from __future__ import annotations

from repro.owners import SYSTEM_OWNER

__all__ = ["CacheBlock", "SYSTEM_OWNER"]


class CacheBlock:
    """One cache line's metadata (no data payload — this is a timing model)."""

    __slots__ = ("tag", "valid", "dirty", "owner", "prefetched")

    def __init__(self) -> None:
        self.tag = 0  # full block address (block-aligned)
        self.valid = False
        self.dirty = False
        self.owner = SYSTEM_OWNER
        self.prefetched = False

    def fill(self, tag: int, owner: int, dirty: bool = False,
             prefetched: bool = False) -> None:
        """Install a new line."""
        self.tag = tag
        self.valid = True
        self.dirty = dirty
        self.owner = owner
        self.prefetched = prefetched

    def invalidate(self) -> None:
        """Drop the line (dirty data must be handled by the caller first)."""
        self.valid = False
        self.dirty = False
        self.prefetched = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.valid:
            return "CacheBlock(invalid)"
        flags = "".join(
            flag for flag, on in (("D", self.dirty), ("P", self.prefetched)) if on
        )
        return f"CacheBlock(tag={self.tag:#x}, owner={self.owner}{', ' + flags if flags else ''})"
