"""Memory hierarchy protocol: L1I/L1D/L2 private, LLC + DRAM shared.

One :class:`MemoryHierarchy` per core. Cores share the LLC, the DRAM and the
:class:`~repro.core.counters.ContentionTracker`; in 2nd-Trace mode two
hierarchies contend naturally, in PInTE mode a single hierarchy carries a
:class:`~repro.core.pinte.PInTE` engine that fires after every LLC demand
access.

Inclusion (paper Section III-C b):

* ``non-inclusive`` (the paper's default): fills propagate to every level on
  the way in; clean L2 victims are dropped, dirty ones write back into the
  LLC; LLC evictions leave private copies alone.
* ``inclusive``: like non-inclusive on the way in, but an LLC eviction
  back-invalidates the block in every private cache (dirty private data goes
  to DRAM).
* ``exclusive``: LLC is a victim cache — demand fills bypass it, every L2
  eviction inserts into it, and an LLC hit moves the block up and
  invalidates the LLC copy.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cache.cache import Cache, EvictedBlock
from repro.owners import SYSTEM_OWNER
from repro.config import MachineConfig
from repro.core.counters import ContentionTracker
from repro.dram import Dram
from repro.prefetch import Prefetcher, make_prefetcher


def build_llc(config: MachineConfig, seed: int = 0) -> Cache:
    """Construct the shared LLC for a machine config (reuse tracking on)."""
    return Cache(
        name="LLC",
        size=config.llc.size,
        assoc=config.llc.assoc,
        block_size=config.block_size,
        latency=config.llc.latency,
        policy=config.llc.policy,
        policy_seed=seed,
        track_reuse=True,
        hash_index=config.llc.hash_index,
    )


class MemoryHierarchy:
    """Private caches + shared LLC/DRAM for one core."""

    def __init__(
        self,
        config: MachineConfig,
        owner: int,
        llc: Optional[Cache] = None,
        dram: Optional[Dram] = None,
        tracker: Optional[ContentionTracker] = None,
        registry: Optional[Dict[int, "MemoryHierarchy"]] = None,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.owner = owner
        self.block_size = config.block_size
        self.inclusion = config.inclusion
        self.l1i = Cache("L1I", config.l1i.size, config.l1i.assoc, config.block_size,
                         config.l1i.latency, config.l1i.policy, policy_seed=seed)
        self.l1d = Cache("L1D", config.l1d.size, config.l1d.assoc, config.block_size,
                         config.l1d.latency, config.l1d.policy, policy_seed=seed)
        self.l2 = Cache("L2", config.l2.size, config.l2.assoc, config.block_size,
                        config.l2.latency, config.l2.policy, policy_seed=seed)
        self.llc = llc if llc is not None else build_llc(config, seed)
        self.dram = dram if dram is not None else Dram(config.dram)
        self.tracker = tracker if tracker is not None else ContentionTracker()
        #: owner -> hierarchy map shared by all cores on one LLC; used for
        #: inclusive back-invalidation.
        self.registry = registry if registry is not None else {}
        self.registry[owner] = self
        self.pinte = None  # wired by attach_pinte
        #: Optional observer called with (owner, block, hit) on every LLC
        #: demand access — used by cache-partitioning utility monitors.
        self.llc_access_hook = None
        self.l1i_prefetcher = self._make_prefetcher(config.l1i.prefetcher)
        self.l1d_prefetcher = self._make_prefetcher(config.l1d.prefetcher)
        self.l2_prefetcher = self._make_prefetcher(config.l2.prefetcher)

    def _make_prefetcher(self, name: str) -> Optional[Prefetcher]:
        if name == "none":
            return None
        return make_prefetcher(name, block_size=self.block_size)

    def attach_pinte(self, pinte, per_access: bool = True) -> None:
        """Bind a PInTE engine (its write-backs route to this DRAM).

        ``per_access=False`` wires the write-back/back-invalidate plumbing
        without installing the per-LLC-access trigger — used by the periodic
        (independent-module) trigger mode, which drives the engine from the
        core clock instead.
        """
        if per_access:
            self.pinte = pinte
        pinte.writeback = lambda addr, cycle: self.dram.access(addr, cycle, is_write=True)
        if self.inclusion == "inclusive":
            pinte.back_invalidate = lambda addr, cycle: self._back_invalidate_all(addr, cycle)

    # ------------------------------------------------------------------ demand
    def fetch(self, pc: int, cycle: int) -> int:
        """Instruction fetch; returns latency in cycles."""
        block = pc & ~(self.block_size - 1)
        return self._demand(self.l1i, self.l1i_prefetcher, pc, block, False, cycle)

    def load(self, pc: int, address: int, cycle: int) -> int:
        """Demand load; returns latency in cycles."""
        block = address & ~(self.block_size - 1)
        return self._demand(self.l1d, self.l1d_prefetcher, pc, block, False, cycle)

    def store(self, pc: int, address: int, cycle: int) -> int:
        """Store (write-allocate RFO); returns the fill latency."""
        block = address & ~(self.block_size - 1)
        return self._demand(self.l1d, self.l1d_prefetcher, pc, block, True, cycle)

    def _demand(self, l1: Cache, l1_prefetcher: Optional[Prefetcher],
                pc: int, block: int, is_write: bool, cycle: int) -> int:
        owner = self.owner
        latency = l1.latency
        if l1.access(block, is_write, owner):
            if l1_prefetcher is not None:
                self._run_prefetcher(l1, l1_prefetcher, pc, block, True,
                                     cycle + latency)
            return latency

        # L1 miss -> L2
        l2 = self.l2
        latency += l2.latency
        l2_hit = l2.access(block, False, owner)
        if self.l2_prefetcher is not None:
            self._run_prefetcher(l2, self.l2_prefetcher, pc, block, l2_hit,
                                 cycle + latency)
        if l2_hit:
            self._fill_l1(l1, block, is_write, cycle + latency)
            if l1_prefetcher is not None:
                self._run_prefetcher(l1, l1_prefetcher, pc, block, False,
                                     cycle + latency)
            return latency

        # L2 miss -> LLC
        llc = self.llc
        latency += llc.latency
        llc_hit = llc.access(block, False, owner)
        self.tracker.record_access(owner, block, llc_hit)
        if self.llc_access_hook is not None:
            self.llc_access_hook(owner, block, llc_hit)
        dirty_from_llc = False
        if llc_hit:
            if self.inclusion == "exclusive":
                info = llc.invalidate(block)
                dirty_from_llc = bool(info and info.dirty)
        else:
            latency += self.dram.access(block, cycle + latency, is_write=False)
            if self.inclusion != "exclusive":
                self._llc_fill(block, cycle + latency)

        self._fill_l2(block, cycle + latency, dirty=dirty_from_llc)
        self._fill_l1(l1, block, is_write, cycle + latency)
        if l1_prefetcher is not None:
            self._run_prefetcher(l1, l1_prefetcher, pc, block, False,
                                 cycle + latency)

        # The PInTE hook: fires after every LLC demand access (UPDATE-ACCESS
        # has happened -- either the hit promotion or the miss fill above).
        if self.pinte is not None:
            self.pinte.on_llc_access(llc.set_index(block), cycle + latency,
                                     owner)
        return latency

    # ------------------------------------------------------------------- fills
    def _fill_l1(self, l1: Cache, block: int, dirty: bool, cycle: int) -> None:
        evicted = l1.fill(block, self.owner, dirty=dirty)
        if evicted is not None and evicted.dirty:
            self._writeback_to_l2(evicted.tag, cycle)

    def _writeback_to_l2(self, block: int, cycle: int) -> None:
        if self.l2.mark_dirty(block):
            self.l2.stats.writeback_fills += 1
            return
        evicted = self.l2.fill(block, self.owner, dirty=True, is_writeback_fill=True)
        if evicted is not None:
            self._l2_eviction(evicted, cycle)

    def _fill_l2(self, block: int, cycle: int, dirty: bool = False) -> None:
        evicted = self.l2.fill(block, self.owner, dirty=dirty)
        if evicted is not None:
            self._l2_eviction(evicted, cycle)

    def _l2_eviction(self, evicted: EvictedBlock, cycle: int) -> None:
        """Route an L2 victim according to the inclusion policy."""
        if self.inclusion == "exclusive":
            # Victim cache: every L2 eviction inserts into the LLC.
            self._llc_fill(evicted.tag, cycle, dirty=evicted.dirty, writeback=True)
        elif evicted.dirty:
            # The L2 spill traffic the paper's Fig 6b root-causes.
            if self.llc.mark_dirty(evicted.tag):
                self.llc.stats.writeback_fills += 1
            else:
                self._llc_fill(evicted.tag, cycle, dirty=True, writeback=True)
        # clean, non-exclusive victims are silently dropped

    def _llc_fill(self, block: int, cycle: int, dirty: bool = False,
                  prefetched: bool = False, writeback: bool = False) -> None:
        evicted = self.llc.fill(
            block, self.owner, dirty=dirty, prefetched=prefetched,
            is_writeback_fill=writeback,
            max_owner_ways=self.config.llc_way_allocation,
        )
        self.tracker.record_refill(self.owner, block)
        if evicted is None:
            return
        if evicted.owner not in (self.owner, SYSTEM_OWNER):
            # Natural inter-core theft (2nd-Trace contention).
            self.tracker.record_theft(evicted.owner, self.owner, evicted.tag)
        if evicted.dirty:
            self.dram.access(evicted.tag, cycle, is_write=True)
        if self.inclusion == "inclusive":
            self._back_invalidate_all(evicted.tag, cycle)

    # ------------------------------------------------------------ invalidation
    def _back_invalidate_all(self, block: int, cycle: int) -> None:
        for hierarchy in self.registry.values():
            hierarchy._back_invalidate_private(block, cycle)

    def _back_invalidate_private(self, block: int, cycle: int) -> None:
        for cache in (self.l1i, self.l1d, self.l2):
            info = cache.invalidate(block)
            if info is not None and info.dirty:
                self.dram.access(block, cycle, is_write=True)

    # -------------------------------------------------------------- prefetching
    def _run_prefetcher(self, level: Cache, prefetcher: Optional[Prefetcher],
                        pc: int, block: int, hit: bool, cycle: int) -> None:
        if prefetcher is None:
            return
        for candidate in prefetcher.on_access(pc, block, hit):
            self._prefetch_fill(level, candidate, cycle)

    def _prefetch_fill(self, target: Cache, block: int, cycle: int) -> None:
        """Bring ``block`` into ``target`` speculatively (no latency charged
        to the core; DRAM bandwidth is consumed)."""
        if target.probe(block) >= 0:
            return
        found = False
        if target is self.l1d or target is self.l1i:
            found = self.l2.probe(block) >= 0
        if not found:
            found = self.llc.probe(block) >= 0
        if not found:
            self.dram.access(block, cycle, is_write=False)
            if self.inclusion != "exclusive":
                self._llc_fill(block, cycle, prefetched=True)
        if target is self.l2:
            evicted = target.fill(block, self.owner, prefetched=True)
            if evicted is not None:
                self._l2_eviction(evicted, cycle)
        else:
            evicted = target.fill(block, self.owner, prefetched=True)
            if evicted is not None and evicted.dirty:
                self._writeback_to_l2(evicted.tag, cycle)

    # ------------------------------------------------------------------ queries
    def llc_occupancy_fraction(self) -> float:
        """This core's share of LLC blocks (Eq. 6 numerator)."""
        return self.llc.occupancy(self.owner) / self.llc.capacity_blocks

    def prefetch_issued(self) -> int:
        return sum(
            p.stats.issued
            for p in (self.l1i_prefetcher, self.l1d_prefetcher, self.l2_prefetcher)
            if p is not None
        )

    def prefetch_useful(self) -> int:
        return (self.l1i.stats.prefetch_useful + self.l1d.stats.prefetch_useful
                + self.l2.stats.prefetch_useful + self.llc.stats.prefetch_useful)
