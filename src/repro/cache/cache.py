"""Set-associative cache with owner tracking and reuse histograms.

This is the structural layer: tag lookup, fills, evictions, invalidations,
replacement-policy bookkeeping, per-set ownership. The *protocol* (which
level fills when, inclusion behaviour, write-backs) lives in
:mod:`repro.cache.hierarchy`; the contention accounting lives in
:mod:`repro.core.counters`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.block import CacheBlock
from repro.cache.replacement import SEEDED_POLICIES, make_policy
from repro.util.bitops import fold_xor, ilog2


@dataclass
class EvictedBlock:
    """What fell out of the cache on a fill or invalidation."""

    tag: int
    dirty: bool
    owner: int
    prefetched: bool


class CacheStats:
    """Per-cache access counters (demand and prefetch separated)."""

    __slots__ = (
        "accesses", "hits", "misses",
        "loads", "load_hits", "stores", "store_hits",
        "prefetch_fills", "prefetch_useful",
        "writebacks", "writeback_fills", "evictions", "invalidations",
    )

    def __init__(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.loads = 0
        self.load_hits = 0
        self.stores = 0
        self.store_hits = 0
        self.prefetch_fills = 0
        self.prefetch_useful = 0
        self.writebacks = 0
        self.writeback_fills = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def miss_rate(self) -> float:
        """Demand miss rate (misses / demand accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def snapshot(self) -> dict:
        """Plain-dict copy for sampling."""
        return {name: getattr(self, name) for name in self.__slots__}


class Cache:
    """One level of set-associative, write-back, write-allocate cache."""

    def __init__(
        self,
        name: str,
        size: int,
        assoc: int,
        block_size: int = 64,
        latency: int = 4,
        policy: str = "lru",
        policy_seed: int = 0,
        track_reuse: bool = False,
        hash_index: bool = False,
    ) -> None:
        if size % (assoc * block_size) != 0:
            raise ValueError(
                f"{name}: size {size} not divisible by assoc*block ({assoc}x{block_size})"
            )
        self.name = name
        self.size = size
        self.assoc = assoc
        self.block_size = block_size
        self.latency = latency
        self.n_sets = size // (assoc * block_size)
        self._index_bits = ilog2(self.n_sets)  # power-of-two sets
        self._offset_bits = ilog2(block_size)
        self._set_mask = self.n_sets - 1
        # XOR-folded set indexing de-skews power-of-two strides (the index
        # hash real LLCs use); off by default to keep indexing transparent.
        self.hash_index = hash_index and self.n_sets > 1
        self.policy_name = policy
        if policy in SEEDED_POLICIES:
            self.policy = make_policy(policy, self.n_sets, self.assoc,
                                      seed=policy_seed)
        else:
            self.policy = make_policy(policy, self.n_sets, self.assoc)
        # Optional per-miss training hook (set-dueling policies like DRRIP).
        self._policy_miss_hook = getattr(self.policy, "record_miss", None)
        #: Optional per-owner way quotas (cache partitioning). When an owner
        #: at/above its quota fills, the victim is forced to be one of its
        #: own blocks. Owners without an entry are unconstrained.
        self.way_allocations: dict = {}
        self.sets: List[List[CacheBlock]] = [
            [CacheBlock() for _ in range(assoc)] for _ in range(self.n_sets)
        ]
        # Per-set tag map (block_addr -> way) mirroring only *valid* blocks;
        # turns lookups O(1) instead of an associativity-wide scan.
        self._tags: List[dict] = [dict() for _ in range(self.n_sets)]
        self.stats = CacheStats()
        self.track_reuse = track_reuse
        #: Hit-position histogram (paper Fig 5): index = position in the
        #: replacement stack counted from the protected end (0 = MRU-most).
        self.reuse_histogram: List[int] = [0] * assoc if track_reuse else []
        #: Same histogram split per owner — in shared-LLC runs each
        #: workload's reuse behaviour must be separable (the paper's
        #: histograms are per-workload).
        self.reuse_by_owner: dict = {}

    # -- addressing ---------------------------------------------------------
    def set_index(self, block_addr: int) -> int:
        block = block_addr >> self._offset_bits
        if self.hash_index:
            return fold_xor(block, self._index_bits)
        return block & self._set_mask

    def block_address(self, address: int) -> int:
        return address & ~(self.block_size - 1)

    # -- lookup / access ------------------------------------------------------
    def probe(self, block_addr: int) -> int:
        """Way holding ``block_addr`` or -1; no state change."""
        return self._tags[self.set_index(block_addr)].get(block_addr, -1)

    def access(self, block_addr: int, is_write: bool, owner: int) -> bool:
        """Demand access; updates stats and replacement state. True on hit."""
        set_index = self.set_index(block_addr)
        self.stats.accesses += 1
        if is_write:
            self.stats.stores += 1
        else:
            self.stats.loads += 1
        way = self._tags[set_index].get(block_addr, -1)
        if way >= 0:
            block = self.sets[set_index][way]
            self.stats.hits += 1
            if is_write:
                self.stats.store_hits += 1
                block.dirty = True
            else:
                self.stats.load_hits += 1
            if block.prefetched:
                block.prefetched = False
                self.stats.prefetch_useful += 1
            if self.track_reuse:
                self._record_reuse(set_index, way, owner)
            self.policy.on_hit(set_index, way)
            return True
        self.stats.misses += 1
        if self._policy_miss_hook is not None:
            self._policy_miss_hook(set_index)
        return False

    def _record_reuse(self, set_index: int, way: int, owner: int) -> None:
        """Record the replacement-stack position of a hit (0 = protected end)."""
        order = self.policy.eviction_order(set_index)
        position = self.assoc - 1 - order.index(way)
        self.reuse_histogram[position] += 1
        histogram = self.reuse_by_owner.get(owner)
        if histogram is None:
            histogram = [0] * self.assoc
            self.reuse_by_owner[owner] = histogram
        histogram[position] += 1

    def owner_reuse_histogram(self, owner: int) -> List[int]:
        """One owner's hit-position histogram (zeros when it never hit)."""
        return list(self.reuse_by_owner.get(owner, [0] * self.assoc))

    # -- fills / evictions ---------------------------------------------------
    def fill(self, block_addr: int, owner: int, dirty: bool = False,
             prefetched: bool = False, is_writeback_fill: bool = False,
             max_owner_ways: Optional[int] = None) -> Optional[EvictedBlock]:
        """Install ``block_addr``; returns the evicted block, if any was valid.

        If the block is already present this refreshes its state in place
        (write-back updates take this path) and evicts nothing.

        ``max_owner_ways`` models an Intel RDT-style allocation cap: when the
        filling owner already holds that many ways of the set, the victim is
        forced to be one of the owner's own blocks instead of the global
        replacement choice.
        """
        set_index = self.set_index(block_addr)
        blocks = self.sets[set_index]
        tags = self._tags[set_index]
        existing = tags.get(block_addr, -1)
        if existing >= 0:
            block = blocks[existing]
            block.dirty = block.dirty or dirty
            if is_writeback_fill:
                self.stats.writeback_fills += 1
            return None
        way = self._choose_victim(set_index, blocks, owner, max_owner_ways)
        block = blocks[way]
        evicted: Optional[EvictedBlock] = None
        if block.valid:
            evicted = EvictedBlock(block.tag, block.dirty, block.owner, block.prefetched)
            del tags[block.tag]
            self.stats.evictions += 1
            if block.dirty:
                self.stats.writebacks += 1
        block.fill(block_addr, owner, dirty=dirty, prefetched=prefetched)
        tags[block_addr] = way
        if prefetched:
            self.stats.prefetch_fills += 1
        if is_writeback_fill:
            self.stats.writeback_fills += 1
        self.policy.on_insert(set_index, way)
        return evicted

    def _choose_victim(self, set_index: int, blocks: List[CacheBlock],
                       owner: int, max_owner_ways: Optional[int]) -> int:
        """Victim way, honouring an optional per-owner allocation cap.

        The cap is the tighter of the per-call ``max_owner_ways`` (RDT-style
        global cap) and this owner's entry in :attr:`way_allocations`
        (partitioning quota).
        """
        quota = self.way_allocations.get(owner)
        if quota is not None:
            max_owner_ways = (quota if max_owner_ways is None
                              else min(quota, max_owner_ways))
        if max_owner_ways is not None:
            owner_ways = sum(
                1 for block in blocks if block.valid and block.owner == owner
            )
            if owner_ways >= max_owner_ways:
                for way in self.policy.eviction_order(set_index):
                    block = blocks[way]
                    if block.valid and block.owner == owner:
                        return way
        return self.policy.victim(set_index, blocks)

    def invalidate(self, block_addr: int) -> Optional[EvictedBlock]:
        """Drop ``block_addr`` if present; returns its state for write-back."""
        set_index = self.set_index(block_addr)
        way = self._tags[set_index].pop(block_addr, -1)
        if way < 0:
            return None
        block = self.sets[set_index][way]
        info = EvictedBlock(block.tag, block.dirty, block.owner, block.prefetched)
        block.invalidate()
        self.stats.invalidations += 1
        return info

    def invalidate_way(self, set_index: int, way: int) -> Optional[EvictedBlock]:
        """Drop a block by position (the PInTE engine's INVALIDATE state)."""
        block = self.sets[set_index][way]
        if not block.valid:
            return None
        info = EvictedBlock(block.tag, block.dirty, block.owner, block.prefetched)
        self._tags[set_index].pop(block.tag, None)
        block.invalidate()
        self.stats.invalidations += 1
        return info

    def mark_dirty(self, block_addr: int) -> bool:
        """Set the dirty bit on a resident block (write-back arrival)."""
        way = self.probe(block_addr)
        if way < 0:
            return False
        self.sets[self.set_index(block_addr)][way].dirty = True
        return True

    # -- occupancy ------------------------------------------------------------
    def occupancy(self, owner: Optional[int] = None) -> int:
        """Number of valid blocks (optionally for one owner)."""
        count = 0
        for blocks in self.sets:
            for block in blocks:
                if block.valid and (owner is None or block.owner == owner):
                    count += 1
        return count

    @property
    def capacity_blocks(self) -> int:
        return self.n_sets * self.assoc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache({self.name}, {self.size // 1024}KB, {self.assoc}-way, "
            f"{self.policy_name})"
        )
