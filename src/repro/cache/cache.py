"""Set-associative cache with owner tracking and reuse histograms.

This is the structural layer: tag lookup, fills, evictions, invalidations,
replacement-policy bookkeeping, per-set ownership. Block metadata lives in a
flat struct-of-arrays :class:`~repro.cache.state.CacheSetState`; the
*protocol* (which level fills when, inclusion behaviour, write-backs) lives
in :mod:`repro.cache.hierarchy`; the contention accounting lives in
:mod:`repro.core.counters`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.replacement import POLICIES, make_policy
from repro.cache.state import BlockView, CacheSetState
from repro.util.bitops import fold_xor, ilog2


@dataclass(slots=True)
class EvictedBlock:
    """What fell out of the cache on a fill or invalidation."""

    tag: int
    dirty: bool
    owner: int
    prefetched: bool


class CacheStats:
    """Per-cache access counters (demand and prefetch separated)."""

    __slots__ = (
        "accesses", "hits", "misses",
        "loads", "load_hits", "stores", "store_hits",
        "prefetch_fills", "prefetch_useful",
        "writebacks", "writeback_fills", "evictions", "invalidations",
    )

    def __init__(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.loads = 0
        self.load_hits = 0
        self.stores = 0
        self.store_hits = 0
        self.prefetch_fills = 0
        self.prefetch_useful = 0
        self.writebacks = 0
        self.writeback_fills = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def miss_rate(self) -> float:
        """Demand miss rate (misses / demand accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def snapshot(self) -> dict:
        """Plain-dict copy for sampling."""
        return {name: getattr(self, name) for name in self.__slots__}


class Cache:
    """One level of set-associative, write-back, write-allocate cache."""

    def __init__(
        self,
        name: str,
        size: int,
        assoc: int,
        block_size: int = 64,
        latency: int = 4,
        policy: str = "lru",
        policy_seed: int = 0,
        track_reuse: bool = False,
        hash_index: bool = False,
    ) -> None:
        if size % (assoc * block_size) != 0:
            raise ValueError(
                f"{name}: size {size} not divisible by assoc*block ({assoc}x{block_size})"
            )
        self.name = name
        self.size = size
        self.assoc = assoc
        self.block_size = block_size
        self.latency = latency
        self.n_sets = size // (assoc * block_size)
        self._index_bits = ilog2(self.n_sets)  # power-of-two sets
        self._offset_bits = ilog2(block_size)
        self._set_mask = self.n_sets - 1
        # XOR-folded set indexing de-skews power-of-two strides (the index
        # hash real LLCs use); off by default to keep indexing transparent.
        self.hash_index = hash_index and self.n_sets > 1
        self.policy_name = policy
        # Registry capability metadata decides whether the policy's
        # constructor takes the seed (works for plugin policies too).
        if POLICIES.spec(policy).accepts_seed:
            self.policy = make_policy(policy, self.n_sets, self.assoc,
                                      seed=policy_seed)
        else:
            self.policy = make_policy(policy, self.n_sets, self.assoc)
        # Optional per-miss training hook (set-dueling policies like DRRIP).
        self._policy_miss_hook = getattr(self.policy, "record_miss", None)
        # Hot-path bound methods (the policy object is fixed for life).
        self._policy_on_hit = self.policy.on_hit
        self._policy_on_insert = self.policy.on_insert
        self._policy_hit_position = self.policy.hit_position
        self._policy_victim_valid = self.policy._victim_valid
        #: Optional per-owner way quotas (cache partitioning). When an owner
        #: at/above its quota fills, the victim is forced to be one of its
        #: own blocks. Owners without an entry are unconstrained.
        self.way_allocations: dict = {}
        #: Flat block metadata for every (set, way) slot.
        self.state = CacheSetState(self.n_sets, assoc)
        # Per-set tag map (block_addr -> way) mirroring only *valid* blocks;
        # turns lookups O(1) instead of an associativity-wide scan.
        self._tags: List[dict] = [dict() for _ in range(self.n_sets)]
        # Reusable eviction-order buffer for the quota-constrained walk.
        self._order_scratch: List[int] = [0] * assoc
        self.stats = CacheStats()
        #: Optional :class:`~repro.obs.events.EventTrace` (observability).
        #: ``None`` keeps every emission site a single load+branch on the
        #: fill/invalidate paths; set via ``EventTrace.attach(cache)``.
        self._events = None
        self.track_reuse = track_reuse
        #: Hit-position histogram (paper Fig 5): index = position in the
        #: replacement stack counted from the protected end (0 = MRU-most).
        self.reuse_histogram: List[int] = [0] * assoc if track_reuse else []
        #: Same histogram split per owner — in shared-LLC runs each
        #: workload's reuse behaviour must be separable (the paper's
        #: histograms are per-workload).
        self.reuse_by_owner: dict = {}

    # -- addressing ---------------------------------------------------------
    def set_index(self, block_addr: int) -> int:
        block = block_addr >> self._offset_bits
        if self.hash_index:
            return fold_xor(block, self._index_bits)
        return block & self._set_mask

    def block_address(self, address: int) -> int:
        return address & ~(self.block_size - 1)

    def block(self, set_index: int, way: int) -> BlockView:
        """Read-only snapshot of one slot (tests, examples, debugging)."""
        return self.state.view(set_index, way)

    @property
    def sets(self) -> List[List[BlockView]]:
        """Read-only snapshot of every slot as nested ``[set][way]`` views.

        Built fresh on each read from the flat state arrays — convenient for
        tests, examples and debugging, far too slow for simulation loops
        (those index :attr:`state` directly).
        """
        view = self.state.view
        return [[view(set_index, way) for way in range(self.assoc)]
                for set_index in range(self.n_sets)]

    # -- lookup / access ------------------------------------------------------
    def probe(self, block_addr: int) -> int:
        """Way holding ``block_addr`` or -1; no state change."""
        return self._tags[self.set_index(block_addr)].get(block_addr, -1)

    def access(self, block_addr: int, is_write: bool, owner: int) -> bool:
        """Demand access; updates stats and replacement state. True on hit."""
        block = block_addr >> self._offset_bits
        if self.hash_index:
            set_index = fold_xor(block, self._index_bits)
        else:
            set_index = block & self._set_mask
        stats = self.stats
        stats.accesses += 1
        if is_write:
            stats.stores += 1
        else:
            stats.loads += 1
        way = self._tags[set_index].get(block_addr, -1)
        if way >= 0:
            state = self.state
            index = set_index * self.assoc + way
            stats.hits += 1
            if is_write:
                stats.store_hits += 1
                state.dirty[index] = 1
            else:
                stats.load_hits += 1
            if state.prefetched[index]:
                state.prefetched[index] = 0
                stats.prefetch_useful += 1
            if self.track_reuse:
                # _record_reuse, inlined (this runs on every tracked hit).
                position = self._policy_hit_position(set_index, way)
                self.reuse_histogram[position] += 1
                histogram = self.reuse_by_owner.get(owner)
                if histogram is None:
                    histogram = [0] * self.assoc
                    self.reuse_by_owner[owner] = histogram
                histogram[position] += 1
            self._policy_on_hit(set_index, way)
            return True
        stats.misses += 1
        if self._policy_miss_hook is not None:
            self._policy_miss_hook(set_index)
        return False

    def _record_reuse(self, set_index: int, way: int, owner: int) -> None:
        """Record the replacement-stack position of a hit (0 = protected end).

        The position comes straight from the policy
        (:meth:`~repro.cache.replacement.base.ReplacementPolicy.hit_position`)
        instead of materialising the whole eviction order and scanning it.
        """
        position = self.policy.hit_position(set_index, way)
        self.reuse_histogram[position] += 1
        histogram = self.reuse_by_owner.get(owner)
        if histogram is None:
            histogram = [0] * self.assoc
            self.reuse_by_owner[owner] = histogram
        histogram[position] += 1

    def owner_reuse_histogram(self, owner: int) -> List[int]:
        """One owner's hit-position histogram (zeros when it never hit)."""
        return list(self.reuse_by_owner.get(owner, [0] * self.assoc))

    # -- fills / evictions ---------------------------------------------------
    def fill(self, block_addr: int, owner: int, dirty: bool = False,
             prefetched: bool = False, is_writeback_fill: bool = False,
             max_owner_ways: Optional[int] = None) -> Optional[EvictedBlock]:
        """Install ``block_addr``; returns the evicted block, if any was valid.

        If the block is already present this refreshes its state in place
        (write-back updates take this path) and evicts nothing.

        ``max_owner_ways`` models an Intel RDT-style allocation cap: when the
        filling owner already holds that many ways of the set, the victim is
        forced to be one of the owner's own blocks instead of the global
        replacement choice.
        """
        block = block_addr >> self._offset_bits
        if self.hash_index:
            set_index = fold_xor(block, self._index_bits)
        else:
            set_index = block & self._set_mask
        state = self.state
        tags = self._tags[set_index]
        stats = self.stats
        existing = tags.get(block_addr, -1)
        if existing >= 0:
            if dirty:
                state.dirty[set_index * self.assoc + existing] = 1
            if is_writeback_fill:
                stats.writeback_fills += 1
            return None
        if max_owner_ways is None and not self.way_allocations:
            # Unconstrained fill (the common case): prefer an invalid way via
            # the C-speed byte scan, else the policy picks among valid ones.
            base = set_index * self.assoc
            way = state.valid.find(0, base, base + self.assoc)
            way = way - base if way >= 0 else self._policy_victim_valid(
                set_index, state)
        else:
            way = self._choose_victim(set_index, owner, max_owner_ways)
        index = set_index * self.assoc + way
        evicted: Optional[EvictedBlock] = None
        # state.clear + state.install, inlined (this is the hottest write
        # path): replacing a valid block leaves total_valid unchanged and
        # only moves per-owner counters when the owner actually changes.
        if state.valid[index]:
            old_tag = state.tags[index]
            old_dirty = state.dirty[index]
            old_owner = state.owners[index]
            evicted = EvictedBlock(old_tag, old_dirty != 0, old_owner,
                                   state.prefetched[index] != 0)
            del tags[old_tag]
            stats.evictions += 1
            if old_dirty:
                stats.writebacks += 1
            if old_owner != owner:
                counts = state.owner_counts
                counts[old_owner] -= 1
                counts[owner] = counts.get(owner, 0) + 1
                state.owners[index] = owner
        else:
            state.valid[index] = 1
            state.total_valid += 1
            counts = state.owner_counts
            counts[owner] = counts.get(owner, 0) + 1
            state.owners[index] = owner
        state.tags[index] = block_addr
        state.dirty[index] = 1 if dirty else 0
        state.prefetched[index] = 1 if prefetched else 0
        tags[block_addr] = way
        if prefetched:
            stats.prefetch_fills += 1
        if is_writeback_fill:
            stats.writeback_fills += 1
        self._policy_on_insert(set_index, way)
        events = self._events
        if events is not None:
            events.record("fill", set_index, way, owner,
                          "prefetch" if prefetched else
                          "writeback" if is_writeback_fill else "demand",
                          block_addr)
            if evicted is not None:
                events.record(
                    "evict", set_index, way, evicted.owner,
                    "replace" if evicted.owner == owner else "theft",
                    evicted.tag)
                if evicted.dirty:
                    events.record("writeback", set_index, way, evicted.owner,
                                  "evict", evicted.tag)
        return evicted

    def _choose_victim(self, set_index: int, owner: int,
                       max_owner_ways: Optional[int]) -> int:
        """Victim way, honouring an optional per-owner allocation cap.

        The cap is the tighter of the per-call ``max_owner_ways`` (RDT-style
        global cap) and this owner's entry in :attr:`way_allocations`
        (partitioning quota).
        """
        state = self.state
        if self.way_allocations:
            quota = self.way_allocations.get(owner)
            if quota is not None:
                max_owner_ways = (quota if max_owner_ways is None
                                  else min(quota, max_owner_ways))
        if max_owner_ways is not None:
            if state.owner_ways_in_set(set_index, owner) >= max_owner_ways:
                base = set_index * self.assoc
                valid = state.valid
                owners = state.owners
                for way in self.policy.eviction_order_into(
                        set_index, self._order_scratch):
                    index = base + way
                    if valid[index] and owners[index] == owner:
                        return way
        # policy.victim, inlined: prefer an invalid way (C-speed byte scan),
        # else ask the policy to pick among the valid ones.
        base = set_index * self.assoc
        way = state.valid.find(0, base, base + self.assoc)
        if way >= 0:
            return way - base
        return self.policy._victim_valid(set_index, state)

    def invalidate(self, block_addr: int) -> Optional[EvictedBlock]:
        """Drop ``block_addr`` if present; returns its state for write-back."""
        set_index = self.set_index(block_addr)
        way = self._tags[set_index].pop(block_addr, -1)
        if way < 0:
            return None
        state = self.state
        index = set_index * self.assoc + way
        info = EvictedBlock(state.tags[index], bool(state.dirty[index]),
                            state.owners[index], bool(state.prefetched[index]))
        state.clear(index)
        self.stats.invalidations += 1
        if self._events is not None:
            self._events.record("invalidate", set_index, way, info.owner,
                                "protocol", info.tag)
        return info

    def invalidate_way(self, set_index: int, way: int) -> Optional[EvictedBlock]:
        """Drop a block by position (the PInTE engine's INVALIDATE state)."""
        state = self.state
        index = set_index * self.assoc + way
        if not state.valid[index]:
            return None
        tag = state.tags[index]
        owner = state.owners[index]
        info = EvictedBlock(tag, state.dirty[index] != 0, owner,
                            state.prefetched[index] != 0)
        self._tags[set_index].pop(tag, None)
        # state.clear, inlined (PInTE's INVALIDATE path is hot).
        state.valid[index] = 0
        state.dirty[index] = 0
        state.prefetched[index] = 0
        state.total_valid -= 1
        state.owner_counts[owner] -= 1
        self.stats.invalidations += 1
        if self._events is not None:
            self._events.record("invalidate", set_index, way, owner,
                                "protocol", tag)
        return info

    def mark_dirty(self, block_addr: int) -> bool:
        """Set the dirty bit on a resident block (write-back arrival)."""
        set_index = self.set_index(block_addr)
        way = self._tags[set_index].get(block_addr, -1)
        if way < 0:
            return False
        self.state.dirty[set_index * self.assoc + way] = 1
        return True

    # -- occupancy ------------------------------------------------------------
    def occupancy(self, owner: Optional[int] = None) -> int:
        """Number of valid blocks (optionally for one owner) — O(1), read
        from the state layer's incrementally-maintained counters."""
        return self.state.occupancy(owner)

    @property
    def capacity_blocks(self) -> int:
        return self.n_sets * self.assoc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache({self.name}, {self.size // 1024}KB, {self.assoc}-way, "
            f"{self.policy_name})"
        )
