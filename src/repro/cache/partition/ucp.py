"""Utility-based Cache Partitioning (Qureshi & Patt, MICRO 2006).

Every epoch the lookahead allocator hands out ways greedily: each step gives
the next block of ways to the owner with the highest marginal utility per
way (measured by the UMONs), until the budget is exhausted. Every owner is
guaranteed at least one way.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.cache.cache import Cache
from repro.cache.partition.base import Partitioner, even_split
from repro.cache.partition.umon import UtilityMonitor
from repro.core.counters import ContentionTracker


class UcpPartitioner(Partitioner):
    """UCP with sampled shadow-tag utility monitors."""

    name = "ucp"

    def __init__(self, n_sets: int, n_ways: int, owners: Sequence[int],
                 sampling: int = 8) -> None:
        super().__init__(n_ways, owners)
        self.umon = UtilityMonitor(n_sets, n_ways, owners, sampling=sampling)
        self._quotas = even_split(n_ways, self.owners)

    # -- observation ------------------------------------------------------
    def on_llc_access(self, owner: int, block: int, hit: bool) -> None:
        self.umon.observe(owner, block)

    # -- allocation -----------------------------------------------------------
    def allocate(self) -> Dict[int, int]:
        return dict(self._quotas)

    def observe(self, llc: Cache, tracker: ContentionTracker) -> None:
        self._quotas = self._lookahead()
        self.umon.reset()

    def _lookahead(self) -> Dict[int, int]:
        """Greedy max-marginal-utility allocation (the UCP lookahead)."""
        allocation = {owner: 1 for owner in self.owners}  # min 1 way each
        remaining = self.n_ways - len(self.owners)
        while remaining > 0:
            best_owner = None
            best_gain = -1.0
            best_span = 1
            for owner in self.owners:
                current = allocation[owner]
                # Consider growing by 1..remaining ways; utility per way.
                max_span = min(remaining, self.n_ways - current)
                for span in range(1, max_span + 1):
                    gain = self.umon.marginal_utility(
                        owner, current, current + span) / span
                    if gain > best_gain:
                        best_gain = gain
                        best_owner = owner
                        best_span = span
            if best_owner is None or best_gain <= 0:
                # No one profits: spread the remainder round-robin.
                while remaining > 0:
                    for owner in self.owners:
                        if remaining == 0:
                            break
                        allocation[owner] += 1
                        remaining -= 1
                break
            allocation[best_owner] += best_span
            remaining -= best_span
        return allocation
