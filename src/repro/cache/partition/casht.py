"""Theft-driven partitioning in the spirit of CASHT (Gomes et al., TACO '22).

The paper's related work notes that "recent work uses thefts to partition
LLC, and is comparable to UCP but at a fraction of the cost". Instead of
shadow-tag utility monitors, this partitioner reads the theft/interference
counters the tracker already maintains: every epoch it moves one way from
the owner causing the most thefts (per LLC access) to the owner suffering
the most interference — a proportional controller on exactly the contention
events PInTE models.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.cache.cache import Cache
from repro.cache.partition.base import Partitioner, even_split
from repro.core.counters import ContentionTracker

#: Don't repartition when the victim's interference rate is below this.
INTERFERENCE_FLOOR = 0.01


class CashtPartitioner(Partitioner):
    """Move ways from theft-causers to interference-sufferers."""

    name = "casht"

    def __init__(self, n_ways: int, owners: Sequence[int],
                 min_ways: int = 1) -> None:
        super().__init__(n_ways, owners)
        if min_ways < 1:
            raise ValueError("min_ways must be >= 1")
        self.min_ways = min_ways
        self._quotas = even_split(n_ways, self.owners)
        self._last = {owner: (0, 0, 0) for owner in self.owners}
        self.transfers = 0

    def allocate(self) -> Dict[int, int]:
        return dict(self._quotas)

    def observe(self, llc: Cache, tracker: ContentionTracker) -> None:
        # Per-epoch deltas of (accesses, interference, thefts caused).
        rates: Dict[int, Dict[str, float]] = {}
        for owner in self.owners:
            counters = tracker.counters(owner)
            last_acc, last_int, last_caused = self._last[owner]
            accesses = counters.llc_accesses - last_acc
            interference = counters.interference_misses - last_int
            caused = counters.thefts_caused - last_caused
            self._last[owner] = (counters.llc_accesses,
                                 counters.interference_misses,
                                 counters.thefts_caused)
            rates[owner] = {
                "interference": interference / accesses if accesses else 0.0,
                "caused": caused / accesses if accesses else 0.0,
            }
        victim = max(self.owners, key=lambda o: rates[o]["interference"])
        thief = max(self.owners, key=lambda o: rates[o]["caused"])
        if victim == thief:
            return
        if rates[victim]["interference"] < INTERFERENCE_FLOOR:
            return
        if self._quotas[thief] <= self.min_ways:
            return
        self._quotas[thief] -= 1
        self._quotas[victim] += 1
        self.transfers += 1
