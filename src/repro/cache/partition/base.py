"""Cache partitioning interface.

Partitioners assign per-owner way quotas on the shared LLC (enforced by
``Cache.way_allocations``) and are re-evaluated every epoch by the
multi-programmed simulator. The schemes here follow the paper's related-work
taxonomy (Section VII-d): physical way partitioning (static / UCP) and the
theft-driven partitioner of CASHT, PInTE's parent work.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.cache.cache import Cache
from repro.core.counters import ContentionTracker


class Partitioner:
    """Base class: subclasses compute quotas in :meth:`allocate`."""

    name = "base"

    def __init__(self, n_ways: int, owners: Sequence[int]) -> None:
        if n_ways < len(owners):
            raise ValueError(
                f"{n_ways} ways cannot give every one of {len(owners)} "
                f"owners a way"
            )
        self.n_ways = n_ways
        self.owners = list(owners)
        self.repartitions = 0

    # -- lifecycle ------------------------------------------------------------
    def install(self, llc: Cache) -> None:
        """Apply the initial allocation to the LLC."""
        llc.way_allocations.update(self.allocate())

    def epoch(self, llc: Cache, tracker: ContentionTracker) -> Dict[int, int]:
        """Re-evaluate at an epoch boundary; returns the new quotas."""
        self.observe(llc, tracker)
        quotas = self.allocate()
        llc.way_allocations.update(quotas)
        self.repartitions += 1
        return quotas

    # -- subclass hooks -----------------------------------------------------
    def observe(self, llc: Cache, tracker: ContentionTracker) -> None:
        """Ingest epoch statistics (default: nothing to observe)."""

    def allocate(self) -> Dict[int, int]:
        """Current per-owner way quotas (must sum to <= n_ways)."""
        raise NotImplementedError

    # -- observation hook for utility monitors ---------------------------------
    def on_llc_access(self, owner: int, block: int, hit: bool) -> None:
        """Per-access observation (wired to the hierarchy's LLC hook)."""


def even_split(n_ways: int, owners: Sequence[int]) -> Dict[int, int]:
    """Fair static split; early owners absorb the remainder."""
    owners = list(owners)
    base = n_ways // len(owners)
    remainder = n_ways - base * len(owners)
    return {
        owner: base + (1 if index < remainder else 0)
        for index, owner in enumerate(owners)
    }


class StaticPartitioner(Partitioner):
    """Fixed quotas: either an explicit map or an even split."""

    name = "static"

    def __init__(self, n_ways: int, owners: Sequence[int],
                 quotas: Dict[int, int] = None) -> None:
        super().__init__(n_ways, owners)
        if quotas is None:
            quotas = even_split(n_ways, owners)
        if sum(quotas.values()) > n_ways:
            raise ValueError("quotas exceed the way budget")
        if set(quotas) != set(owners):
            raise ValueError("quotas must cover exactly the given owners")
        self._quotas = dict(quotas)

    def allocate(self) -> Dict[int, int]:
        return dict(self._quotas)
