"""Cache partitioning schemes (paper Section VII-d related work).

Usage with the multi-programmed simulator::

    from repro.cache.partition import UcpPartitioner
    from repro.sim import simulate_multiprogrammed

    partitioner = UcpPartitioner(n_sets, n_ways, owners=[0, 1])
    results = simulate_multiprogrammed(traces, config,
                                       partitioner=partitioner, ...)
"""

from typing import Dict, Sequence, Type

from repro.cache.partition.base import Partitioner, StaticPartitioner, even_split
from repro.cache.partition.casht import CashtPartitioner
from repro.cache.partition.ucp import UcpPartitioner
from repro.cache.partition.umon import ShadowSet, UtilityMonitor

PARTITIONERS: Dict[str, Type[Partitioner]] = {
    StaticPartitioner.name: StaticPartitioner,
    UcpPartitioner.name: UcpPartitioner,
    CashtPartitioner.name: CashtPartitioner,
}

__all__ = [
    "CashtPartitioner",
    "PARTITIONERS",
    "Partitioner",
    "ShadowSet",
    "StaticPartitioner",
    "UcpPartitioner",
    "UtilityMonitor",
    "even_split",
]
