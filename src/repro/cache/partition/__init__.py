"""Cache partitioning schemes (paper Section VII-d related work).

Usage with the multi-programmed simulator::

    from repro.cache.partition import UcpPartitioner
    from repro.sim import simulate_multiprogrammed

    partitioner = UcpPartitioner(n_sets, n_ways, owners=[0, 1])
    results = simulate_multiprogrammed(traces, config,
                                       partitioner=partitioner, ...)
"""

from typing import Sequence

from repro.cache.partition.base import (Partitioner, StaticPartitioner,
                                        even_split)
from repro.cache.partition.casht import CashtPartitioner
from repro.cache.partition.ucp import UcpPartitioner
from repro.cache.partition.umon import ShadowSet, UtilityMonitor
from repro.components import ComponentRegistry

PARTITIONERS = ComponentRegistry("partition scheme", {
    StaticPartitioner.name: StaticPartitioner,
    UcpPartitioner.name: UcpPartitioner,
    CashtPartitioner.name: CashtPartitioner,
})


def make_partitioner(name: str, n_sets: int, n_ways: int,
                     owners: Sequence[int], **kwargs) -> Partitioner:
    """Instantiate a partition scheme by registry name.

    Constructor signatures differ (UCP samples sets, so it takes
    ``n_sets``; static/CASHT split ways only) — the registry's introspected
    parameter list decides what to pass, so plugin partitioners with either
    shape work unmodified.
    """
    cls = PARTITIONERS[name]
    if "n_sets" in PARTITIONERS.spec(name).params:
        return cls(n_sets, n_ways, owners, **kwargs)
    return cls(n_ways, owners, **kwargs)


__all__ = [
    "CashtPartitioner",
    "PARTITIONERS",
    "Partitioner",
    "ShadowSet",
    "StaticPartitioner",
    "UcpPartitioner",
    "UtilityMonitor",
    "even_split",
    "make_partitioner",
]
