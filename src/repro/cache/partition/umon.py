"""Utility monitors (UMON) — per-owner marginal-utility estimation.

The UCP mechanism (Qureshi & Patt, MICRO 2006): for a sample of cache sets,
keep a per-owner *shadow* fully-LRU tag directory of full associativity and
count hits per stack position. The counter at position ``i`` is the number
of extra hits the owner would get from owning at least ``i+1`` ways — the
marginal-utility curve the allocator maximises over.
"""

from __future__ import annotations

from typing import Dict, List

from repro.util.bitops import ilog2


class ShadowSet:
    """Fully-associative LRU shadow tags for one (owner, set) pair."""

    __slots__ = ("capacity", "stack")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.stack: List[int] = []  # MRU first

    def access(self, tag: int) -> int:
        """Touch ``tag``; returns the hit stack position or -1 on miss."""
        stack = self.stack
        try:
            position = stack.index(tag)
        except ValueError:
            stack.insert(0, tag)
            if len(stack) > self.capacity:
                stack.pop()
            return -1
        del stack[position]
        stack.insert(0, tag)
        return position


class UtilityMonitor:
    """Per-owner sampled shadow directory with hit-position counters."""

    def __init__(self, n_sets: int, n_ways: int, owners,
                 sampling: int = 8) -> None:
        if sampling < 1:
            raise ValueError("sampling must be >= 1")
        ilog2(max(1, n_sets))  # geometry sanity
        self.n_sets = n_sets
        self.n_ways = n_ways
        self.sampling = sampling
        self.owners = list(owners)
        self._shadows: Dict[int, Dict[int, ShadowSet]] = {
            owner: {} for owner in self.owners
        }
        #: owner -> hits per stack position (length n_ways)
        self.position_hits: Dict[int, List[int]] = {
            owner: [0] * n_ways for owner in self.owners
        }
        self.misses: Dict[int, int] = {owner: 0 for owner in self.owners}
        self._set_mask = n_sets - 1
        self._offset_bits = 6  # 64-byte blocks

    def observe(self, owner: int, block_addr: int) -> None:
        """Feed one LLC demand access into the monitor."""
        if owner not in self._shadows:
            return
        set_index = (block_addr >> self._offset_bits) & self._set_mask
        if set_index % self.sampling:
            return
        shadows = self._shadows[owner]
        shadow = shadows.get(set_index)
        if shadow is None:
            shadow = ShadowSet(self.n_ways)
            shadows[set_index] = shadow
        position = shadow.access(block_addr)
        if position < 0:
            self.misses[owner] += 1
        else:
            self.position_hits[owner][position] += 1

    def utility_curve(self, owner: int) -> List[int]:
        """Cumulative hits as a function of ways owned (index 0 = 1 way)."""
        hits = self.position_hits[owner]
        curve = []
        running = 0
        for position_hits in hits:
            running += position_hits
            curve.append(running)
        return curve

    def marginal_utility(self, owner: int, from_ways: int, to_ways: int) -> int:
        """Extra hits from growing ``owner`` from ``from_ways`` to ``to_ways``."""
        if not 0 <= from_ways <= to_ways <= self.n_ways:
            raise ValueError("invalid way range")
        curve = self.utility_curve(owner)
        hits_at = lambda ways: curve[ways - 1] if ways > 0 else 0
        return hits_at(to_ways) - hits_at(from_ways)

    def reset(self) -> None:
        """Age out the previous epoch's counters (halve, UCP-style)."""
        for owner in self.owners:
            self.position_hits[owner] = [
                count // 2 for count in self.position_hits[owner]
            ]
            self.misses[owner] //= 2
