"""Golden-trace capture harnesses for data-path equivalence testing.

The functions here replay a pinned workload/policy/contention matrix through
the three hosts (full ``simulate()``, the fastcache host, and a direct
Cache+PInTE eviction-sequence harness) and return every observable that a
data-path change could disturb: miss counts, theft/interference counters,
reuse histograms, occupancy, exact eviction sequences and RNG draw counts.

``tests/golden/golden_traces.json`` holds the output of these harnesses as
captured from the original object-per-block implementation, immediately
before the flat-array ``CacheSetState`` refactor;
``tests/integration/test_golden_equivalence.py`` asserts the current data
path reproduces it bit-for-bit. Regenerate the file (only for an
*intentional* behaviour change) with ``scripts/capture_goldens.py``.
"""

from __future__ import annotations

from repro.config import scaled_config
from repro.core import PInTE, PinteConfig
from repro.core.counters import ContentionTracker
from repro.cache.cache import Cache
from repro.sim.fastcache import simulate_cache_only
from repro.sim.multicore import simulate_multiprogrammed
from repro.sim.simulator import simulate
from repro.trace import build_trace, get_workload

#: One workload per behaviour class (cache-friendly / LLC-bound / DRAM-bound).
GOLDEN_WORKLOADS = ("400.perlbench", "470.lbm", "429.mcf")
GOLDEN_POLICIES = ("lru", "rrip", "plru")
GOLDEN_SEED = 7
WARMUP = 2_000
SIM = 8_000
P_INDUCE = 0.1

#: Fastcache harness parameters. 400.perlbench is cache-friendly enough
#: that its 30k-record trace yields only ~64 LLC accesses — fewer than the
#: warm-up budget. The seed host silently kept the (zero-progress) warm-up
#: statistics in that case, which is numerically identical to a zero
#: warm-up; the session-layer host raises ``ValueError`` instead, so the
#: harness encodes the per-workload warm-up explicitly and the pinned
#: golden values are unchanged.
FASTCACHE_LENGTH = 30_000
FASTCACHE_WARMUP = 2_000
FASTCACHE_WARMUPS = {"400.perlbench": 0}


def _round(value: float) -> float:
    """Stable float key for JSON round-tripping (12 significant digits)."""
    return float(f"{value:.12g}")


def full_sim_goldens() -> dict:
    """End-to-end ``simulate()`` counters for the golden matrix."""
    goldens = {}
    for workload in GOLDEN_WORKLOADS:
        config = scaled_config()
        trace = build_trace(get_workload(workload), WARMUP + SIM, GOLDEN_SEED,
                            config.llc.size)
        for policy in GOLDEN_POLICIES:
            machine = config.with_llc_policy(policy)
            for mode, pinte in (("isolation", None),
                                ("pinte", PinteConfig(P_INDUCE, seed=GOLDEN_SEED))):
                result = simulate(trace, machine, pinte=pinte,
                                  warmup_instructions=WARMUP,
                                  sim_instructions=SIM, seed=GOLDEN_SEED)
                key = f"{workload}/{policy}/{mode}"
                goldens[key] = {
                    "instructions": result.instructions,
                    "cycles": result.cycles,
                    "llc_accesses": result.llc_accesses,
                    "llc_misses": result.llc_misses,
                    "miss_rate": _round(result.miss_rate),
                    "thefts_experienced": result.thefts_experienced,
                    "interference_misses": result.interference_misses,
                    "llc_writeback_fills": result.llc_writeback_fills,
                    "reuse_histogram": list(result.reuse_histogram),
                    "occupancy": _round(result.occupancy),
                    "ipc": _round(result.ipc),
                    "pinte_invalidations": int(
                        result.extra.get("pinte_invalidations", 0)),
                    "pinte_triggers": int(result.extra.get("pinte_triggers", 0)),
                }
    return goldens


def fastcache_goldens() -> dict:
    """Cache-only host counters for the golden matrix."""
    goldens = {}
    for workload in GOLDEN_WORKLOADS:
        for policy in GOLDEN_POLICIES:
            config = scaled_config().with_llc_policy(policy)
            trace = build_trace(get_workload(workload), FASTCACHE_LENGTH,
                                GOLDEN_SEED, config.llc.size)
            for mode, pinte in (("isolation", None),
                                ("pinte", PinteConfig(P_INDUCE, seed=GOLDEN_SEED))):
                warmup = FASTCACHE_WARMUPS.get(workload, FASTCACHE_WARMUP)
                result = simulate_cache_only(
                    trace, config, pinte=pinte,
                    warmup_accesses=warmup, seed=GOLDEN_SEED)
                goldens[f"{workload}/{policy}/{mode}"] = {
                    "accesses": result.accesses,
                    "misses": result.misses,
                    "thefts_experienced": result.thefts_experienced,
                    "interference_misses": result.interference_misses,
                    "reuse_histogram": list(result.reuse_histogram),
                }
    return goldens


#: Multicore (2nd-Trace) harness parameters. The primary/secondary mix pairs
#: an LLC-bound workload against a DRAM-bound one so the shared timeline,
#: natural thefts and writeback traffic are all exercised.
MULTICORE_PRIMARY = "470.lbm"
MULTICORE_SECONDARY = "429.mcf"
MULTICORE_TERTIARY = "400.perlbench"
MULTICORE_WARMUP = 1_000
MULTICORE_SIM = 5_000


def _multicore_observables(result) -> dict:
    """The per-core counters a scheduling/data-path change could disturb."""
    return {
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": _round(result.ipc),
        "llc_accesses": result.llc_accesses,
        "llc_misses": result.llc_misses,
        "miss_rate": _round(result.miss_rate),
        "thefts_experienced": result.thefts_experienced,
        "thefts_caused": result.thefts_caused,
        "interference_misses": result.interference_misses,
        "llc_writeback_fills": result.llc_writeback_fills,
        "reuse_histogram": list(result.reuse_histogram),
        "occupancy": _round(result.occupancy),
        "n_samples": len(result.samples),
    }


def _multicore_traces(config, names):
    return [build_trace(get_workload(name), MULTICORE_WARMUP + MULTICORE_SIM,
                        GOLDEN_SEED, config.llc.size) for name in names]


def multicore_goldens() -> dict:
    """Cycle-synchronised 2nd-Trace host counters, every core.

    Five configs: the golden pair under each replacement policy, a 3-core
    mix, and a 3-core mix under the UCP partitioner — together they pin the
    furthest-behind schedule, the shared-LLC theft accounting and the
    repartitioning cadence.
    """
    goldens = {}
    for policy in GOLDEN_POLICIES:
        config = scaled_config().with_llc_policy(policy)
        traces = _multicore_traces(config, (MULTICORE_PRIMARY,
                                            MULTICORE_SECONDARY))
        results = simulate_multiprogrammed(
            traces, config, warmup_instructions=MULTICORE_WARMUP,
            sim_instructions=MULTICORE_SIM, sample_interval=1_000,
            seed=GOLDEN_SEED)
        goldens[f"pair/{policy}"] = {
            f"core{i}": _multicore_observables(r)
            for i, r in enumerate(results)
        }
    config = scaled_config()
    names = (MULTICORE_PRIMARY, MULTICORE_SECONDARY, MULTICORE_TERTIARY)
    for scheme in (None, "ucp"):
        partitioner = None
        if scheme is not None:
            from repro.cache.partition import make_partitioner
            n_ways = config.llc.assoc
            n_sets = config.llc.size // (n_ways * config.block_size)
            partitioner = make_partitioner(scheme, n_sets, n_ways,
                                           owners=[0, 1, 2], sampling=4)
        results = simulate_multiprogrammed(
            _multicore_traces(config, names), config,
            warmup_instructions=MULTICORE_WARMUP,
            sim_instructions=MULTICORE_SIM, sample_interval=1_000,
            seed=GOLDEN_SEED, partitioner=partitioner,
            repartition_interval=2_000)
        key = f"multi3/{scheme if scheme else 'shared'}"
        goldens[key] = {
            f"core{i}": _multicore_observables(r)
            for i, r in enumerate(results)
        }
    return goldens


def hybrid_goldens() -> dict:
    """Hybrid-context (PInTE x 2nd-Trace) host counters, every core.

    Unlike the other sections — captured from the seed implementation —
    these were captured from the session-layer implementation that
    *introduced* the hybrid context: induced thefts layered on the golden
    pair's real contention, one config per replacement policy. They pin
    the context from its first version onward; the primary core
    additionally pins the engine's trigger and invalidation counts.
    """
    goldens = {}
    for policy in GOLDEN_POLICIES:
        config = scaled_config().with_llc_policy(policy)
        traces = _multicore_traces(config, (MULTICORE_PRIMARY,
                                            MULTICORE_SECONDARY))
        results = simulate_multiprogrammed(
            traces, config, warmup_instructions=MULTICORE_WARMUP,
            sim_instructions=MULTICORE_SIM, sample_interval=1_000,
            seed=GOLDEN_SEED, pinte=PinteConfig(P_INDUCE, seed=GOLDEN_SEED))
        entry = {
            f"core{i}": _multicore_observables(r)
            for i, r in enumerate(results)
        }
        entry["core0"]["pinte_triggers"] = int(
            results[0].extra["pinte_triggers"])
        entry["core0"]["pinte_invalidations"] = int(
            results[0].extra["pinte_invalidations"])
        goldens[f"pair/{policy}/pinte"] = entry
    return goldens


def victim_sequence_goldens() -> dict:
    """Exact eviction sequences from a direct Cache(+PInTE) harness.

    A small LLC fed a deterministic pointer-chase-ish pattern from two
    owners; every eviction (tag, owner, dirty) and every induced
    invalidation is recorded in order. Any change in victim selection, RNG
    consumption or promotion behaviour shows up here immediately.
    """
    goldens = {}
    for policy in GOLDEN_POLICIES + ("nmru", "random", "drrip"):
        for with_pinte in (False, True):
            cache = Cache("LLC", size=4096, assoc=8, block_size=64,
                          policy=policy, policy_seed=GOLDEN_SEED,
                          track_reuse=True)
            tracker = ContentionTracker()
            engine = None
            if with_pinte:
                engine = PInTE(PinteConfig(0.2, seed=GOLDEN_SEED), cache, tracker)
            evictions = []
            original_fill = cache.fill

            def fill(block, owner, _original=original_fill, _log=evictions, **kw):
                evicted = _original(block, owner, **kw)
                if evicted is not None:
                    _log.append([evicted.tag, evicted.owner, int(evicted.dirty)])
                return evicted

            cache.fill = fill
            for step in range(4_000):
                owner = step % 2
                # Two interleaved strided streams with periodic revisits:
                # hits, misses, and conflict evictions in every set.
                base = (step * 3 + owner * 17) % 96
                block = (base * 64) + owner * (1 << 20)
                is_write = step % 5 == 0
                hit = cache.access(block, is_write, owner)
                tracker.record_access(owner, block, hit)
                if not hit:
                    cache.fill(block, owner, dirty=is_write)
                    tracker.record_refill(owner, block)
                if engine is not None:
                    engine.on_llc_access(cache.set_index(block), step, owner)
            key = f"{policy}/{'pinte' if with_pinte else 'isolation'}"
            stats = cache.stats
            counters0 = tracker.counters(0)
            counters1 = tracker.counters(1)
            goldens[key] = {
                "evictions": evictions[:600],
                "n_evictions": len(evictions),
                "hits": stats.hits,
                "misses": stats.misses,
                "writebacks": stats.writebacks,
                "invalidations": stats.invalidations,
                "occupancy": cache.occupancy(),
                "occupancy_owner0": cache.occupancy(0),
                "occupancy_owner1": cache.occupancy(1),
                "reuse_histogram": list(cache.reuse_histogram),
                "reuse_owner0": cache.owner_reuse_histogram(0),
                "reuse_owner1": cache.owner_reuse_histogram(1),
                "thefts_owner0": counters0.thefts_experienced,
                "thefts_owner1": counters1.thefts_experienced,
                "interference_owner0": counters0.interference_misses,
                "interference_owner1": counters1.interference_misses,
                "pinte_invalidations": engine.stats.invalidations if engine else 0,
                "pinte_promotions": engine.stats.promotions if engine else 0,
                "pinte_rng_draws": engine._rng.draws if engine else 0,
            }
    return goldens


def capture_all() -> dict:
    """The full golden payload, matrix metadata included."""
    return {
        "matrix": {
            "workloads": list(GOLDEN_WORKLOADS),
            "policies": list(GOLDEN_POLICIES),
            "seed": GOLDEN_SEED,
            "warmup": WARMUP,
            "sim": SIM,
            "p_induce": P_INDUCE,
        },
        "full_sim": full_sim_goldens(),
        "fastcache": fastcache_goldens(),
        "victim_sequences": victim_sequence_goldens(),
        "multicore": multicore_goldens(),
        "hybrid": hybrid_goldens(),
    }
