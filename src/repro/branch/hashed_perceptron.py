"""Hashed perceptron branch predictor.

Multiple weight tables, each indexed by a hash of the PC with a different
history length (geometric series), summed to a single output — the
organisation behind modern TAGE-like/hashed-perceptron predictors and the
most accurate option in the paper's case study.
"""

from __future__ import annotations

from typing import List

from repro.branch.base import BranchPredictor
from repro.util.bitops import fold_xor, ilog2


class HashedPerceptronPredictor(BranchPredictor):
    """Sum of per-table weights selected by (pc, history-segment) hashes."""

    name = "hashed_perceptron"

    def __init__(self, table_size: int = 4096,
                 history_lengths: (tuple) = (0, 3, 8, 16, 32),
                 weight_bits: int = 7) -> None:
        super().__init__()
        self._index_bits = ilog2(table_size)
        self._mask = table_size - 1
        self.history_lengths = tuple(history_lengths)
        self._max_history = max(self.history_lengths)
        self._weight_max = (1 << (weight_bits - 1)) - 1
        self._weight_min = -(1 << (weight_bits - 1))
        self.threshold = int(2.14 * len(self.history_lengths) + 20.58)
        self._tables: List[List[int]] = [
            [0] * table_size for _ in self.history_lengths
        ]
        self._history = 0  # packed global history, LSB = most recent

    def _indices(self, pc: int) -> List[int]:
        indices = []
        for length in self.history_lengths:
            segment = self._history & ((1 << length) - 1) if length else 0
            hashed = fold_xor((pc >> 2) ^ (segment * 0x9E3779B1), self._index_bits)
            indices.append(hashed & self._mask)
        return indices

    def _output(self, pc: int) -> int:
        return sum(
            table[index] for table, index in zip(self._tables, self._indices(pc))
        )

    def _predict(self, pc: int) -> bool:
        return self._output(pc) >= 0

    def update(self, pc: int, taken: bool) -> bool:
        """Predict + train with the index hashes computed once."""
        indices = self._indices(pc)
        output = sum(table[index] for table, index in zip(self._tables, indices))
        prediction = output >= 0
        self.stats.lookups += 1
        correct = prediction == taken
        if not correct:
            self.stats.mispredictions += 1
        if not correct or abs(output) <= self.threshold:
            delta = 1 if taken else -1
            for table, index in zip(self._tables, indices):
                weight = table[index] + delta
                if weight > self._weight_max:
                    weight = self._weight_max
                elif weight < self._weight_min:
                    weight = self._weight_min
                table[index] = weight
        self._history = ((self._history << 1) | int(taken)) & (
            (1 << self._max_history) - 1
        )
        return correct

    def _train(self, pc: int, taken: bool) -> None:
        indices = self._indices(pc)
        output = sum(table[index] for table, index in zip(self._tables, indices))
        prediction = output >= 0
        if prediction != taken or abs(output) <= self.threshold:
            delta = 1 if taken else -1
            for table, index in zip(self._tables, indices):
                weight = table[index] + delta
                if weight > self._weight_max:
                    weight = self._weight_max
                elif weight < self._weight_min:
                    weight = self._weight_min
                table[index] = weight
        self._history = ((self._history << 1) | int(taken)) & (
            (1 << self._max_history) - 1
        )
