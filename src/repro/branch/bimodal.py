"""Bimodal branch predictor: per-PC 2-bit saturating counters."""

from __future__ import annotations

from repro.branch.base import BranchPredictor
from repro.util.bitops import ilog2

COUNTER_MAX = 3
TAKEN_THRESHOLD = 2


class BimodalPredictor(BranchPredictor):
    """Classic table of 2-bit counters indexed by low PC bits.

    Learns per-branch bias quickly but cannot exploit correlation or
    history, which is why it trails the history-based predictors on the
    high-entropy branch sites in the case study.
    """

    name = "bimodal"

    def __init__(self, table_size: int = 16384) -> None:
        super().__init__()
        self._index_bits = ilog2(table_size)
        self._mask = table_size - 1
        # Initialise weakly taken — the common convention.
        self._table = [TAKEN_THRESHOLD] * table_size

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def _predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= TAKEN_THRESHOLD

    def _train(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._table[index]
        if taken:
            if counter < COUNTER_MAX:
                self._table[index] = counter + 1
        elif counter > 0:
            self._table[index] = counter - 1
