"""G-Share branch predictor: global history XORed into the table index."""

from __future__ import annotations

from repro.branch.base import BranchPredictor
from repro.util.bitops import ilog2

COUNTER_MAX = 3
TAKEN_THRESHOLD = 2


class GSharePredictor(BranchPredictor):
    """2-bit counters indexed by ``pc XOR global_history``.

    The XOR folds branch correlation into the index so repeating global
    patterns map to distinct counters (McFarling's gshare).
    """

    name = "gshare"

    def __init__(self, table_size: int = 16384, history_bits: int = 14) -> None:
        super().__init__()
        index_bits = ilog2(table_size)
        if history_bits > index_bits:
            history_bits = index_bits
        self._mask = table_size - 1
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        self._table = [TAKEN_THRESHOLD] * table_size

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def _predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= TAKEN_THRESHOLD

    def _train(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._table[index]
        if taken:
            if counter < COUNTER_MAX:
                self._table[index] = counter + 1
        elif counter > 0:
            self._table[index] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
