"""Branch predictor interface and bookkeeping.

All predictors expose ``predict(pc) -> bool`` and ``update(pc, taken)`` and
accumulate accuracy statistics; the core model charges a flush penalty per
misprediction. The four concrete predictors match the paper's case-study set
(Section III-C d): bimodal, gshare, perceptron, hashed perceptron.
"""

from __future__ import annotations


class BranchStats:
    """Prediction accuracy counters."""

    __slots__ = ("lookups", "mispredictions")

    def __init__(self) -> None:
        self.lookups = 0
        self.mispredictions = 0

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions (1.0 when no branches were seen)."""
        if self.lookups == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.lookups

    @property
    def mpki_numerator(self) -> int:
        """Raw misprediction count (callers divide by kilo-instructions)."""
        return self.mispredictions

    def reset(self) -> None:
        self.lookups = 0
        self.mispredictions = 0


class BranchPredictor:
    """Common base: subclasses implement ``_predict`` and ``_train``."""

    name = "base"

    def __init__(self) -> None:
        self.stats = BranchStats()

    def predict(self, pc: int) -> bool:
        """Return the predicted direction for the branch at ``pc``."""
        return self._predict(pc)

    def update(self, pc: int, taken: bool) -> bool:
        """Record the outcome; returns True when the prediction was correct.

        This is the single entry point the core model calls per branch: it
        predicts, scores, and trains in one step so stats can never get out
        of sync with training.
        """
        prediction = self._predict(pc)
        self.stats.lookups += 1
        correct = prediction == taken
        if not correct:
            self.stats.mispredictions += 1
        self._train(pc, taken)
        return correct

    def _predict(self, pc: int) -> bool:
        raise NotImplementedError

    def _train(self, pc: int, taken: bool) -> None:
        raise NotImplementedError


class AlwaysTakenPredictor(BranchPredictor):
    """Static predict-taken baseline (useful in tests and ablations)."""

    name = "always_taken"

    def _predict(self, pc: int) -> bool:
        return True

    def _train(self, pc: int, taken: bool) -> None:
        pass
