"""Branch prediction substrate (paper Section III-C d)."""

from typing import Dict, Type

from repro.branch.base import AlwaysTakenPredictor, BranchPredictor, BranchStats
from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GSharePredictor
from repro.branch.hashed_perceptron import HashedPerceptronPredictor
from repro.branch.perceptron import PerceptronPredictor
from repro.branch.tournament import TournamentPredictor

PREDICTORS: Dict[str, Type[BranchPredictor]] = {
    BimodalPredictor.name: BimodalPredictor,
    GSharePredictor.name: GSharePredictor,
    PerceptronPredictor.name: PerceptronPredictor,
    HashedPerceptronPredictor.name: HashedPerceptronPredictor,
    TournamentPredictor.name: TournamentPredictor,
    AlwaysTakenPredictor.name: AlwaysTakenPredictor,
}


def make_predictor(name: str, **kwargs) -> BranchPredictor:
    """Instantiate a branch predictor by registry name."""
    try:
        cls = PREDICTORS[name]
    except KeyError:
        known = ", ".join(sorted(PREDICTORS))
        raise KeyError(f"unknown branch predictor {name!r}; known: {known}") from None
    return cls(**kwargs)


__all__ = [
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "BranchPredictor",
    "BranchStats",
    "GSharePredictor",
    "HashedPerceptronPredictor",
    "PREDICTORS",
    "PerceptronPredictor",
    "TournamentPredictor",
    "make_predictor",
]
