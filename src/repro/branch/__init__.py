"""Branch prediction substrate (paper Section III-C d)."""

from repro.branch.base import AlwaysTakenPredictor, BranchPredictor, BranchStats
from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GSharePredictor
from repro.branch.hashed_perceptron import HashedPerceptronPredictor
from repro.branch.perceptron import PerceptronPredictor
from repro.branch.tournament import TournamentPredictor
from repro.components import ComponentRegistry

PREDICTORS = ComponentRegistry("branch predictor", {
    BimodalPredictor.name: BimodalPredictor,
    GSharePredictor.name: GSharePredictor,
    PerceptronPredictor.name: PerceptronPredictor,
    HashedPerceptronPredictor.name: HashedPerceptronPredictor,
    TournamentPredictor.name: TournamentPredictor,
    AlwaysTakenPredictor.name: AlwaysTakenPredictor,
})


def make_predictor(name: str, **kwargs) -> BranchPredictor:
    """Instantiate a branch predictor by registry name."""
    cls = PREDICTORS[name]
    return cls(**kwargs)


__all__ = [
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "BranchPredictor",
    "BranchStats",
    "GSharePredictor",
    "HashedPerceptronPredictor",
    "PREDICTORS",
    "PerceptronPredictor",
    "TournamentPredictor",
    "make_predictor",
]
