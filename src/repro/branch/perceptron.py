"""Perceptron branch predictor (Jimenez & Lin, HPCA 2001)."""

from __future__ import annotations

from repro.branch.base import BranchPredictor
from repro.util.bitops import ilog2


class PerceptronPredictor(BranchPredictor):
    """One perceptron per PC hash over the global history register.

    The dot product of signed weights with history bits (+1 taken / -1 not)
    gives the prediction; training only fires on a misprediction or when the
    output magnitude is below the threshold, per the original paper.
    """

    name = "perceptron"

    def __init__(self, n_perceptrons: int = 1024, history_bits: int = 24,
                 weight_bits: int = 8) -> None:
        super().__init__()
        ilog2(n_perceptrons)  # validate power of two
        self._mask = n_perceptrons - 1
        self.history_bits = history_bits
        self._weight_max = (1 << (weight_bits - 1)) - 1
        self._weight_min = -(1 << (weight_bits - 1))
        # theta from the paper: 1.93 * h + 14 minimises mispredictions.
        self.threshold = int(1.93 * history_bits + 14)
        # weights[i][0] is the bias weight; [1..h] pair with history bits.
        self._weights = [[0] * (history_bits + 1) for _ in range(n_perceptrons)]
        self._history = [False] * history_bits

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def _output(self, pc: int) -> int:
        weights = self._weights[self._index(pc)]
        total = weights[0]
        history = self._history
        for i in range(self.history_bits):
            if history[i]:
                total += weights[i + 1]
            else:
                total -= weights[i + 1]
        return total

    def _predict(self, pc: int) -> bool:
        return self._output(pc) >= 0

    def update(self, pc: int, taken: bool) -> bool:
        """Predict + train with the dot product computed once."""
        output = self._output(pc)
        prediction = output >= 0
        self.stats.lookups += 1
        correct = prediction == taken
        if not correct:
            self.stats.mispredictions += 1
        if not correct or abs(output) <= self.threshold:
            weights = self._weights[self._index(pc)]
            weights[0] = self._clip(weights[0] + (1 if taken else -1))
            for i in range(self.history_bits):
                if self._history[i] == taken:
                    weights[i + 1] = self._clip(weights[i + 1] + 1)
                else:
                    weights[i + 1] = self._clip(weights[i + 1] - 1)
        self._history.pop()
        self._history.insert(0, taken)
        return correct

    def _train(self, pc: int, taken: bool) -> None:
        output = self._output(pc)
        prediction = output >= 0
        if prediction != taken or abs(output) <= self.threshold:
            weights = self._weights[self._index(pc)]
            delta = 1 if taken else -1
            weights[0] = self._clip(weights[0] + delta)
            for i in range(self.history_bits):
                if self._history[i] == taken:
                    weights[i + 1] = self._clip(weights[i + 1] + 1)
                else:
                    weights[i + 1] = self._clip(weights[i + 1] - 1)
        self._history.pop()
        self._history.insert(0, taken)

    def _clip(self, weight: int) -> int:
        if weight > self._weight_max:
            return self._weight_max
        if weight < self._weight_min:
            return self._weight_min
        return weight
