"""Tournament (combining) branch predictor: bimodal vs gshare with a
per-PC chooser (McFarling, DEC WRL TN-36).

An extension beyond the paper's four predictors, useful for ablating how
chooser-based hybrids respond to contention-driven miss criticality.
"""

from __future__ import annotations

from repro.branch.base import BranchPredictor
from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GSharePredictor
from repro.util.bitops import ilog2

COUNTER_MAX = 3
CHOOSE_GSHARE = 2  # chooser >= 2 selects the global (gshare) component


class TournamentPredictor(BranchPredictor):
    """Chooser table arbitrates between a bimodal and a gshare component."""

    name = "tournament"

    def __init__(self, table_size: int = 8192, history_bits: int = 12) -> None:
        super().__init__()
        ilog2(table_size)
        self._mask = table_size - 1
        self.bimodal = BimodalPredictor(table_size)
        self.gshare = GSharePredictor(table_size, history_bits)
        # Start neutral-local: 1 = weakly bimodal.
        self._chooser = [1] * table_size

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def _predict(self, pc: int) -> bool:
        if self._chooser[self._index(pc)] >= CHOOSE_GSHARE:
            return self.gshare._predict(pc)
        return self.bimodal._predict(pc)

    def update(self, pc: int, taken: bool) -> bool:
        """Predict, score, train both components and the chooser."""
        local = self.bimodal._predict(pc)
        global_ = self.gshare._predict(pc)
        index = self._index(pc)
        prediction = global_ if self._chooser[index] >= CHOOSE_GSHARE else local
        self.stats.lookups += 1
        correct = prediction == taken
        if not correct:
            self.stats.mispredictions += 1
        # Chooser trains only when the components disagree.
        if local != global_:
            if global_ == taken:
                if self._chooser[index] < COUNTER_MAX:
                    self._chooser[index] += 1
            elif self._chooser[index] > 0:
                self._chooser[index] -= 1
        self.bimodal._train(pc, taken)
        self.gshare._train(pc, taken)
        return correct

    def _train(self, pc: int, taken: bool) -> None:  # pragma: no cover
        # All training happens in update(); kept for interface completeness.
        self.bimodal._train(pc, taken)
        self.gshare._train(pc, taken)
