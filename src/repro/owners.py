"""Owner-id conventions shared by the cache and contention layers.

Kept in a leaf module so both :mod:`repro.cache` and :mod:`repro.core` can
import it without creating a package cycle.
"""

#: Owner id used by the PInTE engine when it acts as the adversary; real
#: cores use non-negative ids.
SYSTEM_OWNER = -1
