"""Versioned declarative schema for the config layer.

Turns every config dataclass — :class:`~repro.config.MachineConfig`,
:class:`~repro.config.CacheLevelConfig`, :class:`~repro.config.CoreConfig`,
:class:`~repro.dram.DramConfig`, :class:`~repro.core.PinteConfig`,
:class:`~repro.sim.runner.ExperimentScale` — into a first-class serialized
artifact: ``to_dict``/``from_dict`` with strict unknown-key rejection, and a
TOML round-trip so a machine is describable outside Python source
(``repro config show scaled -o cfg.toml`` … ``repro run --config
cfg.toml``).

The dict produced by :func:`machine_to_dict` carries a ``schema`` version
tag and is the **canonical form**: it is what ``campaign/ids.py`` hashes
into job ids (``ID_SCHEME`` v3) and what campaign manifests/stores record
for provenance, so its layout is part of the id scheme — any change must
bump :data:`CONFIG_SCHEMA` *and* the id scheme together.

TOML is written by a small deterministic emitter (fixed key order, no
dependencies) and read with :mod:`tomllib` where available (Python 3.11+);
on older interpreters a fallback parser covers exactly the subset the
emitter produces (top-level scalars plus one level of ``[table]`` sections
with string/int/float/bool values), keeping the 3.10 CI leg green without
any new dependency.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Type, Union

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on the 3.10 CI leg
    tomllib = None

from repro.config import CacheLevelConfig, CoreConfig, MachineConfig
from repro.core.pinte_config import PinteConfig
from repro.dram.model import DramConfig
from repro.sim.runner import ExperimentScale

#: Version tag stamped into every serialized :class:`MachineConfig`. Bump it
#: (together with ``campaign.ids.ID_SCHEME``) whenever the canonical payload
#: layout changes.
CONFIG_SCHEMA = 1

#: Kind names used in error messages, per flat (non-nested) config class.
_FLAT_KINDS: Dict[type, str] = {
    CacheLevelConfig: "cache level config",
    CoreConfig: "core config",
    DramConfig: "dram config",
    PinteConfig: "pinte config",
    ExperimentScale: "experiment scale",
}

#: ``MachineConfig`` fields holding nested :class:`CacheLevelConfig` values.
_MACHINE_LEVELS = ("l1i", "l1d", "l2", "llc")


def to_dict(obj: Any) -> Dict[str, Any]:
    """Canonical dict for any config dataclass (dispatches on type)."""
    if isinstance(obj, MachineConfig):
        return machine_to_dict(obj)
    if type(obj) not in _FLAT_KINDS:
        raise TypeError(f"not a config dataclass: {type(obj).__name__}")
    return {f.name: getattr(obj, f.name)
            for f in dataclasses.fields(obj)}


def from_dict(cls: Type, payload: Mapping[str, Any]) -> Any:
    """Rebuild a config dataclass from its canonical dict, strictly.

    Unknown keys are rejected with a ``ValueError`` naming them — a payload
    that silently drops a knob would silently change the experiment.
    ``MachineConfig`` payloads go through :func:`machine_from_dict` (which
    also checks the ``schema`` tag).
    """
    if cls is MachineConfig:
        return machine_from_dict(payload)
    kind = _FLAT_KINDS.get(cls)
    if kind is None:
        raise TypeError(f"not a config dataclass: {cls.__name__}")
    return _flat_from_dict(cls, payload, kind)


def _flat_from_dict(cls: type, payload: Mapping[str, Any], kind: str):
    """Strict ``cls(**payload)`` with unknown-key/missing-key errors."""
    if not isinstance(payload, Mapping):
        raise ValueError(f"{kind} payload must be a table/mapping, "
                         f"got {type(payload).__name__}")
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - names)
    if unknown:
        raise ValueError(f"unknown {kind} keys: {', '.join(unknown)}")
    try:
        return cls(**dict(payload))
    except TypeError as exc:
        raise ValueError(f"invalid {kind} payload: {exc}") from None


def machine_to_dict(config: MachineConfig) -> Dict[str, Any]:
    """The canonical, schema-tagged payload for a machine config.

    Scalars first, nested tables last (so the TOML emitter can stream it
    directly); ``llc_way_allocation`` is omitted when ``None`` — TOML has
    no null, and absence is the canonical spelling of "no cap".
    """
    payload: Dict[str, Any] = {
        "schema": CONFIG_SCHEMA,
        "name": config.name,
        "block_size": config.block_size,
        "inclusion": config.inclusion,
    }
    if config.llc_way_allocation is not None:
        payload["llc_way_allocation"] = config.llc_way_allocation
    for level in _MACHINE_LEVELS:
        payload[level] = to_dict(getattr(config, level))
    payload["dram"] = to_dict(config.dram)
    payload["core"] = to_dict(config.core)
    return payload


def machine_from_dict(payload: Mapping[str, Any]) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from its canonical payload.

    The ``schema`` tag is mandatory: an untagged dict is either a pre-v3
    ``dataclasses.asdict`` payload or hand-rolled, and guessing would let
    two spellings of one machine hash to different job ids. Omitted nested
    sections fall back to the dataclass defaults (hand-written TOML need
    not spell out every level).
    """
    if not isinstance(payload, Mapping):
        raise ValueError("machine config payload must be a table/mapping, "
                         f"got {type(payload).__name__}")
    schema = payload.get("schema")
    if schema is None:
        raise ValueError(
            "machine config payload has no 'schema' tag (pre-v3 or "
            f"hand-rolled payload?); expected schema = {CONFIG_SCHEMA}")
    if schema != CONFIG_SCHEMA:
        raise ValueError(f"unsupported machine config schema {schema!r}; "
                         f"this version reads schema {CONFIG_SCHEMA}")
    known = ({"schema", "name", "block_size", "inclusion",
              "llc_way_allocation", "dram", "core"} | set(_MACHINE_LEVELS))
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(f"unknown machine config keys: {', '.join(unknown)}")
    if "name" not in payload:
        raise ValueError("machine config payload is missing 'name'")
    kwargs: Dict[str, Any] = {"name": payload["name"]}
    for scalar in ("block_size", "inclusion", "llc_way_allocation"):
        if scalar in payload:
            kwargs[scalar] = payload[scalar]
    for level in _MACHINE_LEVELS:
        if level in payload:
            kwargs[level] = from_dict(CacheLevelConfig, payload[level])
    if "dram" in payload:
        kwargs["dram"] = from_dict(DramConfig, payload["dram"])
    if "core" in payload:
        kwargs["core"] = from_dict(CoreConfig, payload["core"])
    return MachineConfig(**kwargs)


# -- TOML ------------------------------------------------------------------

_BARE_KEY = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-")


def _format_value(value: Any) -> str:
    """One TOML literal; bool before int (``bool`` subclasses ``int``)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        text = repr(value)
        return text
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    raise TypeError(f"cannot serialize {type(value).__name__} to TOML "
                    f"(value {value!r})")


def _check_key(key: str) -> str:
    """Reject keys the bare-key emitter cannot represent."""
    if not key or not set(key) <= _BARE_KEY:
        raise TypeError(f"cannot serialize key {key!r} as a bare TOML key")
    return key


def dumps_toml(payload: Mapping[str, Any]) -> str:
    """Deterministic TOML for a one-level-deep payload.

    Top-level scalars are written first (in payload order), then one
    ``[table]`` per nested mapping. Deeper nesting is a ``TypeError`` —
    the config schema is deliberately flat.
    """
    scalars = [(k, v) for k, v in payload.items()
               if not isinstance(v, Mapping)]
    tables = [(k, v) for k, v in payload.items() if isinstance(v, Mapping)]
    lines = [f"{_check_key(key)} = {_format_value(value)}"
             for key, value in scalars]
    for key, table in tables:
        lines.extend(["", f"[{_check_key(key)}]"])
        for sub_key, value in table.items():
            if isinstance(value, Mapping):
                raise TypeError(f"nested table {key}.{sub_key} is deeper "
                                "than the config schema allows")
            lines.append(f"{_check_key(sub_key)} = {_format_value(value)}")
    return "\n".join(lines) + "\n"


def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment, honouring double-quoted strings."""
    in_string = False
    escaped = False
    for index, char in enumerate(line):
        if escaped:
            escaped = False
            continue
        if in_string and char == "\\":
            escaped = True
        elif char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            return line[:index]
    return line


def _parse_scalar(text: str, where: str) -> Any:
    """Parse one TOML value from the emitter's subset."""
    if text.startswith('"'):
        if len(text) < 2 or not text.endswith('"'):
            raise ValueError(f"unterminated string {where}: {text!r}")
        body = text[1:-1]
        out = []
        escaped = False
        for char in body:
            if escaped:
                out.append({"\\": "\\", '"': '"', "n": "\n",
                            "t": "\t"}.get(char, char))
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == '"':
                raise ValueError(f"unescaped quote {where}: {text!r}")
            else:
                out.append(char)
        if escaped:
            raise ValueError(f"dangling escape {where}: {text!r}")
        return "".join(out)
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"unsupported TOML value {where}: {text!r}") \
            from None


def _loads_toml_fallback(text: str) -> Dict[str, Any]:
    """Minimal TOML reader for interpreters without :mod:`tomllib`.

    Covers exactly the emitter's subset — bare ``key = value`` pairs and
    single-level ``[table]`` headers with string/int/float/bool values —
    which is all a machine config ever needs.
    """
    root: Dict[str, Any] = {}
    current = root
    for number, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        where = f"on line {number}"
        if not line:
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise ValueError(f"malformed table header {where}: {raw!r}")
            name = line[1:-1].strip()
            if not name or not set(name) <= _BARE_KEY:
                raise ValueError(f"unsupported table name {where}: {raw!r}")
            if name in root:
                raise ValueError(f"duplicate table [{name}] {where}")
            current = root.setdefault(name, {})
            continue
        key, sep, value = line.partition("=")
        key = key.strip()
        if not sep or not key or not set(key) <= _BARE_KEY:
            raise ValueError(f"malformed line {where}: {raw!r}")
        if key in current:
            raise ValueError(f"duplicate key {key!r} {where}")
        current[key] = _parse_scalar(value.strip(), where)
    return root


def loads_toml(text: str) -> Dict[str, Any]:
    """Parse TOML text: :mod:`tomllib` when available, else the fallback."""
    if tomllib is not None:
        return tomllib.loads(text)
    return _loads_toml_fallback(text)


def machine_to_toml(config: MachineConfig) -> str:
    """The canonical TOML document for a machine config."""
    return dumps_toml(machine_to_dict(config))


def machine_from_toml(text: str) -> MachineConfig:
    """Parse a machine config from TOML text (strict, schema-checked)."""
    return machine_from_dict(loads_toml(text))


def load_machine_config(path: Union[str, Path]) -> MachineConfig:
    """Read a machine config from a TOML file, with path context on error."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ValueError(f"cannot read machine config {path}: "
                         f"{exc.strerror or exc}") from None
    try:
        return machine_from_toml(text)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None
