"""Named machine configurations as a first-class component registry.

The three presets (``skylake`` / ``scaled`` / ``xeon``) and every fig11
design-dimension variant (``scaled@replacement=nmru``,
``scaled@prefetching=NNI``, ...) are registered here as zero-argument
factories in :data:`MACHINE_CONFIGS`, so a machine is selectable by name
anywhere a component is — ``repro run --machine scaled@inclusion=exclusive``
works exactly like ``--machine scaled`` — and enumerable for docs and
``repro components ls``.

:data:`DESIGN_DIMENSIONS` is the single source of truth for the case
study's four design axes (replacement / inclusion / prefetching /
branching); :mod:`repro.experiments.fig11` rebuilds its ``DIMENSIONS``
table from it (adding the reported metrics), so the variants the config
registry names and the variants fig11 sweeps cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Tuple

from repro.components import ComponentRegistry
from repro.config import (MachineConfig, scaled_config, skylake_config,
                          xeon_config)

#: Every named machine config: the three presets plus one variant per
#: (design dimension, option) pair, applied to the ``scaled`` baseline.
MACHINE_CONFIGS = ComponentRegistry("machine config")
MACHINE_CONFIGS.add("scaled", scaled_config)
MACHINE_CONFIGS.add("skylake", skylake_config)
MACHINE_CONFIGS.add("xeon", xeon_config)


@dataclass(frozen=True)
class DesignDimension:
    """One design axis of the Fig 11 case study.

    Attributes:
        name: the axis name (``replacement``, ``inclusion``, ...).
        options: the axis values, in the paper's reporting order.
        apply: pure ``(config, option) -> config`` transform — the same
            callable fig11 uses as ``Dimension.configure``, so variant
            configs (and therefore job ids) are identical either way.
    """

    name: str
    options: Tuple[str, ...]
    apply: Callable[[MachineConfig, str], MachineConfig]


DESIGN_DIMENSIONS: Tuple[DesignDimension, ...] = (
    DesignDimension(
        name="replacement",
        options=("lru", "plru", "nmru", "rrip"),
        apply=lambda config, option: config.with_llc_policy(option),
    ),
    DesignDimension(
        name="inclusion",
        options=("non-inclusive", "inclusive", "exclusive"),
        apply=lambda config, option: config.with_inclusion(option),
    ),
    DesignDimension(
        name="prefetching",
        options=("000", "NN0", "NNN", "NNI"),
        apply=lambda config, option: config.with_prefetch_string(option),
    ),
    DesignDimension(
        name="branching",
        options=("bimodal", "gshare", "perceptron", "hashed_perceptron"),
        apply=lambda config, option: config.with_branch_predictor(option),
    ),
)


def variant_name(base: str, dimension: str, option: str) -> str:
    """Registry name for one design-dimension variant of a base preset."""
    return f"{base}@{dimension}={option}"


def _variant_factory(base: str, dimension: DesignDimension,
                     option: str) -> Callable[[], MachineConfig]:
    """Zero-argument factory for one variant (clean introspected spec)."""
    def factory() -> MachineConfig:
        return dimension.apply(MACHINE_CONFIGS[base](), option)

    factory.__name__ = f"{base}_{dimension.name}_variant"
    factory.__qualname__ = factory.__name__
    return factory


def _register_variants(base: str = "scaled") -> None:
    """Register every (dimension, option) variant of ``base``."""
    for dimension in DESIGN_DIMENSIONS:
        for option in dimension.options:
            MACHINE_CONFIGS.add(
                variant_name(base, dimension.name, option),
                _variant_factory(base, dimension, option),
                summary=(f"{base} preset with {dimension.name} "
                         f"set to {option}"))


_register_variants()


def get_machine_config(name: str) -> MachineConfig:
    """Build the named machine config (unified unknown-name error)."""
    return MACHINE_CONFIGS[name]()


def iter_registries() -> Iterator[ComponentRegistry]:
    """Every component registry, for ``repro components ls`` and docs.

    Imported lazily so the config layer stays importable without pulling
    in the whole simulator.
    """
    from repro.branch import PREDICTORS
    from repro.cache.partition import PARTITIONERS
    from repro.cache.replacement import POLICIES
    from repro.prefetch import PREFETCHERS
    from repro.trace.spec_models import SPEC_WORKLOADS

    yield POLICIES
    yield PARTITIONERS
    yield PREFETCHERS
    yield PREDICTORS
    yield SPEC_WORKLOADS
    yield MACHINE_CONFIGS
