"""On-disk campaign state: JSONL result store, manifests, failure reports.

The store is an append-only JSONL file — one self-describing record per
line — because append-only is the only write pattern that survives a
driver killed at an arbitrary instant (the acceptance test for this
subsystem). Records:

* ``header``  — format marker plus campaign metadata; first line only.
* ``result``  — one completed job: id, job spec, attempts, wall time and
  the full serialised :class:`~repro.sim.results.SimulationResult`.
* ``failure`` — one permanently-failed job: id, job spec and the captured
  error (type, message, traceback, attempt count, failure kind).

Appends are atomic in practice: a single ``write`` of one ``\\n``-terminated
line to a file opened in append mode, followed by flush+fsync. A SIGKILL
can at worst truncate the final line, which :meth:`ResultStore.load`
tolerates (and only there — corruption mid-file still raises).

Alongside the store live three derived documents:

* ``<store>.manifest.json`` — the campaign manifest: every job plus the
  machine/scale/retry/timeout/shard/executor settings, written by
  ``campaign run`` and read back by ``campaign status``/``resume``.
* ``<store>.failures.json`` — the failure manifest, rewritten after every
  campaign pass so "what still needs attention" is one ``cat`` away.
* ``<store>.workers.json`` — pool-executor worker liveness: per-worker
  pid/state/occupancy/steal counts, atomically rewritten by the pool
  while it runs (see :mod:`repro.campaign.pool`) and rendered by
  ``campaign watch``.

The store's contents are executor-independent: the pool and spawn
executors append the same records for the same jobs, up to volatile
fields (wall times, cache provenance, traceback frames).
:func:`canonical_records` strips exactly those fields so two stores can
be compared for semantic equality — the executor-equivalence check CI
runs.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.config import MachineConfig
from repro.campaign.ids import ID_SCHEME, job_from_dict, job_to_dict
from repro.configio import machine_from_dict, machine_to_dict, to_dict
from repro.sim.batch import Job
from repro.sim.results import SimulationResult
from repro.sim.runner import ExperimentScale
from repro.sim.serialize import result_from_dict, result_to_dict

__all__ = [
    "MANIFEST_FORMAT",
    "STORE_FORMAT",
    "FAILURES_FORMAT",
    "WORKERS_FORMAT",
    "ResultStore",
    "StoreContents",
    "canonical_records",
    "failures_path_for",
    "load_campaign_manifest",
    "load_worker_records",
    "manifest_path_for",
    "telemetry_dir_for",
    "workers_path_for",
    "write_campaign_manifest",
    "write_failure_manifest",
    "write_worker_records",
]

#: Format marker in the store header record.
STORE_FORMAT = "pinte-campaign-v1"
#: Format marker in campaign manifests.
MANIFEST_FORMAT = "pinte-campaign-manifest-v1"
#: Format marker in failure manifests.
FAILURES_FORMAT = "pinte-campaign-failures-v1"
#: Format marker in pool-worker liveness documents.
WORKERS_FORMAT = "pinte-campaign-workers-v1"


@dataclass
class StoreContents:
    """Everything read back from one store file.

    Later records win: a success recorded on resume supersedes an earlier
    failure for the same id, and duplicate appends are harmless.
    """

    results: Dict[str, dict] = field(default_factory=dict)
    failures: Dict[str, dict] = field(default_factory=dict)
    header: Optional[dict] = None
    #: Count of truncated/partial trailing lines skipped during load.
    truncated_lines: int = 0

    def result_objects(self) -> Dict[str, SimulationResult]:
        """Deserialise every stored success into a ``SimulationResult``."""
        return {job_id: result_from_dict(record["result"])
                for job_id, record in self.results.items()}

    def job_for(self, job_id: str) -> Job:
        """The job spec recorded for ``job_id`` (success or failure)."""
        record = self.results.get(job_id) or self.failures[job_id]
        return job_from_dict(record["job"])


class ResultStore:
    """Append-only JSONL store for one campaign's job outcomes."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        #: Torn trailing lines truncated away before an append (see
        #: :meth:`_repair_tail`); surfaced by ``repro campaign status``.
        self.repaired_tails = 0

    # -- writing -----------------------------------------------------------
    def exists(self) -> bool:
        """True when the store file exists and is non-empty."""
        try:
            return self.path.stat().st_size > 0
        except FileNotFoundError:
            return False

    def _repair_tail(self) -> None:
        """Drop a partial trailing record left by a killed writer.

        Without this, the next append would glue onto the unterminated
        line and corrupt it *mid-file* — unrecoverable instead of merely
        incomplete. The check is O(1) (one byte) when the store is clean.
        """
        try:
            with open(self.path, "rb+") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) == b"\n":
                    return
                handle.seek(0)
                cut = handle.read().rfind(b"\n") + 1
                handle.truncate(cut)
                self.repaired_tails += 1
        except FileNotFoundError:
            pass

    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._repair_tail()
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def ensure_header(self, meta: Optional[dict] = None) -> None:
        """Write the header record if the store is new/empty.

        The job-id scheme is stamped in by default (``meta`` can override)
        so a later ``--resume`` can refuse a store whose ids were computed
        under a different scheme instead of silently re-running everything.
        """
        if not self.exists():
            self._append({"kind": "header", "format": STORE_FORMAT,
                          "created": time.time(), "id_scheme": ID_SCHEME,
                          **(meta or {})})

    def append_result(self, job_id: str, job: Job, result: SimulationResult,
                      attempts: int, wall_time_seconds: float) -> None:
        """Record one successful job."""
        self._append({
            "kind": "result",
            "job_id": job_id,
            "job": job_to_dict(job),
            "attempts": attempts,
            "wall_time_seconds": wall_time_seconds,
            "result": result_to_dict(result),
        })

    def append_failure(self, job_id: str, job: Job, failure: dict) -> None:
        """Record one permanently-failed job (after all retries)."""
        self._append({
            "kind": "failure",
            "job_id": job_id,
            "job": job_to_dict(job),
            "failure": failure,
        })

    # -- reading -----------------------------------------------------------
    def load(self) -> StoreContents:
        """Read the store back, tolerating a truncated final line."""
        contents = StoreContents()
        try:
            lines = self.path.read_text(encoding="utf-8").split("\n")
        except FileNotFoundError:
            return contents
        if lines and lines[-1] == "":
            lines.pop()
        for number, line in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines) - 1:
                    # A driver killed mid-append leaves a partial last line;
                    # that job simply reruns on resume.
                    contents.truncated_lines += 1
                    continue
                raise ValueError(
                    f"{self.path}:{number + 1}: corrupt store record")
            kind = record.get("kind")
            if kind == "header":
                if record.get("format") != STORE_FORMAT:
                    raise ValueError(
                        f"{self.path}: not a {STORE_FORMAT} store "
                        f"(format={record.get('format')!r})")
                contents.header = record
            elif kind == "result":
                contents.results[record["job_id"]] = record
                contents.failures.pop(record["job_id"], None)
            elif kind == "failure":
                contents.failures[record["job_id"]] = record
            else:
                raise ValueError(
                    f"{self.path}:{number + 1}: unknown record kind {kind!r}")
        return contents

    def completed_ids(self) -> Dict[str, dict]:
        """Ids with a stored *successful* result (what ``--resume`` skips)."""
        return self.load().results


# -- campaign manifest ------------------------------------------------------

def manifest_path_for(store_path: Union[str, Path]) -> Path:
    """Where the campaign manifest lives for a given store path."""
    store_path = Path(store_path)
    return store_path.with_name(store_path.stem.split(".")[0]
                                + ".manifest.json")


def failures_path_for(store_path: Union[str, Path]) -> Path:
    """Where the failure manifest lives for a given store path."""
    store_path = Path(store_path)
    return store_path.with_name(store_path.stem.split(".")[0]
                                + ".failures.json")


def telemetry_dir_for(store_path: Union[str, Path]) -> Path:
    """Where a campaign's telemetry spool files live for a given store.

    One directory per campaign, one JSONL spool per job id inside it —
    written by the workers (:class:`repro.obs.telemetry.TelemetrySpooler`)
    and tailed by the parent and ``repro campaign watch``.
    """
    store_path = Path(store_path)
    return store_path.with_name(store_path.stem.split(".")[0] + ".telemetry")


def write_campaign_manifest(
    store_path: Union[str, Path],
    jobs: Sequence[Job],
    config: MachineConfig,
    scale: ExperimentScale,
    *,
    machine_preset: Optional[str] = None,
    retry: Optional[dict] = None,
    timeout_seconds: Optional[float] = None,
    shard: Optional[tuple] = None,
    processes: Optional[int] = None,
    trace_cache: Optional[str] = None,
    telemetry_interval: Optional[float] = None,
    executor: Optional[str] = None,
    plugins: Optional[Sequence[str]] = None,
) -> Path:
    """Write ``<store>.manifest.json`` describing the whole campaign."""
    path = manifest_path_for(store_path)
    document = {
        "format": MANIFEST_FORMAT,
        "store": Path(store_path).name,
        "id_scheme": ID_SCHEME,
        "machine_preset": machine_preset or config.name,
        "machine_config": machine_to_dict(config),
        "scale": to_dict(scale),
        "jobs": [job_to_dict(job) for job in jobs],
        "retry": retry,
        "timeout_seconds": timeout_seconds,
        "shard": list(shard) if shard else None,
        "processes": processes,
        "trace_cache": trace_cache,
        "telemetry_interval": telemetry_interval,
        "executor": executor,
        "plugins": list(plugins) if plugins else None,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    return path


def load_campaign_manifest(path: Union[str, Path]) -> dict:
    """Read a campaign manifest and deserialise its contents in place.

    ``jobs``/``scale`` become objects; ``machine_config`` becomes a
    :class:`MachineConfig` when the payload carries the canonical
    ``schema`` tag (manifests written at id-scheme v3 or later). Legacy
    manifests keep their raw ``dataclasses.asdict`` dict — callers fall
    back to ``machine_preset`` for those, and the store's id-scheme gate
    refuses to resume them anyway.
    """
    document = json.loads(Path(path).read_text())
    if document.get("format") != MANIFEST_FORMAT:
        raise ValueError(
            f"{path}: not a {MANIFEST_FORMAT} manifest "
            f"(format={document.get('format')!r})")
    document["jobs"] = [job_from_dict(payload)
                        for payload in document["jobs"]]
    document["scale"] = ExperimentScale(**document["scale"])
    machine_payload = document.get("machine_config")
    if isinstance(machine_payload, dict) and "schema" in machine_payload:
        document["machine_config"] = machine_from_dict(machine_payload)
    return document


# -- pool worker liveness ---------------------------------------------------

def workers_path_for(store_path: Union[str, Path]) -> Path:
    """Where the pool's worker-liveness document lives for a given store."""
    store_path = Path(store_path)
    return store_path.with_name(store_path.stem.split(".")[0]
                                + ".workers.json")


def write_worker_records(store_path: Union[str, Path],
                         workers: Sequence[dict], *,
                         steals: int = 0, respawns: int = 0,
                         running: bool = True) -> Path:
    """Atomically (re)write ``<store>.workers.json``.

    The pool rewrites this document on a short cadence while it runs, so
    the write must be atomic (temp file + ``os.replace``) — ``campaign
    watch`` in another process must never observe a half-written JSON
    body the way it can tolerate a torn JSONL tail.
    """
    path = workers_path_for(store_path)
    document = {
        "format": WORKERS_FORMAT,
        "store": Path(store_path).name,
        "running": running,
        "steals": steals,
        "respawns": respawns,
        "workers": list(workers),
        "updated": time.time(),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(path.name + ".tmp")
    temp.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    os.replace(temp, path)
    return path


def load_worker_records(store_path: Union[str, Path]) -> Optional[dict]:
    """Read the worker-liveness document for a store; ``None`` when absent.

    Lenient on purpose: a missing, unreadable or wrong-format document
    means "no pool information", never an error — the watch dashboard
    must render campaigns run by the spawn executor (or older versions)
    unchanged.
    """
    path = workers_path_for(store_path)
    try:
        document = json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        return None
    if (not isinstance(document, dict)
            or document.get("format") != WORKERS_FORMAT):
        return None
    return document


# -- executor-equivalence canonicalisation ----------------------------------

#: ``result.extra`` keys that legitimately differ between executors: wall
#: times depend on scheduling, and cache hit/miss provenance depends on
#: which worker (with which warm memo) ran the job.
_VOLATILE_EXTRA_KEYS = ("trace_cache_hits", "trace_cache_misses")


def canonical_records(contents: StoreContents) -> List[dict]:
    """Executor-independent view of a store's records, sorted by job id.

    Two campaigns over the same jobs are *equivalent* when this function
    returns the same list for both stores, whichever executor (pool or
    spawn, any process count, resumed or not) produced them. Stripped as
    volatile: result/record wall times and ``*_seconds`` extras, trace
    cache hit/miss provenance, failure tracebacks (frame lists differ
    between worker entry points), and the header timestamp (the header is
    dropped entirely).
    """
    canonical: List[dict] = []
    for job_id, record in sorted(contents.results.items()):
        entry = {key: value for key, value in record.items()
                 if key != "wall_time_seconds"}
        result = dict(entry["result"])
        result.pop("wall_time_seconds", None)
        extra = {key: value for key, value in (result.get("extra") or {}).items()
                 if key not in _VOLATILE_EXTRA_KEYS
                 and not key.endswith("_seconds")}
        result["extra"] = extra
        if result.get("co_results"):
            co_clean = []
            for co in result["co_results"]:
                co = dict(co)
                co.pop("wall_time_seconds", None)
                co["extra"] = {
                    key: value for key, value in (co.get("extra") or {}).items()
                    if key not in _VOLATILE_EXTRA_KEYS
                    and not key.endswith("_seconds")}
                co_clean.append(co)
            result["co_results"] = co_clean
        entry["result"] = result
        canonical.append(entry)
    for job_id, record in sorted(contents.failures.items()):
        entry = dict(record)
        failure = dict(entry.get("failure") or {})
        failure.pop("traceback", None)
        entry["failure"] = failure
        canonical.append(entry)
    return canonical


def write_failure_manifest(store_path: Union[str, Path],
                           failures: Sequence[dict]) -> Path:
    """(Re)write ``<store>.failures.json`` from permanent-failure records.

    Always written — an empty ``failures`` list is the explicit "all clear"
    that distinguishes a clean campaign from one whose manifest was lost.
    """
    path = failures_path_for(store_path)
    document = {
        "format": FAILURES_FORMAT,
        "store": Path(store_path).name,
        "count": len(failures),
        "failures": list(failures),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    return path
