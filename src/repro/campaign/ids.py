"""Deterministic job identities and shard partitioning for campaigns.

Every campaign job gets a stable hexadecimal id derived from everything
that determines its outcome: the :class:`~repro.sim.batch.Job` fields, the
full :class:`~repro.config.MachineConfig` and the
:class:`~repro.sim.runner.ExperimentScale`. Two invocations that would
produce the same simulation therefore agree on the id — across processes,
machines and sessions — which is what makes ``--resume`` (skip ids already
in the store) and ``--shard i/n`` (partition ids across machines) safe
without any coordination service.

The id scheme is versioned (:data:`ID_SCHEME`); changing what goes into
the hash means bumping the version so old stores are never silently
misread as covering new jobs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import List, Sequence, Tuple

from repro.config import MachineConfig
from repro.configio import machine_to_dict, to_dict
from repro.sim.batch import Job
from repro.sim.runner import ExperimentScale

__all__ = [
    "ID_SCHEME",
    "canonical_job_payload",
    "job_from_dict",
    "job_id",
    "job_to_dict",
    "parse_shard",
    "shard_jobs",
]

#: Version tag hashed into every id; bump when the payload shape changes.
#: v2: Job grew multicore fields (co_runners/scheme/repartition_interval)
#: and seed overrides (pinte_seed/trace_seed).
#: v3: machine/scale hashed in their versioned canonical schema form
#: (:mod:`repro.configio` — ``schema`` tag, ``llc_way_allocation`` omitted
#: when None) instead of a raw ``dataclasses.asdict``, so a config loaded
#: from TOML and its preset twin hash identically.
ID_SCHEME = "pinte-job-v3"


def job_to_dict(job: Job) -> dict:
    """Plain-dict form of a :class:`Job` (manifest / store serialisation)."""
    return dataclasses.asdict(job)


def job_from_dict(payload: dict) -> Job:
    """Inverse of :func:`job_to_dict`; rejects unknown fields loudly."""
    field_names = {f.name for f in dataclasses.fields(Job)}
    unknown = set(payload) - field_names
    if unknown:
        raise ValueError(f"unknown job fields: {sorted(unknown)}")
    return Job(**payload)


def canonical_job_payload(job: Job, config: MachineConfig,
                          scale: ExperimentScale) -> dict:
    """The exact dict hashed into a job id (exposed for tests and docs)."""
    return {
        "scheme": ID_SCHEME,
        "job": job_to_dict(job),
        "machine": machine_to_dict(config),
        "scale": to_dict(scale),
    }


def job_id(job: Job, config: MachineConfig, scale: ExperimentScale) -> str:
    """Stable 16-hex-digit id for one (job, machine, scale) triple."""
    blob = json.dumps(canonical_job_payload(job, config, scale),
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a ``"i/n"`` shard selector into ``(index, count)``.

    ``index`` is zero-based: ``0/2`` and ``1/2`` together cover a campaign.
    """
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(f"shard must look like 'i/n', got {text!r}") from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"shard index must be in [0, {count}), got {index}/{count}")
    return index, count


def shard_jobs(jobs: Sequence[Job], shard_index: int, shard_count: int,
               config: MachineConfig, scale: ExperimentScale) -> List[Job]:
    """The subset of ``jobs`` belonging to shard ``shard_index`` of
    ``shard_count``.

    Jobs are ordered by id and dealt round-robin, so the partition is
    disjoint, exhaustive, balanced to within one job, and independent of
    the order the caller listed the jobs in — every machine computes the
    same split from the same manifest.
    """
    if shard_count < 1 or not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard index must be in [0, {shard_count}), got {shard_index}")
    keyed = sorted(
        ((job_id(job, config, scale), position, job)
         for position, job in enumerate(jobs)),
        key=lambda item: (item[0], item[1]),
    )
    return [job for rank, (_, _, job) in enumerate(keyed)
            if rank % shard_count == shard_index]
