"""Fault-tolerant simulation campaigns: run thousands of jobs, keep them.

This package grows :mod:`repro.sim.batch` (a bare process pool) into a
campaign subsystem sized for the paper's cost story — Table I's
O(N·|P_induce|) single-trace runs executed with the robustness a
multi-hour fan-out needs:

* :mod:`repro.campaign.ids` — deterministic job ids (a stable hash of
  Job + MachineConfig + ExperimentScale) and ``i/n`` shard partitioning;
* :mod:`repro.campaign.store` — an append-only JSONL result store with
  atomic appends, plus campaign and failure manifests;
* :mod:`repro.campaign.engine` — the scheduler: timeouts, bounded retry
  with backoff, failure capture, resume, progress/ETA wired into
  :mod:`repro.obs`;
* :mod:`repro.campaign.pool` — the default executor: N persistent
  work-stealing workers (``--executor spawn`` selects the
  process-per-job scheduler instead);
* :mod:`repro.campaign.faults` — deterministic ``__fault:`` workloads for
  exercising every failure path in CI.

Typical flow (see ``docs/CAMPAIGNS.md`` for the full story)::

    from repro.campaign import RetryPolicy, campaign_jobs, run_campaign

    jobs = campaign_jobs(["470.lbm", "605.mcf"], p_values=(0.1, 0.5, 1.0))
    report = run_campaign(jobs, config, scale, processes=8,
                          timeout_seconds=600, store="campaign/results.jsonl")
    report.results        # every SimulationResult, job order
    report.failures       # JobFailure records — the campaign never aborts

CLI: ``repro campaign run|status|resume``.
"""

from repro.campaign.engine import (
    CampaignError,
    CampaignReport,
    JobFailure,
    RetryPolicy,
    TelemetrySettings,
    execute_job,
    run_campaign,
)
from repro.campaign.faults import (
    FAULT_PREFIX,
    FaultSpec,
    InjectedFault,
    fault_workload,
    parse_fault,
)
from repro.campaign.pool import (
    DEFAULT_EXECUTOR,
    EXECUTORS,
    WorkerTraceMemo,
)
from repro.campaign.ids import (
    ID_SCHEME,
    canonical_job_payload,
    job_from_dict,
    job_id,
    job_to_dict,
    parse_shard,
    shard_jobs,
)
from repro.campaign.store import (
    FAILURES_FORMAT,
    MANIFEST_FORMAT,
    STORE_FORMAT,
    WORKERS_FORMAT,
    ResultStore,
    StoreContents,
    canonical_records,
    failures_path_for,
    load_campaign_manifest,
    load_worker_records,
    manifest_path_for,
    telemetry_dir_for,
    workers_path_for,
    write_campaign_manifest,
    write_failure_manifest,
    write_worker_records,
)
from repro.campaign.watch import (
    CampaignView,
    build_view,
    render_dashboard,
    render_status_line,
    write_campaign_timeline,
)
from repro.sim.batch import Job, campaign_jobs, run_job

__all__ = [
    "CampaignError",
    "CampaignReport",
    "CampaignView",
    "DEFAULT_EXECUTOR",
    "EXECUTORS",
    "FAILURES_FORMAT",
    "FAULT_PREFIX",
    "FaultSpec",
    "ID_SCHEME",
    "InjectedFault",
    "Job",
    "JobFailure",
    "MANIFEST_FORMAT",
    "ResultStore",
    "RetryPolicy",
    "STORE_FORMAT",
    "StoreContents",
    "TelemetrySettings",
    "WORKERS_FORMAT",
    "WorkerTraceMemo",
    "build_view",
    "campaign_jobs",
    "canonical_job_payload",
    "canonical_records",
    "execute_job",
    "failures_path_for",
    "fault_workload",
    "job_from_dict",
    "job_id",
    "job_to_dict",
    "load_campaign_manifest",
    "load_worker_records",
    "manifest_path_for",
    "parse_fault",
    "parse_shard",
    "render_dashboard",
    "render_status_line",
    "run_campaign",
    "run_job",
    "shard_jobs",
    "telemetry_dir_for",
    "workers_path_for",
    "write_campaign_manifest",
    "write_campaign_timeline",
    "write_worker_records",
]
