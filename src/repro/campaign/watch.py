"""Live campaign dashboards: ``watch``, ``status --follow``, timelines.

Everything here is a *read-side* consumer of two on-disk artifacts the
engine maintains — the append-only result store and the per-job telemetry
spools (:mod:`repro.obs.telemetry`) — so any process that can see the
store directory can render a campaign, including one running on another
machine against a shared filesystem:

* :func:`build_view` folds store + manifest + spools into one
  :class:`CampaignView` snapshot (progress, ETA, per-shard counts,
  failure-class breakdown, in-flight jobs slowest-first);
* :func:`render_dashboard` / :func:`render_status_line` turn a view into
  plain text — no curses, no TTY games beyond an ANSI clear, so output
  also makes sense when piped to a log file;
* :func:`watch_campaign` is the refresh loop behind ``repro campaign
  watch`` and ``repro campaign status --follow``;
* :func:`write_campaign_timeline` merges every job's spooled spans and
  resource samples into a single Chrome ``trace_event`` file (one track
  per job, wall-clock aligned) loadable in Perfetto.

The store is the ground truth for *outcomes*: a job whose worker was
SIGKILLed never writes a spool ``end`` record, so the view cross-checks
"running" jobs against stored results/failures instead of trusting the
spool alone.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, TextIO, Tuple, Union

from repro.campaign.ids import job_id, shard_jobs
from repro.campaign.store import (
    ResultStore,
    StoreContents,
    load_campaign_manifest,
    load_worker_records,
    manifest_path_for,
    telemetry_dir_for,
)
from repro.obs.registry import MetricRegistry
from repro.obs.telemetry import CampaignTelemetry, JobTelemetry

__all__ = [
    "CampaignView",
    "build_view",
    "render_dashboard",
    "render_status_line",
    "watch_campaign",
    "write_campaign_timeline",
]

#: ANSI clear-screen + home, the whole "terminal UI".
CLEAR = "\x1b[2J\x1b[H"


def _preset_config(name: Optional[str]):
    """Resolve a manifest's machine preset (None when unknown)."""
    from repro.config import scaled_config, skylake_config, xeon_config

    factories = {"scaled": scaled_config, "skylake": skylake_config,
                 "xeon": xeon_config}
    factory = factories.get(name or "")
    return factory() if factory is not None else None


@dataclass
class CampaignView:
    """One consistent snapshot of a stored campaign, ready to render."""

    store_path: Path
    generated_at: float
    #: Job count from the manifest; ``None`` when no manifest was found.
    total: Optional[int]
    completed: int
    failed: int
    #: Failure kind -> count (``error`` / ``timeout`` / ``crash``).
    failure_kinds: Dict[str, int] = field(default_factory=dict)
    #: Stored failures that burned more than one attempt before sticking.
    retries_exhausted: int = 0
    #: ``(label, done, failed, total)`` per shard; one row when unsharded.
    shard_rows: List[Tuple[str, int, int, int]] = field(default_factory=list)
    #: Torn trailing store lines skipped by this load (job will rerun).
    truncated_lines: int = 0
    eta_seconds: Optional[float] = None
    mean_wall_seconds: Optional[float] = None
    workers: int = 1
    #: In-flight jobs per the telemetry spools, slowest first, minus any
    #: whose outcome the store already recorded (crash without end record).
    running: List[JobTelemetry] = field(default_factory=list)
    telemetry: Optional[CampaignTelemetry] = None
    spool_count: int = 0
    corrupt_spool_lines: int = 0
    trace_cache_hit_rate: Optional[float] = None
    registry: MetricRegistry = field(default_factory=MetricRegistry)
    #: The pool executor's ``<store>.workers.json`` document (worker
    #: pids, occupancy, steal counts); ``None`` for spawn/inline runs.
    pool: Optional[dict] = None

    @property
    def pending(self) -> Optional[int]:
        """Jobs with no stored outcome yet (needs a manifest)."""
        if self.total is None:
            return None
        return max(0, self.total - self.completed - self.failed)

    @property
    def is_complete(self) -> bool:
        """Every manifest job has a stored outcome (success or failure)."""
        return self.total is not None and self.pending == 0


def _shard_progress(manifest: dict, contents: StoreContents,
                    ) -> Tuple[Optional[List[Tuple[str, int, int, int]]],
                               Optional[List[str]]]:
    """Per-shard ``(label, done, failed, total)`` rows + all job ids."""
    config = _preset_config(manifest.get("machine_preset"))
    if config is None:
        return None, None
    scale = manifest["scale"]
    jobs = manifest["jobs"]
    ids = [job_id(job, config, scale) for job in jobs]
    shard = manifest.get("shard")
    count = shard[1] if shard else 1
    rows: List[Tuple[str, int, int, int]] = []
    for index in range(count):
        subset = (shard_jobs(jobs, index, count, config, scale)
                  if count > 1 else jobs)
        subset_ids = [job_id(job, config, scale) for job in subset]
        rows.append((
            f"shard {index}/{count}" if count > 1 else "all jobs",
            sum(1 for jid in subset_ids if jid in contents.results),
            sum(1 for jid in subset_ids if jid in contents.failures),
            len(subset_ids),
        ))
    return rows, ids


def build_view(store_path: Union[str, Path],
               telemetry: Optional[CampaignTelemetry] = None,
               now: Optional[float] = None) -> CampaignView:
    """Fold store + manifest + telemetry spools into one snapshot.

    Pass the previous view's ``telemetry`` back in when polling in a loop
    — the :class:`~repro.obs.telemetry.CampaignTelemetry` keeps per-spool
    byte offsets, so reuse makes each refresh an incremental read instead
    of a full re-parse of every spool.
    """
    store_path = Path(store_path)
    now = now if now is not None else time.time()
    contents = ResultStore(store_path).load()
    view = CampaignView(store_path=store_path, generated_at=now,
                        total=None,
                        completed=len(contents.results),
                        failed=len(contents.failures),
                        truncated_lines=contents.truncated_lines)

    for record in contents.failures.values():
        failure = record.get("failure") or {}
        kind = failure.get("kind", "error")
        view.failure_kinds[kind] = view.failure_kinds.get(kind, 0) + 1
        if int(failure.get("attempts", 1)) > 1:
            view.retries_exhausted += 1

    manifest = None
    manifest_path = manifest_path_for(store_path)
    if manifest_path.exists():
        manifest = load_campaign_manifest(manifest_path)
        view.total = len(manifest["jobs"])
        view.workers = int(manifest.get("processes") or 1)
        shard_rows, ids = _shard_progress(manifest, contents)
        if shard_rows is not None:
            view.shard_rows = shard_rows
            # Count only *this campaign's* jobs — the store may also hold
            # records from a superseded manifest.
            view.completed = sum(1 for jid in ids if jid in contents.results)
            view.failed = sum(1 for jid in ids if jid in contents.failures)

    hits = misses = 0
    for record in contents.results.values():
        extra = record["result"].get("extra") or {}
        hits += int(extra.get("trace_cache_hits", 0))
        misses += int(extra.get("trace_cache_misses", 0))
    if hits or misses:
        view.trace_cache_hit_rate = hits / (hits + misses)

    walls = [float(record.get("wall_time_seconds", 0.0))
             for record in contents.results.values()]
    walls = [wall for wall in walls if wall > 0]
    if walls:
        view.mean_wall_seconds = sum(walls) / len(walls)
    if view.pending == 0:
        view.eta_seconds = 0.0
    elif view.pending is not None and view.mean_wall_seconds is not None:
        view.eta_seconds = (view.pending * view.mean_wall_seconds
                            / max(1, view.workers))

    view.pool = load_worker_records(store_path)

    if telemetry is None:
        telemetry = CampaignTelemetry(telemetry_dir_for(store_path))
    telemetry.poll()
    view.telemetry = telemetry
    # Job spools only: the pool executor's `_pool` gauge spool (and any
    # future `_`-prefixed pseudo-spool) is scheduler telemetry, not a job.
    view.spool_count = sum(1 for job_id in telemetry.jobs
                           if not job_id.startswith("_"))
    view.corrupt_spool_lines = telemetry.corrupt_lines
    view.running = [job for job in telemetry.running_jobs(now)
                    if job.job_id not in contents.results
                    and job.job_id not in contents.failures]
    telemetry.fold_into(view.registry)
    return view


# -- rendering ---------------------------------------------------------------

def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.1f}s"
    if seconds < 3600:
        return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"
    return f"{int(seconds // 3600)}h{int(seconds % 3600 // 60):02d}m"


def _bar(done: int, failed: int, total: int, width: int = 30) -> str:
    if total <= 0:
        return "-" * width
    done_cells = int(width * done / total)
    failed_cells = int(width * failed / total)
    failed_cells = min(failed_cells, width - done_cells)
    return ("#" * done_cells + "!" * failed_cells
            + "-" * (width - done_cells - failed_cells))


def render_status_line(view: CampaignView) -> str:
    """One-line progress summary (the ``status --follow`` format)."""
    if view.total is not None:
        head = (f"{view.completed}/{view.total} done, {view.failed} failed, "
                f"{view.pending} pending")
    else:
        head = f"{view.completed} done, {view.failed} failed (no manifest)"
    parts = [head, f"{len(view.running)} running"]
    if view.eta_seconds is not None:
        parts.append(f"eta {_fmt_duration(view.eta_seconds)}")
    if view.running:
        slowest = view.running[0]
        parts.append(f"slowest {slowest.label or slowest.job_id[:8]} "
                     f"{_fmt_duration(slowest.age_seconds(view.generated_at))}")
    return " | ".join(parts)


def render_dashboard(view: CampaignView, max_running: int = 8) -> str:
    """Multi-line plain-text dashboard (the ``campaign watch`` screen)."""
    stamp = time.strftime("%Y-%m-%d %H:%M:%S",
                          time.localtime(view.generated_at))
    lines = [f"campaign watch - {view.store_path}  [{stamp}]"]
    if view.total is not None:
        outcome = view.completed + view.failed
        pct = 100.0 * outcome / view.total if view.total else 100.0
        lines.append(
            f"progress: [{_bar(view.completed, view.failed, view.total)}] "
            f"{view.completed}/{view.total} done, {view.failed} failed, "
            f"{view.pending} pending ({pct:.0f}%)")
        eta = _fmt_duration(view.eta_seconds)
        if view.mean_wall_seconds is not None:
            lines.append(f"eta: {eta}  (mean {view.mean_wall_seconds:.1f}s/job"
                         f" over {view.workers} worker(s))")
        else:
            lines.append(f"eta: {eta}")
    else:
        lines.append(f"progress: {view.completed} done, {view.failed} failed "
                     f"(no manifest next to store)")
    if len(view.shard_rows) > 1:
        for label, done, failed, total in view.shard_rows:
            lines.append(f"  {label}: "
                         f"[{_bar(done, failed, total, width=20)}] "
                         f"{done}/{total} done, {failed} failed")
    if view.running:
        lines.append(f"running ({len(view.running)}, slowest first):")
        for job in view.running[:max_running]:
            rss = (f"  rss {job.peak_rss_kb // 1024}MB"
                   if job.peak_rss_kb else "")
            lines.append(
                f"  {job.label or '?':<28} {job.job_id[:8]}  "
                f"attempt {job.attempt}  "
                f"age {_fmt_duration(job.age_seconds(view.generated_at))}  "
                f"cpu {job.cpu_seconds:.1f}s{rss}")
        if len(view.running) > max_running:
            lines.append(f"  ... and {len(view.running) - max_running} more")
    elif view.total is not None and not view.is_complete:
        lines.append("running: none visible (telemetry off, or between jobs)")
    if view.pool is not None:
        workers = view.pool.get("workers") or []
        head = (f"pool: {len(workers)} worker(s), "
                f"{view.pool.get('steals', 0)} steal(s), "
                f"{view.pool.get('respawns', 0)} respawn(s)")
        if not view.pool.get("running", True):
            head += "  [stopped]"
        lines.append(head)
        for row in workers:
            occupancy = 100.0 * float(row.get("occupancy") or 0.0)
            doing = (f"busy: {row.get('label') or row.get('job_id', '?')}"
                     if row.get("state") == "busy" else "idle")
            lines.append(
                f"  w{row.get('index')} pid {row.get('pid')}  "
                f"{occupancy:3.0f}% busy  {row.get('jobs_done', 0)} done  "
                f"{row.get('steals', 0)} stolen  {doing}  "
                f"({row.get('queued', 0)} queued)")
    if view.failure_kinds:
        breakdown = "  ".join(f"{kind}={count}" for kind, count
                              in sorted(view.failure_kinds.items()))
        if view.retries_exhausted:
            breakdown += f"  (retries exhausted: {view.retries_exhausted})"
        lines.append(f"failures: {breakdown}")
    telemetry_bits = [f"{view.spool_count} spool(s)"]
    if view.telemetry is not None:
        telemetry_bits.append(
            f"{len(view.telemetry.completed_jobs())} with end record")
    if view.corrupt_spool_lines:
        telemetry_bits.append(f"{view.corrupt_spool_lines} corrupt line(s) "
                              "skipped")
    lines.append("telemetry: " + ", ".join(telemetry_bits))
    if view.trace_cache_hit_rate is not None:
        lines.append(f"trace cache: {100 * view.trace_cache_hit_rate:.0f}% "
                     "hit rate (from stored results)")
    if view.truncated_lines:
        lines.append(f"store: {view.truncated_lines} torn trailing line(s) "
                     "skipped (job reruns on resume)")
    if view.is_complete:
        lines.append("campaign complete.")
    return "\n".join(lines)


def watch_campaign(store_path: Union[str, Path],
                   interval_seconds: float = 2.0,
                   iterations: Optional[int] = None,
                   stream: Optional[TextIO] = None,
                   clear: bool = True,
                   render: Callable[[CampaignView], str] = render_dashboard,
                   ) -> CampaignView:
    """Render a campaign every ``interval_seconds`` until it completes.

    ``iterations`` bounds the number of refreshes (tests and one-shot
    inspection); without it the loop ends when every manifest job has a
    stored outcome — or never, for a store with no manifest, so Ctrl-C is
    the expected exit there. ``clear=False`` appends instead of redrawing
    (the ``status --follow`` mode; also right when piping to a file).
    Returns the last view rendered.
    """
    stream = stream if stream is not None else sys.stdout
    telemetry: Optional[CampaignTelemetry] = None
    count = 0
    while True:
        view = build_view(store_path, telemetry=telemetry)
        telemetry = view.telemetry
        if clear:
            stream.write(CLEAR)
        stream.write(render(view))
        stream.write("\n")
        stream.flush()
        count += 1
        if view.is_complete or (iterations is not None
                                and count >= iterations):
            return view
        time.sleep(interval_seconds)


# -- merged timeline ---------------------------------------------------------

def write_campaign_timeline(store_path: Union[str, Path],
                            output: Union[str, Path]) -> int:
    """Merge every job's telemetry into one Chrome ``trace_event`` file.

    Each job becomes its own process track (named after the job label):
    one complete (``X``) event for the whole attempt, one per spooled
    profiler span (rebased from the worker's monotonic clock onto the
    campaign's wall-clock epoch via the attempt's start record), and
    counter (``C``) tracks for CPU seconds and RSS from the resource
    samples. Returns the number of trace events written.

    Raises :class:`FileNotFoundError` when the campaign has no telemetry
    spools — i.e. it ran without ``telemetry=`` / ``--telemetry``.
    """
    store_path = Path(store_path)
    directory = telemetry_dir_for(store_path)
    telemetry = CampaignTelemetry(directory)
    telemetry.poll()
    jobs = [job for job in telemetry.jobs.values()
            if job.started_t is not None]
    if not jobs:
        raise FileNotFoundError(
            f"no telemetry spools under {directory}; run the campaign with "
            "--telemetry to record a timeline")
    jobs.sort(key=lambda job: job.started_t)
    epoch = jobs[0].started_t
    events: List[dict] = [
        {"ph": "M", "pid": 0, "name": "process_name",
         "args": {"name": f"campaign {store_path.name}"}},
    ]
    for pid, job in enumerate(jobs, start=1):
        label = job.label or job.job_id[:8]
        start_us = (job.started_t - epoch) * 1e6
        end_t = job.ended_t if job.ended_t is not None else job.started_t
        events.append({"ph": "M", "pid": pid, "name": "process_name",
                       "args": {"name": f"{label} [{job.job_id[:8]}]"}})
        events.append({
            "name": f"attempt {job.attempt}",
            "cat": "job", "ph": "X",
            "ts": start_us,
            "dur": max(0.0, (end_t - job.started_t)) * 1e6,
            "pid": pid, "tid": 0,
            "args": {"job_id": job.job_id, "status": job.status or "running",
                     "attempt": job.attempt,
                     "instructions": job.instructions},
        })
        for span in job.spans:
            # Span offsets are relative to the worker Observation's
            # monotonic origin, created just before the start record.
            events.append({
                "name": span.name, "cat": "phase", "ph": "X",
                "ts": start_us + span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": pid, "tid": 1,
            })
        if job.spans:
            events.append({"ph": "M", "pid": pid, "tid": 1,
                           "name": "thread_name",
                           "args": {"name": "phases"}})
        for t, cpu, rss_kb in job.resources:
            ts = max(0.0, (t - epoch) * 1e6)
            events.append({"ph": "C", "pid": pid, "name": "cpu_seconds",
                           "ts": ts, "args": {"cpu": cpu}})
            events.append({"ph": "C", "pid": pid, "name": "rss_kb",
                           "ts": ts, "args": {"rss_kb": rss_kb}})
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    Path(output).write_text(json.dumps(document))
    return len(events)
