"""Persistent work-stealing worker pool for campaign execution.

The spawn executor (:meth:`repro.campaign.engine._CampaignRun.run_parallel`)
forks one process *per job attempt*. That is the right isolation story for
long jobs — a crash takes down nothing but itself — but on many-short-jobs
campaigns (deduplicated artifact plans, sensitivity sweeps) the fork +
interpreter + import + trace-regeneration tax dominates the simulation
itself, and static round-robin distribution leaves fast workers idle
behind a straggler. This module is the pool executor selected by
``--executor pool`` (the default):

* **fork once, stream jobs** — N long-lived workers are forked at campaign
  start; jobs stream to them over pipes and results stream back, so the
  per-job cost is one pickle round-trip, not a process launch. Each worker
  keeps a small in-memory trace memo (:class:`WorkerTraceMemo`), so a
  worker that re-sees a workload skips even the mmap/build step.
* **work stealing** — the parent deals pending jobs round-robin into
  per-worker deques (the same static distribution sharding uses across
  machines). A worker that drains its own deque *steals* the tail of the
  longest peer deque. Stealing is parent-mediated — deques live in the
  parent, so there are no cross-process locks — but the accounting is the
  classic one: owners take from the front, thieves from the back.
* **same failure semantics as spawn** — a worker that dies mid-job is a
  ``crash`` (and only that worker is respawned, keeping its deque); an
  overdue job gets the worker killed and respawned and counts as a
  ``timeout``; exceptions come back over the pipe as ``error``. All three
  flow through the engine's shared retry/record paths, so failure records
  are word-for-word identical to the spawn executor's.
* **liveness for ``campaign watch``** — the pool atomically rewrites
  ``<store>.workers.json`` (per-worker pid, state, occupancy, steal
  counts) on a short cadence, and — when telemetry is on — appends
  pool-level gauges to a ``_pool`` spool the telemetry fold publishes.

Result stores produced by the two executors are equivalent up to
volatile fields (:func:`repro.campaign.store.canonical_records`), and a
campaign started under one executor can be resumed under the other — the
store format carries no executor-specific state.
"""

from __future__ import annotations

import json
import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Deque, Dict, List, Optional

from collections import deque

from repro.campaign.store import write_worker_records
from repro.obs.telemetry import pool_spool_path

__all__ = [
    "DEFAULT_EXECUTOR",
    "EXECUTORS",
    "MEMO_CAPACITY",
    "PoolExecutor",
    "WorkerTraceMemo",
]

#: Known campaign executors (`--executor` choices).
EXECUTORS = ("pool", "spawn")

#: The executor used when none is requested.
DEFAULT_EXECUTOR = "pool"

#: Traces a worker memoises in memory. Campaigns cycle over a small
#: workload panel, so a handful of entries covers the working set; the
#: bound keeps a worker's RSS flat on campaigns with huge panels.
MEMO_CAPACITY = 32

#: How often the pool republishes liveness/occupancy (seconds).
PUBLISH_INTERVAL = 0.5


class WorkerTraceMemo:
    """Per-worker in-memory trace cache layered over the shared store.

    A persistent worker runs many jobs that share input traces; memoising
    built traces in worker memory is the cache a process-per-job executor
    can never have, and the main reason short-job campaigns speed up
    under the pool. Accounting is chosen so ``result.extra`` matches what
    a fresh worker would report:

    * layered over a shared :class:`~repro.trace.store.TraceStore`, a
      memo hit counts as a store *hit* — the entry provably exists in the
      underlying store (this worker built it through the store, or read
      it from there);
    * layered over nothing, every request counts as a *miss*, exactly
      like the storeless path that builds each trace from scratch.
    """

    def __init__(self, underlying=None, capacity: int = MEMO_CAPACITY) -> None:
        self.underlying = underlying
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._traces: Dict[tuple, object] = {}

    def get_or_build(self, name: str, llc_bytes: int, length: int, seed: int,
                     registry=None, profiler=None):
        """The :class:`~repro.trace.store.TraceStore` protocol."""
        key = (name, llc_bytes, length, seed)
        trace = self._traces.get(key)
        if trace is not None:
            if self.underlying is not None:
                self.hits += 1
            else:
                self.misses += 1
            return trace
        if self.underlying is not None:
            hits, misses = self.underlying.hits, self.underlying.misses
            trace = self.underlying.get_or_build(
                name, llc_bytes, length, seed,
                registry=registry, profiler=profiler)
            self.hits += self.underlying.hits - hits
            self.misses += self.underlying.misses - misses
        else:
            from repro.trace.spec_models import get_workload
            from repro.trace.synthetic import build_trace

            trace = build_trace(get_workload(name), length, seed, llc_bytes)
            self.misses += 1
        if len(self._traces) >= self.capacity:
            # Evict the oldest insertion; dict order makes this FIFO.
            self._traces.pop(next(iter(self._traces)))
        self._traces[key] = trace
        return trace


def _pool_worker_main(recv_conn, send_conn, config, scale,
                      trace_store) -> None:
    """Long-lived worker loop: jobs stream in, results stream out.

    One ``("job", jid, job, attempt, telemetry_target)`` message per
    attempt; the reply is ``("ok", jid, result)`` or ``("err", jid, type,
    message, traceback)``. A ``("stop",)`` message (or a closed pipe) ends
    the loop. Telemetry spooling happens here, per attempt, through the
    same :func:`~repro.campaign.engine._spooled_execute` the spawn worker
    and the inline path use — so spool records are indistinguishable.
    """
    from repro.campaign.engine import _spooled_execute
    from repro.sim.batch import _coerce_store

    memo = WorkerTraceMemo(_coerce_store(trace_store))
    try:
        while True:
            try:
                message = recv_conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "stop":
                break
            _, jid, job, attempt, telemetry = message
            try:
                result = _spooled_execute(job, config, scale, attempt, memo,
                                          telemetry)
                send_conn.send(("ok", jid, result))
            except BaseException as exc:  # full capture is the point
                send_conn.send(("err", jid, type(exc).__name__, str(exc),
                                traceback.format_exc()))
    finally:
        try:
            send_conn.close()
            recv_conn.close()
        except OSError:  # pragma: no cover — pipes already gone
            pass


@dataclass
class _Worker:
    """Parent-side handle for one pool slot (survives respawns)."""

    index: int
    proc: Optional[multiprocessing.Process] = None
    to_worker: Optional[object] = None
    from_worker: Optional[object] = None
    #: This slot's share of pending jobs. Lives in the parent — the owner
    #: takes from the front, thieves take from the back.
    queue: Deque = field(default_factory=deque)
    current: Optional[object] = None  # in-flight _Pending, if any
    dispatched_at: float = 0.0
    deadline: Optional[float] = None
    jobs_done: int = 0
    steals: int = 0
    respawns: int = 0
    busy_seconds: float = 0.0


class PoolExecutor:
    """N persistent workers fed from parent-side deques with stealing.

    Drives one :class:`~repro.campaign.engine._CampaignRun` — all outcome
    handling (success records, retry/backoff, failure capture, telemetry
    polling) goes through the run's shared methods, so the pool and spawn
    executors cannot drift apart semantically.
    """

    def __init__(self, run, processes: int) -> None:
        self.run = run
        self.processes = max(1, processes)
        self.workers: List[_Worker] = []
        self.steals = 0
        self.respawns = 0
        self._waiting: List = []  # backoff retries not yet ready
        self._published = 0.0
        self._started_at = 0.0

    # -- lifecycle -----------------------------------------------------------
    def _start_process(self, worker: _Worker) -> None:
        job_recv, job_send = multiprocessing.Pipe(duplex=False)
        result_recv, result_send = multiprocessing.Pipe(duplex=False)
        proc = multiprocessing.Process(
            target=_pool_worker_main,
            args=(job_recv, result_send, self.run.config, self.run.scale,
                  self.run.trace_store),
            daemon=True)
        proc.start()
        # Close the parent's copies of the child ends so EOF propagates.
        job_recv.close()
        result_send.close()
        worker.proc = proc
        worker.to_worker = job_send
        worker.from_worker = result_recv

    def _respawn(self, worker: _Worker) -> None:
        """Replace one slot's process, keeping its deque and tallies."""
        for conn in (worker.to_worker, worker.from_worker):
            try:
                conn.close()
            except OSError:  # pragma: no cover — already closed
                pass
        if worker.proc.is_alive():
            worker.proc.terminate()
            worker.proc.join(5.0)
            if worker.proc.is_alive():  # pragma: no cover — stubborn child
                worker.proc.kill()
        worker.proc.join()
        worker.current = None
        worker.deadline = None
        worker.respawns += 1
        self.respawns += 1
        registry = self.run.progress.registry
        if registry is not None:
            registry.count("campaign.pool.respawn")
        self._start_process(worker)

    def _shutdown(self) -> None:
        for worker in self.workers:
            try:
                worker.to_worker.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self.workers:
            worker.proc.join(5.0)
            if worker.proc.is_alive():  # pragma: no cover — stuck in a job
                worker.proc.terminate()
                worker.proc.join(5.0)
            for conn in (worker.to_worker, worker.from_worker):
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass

    # -- scheduling ----------------------------------------------------------
    def _take(self, worker: _Worker):
        """Next job for an idle worker: own deque first, then steal."""
        if worker.queue:
            return worker.queue.popleft()
        victim = max((peer for peer in self.workers
                      if peer is not worker and peer.queue),
                     key=lambda peer: len(peer.queue), default=None)
        if victim is None:
            return None
        item = victim.queue.pop()  # thieves take from the back
        worker.steals += 1
        self.steals += 1
        registry = self.run.progress.registry
        if registry is not None:
            registry.count("campaign.pool.steal")
        return item

    def _dispatch(self, worker: _Worker, item) -> None:
        try:
            worker.to_worker.send(("job", item.jid, item.job, item.attempt,
                                   self.run._telemetry_target(item)))
        except (BrokenPipeError, OSError):
            # The worker died between jobs; put the item back and refork.
            worker.queue.appendleft(item)
            self._respawn(worker)
            return
        worker.current = item
        worker.dispatched_at = time.monotonic()
        worker.deadline = (worker.dispatched_at + self.run.timeout
                           if self.run.timeout is not None else None)

    def _dispatch_idle(self) -> None:
        for worker in self.workers:
            while worker.current is None:
                item = self._take(worker)
                if item is None:
                    break
                self._dispatch(worker, item)

    def _requeue(self, item) -> None:
        """Park a retry until its backoff delay elapses."""
        self._waiting.append(item)

    def _release_ready(self) -> None:
        now = time.monotonic()
        due = [item for item in self._waiting if item.ready_time <= now]
        if not due:
            return
        self._waiting = [item for item in self._waiting
                         if item.ready_time > now]
        due.sort(key=lambda item: item.index)
        for item in due:
            shortest = min(self.workers, key=lambda w: len(w.queue))
            shortest.queue.append(item)

    # -- outcome handling ----------------------------------------------------
    def _finish_current(self, worker: _Worker) -> object:
        item = worker.current
        worker.busy_seconds += time.monotonic() - worker.dispatched_at
        worker.current = None
        worker.deadline = None
        return item

    def _receive(self, worker: _Worker) -> None:
        try:
            payload = worker.from_worker.recv()
        except (EOFError, OSError):
            self._worker_died(worker)
            return
        item = worker.current
        if item is None or payload[1] != item.jid:
            # A respawn replaces the pipes wholesale, so a stale message
            # from a killed worker can never arrive here; be safe anyway.
            return  # pragma: no cover
        wall = time.monotonic() - worker.dispatched_at
        self._finish_current(worker)
        if payload[0] == "ok":
            worker.jobs_done += 1
            self.run._record_success(item, payload[2], wall)
            return
        _, _, error_type, message, trace = payload
        retry_item = self.run._attempt_failed(item, "error", error_type,
                                              message, trace)
        if retry_item is not None:
            self._requeue(retry_item)

    def _worker_died(self, worker: _Worker) -> None:
        """A worker's pipe hit EOF / its sentinel fired: crash semantics."""
        item = worker.current
        if item is not None:
            self._finish_current(worker)
        code = worker.proc.exitcode
        self._respawn(worker)
        if item is None:
            return  # died between jobs; nothing to record
        retry_item = self.run._attempt_failed(
            item, "crash", "WorkerCrash",
            f"worker exited with code {code} before reporting", "")
        if retry_item is not None:
            self._requeue(retry_item)

    def _kill_overdue(self) -> None:
        now = time.monotonic()
        for worker in self.workers:
            if (worker.current is None or worker.deadline is None
                    or now < worker.deadline):
                continue
            if worker.from_worker.poll():
                # Finished just under the wire — reap normally instead.
                self._receive(worker)
                continue
            item = self._finish_current(worker)
            self._respawn(worker)  # kill + refork only the offender
            retry_item = self.run._attempt_failed(
                item, "timeout", "JobTimeout",
                f"job exceeded {self.run.timeout:g}s and was killed", "")
            if retry_item is not None:
                self._requeue(retry_item)

    # -- waiting -------------------------------------------------------------
    def _busy(self) -> List[_Worker]:
        return [worker for worker in self.workers
                if worker.current is not None]

    def _wait_budget(self) -> Optional[float]:
        now = time.monotonic()
        budgets = [worker.deadline - now for worker in self._busy()
                   if worker.deadline is not None]
        budgets.extend(item.ready_time - now for item in self._waiting)
        budgets.append(self._published + PUBLISH_INTERVAL - now)
        if self.run.telemetry_view is not None:
            budgets.append(max(0.5, self.run.telemetry.interval_seconds))
        if not self._busy() and not budgets:
            return None  # pragma: no cover — loop exits before this
        return max(0.0, min(budgets)) if budgets else None

    def _wait(self) -> None:
        """Block until a result, a worker death, or the next deadline."""
        objects = {}
        for worker in self.workers:
            objects[worker.proc.sentinel] = worker
            if worker.current is not None:
                objects[worker.from_worker] = worker
        ready = _connection_wait(list(objects), self._wait_budget())
        seen = set()
        for handle in ready:
            worker = objects[handle]
            if worker.index in seen:
                continue  # conn and sentinel both fired; handle once
            seen.add(worker.index)
            if handle is worker.proc.sentinel:
                if worker.from_worker.poll():
                    # The report beat the death; consume it first.
                    self._receive(worker)
                elif not worker.proc.is_alive():
                    self._worker_died(worker)
            else:
                self._receive(worker)

    # -- liveness / telemetry ------------------------------------------------
    @staticmethod
    def _label(item) -> str:
        from repro.campaign.engine import _job_label

        return _job_label(item.job)

    def _worker_rows(self, now: float) -> List[dict]:
        elapsed = max(1e-9, now - self._started_at)
        rows = []
        for worker in self.workers:
            busy = worker.busy_seconds
            if worker.current is not None:
                busy += now - worker.dispatched_at
            item = worker.current
            rows.append({
                "index": worker.index,
                "pid": worker.proc.pid,
                "alive": worker.proc.is_alive(),
                "state": "busy" if item is not None else "idle",
                "job_id": item.jid if item is not None else None,
                "label": self._label(item) if item is not None else None,
                "attempt": item.attempt if item is not None else None,
                "queued": len(worker.queue),
                "jobs_done": worker.jobs_done,
                "steals": worker.steals,
                "respawns": worker.respawns,
                "busy_seconds": round(busy, 3),
                "occupancy": round(min(1.0, busy / elapsed), 4),
            })
        return rows

    def _publish(self, force: bool = False, running: bool = True) -> None:
        now = time.monotonic()
        if not force and now - self._published < PUBLISH_INTERVAL:
            return
        self._published = now
        rows = self._worker_rows(now)
        registry = self.run.progress.registry
        if registry is not None:
            registry.set("campaign.pool.workers", len(self.workers))
            for row in rows:
                prefix = f"campaign.pool.worker{row['index']}"
                registry.set(f"{prefix}.occupancy", row["occupancy"])
        if self.run.store is not None:
            write_worker_records(self.run.store.path, rows,
                                 steals=self.steals, respawns=self.respawns,
                                 running=running)
        if self.run.telemetry_dir is not None:
            self._spool_gauges(rows)

    def _spool_gauges(self, rows: List[dict]) -> None:
        """Append pool gauges to the ``_pool`` telemetry spool.

        Counters are encoded as gauges carrying absolute values, so
        re-reading the spool from the start (what ``watch`` does) is
        idempotent — the newest record simply wins.
        """
        gauges = {"campaign.pool.workers": float(len(self.workers)),
                  "campaign.pool.steals": float(self.steals),
                  "campaign.pool.respawns": float(self.respawns)}
        for row in rows:
            prefix = f"campaign.pool.worker{row['index']}"
            gauges[f"{prefix}.occupancy"] = row["occupancy"]
            gauges[f"{prefix}.jobs_done"] = float(row["jobs_done"])
            gauges[f"{prefix}.steals"] = float(row["steals"])
        record = json.dumps({"k": "delta", "gauges": gauges},
                            sort_keys=True, separators=(",", ":"))
        path = pool_spool_path(self.run.telemetry_dir)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(record + "\n")

    # -- main loop -----------------------------------------------------------
    def execute(self, pending: List) -> None:
        """Run every pending item to an outcome, then stop the workers."""
        self._started_at = time.monotonic()
        batch_start = time.perf_counter()
        self.workers = [_Worker(index) for index in range(self.processes)]
        for worker in self.workers:
            self._start_process(worker)
        # Static round-robin seeding — the distribution stealing repairs.
        for position, item in enumerate(pending):
            self.workers[position % self.processes].queue.append(item)
        try:
            while True:
                self._release_ready()
                self._dispatch_idle()
                if not self._waiting and not self._busy():
                    if not any(worker.queue for worker in self.workers):
                        break
                    continue  # a dispatch failed and respawned; retry
                self._wait()
                self._kill_overdue()
                self.run.poll_telemetry()
                self._publish()
        except BaseException:
            for worker in self.workers:
                worker.proc.terminate()
            for worker in self.workers:
                worker.proc.join(5.0)
            raise
        self._publish(force=True, running=False)
        self._shutdown()
        if self.run.profiler is not None:
            self.run.profiler.add_span(
                f"pool[{len(pending)} jobs x{self.processes}]",
                batch_start - self.run.profiler.origin,
                time.perf_counter() - batch_start)
