"""Fault-tolerant campaign execution: retries, timeouts, resume, shards.

The paper's Table I argument is that PInTE turns an O(N²) 2nd-Trace
campaign into O(N·|P_induce|) single-trace runs — which makes the *runner*
the scalability bottleneck of a reproduction. This engine replaces the
bare ``multiprocessing.Pool`` batch runner with a scheduler built for
campaign scale:

* **two executors** — the default ``pool`` executor
  (:mod:`repro.campaign.pool`) forks N persistent workers once, streams
  jobs to them over pipes and lets idle workers steal pending jobs from
  loaded peers' deques; the ``spawn`` executor forks one worker process
  per in-flight job. Both give the same isolation story — a crash
  (segfault, ``os._exit``) or a hang takes down one job, never the run
  (the pool respawns only the dead worker) — and produce equivalent
  result stores; ``spawn`` trades throughput for a pristine process per
  job;
* **per-job timeouts** — an overdue worker is killed and the job retried;
* **bounded retry with exponential backoff** — transient failures heal
  themselves; permanent ones are captured (exception type, message, full
  traceback) as a :class:`JobFailure` record instead of aborting;
* **graceful degradation** — the campaign always runs to completion and
  ships a failure manifest next to the result store;
* **resume** — jobs whose deterministic id (:mod:`repro.campaign.ids`)
  already has a stored result are skipped, so a driver killed mid-run
  loses at most one in-flight job per worker;
* **sharding** — ``shard=(i, n)`` selects a disjoint, exhaustive subset of
  the campaign for this machine.

Execution modes: with ``processes <= 1`` and no timeout, jobs run inline
in this process — no pool, so ``pdb``/profilers attach naturally and
KeyboardInterrupt is clean. Setting ``timeout_seconds`` forces worker
subprocesses even at ``processes=1``, because a hung job can only be
killed from outside its process.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, replace
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.faults import parse_fault
from repro.campaign.ids import ID_SCHEME, job_id, shard_jobs
from repro.campaign.pool import DEFAULT_EXECUTOR, EXECUTORS, PoolExecutor
from repro.campaign.store import (
    ResultStore,
    telemetry_dir_for,
    write_failure_manifest,
)
from repro.config import MachineConfig
from repro.obs.telemetry import (
    CampaignTelemetry,
    TelemetrySettings,
    TelemetrySpooler,
    spool_path,
)
from repro.sim.batch import Job, run_job
from repro.sim.results import SimulationResult
from repro.sim.runner import ExperimentScale
from repro.sim.serialize import result_from_dict

__all__ = [
    "CampaignError",
    "CampaignReport",
    "JobFailure",
    "RetryPolicy",
    "TelemetrySettings",
    "execute_job",
    "run_campaign",
]

#: Progress callback: receives one plain-dict event per state change.
ProgressCallback = Callable[[dict], None]


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently a failing job is retried."""

    max_attempts: int = 3
    backoff_seconds: float = 0.5
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def delay_after(self, attempt: int) -> float:
        """Seconds to wait before the attempt following ``attempt``."""
        delay = self.backoff_seconds * self.backoff_factor ** (attempt - 1)
        return min(self.max_backoff_seconds, delay)

    def to_dict(self) -> dict:
        """Manifest-serialisable form."""
        return {"max_attempts": self.max_attempts,
                "backoff_seconds": self.backoff_seconds,
                "backoff_factor": self.backoff_factor,
                "max_backoff_seconds": self.max_backoff_seconds}


@dataclass
class JobFailure:
    """One job that exhausted its retries — recorded, never raised.

    ``kind`` is ``"error"`` (exception in the worker), ``"timeout"`` (killed
    past the deadline) or ``"crash"`` (worker died without reporting).
    """

    job_id: str
    job: Job
    kind: str
    error_type: str
    message: str
    traceback: str
    attempts: int

    def to_record(self) -> dict:
        """Store/manifest-serialisable form."""
        return {"kind": self.kind, "error_type": self.error_type,
                "message": self.message, "traceback": self.traceback,
                "attempts": self.attempts}


class CampaignError(RuntimeError):
    """Raised only when ``raise_on_failure=True`` (the ``run_batch`` shim)."""

    def __init__(self, failures: Sequence[JobFailure]) -> None:
        self.failures = list(failures)
        first = failures[0]
        super().__init__(
            f"{len(failures)} campaign job(s) failed; first: "
            f"{first.error_type}: {first.message}")


@dataclass
class CampaignReport:
    """Outcome of one campaign pass (including resumed results)."""

    total: int
    executed: int
    skipped: int
    failed: int
    retries: int
    results: List[SimulationResult]
    failures: List[JobFailure]
    results_by_id: Dict[str, SimulationResult]
    job_ids: List[str]
    wall_time_seconds: float
    store_path: Optional[Path] = None
    failure_manifest_path: Optional[Path] = None
    telemetry_dir: Optional[Path] = None
    telemetry: Optional[CampaignTelemetry] = None
    #: Which executor ran the non-inline jobs (``pool`` or ``spawn``).
    executor: str = DEFAULT_EXECUTOR
    #: Pool executor only: jobs idle workers stole from peers' deques.
    pool_steals: int = 0
    #: Pool executor only: workers respawned after a crash/timeout kill.
    pool_respawns: int = 0

    @property
    def ok(self) -> bool:
        """True when every selected job has a stored result."""
        return not self.failures and self.skipped + self.executed == self.total


def execute_job(job: Job, config: MachineConfig, scale: ExperimentScale,
                attempt: int = 1, trace_store=None,
                observe=None) -> SimulationResult:
    """Run one job, honouring ``__fault:`` injection names.

    This is the single entry point both the inline path and the worker
    subprocesses call, so fault behaviour is identical in either mode.
    ``trace_store`` (a :class:`~repro.trace.store.TraceStore` or directory
    path) is forwarded to :func:`repro.sim.batch.run_job` so workers serve
    traces from the shared on-disk cache; ``observe`` (a
    :class:`repro.obs.Observation`) gives the job a registry/profiler —
    the telemetry bus spools it home from worker processes.
    """
    fault = parse_fault(job.workload)
    if fault is None:
        return run_job(job, config, scale, trace_store=trace_store,
                       observe=observe)
    real_workload = fault.apply(attempt)  # may raise / hang / kill us
    return run_job(replace(job, workload=real_workload), config, scale,
                   trace_store=trace_store, observe=observe)


def _job_label(job: Job) -> str:
    """Short human label for progress lines."""
    if job.mode == "pinte":
        return f"{job.workload}@p={job.p_induce}"
    if job.mode == "pair":
        return f"{job.workload}+{job.co_runner}"
    if job.mode == "multi":
        label = f"{job.workload}+{'+'.join(job.co_runners)}"
        return f"{label}[{job.scheme}]" if job.scheme else label
    return job.workload


@dataclass
class _Pending:
    """One not-yet-finished job in the scheduler."""

    index: int
    job: Job
    jid: str
    attempt: int = 1
    ready_time: float = 0.0


@dataclass
class _Running:
    """One in-flight worker process."""

    item: _Pending
    proc: multiprocessing.Process
    started: float
    deadline: Optional[float]


@dataclass(frozen=True)
class _TelemetryTarget:
    """Picklable spool instructions handed to one worker attempt."""

    path: str
    job_id: str
    label: str
    interval_seconds: float


def _spooled_execute(job: Job, config: MachineConfig, scale: ExperimentScale,
                     attempt: int, trace_store,
                     telemetry: Optional[_TelemetryTarget],
                     ) -> SimulationResult:
    """Run one job, spooling telemetry when a target was configured.

    Shared by the worker subprocess and the inline path so a campaign
    looks identical on the telemetry bus in either execution mode. With
    ``telemetry=None`` this is exactly :func:`execute_job` — no
    observation bundle, no spool file, no sampling thread.
    """
    if telemetry is None:
        return execute_job(job, config, scale, attempt,
                           trace_store=trace_store)
    from repro.obs import Observation

    observe = Observation()
    spooler = TelemetrySpooler(
        telemetry.path, telemetry.job_id, attempt=attempt,
        label=telemetry.label,
        interval_seconds=telemetry.interval_seconds).start()
    start = time.perf_counter()
    try:
        result = execute_job(job, config, scale, attempt,
                             trace_store=trace_store, observe=observe)
    except BaseException:
        spooler.finish(registry=observe.registry, profiler=observe.profiler,
                       status="error",
                       wall_seconds=time.perf_counter() - start)
        raise
    spooler.finish(registry=observe.registry, profiler=observe.profiler,
                   status="ok", wall_seconds=time.perf_counter() - start,
                   instructions=result.instructions)
    return result


def _worker_main(conn, job: Job, config: MachineConfig,
                 scale: ExperimentScale, attempt: int,
                 trace_store=None,
                 telemetry: Optional[_TelemetryTarget] = None) -> None:
    """Subprocess entry point: run one job, report over the pipe."""
    try:
        result = _spooled_execute(job, config, scale, attempt, trace_store,
                                  telemetry)
        conn.send(("ok", result))
    except BaseException as exc:  # full capture is the point
        conn.send(("err", type(exc).__name__, str(exc),
                   traceback.format_exc()))
    finally:
        conn.close()


class _Progress:
    """Progress/ETA bookkeeping shared by both execution paths."""

    def __init__(self, total: int, skipped: int, workers: int,
                 callback: Optional[ProgressCallback], registry) -> None:
        self.total = total
        self.done = skipped
        self.failed = 0
        self.retries = 0
        self.workers = max(1, workers)
        self.callback = callback
        self.registry = registry
        self._durations: List[float] = []
        if registry is not None:
            registry.set("campaign.jobs_total", total)
            registry.count("campaign.skipped", skipped)

    def eta_seconds(self) -> Optional[float]:
        """Naive ETA: average job wall time x remaining / workers."""
        remaining = self.total - self.done - self.failed
        if not self._durations or remaining <= 0:
            return 0.0 if remaining <= 0 else None
        average = sum(self._durations) / len(self._durations)
        return remaining * average / self.workers

    def _emit(self, event: str, item: _Pending, **extra) -> None:
        if self.registry is not None:
            eta = self.eta_seconds()
            if eta is not None:
                self.registry.set("campaign.eta_seconds", eta)
        if self.callback is not None:
            self.callback({
                "event": event,
                "job_id": item.jid,
                "label": _job_label(item.job),
                "attempt": item.attempt,
                "completed": self.done,
                "failed": self.failed,
                "total": self.total,
                "eta_seconds": self.eta_seconds(),
                **extra,
            })

    def success(self, item: _Pending, wall: float) -> None:
        self.done += 1
        self._durations.append(wall)
        if self.registry is not None:
            self.registry.count("campaign.success")
        self._emit("done", item, wall_time_seconds=wall)

    def failure(self, item: _Pending, kind: str) -> None:
        self.failed += 1
        if self.registry is not None:
            self.registry.count("campaign.failure")
            if kind == "timeout":
                self.registry.count("campaign.timeout")
        self._emit("failed", item, failure_kind=kind)

    def retry(self, item: _Pending, kind: str, delay: float) -> None:
        self.retries += 1
        if self.registry is not None:
            self.registry.count("campaign.retry")
        self._emit("retry", item, failure_kind=kind, retry_delay=delay)


class _CampaignRun:
    """One pass of the scheduler over the pending jobs."""

    def __init__(self, config: MachineConfig, scale: ExperimentScale,
                 retry: RetryPolicy, timeout: Optional[float],
                 store: Optional[ResultStore], progress: _Progress,
                 profiler, trace_store=None,
                 telemetry: Optional[TelemetrySettings] = None,
                 telemetry_dir: Optional[Path] = None) -> None:
        self.config = config
        self.scale = scale
        self.retry = retry
        self.timeout = timeout
        self.store = store
        self.progress = progress
        self.profiler = profiler
        self.trace_store = trace_store
        self.telemetry = telemetry
        self.telemetry_dir = telemetry_dir
        self.telemetry_view: Optional[CampaignTelemetry] = None
        if telemetry is not None and telemetry_dir is not None:
            self.telemetry_view = CampaignTelemetry(telemetry_dir)
        self._telemetry_polled = 0.0
        self.results_by_id: Dict[str, SimulationResult] = {}
        self.failures: List[JobFailure] = []
        self.pool: Optional[PoolExecutor] = None

    # -- telemetry -----------------------------------------------------------
    def _telemetry_target(self, item: _Pending) -> Optional[_TelemetryTarget]:
        """The spool instructions for one attempt (None when disabled)."""
        if self.telemetry is None or self.telemetry_dir is None:
            return None
        return _TelemetryTarget(
            path=str(spool_path(self.telemetry_dir, item.jid)),
            job_id=item.jid, label=_job_label(item.job),
            interval_seconds=self.telemetry.interval_seconds)

    def poll_telemetry(self, force: bool = False) -> None:
        """Tail the spool dir and refresh the live campaign registry.

        Throttled to roughly the resource-sampling cadence so the
        scheduler loop never spends its time re-reading spool files.
        """
        if self.telemetry_view is None:
            return
        now = time.monotonic()
        cadence = max(0.5, self.telemetry.interval_seconds)
        if not force and now - self._telemetry_polled < cadence:
            return
        self._telemetry_polled = now
        self.telemetry_view.poll()
        registry = self.progress.registry
        if registry is not None:
            self.telemetry_view.fold_into(registry)

    # -- shared outcome handling -------------------------------------------
    def _record_success(self, item: _Pending, result: SimulationResult,
                        wall: float) -> None:
        self.results_by_id[item.jid] = result
        # Workers have their own registries; the trace-cache tallies come
        # home through ``result.extra`` and are absorbed here so the
        # campaign-level registry sees hits/misses across all processes.
        registry = self.progress.registry
        if registry is not None:
            hits = int(result.extra.get("trace_cache_hits", 0))
            if hits:
                registry.count("trace.cache.hit", hits)
            misses = int(result.extra.get("trace_cache_misses", 0))
            if misses:
                registry.count("trace.cache.miss", misses)
        if self.store is not None:
            self.store.append_result(item.jid, item.job, result,
                                     attempts=item.attempt,
                                     wall_time_seconds=wall)
        self.progress.success(item, wall)

    def _attempt_failed(self, item: _Pending, kind: str, error_type: str,
                        message: str, trace: str) -> Optional[_Pending]:
        """Handle one failed attempt; returns the retry item, if any."""
        if item.attempt < self.retry.max_attempts:
            delay = self.retry.delay_after(item.attempt)
            self.progress.retry(item, kind, delay)
            return replace(item, attempt=item.attempt + 1,
                           ready_time=time.monotonic() + delay)
        failure = JobFailure(job_id=item.jid, job=item.job, kind=kind,
                             error_type=error_type, message=message,
                             traceback=trace, attempts=item.attempt)
        self.failures.append(failure)
        if self.store is not None:
            self.store.append_failure(item.jid, item.job,
                                      failure.to_record())
        self.progress.failure(item, kind)
        return None

    # -- inline execution ---------------------------------------------------
    def run_inline(self, pending: List[_Pending]) -> None:
        """Sequential in-process execution (``pdb``-able, no timeouts)."""
        for item in pending:
            while True:
                start = time.perf_counter()
                try:
                    result = _spooled_execute(item.job, self.config,
                                              self.scale, item.attempt,
                                              self.trace_store,
                                              self._telemetry_target(item))
                except Exception as exc:  # KeyboardInterrupt passes through
                    retry_item = self._attempt_failed(
                        item, "error", type(exc).__name__, str(exc),
                        traceback.format_exc())
                    self.poll_telemetry()
                    if retry_item is None:
                        break
                    wait = retry_item.ready_time - time.monotonic()
                    if wait > 0:
                        time.sleep(wait)
                    item = retry_item
                    continue
                wall = time.perf_counter() - start
                if self.profiler is not None:
                    self.profiler.add_span(
                        f"job{item.index}:{item.job.workload}",
                        start - self.profiler.origin, wall)
                self._record_success(item, result, wall)
                self.poll_telemetry()
                break

    # -- pool execution ------------------------------------------------------
    def run_pool(self, pending: List[_Pending], processes: int) -> None:
        """Persistent work-stealing workers (:mod:`repro.campaign.pool`)."""
        self.pool = PoolExecutor(self, processes)
        self.pool.execute(pending)

    # -- subprocess execution -----------------------------------------------
    def _launch(self, item: _Pending,
                in_flight: Dict[object, _Running]) -> None:
        recv_conn, send_conn = multiprocessing.Pipe(duplex=False)
        proc = multiprocessing.Process(
            target=_worker_main,
            args=(send_conn, item.job, self.config, self.scale, item.attempt,
                  self.trace_store, self._telemetry_target(item)),
            daemon=True)
        proc.start()
        send_conn.close()
        now = time.monotonic()
        deadline = now + self.timeout if self.timeout is not None else None
        in_flight[recv_conn] = _Running(item, proc, now, deadline)

    def _reap(self, conn, running: _Running,
              waiting: List[_Pending]) -> None:
        """Consume one finished worker's report (or its corpse)."""
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            payload = None
        conn.close()
        running.proc.join()
        wall = time.monotonic() - running.started
        if payload is not None and payload[0] == "ok":
            self._record_success(running.item, payload[1], wall)
            return
        if payload is not None:
            _, error_type, message, trace = payload
            retry_item = self._attempt_failed(running.item, "error",
                                              error_type, message, trace)
        else:
            code = running.proc.exitcode
            retry_item = self._attempt_failed(
                running.item, "crash", "WorkerCrash",
                f"worker exited with code {code} before reporting", "")
        if retry_item is not None:
            waiting.append(retry_item)

    def _kill_overdue(self, in_flight: Dict[object, _Running],
                      waiting: List[_Pending]) -> None:
        now = time.monotonic()
        for conn, running in list(in_flight.items()):
            if running.deadline is None or now < running.deadline:
                continue
            if conn.poll():  # finished just under the wire — reap normally
                continue
            del in_flight[conn]
            running.proc.terminate()
            running.proc.join(5.0)
            if running.proc.is_alive():  # pragma: no cover — stubborn child
                running.proc.kill()
                running.proc.join()
            conn.close()
            retry_item = self._attempt_failed(
                running.item, "timeout", "JobTimeout",
                f"job exceeded {self.timeout:g}s and was killed",
                "")
            if retry_item is not None:
                waiting.append(retry_item)

    def run_parallel(self, pending: List[_Pending], processes: int) -> None:
        """Process-per-job scheduler with deadlines and backoff."""
        waiting = list(pending)
        in_flight: Dict[object, _Running] = {}
        batch_start = time.perf_counter()
        try:
            while waiting or in_flight:
                now = time.monotonic()
                waiting.sort(key=lambda item: (item.ready_time, item.index))
                while (waiting and len(in_flight) < processes
                       and waiting[0].ready_time <= now):
                    self._launch(waiting.pop(0), in_flight)
                if not in_flight:
                    # Everything pending is backing off; sleep it out.
                    time.sleep(max(0.0, waiting[0].ready_time
                                   - time.monotonic()))
                    continue
                timeout = self._wait_budget(waiting, in_flight, processes)
                if self.telemetry_view is not None:
                    # Wake up at the spool cadence even when every worker
                    # is mid-job, so the live registry keeps moving.
                    cadence = max(0.5, self.telemetry.interval_seconds)
                    timeout = cadence if timeout is None else min(timeout,
                                                                  cadence)
                for conn in _connection_wait(list(in_flight), timeout):
                    self._reap(conn, in_flight.pop(conn), waiting)
                self._kill_overdue(in_flight, waiting)
                self.poll_telemetry()
        except BaseException:
            for running in in_flight.values():
                running.proc.terminate()
            for running in in_flight.values():
                running.proc.join(5.0)
            raise
        if self.profiler is not None:
            self.profiler.add_span(
                f"batch[{len(pending)} jobs x{processes}]",
                batch_start - self.profiler.origin,
                time.perf_counter() - batch_start)

    def _wait_budget(self, waiting: List[_Pending],
                     in_flight: Dict[object, _Running],
                     processes: int) -> Optional[float]:
        """How long the scheduler may block waiting on worker pipes."""
        now = time.monotonic()
        budgets = [running.deadline - now
                   for running in in_flight.values()
                   if running.deadline is not None]
        if waiting and len(in_flight) < processes:
            budgets.append(waiting[0].ready_time - now)
        if not budgets:
            return None  # block until some worker reports
        return max(0.0, min(budgets))


def run_campaign(
    jobs: Sequence[Job],
    config: MachineConfig,
    scale: ExperimentScale,
    *,
    processes: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    timeout_seconds: Optional[float] = None,
    store: Optional[Union[str, Path, ResultStore]] = None,
    resume: bool = False,
    shard: Optional[Tuple[int, int]] = None,
    observe=None,
    progress: Optional[ProgressCallback] = None,
    raise_on_failure: bool = False,
    trace_store: Optional[Union[str, Path]] = None,
    telemetry: Union[None, bool, float, TelemetrySettings] = None,
    executor: Optional[str] = None,
) -> CampaignReport:
    """Run a campaign to completion, whatever the workers do.

    ``executor`` picks the parallel scheduler: ``"pool"`` (the default)
    keeps N workers alive for the whole campaign and balances load by
    work stealing; ``"spawn"`` forks a pristine process per job attempt.
    Failure capture, retries, timeouts, resume and stored results are
    equivalent either way (see :mod:`repro.campaign.pool`); inline
    execution (``processes<=1`` with no timeout) ignores the choice.

    ``store`` (a path or :class:`ResultStore`) enables persistence: every
    outcome is appended as it lands, and ``resume=True`` skips jobs whose
    id already has a stored result (prior *failures* are retried — they
    are usually transient). Without ``resume``, an existing non-empty
    store is refused rather than silently extended.

    ``shard=(i, n)`` restricts this invocation to a deterministic,
    disjoint 1/n-th of the campaign (see :func:`repro.campaign.ids.shard_jobs`).

    ``trace_store`` (a directory path or
    :class:`~repro.trace.store.TraceStore`) makes every worker consult the
    shared on-disk trace cache before generating, so a sharded campaign
    builds each trace once per machine. Per-job hit/miss tallies travel
    home in ``result.extra`` and are absorbed into the observation
    registry as ``trace.cache.hit`` / ``trace.cache.miss``.

    ``observe`` (a :class:`repro.obs.Observation`) receives campaign
    counters/gauges in its registry and per-job/batch spans in its
    profiler. ``progress`` gets one dict per job state change.

    ``telemetry`` switches on the cross-process telemetry bus (off by
    default — zero overhead when unset): every worker spools registry
    deltas, profiler spans and resource samples to a per-job JSONL file
    under ``<store>.telemetry/``, and the parent tails the spools into
    the live campaign registry while jobs are still executing. Pass
    ``True`` for the default 1 s resource cadence, a number for a custom
    cadence in seconds, or a :class:`TelemetrySettings`. Requires
    ``store`` (the spool directory lives next to it); ``repro campaign
    watch`` renders the same spools from any other process.

    With ``raise_on_failure`` the first permanent failure raises
    :class:`CampaignError` *after* the campaign completes — the default is
    graceful degradation: finish everything, report failures in the
    returned :class:`CampaignReport` and the on-disk failure manifest.
    """
    wall_start = time.perf_counter()
    retry = retry if retry is not None else RetryPolicy()
    executor = DEFAULT_EXECUTOR if executor is None else executor
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; "
                         f"known: {', '.join(EXECUTORS)}")
    telemetry_settings = TelemetrySettings.coerce(telemetry)
    if telemetry_settings is not None and store is None:
        raise ValueError("telemetry needs a result store — the spool "
                         "directory lives next to it")
    jobs = list(jobs)
    if shard is not None:
        jobs = shard_jobs(jobs, shard[0], shard[1], config, scale)
    ids = [job_id(job, config, scale) for job in jobs]

    result_store: Optional[ResultStore] = None
    stored: Dict[str, dict] = {}
    if store is not None:
        result_store = (store if isinstance(store, ResultStore)
                        else ResultStore(store))
        if result_store.exists():
            if not resume:
                raise FileExistsError(
                    f"{result_store.path} already holds campaign records; "
                    "resume it (repro campaign resume / resume=True) or "
                    "pick a fresh store path")
            contents = result_store.load()
            header_scheme = (contents.header or {}).get("id_scheme")
            if header_scheme != ID_SCHEME:
                # Resuming across id schemes would recompute every id under
                # the new scheme, match nothing, and silently re-run (or,
                # worse, collide) — refuse loudly instead.
                raise ValueError(
                    f"{result_store.path} was written under job-id scheme "
                    f"{header_scheme or 'unversioned (pre-v3)'!s}, but this "
                    f"version computes {ID_SCHEME} ids; its stored results "
                    "cannot be matched to the new ids. Start a fresh store "
                    "(or re-run with the repro version that wrote it).")
            stored = contents.results
        result_store.ensure_header()

    registry = profiler = None
    if observe is not None:
        if observe.registry is None:
            from repro.obs import MetricRegistry
            observe.registry = MetricRegistry()
        registry = observe.registry
        profiler = observe.profiler

    pending: List[_Pending] = []
    resumed: Dict[str, SimulationResult] = {}
    for index, (job, jid) in enumerate(zip(jobs, ids)):
        record = stored.get(jid)
        if record is not None:
            resumed[jid] = result_from_dict(record["result"])
        else:
            pending.append(_Pending(index, job, jid))
    skipped = len(resumed)

    if processes is None:
        processes = min(len(pending), multiprocessing.cpu_count()) or 1
    inline = (timeout_seconds is None
              and (processes <= 1 or len(pending) <= 1))
    workers = 1 if inline else max(1, processes)

    telemetry_dir: Optional[Path] = None
    if telemetry_settings is not None:
        telemetry_dir = telemetry_dir_for(result_store.path)
        telemetry_dir.mkdir(parents=True, exist_ok=True)

    progress_state = _Progress(total=len(jobs), skipped=skipped,
                               workers=workers, callback=progress,
                               registry=registry)
    runner = _CampaignRun(config, scale, retry, timeout_seconds,
                          result_store, progress_state, profiler,
                          trace_store=trace_store,
                          telemetry=telemetry_settings,
                          telemetry_dir=telemetry_dir)
    runner.results_by_id.update(resumed)
    if pending:
        if inline:
            runner.run_inline(pending)
        elif executor == "pool":
            runner.run_pool(pending, workers)
        else:
            runner.run_parallel(pending, workers)
    runner.poll_telemetry(force=True)  # final fold: nothing left in flight

    failure_manifest_path = None
    if result_store is not None:
        # Rebuild the failure manifest from the store so it reflects every
        # still-outstanding failure, not just this pass's.
        contents = result_store.load()
        failure_manifest_path = write_failure_manifest(
            result_store.path,
            [contents.failures[jid] for jid in sorted(contents.failures)])

    wall = time.perf_counter() - wall_start
    if registry is not None:
        registry.set("campaign.wall_seconds", wall)
    report = CampaignReport(
        total=len(jobs),
        executed=len(runner.results_by_id) - skipped,
        skipped=skipped,
        failed=len(runner.failures),
        retries=progress_state.retries,
        results=[runner.results_by_id[jid] for jid in ids
                 if jid in runner.results_by_id],
        failures=runner.failures,
        results_by_id=dict(runner.results_by_id),
        job_ids=ids,
        wall_time_seconds=wall,
        store_path=result_store.path if result_store is not None else None,
        failure_manifest_path=failure_manifest_path,
        telemetry_dir=telemetry_dir,
        telemetry=runner.telemetry_view,
        executor=executor,
        pool_steals=runner.pool.steals if runner.pool is not None else 0,
        pool_respawns=(runner.pool.respawns
                       if runner.pool is not None else 0),
    )
    if raise_on_failure and report.failures:
        raise CampaignError(report.failures)
    return report
