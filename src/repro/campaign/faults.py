"""Deterministic fault injection for exercising campaign robustness.

A campaign job whose workload name starts with ``__fault:`` does not name a
real workload model; it names a failure behaviour the worker acts out
before (or instead of) simulating. That makes the engine's retry, timeout
and failure-capture paths testable in CI with ordinary jobs — no
monkeypatching inside worker processes.

Grammar (examples)::

    __fault:raise                 always raise InjectedFault
    __fault:exit                  kill the worker process (exit code 17)
    __fault:hang                  block for an hour (trips the job timeout)
    __fault:flaky:2+470.lbm       raise on attempts 1..2, then simulate
                                  470.lbm normally — a transient failure
    __fault:crash:1+470.lbm       kill the worker on attempt 1, then
                                  simulate normally — a transient crash
    __fault:sleep:0.5+470.lbm     sleep 0.5 s, then simulate normally —
                                  a controllable straggler (work-stealing
                                  tests park one worker on it)

``flaky``/``crash``/``sleep`` require a real workload after ``+`` so the
job eventually produces a result; the always-failing kinds ignore any
``+workload`` suffix. Behaviour depends only on the attempt number the
engine passes in, so it is deterministic across processes and resumes.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "FAULT_PREFIX",
    "FaultSpec",
    "InjectedFault",
    "fault_workload",
    "parse_fault",
]

#: Workload-name prefix marking a fault-injection job.
FAULT_PREFIX = "__fault:"

#: How long a ``hang`` fault blocks — far beyond any sane job timeout.
HANG_SECONDS = 3600.0

#: Exit code used by the ``exit`` fault (distinctive in failure records).
EXIT_CODE = 17

_KINDS = ("raise", "exit", "hang", "flaky", "crash", "sleep")


class InjectedFault(RuntimeError):
    """The error raised by ``raise``/``flaky`` faults (a stand-in for any
    transient worker exception)."""


@dataclass(frozen=True)
class FaultSpec:
    """Parsed form of a ``__fault:`` workload name."""

    kind: str
    #: ``flaky``/``crash`` only: fail on attempts ``1..fail_attempts``.
    fail_attempts: int = 0
    #: Workload simulated once the fault stops firing.
    real_workload: Optional[str] = None
    #: ``sleep`` only: seconds to block before simulating.
    sleep_seconds: float = 0.0

    def apply(self, attempt: int) -> str:
        """Act out the fault for ``attempt`` (1-based).

        Returns the real workload name to simulate when the fault does not
        fire; raises (or hangs, or kills the process) when it does.
        """
        if self.kind == "raise":
            raise InjectedFault(f"injected failure (attempt {attempt})")
        if self.kind == "exit":
            os._exit(EXIT_CODE)
        if self.kind == "hang":
            time.sleep(HANG_SECONDS)
            raise InjectedFault("hang fault outlived its sleep")
        if self.kind == "sleep":
            time.sleep(self.sleep_seconds)
            return self.real_workload
        if self.kind == "crash":
            if attempt <= self.fail_attempts:
                os._exit(EXIT_CODE)
            return self.real_workload
        if attempt <= self.fail_attempts:  # flaky
            raise InjectedFault(
                f"injected transient failure "
                f"(attempt {attempt}/{self.fail_attempts})")
        return self.real_workload


def parse_fault(workload: str) -> Optional[FaultSpec]:
    """Parse a workload name; ``None`` when it is not a fault job."""
    if not workload.startswith(FAULT_PREFIX):
        return None
    body = workload[len(FAULT_PREFIX):]
    real: Optional[str] = None
    if "+" in body:
        body, real = body.split("+", 1)
    parts = body.split(":")
    kind = parts[0]
    if kind not in _KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r}; known: {', '.join(_KINDS)}")
    if kind in ("flaky", "crash"):
        if len(parts) != 2:
            raise ValueError(
                f"{kind} fault needs a count: __fault:{kind}:N+real")
        if not real:
            raise ValueError(
                f"{kind} fault needs a real workload: __fault:{kind}:N+real")
        return FaultSpec(kind, fail_attempts=int(parts[1]), real_workload=real)
    if kind == "sleep":
        if len(parts) != 2:
            raise ValueError(
                "sleep fault needs a duration: __fault:sleep:SECS+real")
        if not real:
            raise ValueError(
                "sleep fault needs a real workload: __fault:sleep:SECS+real")
        return FaultSpec(kind, real_workload=real,
                         sleep_seconds=float(parts[1]))
    if len(parts) != 1:
        raise ValueError(f"fault kind {kind!r} takes no parameter")
    return FaultSpec(kind)


def fault_workload(kind: str, fail_attempts: int = 0,
                   real_workload: Optional[str] = None,
                   sleep_seconds: float = 0.0) -> str:
    """Build (and validate) a fault workload name — the test-facing helper."""
    name = FAULT_PREFIX + kind
    if kind in ("flaky", "crash"):
        name += f":{fail_attempts}"
    elif kind == "sleep":
        name += f":{sleep_seconds:g}"
    if real_workload:
        name += f"+{real_workload}"
    parse_fault(name)  # validate eagerly so typos fail at build time
    return name
