"""Unified component registry for every experiment axis.

The paper sweeps the same handful of dimensions everywhere — replacement
policy, inclusion, prefetch string, branch predictor, partition scheme,
workload (Figs 5-11, Table II) — and each used to live in its own ad-hoc
string-keyed dict with its own factory signature and error style. This
module provides the one abstraction they all share:

* :class:`ComponentRegistry` — an ordered, :class:`~collections.abc.Mapping`
  compatible registry (existing ``POLICIES[name]`` / ``sorted(PREFETCHERS)``
  / ``.items()`` call sites keep working verbatim) with a registration
  decorator for third-party plugins.
* :class:`ComponentSpec` — per-component capability metadata introspected
  from the constructor signature (*accepts seed*, tunable parameters,
  declared constraints), the machine-readable form behind
  ``repro components ls`` and the ``SEEDED_POLICIES`` derivation.
* :class:`UnknownComponentError` — the single ``KeyError`` shape every
  registry raises for unknown names, with difflib did-you-mean candidates;
  the CLI catches it and exits with a clean one-line error.
* :func:`load_plugin` — opt-in third-party loading (``--plugin``) from a
  dotted module path or a ``.py`` file; importing the module runs its
  ``register`` decorators against the built-in registries.

The registry deliberately imports nothing from the rest of ``repro`` so the
five component packages (``cache.replacement``, ``cache.partition``,
``prefetch``, ``branch``, ``trace.spec_models``) and the named machine
config registry (:mod:`repro.configs`) can all depend on it without cycles.
"""

from __future__ import annotations

import difflib
import importlib
import importlib.util
import inspect
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Callable, Dict, Iterator, Mapping, Optional, Tuple)


class UnknownComponentError(KeyError):
    """Unknown component name, as a :class:`KeyError` with suggestions.

    Subclasses ``KeyError`` so every pre-registry call site
    (``pytest.raises(KeyError)``, ``name in REGISTRY``) keeps working, but
    overrides ``__str__`` — ``KeyError`` would repr-quote the whole message
    — so the CLI can print it as a clean one-liner.
    """

    def __init__(self, kind: str, name: str, known) -> None:
        self.kind = kind
        self.name = name
        self.known = tuple(sorted(known))
        message = (f"unknown {kind} {name!r}; "
                   f"known: {', '.join(self.known)}")
        close = difflib.get_close_matches(name, self.known, n=2, cutoff=0.6)
        if close:
            message += (" (did you mean "
                        + " or ".join(repr(c) for c in close) + "?)")
        self.message = message
        super().__init__(message)

    def __str__(self) -> str:
        return self.message


@dataclass(frozen=True)
class ComponentSpec:
    """Introspected capability metadata for one registered component.

    Attributes:
        kind: the registry's component kind (``"replacement policy"``...).
        name: the registered name.
        component: the registered object (class, factory, or instance).
        accepts_seed: whether the constructor takes a ``seed`` parameter —
            the capability that replaced the hand-maintained
            ``SEEDED_POLICIES`` frozenset.
        accepts_params: whether the constructor has tunable (defaulted)
            parameters beyond ``seed``.
        params: every constructor parameter name, in signature order.
        tunable_params: the subset of :attr:`params` with defaults.
        constraints: declared geometry constraints (e.g. the IP-stride
            prefetcher's ``min_level_blocks``), from the component's
            ``spec_constraints`` class attribute or the registration call.
        summary: one-line description (first docstring line by default).
    """

    kind: str
    name: str
    component: object
    accepts_seed: bool
    accepts_params: bool
    params: Tuple[str, ...]
    tunable_params: Tuple[str, ...]
    constraints: Mapping[str, object] = field(default_factory=dict)
    summary: str = ""


def _signature_params(component: object) -> Tuple[Tuple[str, ...],
                                                  Tuple[str, ...]]:
    """``(params, tunable_params)`` introspected from a component.

    Classes and callables are inspected through :func:`inspect.signature`
    (``self`` and ``*args``/``**kwargs`` excluded); plain instances (e.g.
    :class:`~repro.trace.spec_models.WorkloadSpec` entries) have none.
    """
    if not callable(component):
        return (), ()
    try:
        signature = inspect.signature(component)
    except (TypeError, ValueError):  # builtins without introspectable sigs
        return (), ()
    params = []
    tunable = []
    for parameter in signature.parameters.values():
        if parameter.kind in (inspect.Parameter.VAR_POSITIONAL,
                              inspect.Parameter.VAR_KEYWORD):
            continue
        params.append(parameter.name)
        if parameter.default is not inspect.Parameter.empty:
            tunable.append(parameter.name)
    return tuple(params), tuple(tunable)


def _first_doc_line(component: object) -> str:
    """First non-empty docstring line, or ``""``."""
    doc = inspect.getdoc(component) or ""
    for line in doc.splitlines():
        if line.strip():
            return line.strip()
    return ""


class ComponentRegistry(Mapping):
    """Ordered name -> component mapping with capability metadata.

    Drop-in compatible with the plain dicts it replaced: ``REG[name]``,
    ``name in REG``, ``sorted(REG)``, ``REG.items()`` and ``len(REG)`` all
    behave identically — except that an unknown name raises
    :class:`UnknownComponentError` (still a ``KeyError``) with did-you-mean
    candidates instead of a bare ``KeyError(name)``.
    """

    def __init__(self, kind: str,
                 components: Optional[Mapping[str, object]] = None, *,
                 describe: Optional[Callable[[object], str]] = None) -> None:
        self.kind = kind
        self._describe = describe
        self._components: Dict[str, object] = {}
        self._specs: Dict[str, ComponentSpec] = {}
        for name, component in (components or {}).items():
            self.add(name, component)

    # -- Mapping interface -------------------------------------------------
    def __getitem__(self, name: str) -> object:
        try:
            return self._components[name]
        except KeyError:
            raise UnknownComponentError(self.kind, name,
                                        self._components) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._components)

    def __len__(self) -> int:
        return len(self._components)

    def __repr__(self) -> str:
        return (f"ComponentRegistry({self.kind!r}, "
                f"{{{', '.join(map(repr, self._components))}}})")

    # -- registration ------------------------------------------------------
    def add(self, name: str, component: object, *,
            constraints: Optional[Mapping[str, object]] = None,
            summary: Optional[str] = None) -> object:
        """Register ``component`` under ``name``; returns the component.

        Capability metadata is introspected at registration time; explicit
        ``constraints``/``summary`` override the defaults (a
        ``spec_constraints`` attribute and the first docstring line). A
        duplicate name is a ``ValueError`` — re-registration is always a
        bug, not an override mechanism.
        """
        if name in self._components:
            raise ValueError(f"duplicate {self.kind} name {name!r}")
        params, tunable = _signature_params(component)
        if constraints is None:
            constraints = dict(getattr(component, "spec_constraints",
                                       None) or {})
        if summary is None:
            if self._describe is not None:
                summary = self._describe(component)
            else:
                summary = _first_doc_line(component)
        self._components[name] = component
        self._specs[name] = ComponentSpec(
            kind=self.kind, name=name, component=component,
            accepts_seed="seed" in params,
            accepts_params=bool([p for p in tunable if p != "seed"]),
            params=params, tunable_params=tuple(tunable),
            constraints=dict(constraints), summary=summary)
        return component

    def register(self, name_or_component=None, *,
                 name: Optional[str] = None,
                 constraints: Optional[Mapping[str, object]] = None,
                 summary: Optional[str] = None):
        """Decorator form of :meth:`add`.

        Usable bare (``@REG.register`` — the name comes from the
        component's ``name`` attribute, falling back to ``__name__``), with
        a positional name (``@REG.register("fifo")``), or with keywords
        (``@REG.register(name="fifo", constraints={...})``).
        """
        if name_or_component is not None and not isinstance(
                name_or_component, str):
            component = name_or_component
            derived = getattr(component, "name", None) or getattr(
                component, "__name__", None)
            if not derived:
                raise ValueError(
                    f"cannot derive a {self.kind} name from {component!r}; "
                    "pass one explicitly")
            self.add(derived, component, constraints=constraints,
                     summary=summary)
            return component
        if isinstance(name_or_component, str):
            if name is not None:
                raise ValueError("component name given twice")
            name = name_or_component

        def decorator(component):
            derived = name or getattr(component, "name", None) or getattr(
                component, "__name__", None)
            if not derived:
                raise ValueError(
                    f"cannot derive a {self.kind} name from {component!r}; "
                    "pass one explicitly")
            self.add(derived, component, constraints=constraints,
                     summary=summary)
            return component

        return decorator

    # -- introspection -----------------------------------------------------
    def spec(self, name: str) -> ComponentSpec:
        """The :class:`ComponentSpec` for ``name`` (unified unknown error)."""
        if name not in self._specs:
            raise UnknownComponentError(self.kind, name, self._specs)
        return self._specs[name]

    def specs(self) -> Tuple[ComponentSpec, ...]:
        """All specs in registration order."""
        return tuple(self._specs.values())

    def names(self) -> Tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._components))


def load_plugin(spec: str):
    """Import a third-party component plugin; returns the module.

    ``spec`` is either a dotted module path (``mylab.policies``) or a
    filesystem path to a ``.py`` file (``examples/plugin_policy.py``).
    Importing the module is the registration mechanism: the module body
    calls ``REGISTRY.register(...)`` / ``REGISTRY.add(...)`` against the
    built-in registries. Campaign workers inherit parent-process
    registrations through ``fork``; the manifest records the plugin specs
    so ``--plugin`` can be replayed on resume.
    """
    looks_like_path = spec.endswith(".py") or "/" in spec or "\\" in spec
    if looks_like_path:
        path = Path(spec)
        if not path.is_file():
            raise FileNotFoundError(f"plugin file not found: {spec}")
        module_name = "repro_plugin_" + path.stem.replace("-", "_")
        if module_name in sys.modules:
            return sys.modules[module_name]
        loader_spec = importlib.util.spec_from_file_location(module_name,
                                                             path)
        if loader_spec is None or loader_spec.loader is None:
            raise ImportError(f"cannot load plugin from {spec!r}")
        module = importlib.util.module_from_spec(loader_spec)
        sys.modules[module_name] = module
        loader_spec.loader.exec_module(module)
        return module
    return importlib.import_module(spec)
