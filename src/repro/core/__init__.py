"""PInTE core: the paper's primary contribution.

The engine (:class:`PInTE`) injects theft evictions into an LLC with
probability ``P_induce`` per access; :class:`ContentionTracker` accounts for
thefts and interference (CASHT metrics); :data:`PAPER_PINDUCE_SWEEP` is the
12-point configuration sweep used throughout the evaluation.
"""

from repro.core.counters import (
    STOLEN_SET_CAP,
    ContentionCounters,
    ContentionTracker,
)
from repro.core.extensions import BackgroundDramTraffic, PeriodicPinte
from repro.core.mechanics import (
    FIG2A_SCRIPT,
    Event,
    Narrative,
    induced_contention_narrative,
    real_contention_narrative,
)
from repro.core.pinte import PInTE, PinteStats
from repro.core.pinte_config import (
    PAPER_PINDUCE_SWEEP,
    PinteConfig,
    TRIGGER_MODES,
    TRIGGER_PERIODIC,
    TRIGGER_PER_ACCESS,
)

__all__ = [
    "BackgroundDramTraffic",
    "ContentionCounters",
    "ContentionTracker",
    "Event",
    "FIG2A_SCRIPT",
    "Narrative",
    "induced_contention_narrative",
    "real_contention_narrative",
    "PAPER_PINDUCE_SWEEP",
    "PInTE",
    "PeriodicPinte",
    "PinteConfig",
    "PinteStats",
    "STOLEN_SET_CAP",
    "TRIGGER_MODES",
    "TRIGGER_PERIODIC",
    "TRIGGER_PER_ACCESS",
]
