"""PInTE extensions sketched by the paper's limitations section (IV-B/E2b).

Two of the paper's three named error sources come with suggested remedies
that this module implements:

* core-bound workloads trigger per-access PInTE too rarely — *"an
  independent PInTE module could avoid this"* → :class:`PeriodicPinte`,
  a clock-driven trigger that fires every ``period_cycles`` regardless of
  the workload's LLC activity;
* DRAM-bound workloads see contention beyond the LLC — *"increasing DRAM
  access costs could complement this"* → :class:`BackgroundDramTraffic`,
  a synthetic request stream that occupies the shared DRAM channels the way
  a co-runner's misses would.

Both are opt-in via :class:`~repro.core.pinte_config.PinteConfig` and ship
with ablation benches comparing them against the paper's baseline design.
"""

from __future__ import annotations

from repro.core.pinte import PInTE
from repro.dram import Dram
from repro.util.rng import DeterministicRng

#: Sets swept per periodic induction round (keeps one round cheap while
#: still reaching the whole cache over time).
SETS_PER_ROUND = 4


class PeriodicPinte:
    """Clock-driven wrapper over a :class:`PInTE` engine.

    Every ``period_cycles`` of core time is one trigger opportunity: the
    usual GEN-PROBABILITY draw runs, and on success the induction flow is
    applied to a rotating window of sets, so contention reaches the whole
    LLC even if the workload never touches it.
    """

    def __init__(self, engine: PInTE, period_cycles: int) -> None:
        if period_cycles <= 0:
            raise ValueError("period_cycles must be positive")
        self.engine = engine
        self.period_cycles = period_cycles
        self._next_fire = period_cycles
        self._cursor = 0
        self._rng = DeterministicRng(engine.config.seed, "pinte-periodic")
        self.rounds = 0
        self.invalidations = 0

    def maybe_tick(self, cycle: int, owner: int) -> int:
        """Run pending trigger opportunities up to ``cycle``.

        Returns the number of blocks invalidated. Bounded work per call: at
        most a handful of rounds even after a long stall.
        """
        invalidated = 0
        fired_rounds = 0
        while cycle >= self._next_fire and fired_rounds < 8:
            self._next_fire += self.period_cycles
            fired_rounds += 1
            if self._rng.trigger_ratio() > self.engine.config.p_induce:
                continue
            self.rounds += 1
            n_sets = self.engine.llc.n_sets
            for _ in range(min(SETS_PER_ROUND, n_sets)):
                set_index = self._cursor
                self._cursor = (self._cursor + 1) % n_sets
                invalidated += self.engine.on_llc_access(set_index, cycle, owner)
        self.invalidations += invalidated
        return invalidated


class BackgroundDramTraffic:
    """Synthetic DRAM request stream occupying shared channels.

    Models the off-chip half of a co-runner: ``rate_per_kilocycle`` requests
    are injected at jittered intervals across the whole address space,
    advancing each channel's busy window so the workload's own misses queue
    behind them — without simulating a second core.
    """

    def __init__(self, dram: Dram, rate_per_kilocycle: float, seed: int = 0,
                 write_fraction: float = 0.3) -> None:
        if rate_per_kilocycle <= 0:
            raise ValueError("rate_per_kilocycle must be positive")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        self.dram = dram
        self.interval = 1000.0 / rate_per_kilocycle
        self.write_fraction = write_fraction
        self._rng = DeterministicRng(seed, "dram-background")
        self._next_issue = self.interval
        self.requests = 0

    def advance(self, cycle: int) -> int:
        """Issue all background requests scheduled up to ``cycle``.

        Returns how many were issued. Work is bounded so a long core stall
        cannot trigger an unbounded catch-up burst.
        """
        issued = 0
        while cycle >= self._next_issue and issued < 64:
            # Random block address across a wide region: spreads over all
            # channels/banks like an independent workload's miss stream.
            address = self._rng.randint(0, (1 << 30) - 1) & ~63
            is_write = self._rng.random() < self.write_fraction
            self.dram.access(address, int(self._next_issue), is_write=is_write)
            jitter = 0.5 + self._rng.random()  # 0.5x - 1.5x the mean interval
            self._next_issue += self.interval * jitter
            issued += 1
        if issued == 64:
            # Catch-up cap hit: resynchronise to now rather than replaying
            # the entire backlog.
            self._next_issue = cycle + self.interval
        self.requests += issued
        return issued
