"""The PInTE engine: Probabilistic Induction of Theft Evictions.

Implements the paper's Fig 4 state machine. After every demand access to the
LLC (**UPDATE-ACCESS** is the normal replacement update, already done by the
cache), the engine:

1. **GEN-PROBABILITY** — draws ``trigger_ratio = rand / rand_max`` (Eq. 2)
   and exits unless ``trigger_ratio <= P_induce``.
2. **GEN-EVICT-CNT** — draws ``Blocks_evict`` uniformly in
   ``[0, associativity]`` and initialises the way counter.
3. **BLOCK-SELECT** — walks blocks from the eviction end of the replacement
   stack (the policy's :meth:`eviction_order_into`, read into a reusable
   buffer).
4. **PROMOTE** — moves the selected block to the protected end, exactly as
   if the adversary had just accessed it.
5. **INVALIDATE** — if the block was valid, clears its valid bit and queues
   a write-back when dirty; this is the induced *theft*. An invalid block
   that gets promoted is the paper's "mocked theft" (Fig 2b): the adversary
   appears to insert on a previously invalidated way.
6. **DECREMENT** — counts down ``Blocks_evict``; loops to BLOCK-SELECT or
   exits when the count reaches zero or the set is exhausted.

The engine is policy-agnostic: it only uses the two PInTE hooks every
:class:`~repro.cache.replacement.base.ReplacementPolicy` provides.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.owners import SYSTEM_OWNER
from repro.cache.cache import Cache
from repro.core.counters import ContentionTracker
from repro.core.pinte_config import PinteConfig
from repro.util.rng import DeterministicRng

__all__ = ["PInTE", "PinteStats"]


class PinteStats:
    """Engine-level event counters (per simulation)."""

    __slots__ = ("accesses_seen", "triggers", "evict_draws_total",
                 "invalidations", "promotions", "dirty_writebacks")

    def __init__(self) -> None:
        self.accesses_seen = 0
        self.triggers = 0
        self.evict_draws_total = 0
        self.invalidations = 0
        self.promotions = 0
        self.dirty_writebacks = 0

    @property
    def trigger_rate(self) -> float:
        """Observed trigger frequency; converges to ``p_induce``."""
        if self.accesses_seen == 0:
            return 0.0
        return self.triggers / self.accesses_seen


class PInTE:
    """Contention injector bound to one LLC.

    Args:
        config: trigger probability and draw bounds.
        llc: the last-level cache to inject into.
        tracker: shared contention bookkeeping (thefts land here).
        writeback: callback invoked with (block_addr, cycle) for each dirty
            block the engine invalidates — the hierarchy wires this to the
            DRAM write path so induced evictions create real write traffic.
    """

    def __init__(
        self,
        config: PinteConfig,
        llc: Cache,
        tracker: ContentionTracker,
        writeback: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.config = config
        self.llc = llc
        self.tracker = tracker
        self.writeback = writeback
        #: Optional hook called with (block_addr, cycle) after an induced
        #: invalidation; wired by inclusive hierarchies so induced thefts
        #: also evict private-cache copies.
        self.back_invalidate: Optional[Callable[[int, int], None]] = None
        #: Optional :class:`~repro.obs.events.EventTrace`; ``None`` keeps the
        #: induction loop free of tracing work (one load+branch per trigger).
        self._events = None
        self.stats = PinteStats()
        self._rng = DeterministicRng(config.seed, "pinte")
        self._max_evictions = config.max_evictions or llc.assoc
        # Per-access hot-path bindings (PinteConfig is frozen, so p_induce
        # cannot change under us).
        self._p_induce = config.p_induce
        self._trigger_ratio = self._rng.trigger_ratio
        # Reusable BLOCK-SELECT walk buffer: the eviction order is read out
        # once per trigger without allocating a list per event.
        self._order_scratch: List[int] = [0] * llc.assoc

    def on_llc_access(self, set_index: int, cycle: int, accessing_owner: int) -> int:
        """Run the induction flow after one LLC demand access.

        Returns the number of blocks invalidated (induced thefts) so callers
        can assert on behaviour in tests.
        """
        stats = self.stats
        stats.accesses_seen += 1
        # GEN-PROBABILITY (Eq. 2): exit unless the trigger ratio falls at or
        # below the configured induction probability.
        if self._trigger_ratio() > self._p_induce:
            return 0
        stats.triggers += 1
        self.tracker.record_trigger(accessing_owner)

        # GEN-EVICT-CNT: number of contention events for this trigger.
        blocks_evict = self._rng.randint(0, self._max_evictions)
        stats.evict_draws_total += blocks_evict
        if blocks_evict == 0:
            return 0
        return self._induce(set_index, blocks_evict, cycle)

    def _induce(self, set_index: int, blocks_evict: int, cycle: int) -> int:
        """BLOCK-SELECT / PROMOTE / INVALIDATE / DECREMENT loop."""
        llc = self.llc
        state = llc.state
        policy = llc.policy
        stats = self.stats
        tracker = self.tracker
        promote = policy.promote
        base = set_index * llc.assoc
        valid = state.valid
        dirty = state.dirty
        tags = state.tags
        owners = state.owners
        tag_map = llc._tags[set_index]
        promote_invalid = self.config.promote_invalid
        events = self._events
        invalidated = 0
        # The adversary's counters, bound on first use (not eagerly, so a
        # walk that promotes nothing — promote_invalid=False on an empty
        # set — leaves tracker.owners exactly as the un-inlined code would).
        system_counters = None
        # BLOCK-SELECT walks from the eviction end of the replacement stack.
        # The order is captured once: promotions move processed blocks to the
        # protected end, which in hardware means the walk pointer only ever
        # advances (the way counter ``w`` in the paper's flow).
        order = policy.eviction_order_into(set_index, self._order_scratch)
        for way in order:
            if blocks_evict == 0:
                break  # DECREMENT reached zero -> exit
            index = base + way
            is_valid = valid[index]
            if not is_valid and not promote_invalid:
                continue  # ablation: skip mocked thefts entirely
            # PROMOTE: the adversary "accesses" this way.
            promote(set_index, way)
            stats.promotions += 1
            if system_counters is None:
                system_counters = tracker.counters(SYSTEM_OWNER)
            system_counters.induced_promotions += 1
            if is_valid:
                # INVALIDATE: this is the induced theft. The cache's
                # invalidate_way is inlined (no EvictedBlock — the engine
                # reads the metadata it needs straight from the state).
                block_addr = tags[index]
                victim_owner = owners[index]
                if dirty[index]:
                    stats.dirty_writebacks += 1
                    if self.writeback is not None:
                        self.writeback(block_addr, cycle)
                    dirty[index] = 0
                    if events is not None:
                        events.record("writeback", set_index, way,
                                      victim_owner, "pinte", block_addr)
                tag_map.pop(block_addr, None)
                valid[index] = 0
                state.prefetched[index] = 0
                state.total_valid -= 1
                state.owner_counts[victim_owner] -= 1
                llc.stats.invalidations += 1
                invalidated += 1
                stats.invalidations += 1
                if victim_owner != SYSTEM_OWNER:
                    tracker.record_theft(
                        victim_owner, SYSTEM_OWNER, block_addr, induced=True
                    )
                if events is not None:
                    events.record("theft", set_index, way, victim_owner,
                                  "pinte", block_addr)
                if self.back_invalidate is not None:
                    self.back_invalidate(block_addr, cycle)
            elif events is not None:
                # Promotion of an invalid block is the mocked theft of
                # Fig 2b -- the way now looks like a fresh adversary
                # insertion.
                events.record("promote", set_index, way, SYSTEM_OWNER,
                              "mocked-theft", 0)
            blocks_evict -= 1  # DECREMENT
        return invalidated
