"""Theft mechanics as an event narrative (paper Fig 2a/2b, Fig 4).

Programmatic, testable versions of the paper's worked examples: feed an
access script into a small shared set and receive a typed event log — hits,
misses, self-evictions, thefts, interference, PInTE triggers, promotions and
induced invalidations. The ``theft_mechanics`` example renders these logs;
tests assert on them directly, pinning the mechanics the figures illustrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.cache.cache import Cache
from repro.core.counters import ContentionTracker
from repro.core.pinte import PInTE
from repro.core.pinte_config import PinteConfig
from repro.owners import SYSTEM_OWNER

BLOCK = 64

#: Event kinds emitted by the narratives.
HIT = "hit"
MISS = "miss"
SELF_EVICTION = "self_eviction"
THEFT = "theft"
INTERFERENCE = "interference"
TRIGGER = "trigger"
INDUCED_THEFT = "induced_theft"
MOCKED_THEFT = "mocked_theft"


@dataclass(frozen=True)
class Event:
    """One narrated cache event."""

    kind: str
    step: int
    owner: int
    block: int
    victim_owner: Optional[int] = None

    def describe(self) -> str:
        if self.kind == THEFT:
            return (f"step {self.step}: core {self.owner} stole block "
                    f"{self.block} from core {self.victim_owner}")
        if self.kind == INDUCED_THEFT:
            return (f"step {self.step}: PInTE stole block {self.block} "
                    f"from core {self.victim_owner}")
        if self.kind == MOCKED_THEFT:
            return f"step {self.step}: PInTE mocked a theft on an invalid way"
        return f"step {self.step}: core {self.owner} {self.kind} block {self.block}"


@dataclass
class Narrative:
    """Event log plus the final per-owner counters."""

    events: List[Event] = field(default_factory=list)
    tracker: ContentionTracker = field(default_factory=ContentionTracker)

    def of_kind(self, kind: str) -> List[Event]:
        return [event for event in self.events if event.kind == kind]

    def counts(self) -> dict:
        kinds = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        return kinds


def _access(cache: Cache, tracker: ContentionTracker, events: List[Event],
            step: int, owner: int, block_id: int) -> None:
    address = block_id * BLOCK * cache.n_sets  # everything in set 0
    hit = cache.access(address, False, owner)
    interference_before = tracker.counters(owner).interference_misses
    tracker.record_access(owner, address, hit)
    if hit:
        events.append(Event(HIT, step, owner, block_id))
        return
    events.append(Event(MISS, step, owner, block_id))
    if tracker.counters(owner).interference_misses > interference_before:
        events.append(Event(INTERFERENCE, step, owner, block_id))
    evicted = cache.fill(address, owner)
    tracker.record_refill(owner, address)
    if evicted is None:
        return
    victim_block = evicted.tag // (BLOCK * cache.n_sets)
    if evicted.owner == owner:
        events.append(Event(SELF_EVICTION, step, owner, victim_block))
    else:
        tracker.record_theft(evicted.owner, owner, evicted.tag)
        events.append(Event(THEFT, step, owner, victim_block,
                            victim_owner=evicted.owner))


def real_contention_narrative(
    script: Sequence[Tuple[int, int]],
    assoc: int = 4,
    policy: str = "lru",
) -> Narrative:
    """Fig 2a: two (or more) owners interleave accesses in one shared set.

    ``script`` is a sequence of (owner, block_id) accesses.
    """
    cache = Cache("SET", assoc * BLOCK, assoc, BLOCK, latency=1, policy=policy)
    narrative = Narrative()
    for step, (owner, block_id) in enumerate(script):
        _access(cache, narrative.tracker, narrative.events, step, owner,
                block_id)
    return narrative


def induced_contention_narrative(
    script: Sequence[int],
    p_induce: float = 0.6,
    assoc: int = 4,
    policy: str = "lru",
    seed: int = 11,
) -> Narrative:
    """Fig 2b / Fig 4: a single owner accesses while PInTE plays adversary.

    ``script`` is a sequence of block ids accessed by core 0; after every
    access the engine's state machine runs and its triggers/promotions/
    invalidations are narrated.
    """
    cache = Cache("SET", assoc * BLOCK, assoc, BLOCK, latency=1, policy=policy)
    narrative = Narrative()
    engine = PInTE(PinteConfig(p_induce=p_induce, seed=seed), cache,
                   narrative.tracker)
    for step, block_id in enumerate(script):
        _access(cache, narrative.tracker, narrative.events, step, 0, block_id)
        triggers_before = engine.stats.triggers
        promotions_before = engine.stats.promotions
        thefts_before = narrative.tracker.counters(0).thefts_experienced
        invalidated = engine.on_llc_access(0, step, 0)
        if engine.stats.triggers > triggers_before:
            narrative.events.append(Event(TRIGGER, step, SYSTEM_OWNER, -1))
        induced = narrative.tracker.counters(0).thefts_experienced - thefts_before
        for _ in range(induced):
            narrative.events.append(
                Event(INDUCED_THEFT, step, SYSTEM_OWNER, -1, victim_owner=0))
        mocked = (engine.stats.promotions - promotions_before) - invalidated
        for _ in range(max(0, mocked)):
            narrative.events.append(Event(MOCKED_THEFT, step, SYSTEM_OWNER, -1))
    return narrative


#: The paper's Fig 2a access interleaving (green = core 0, gray = core 1),
#: transcribed as a reusable script.
FIG2A_SCRIPT: Tuple[Tuple[int, int], ...] = (
    (0, 1), (0, 2), (1, 10), (1, 11), (0, 3),
    (1, 12), (0, 1), (1, 13), (0, 2),
)
