"""Contention accounting: thefts and interference (CASHT metrics).

A **theft** (Gomes et al., CASHT) is an inter-core eviction: a fill or
invalidation that removes valid data originally inserted by a different
owner. **Interference** is the downstream cost: a demand miss on a block the
owner previously lost to a theft. The paper's *contention rate* (Fig 1
y-axis) is thefts experienced divided by LLC accesses; its *interference
rate* (Fig 8/10 x-axis) is interference misses divided by LLC accesses.

The :class:`ContentionTracker` is shared by everything that can move LLC
data: demand fills from any core, and the PInTE engine acting as the
``SYSTEM`` adversary.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.owners import SYSTEM_OWNER

#: Bound on remembered stolen blocks per owner, so pathological workloads
#: cannot grow memory without limit. 2^16 blocks = 4 MB of tracked data.
STOLEN_SET_CAP = 1 << 16


class ContentionCounters:
    """Per-owner contention event counters."""

    __slots__ = (
        "llc_accesses", "llc_misses",
        "thefts_experienced", "thefts_caused",
        "interference_misses", "induced_thefts", "induced_promotions",
        "pinte_triggers",
    )

    def __init__(self) -> None:
        self.llc_accesses = 0
        self.llc_misses = 0
        self.thefts_experienced = 0
        self.thefts_caused = 0
        self.interference_misses = 0
        self.induced_thefts = 0
        self.induced_promotions = 0
        self.pinte_triggers = 0

    @property
    def contention_rate(self) -> float:
        """Thefts experienced per LLC access (paper Fig 1 y-axis)."""
        if self.llc_accesses == 0:
            return 0.0
        return self.thefts_experienced / self.llc_accesses

    @property
    def interference_rate(self) -> float:
        """Interference misses per LLC access (paper Fig 8/10 x-axis)."""
        if self.llc_accesses == 0:
            return 0.0
        return self.interference_misses / self.llc_accesses

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy for periodic sampling."""
        return {name: getattr(self, name) for name in self.__slots__}


class ContentionTracker:
    """Shared theft/interference bookkeeping across all owners of one LLC."""

    def __init__(self) -> None:
        self._counters: Dict[int, ContentionCounters] = {}
        self._stolen: Dict[int, Set[int]] = {}

    def counters(self, owner: int) -> ContentionCounters:
        """Counters for ``owner`` (created on first use)."""
        counters = self._counters.get(owner)
        if counters is None:
            counters = ContentionCounters()
            self._counters[owner] = counters
            self._stolen[owner] = set()
        return counters

    @property
    def owners(self):
        """All owner ids seen so far (includes SYSTEM if PInTE ran)."""
        return sorted(self._counters)

    def stolen_blocks(self, owner: int) -> Set[int]:
        """The live stolen-block set for ``owner`` (created on first use).

        Exposed so single-owner hosts can inline the per-access accounting
        of :meth:`record_access`/:meth:`record_refill` in their hot loops;
        mutations must mirror those methods exactly.
        """
        self.counters(owner)
        return self._stolen[owner]

    # -- events ---------------------------------------------------------------
    def record_access(self, owner: int, block_addr: int, hit: bool) -> None:
        """A demand LLC access by ``owner``; detects interference on miss."""
        counters = self.counters(owner)
        counters.llc_accesses += 1
        if not hit:
            counters.llc_misses += 1
            stolen = self._stolen[owner]
            if block_addr in stolen:
                counters.interference_misses += 1
                stolen.discard(block_addr)

    def record_theft(self, victim_owner: int, thief_owner: int,
                     block_addr: int, induced: bool = False) -> None:
        """``thief_owner`` evicted/invalidated ``victim_owner``'s valid block."""
        victim = self.counters(victim_owner)
        victim.thefts_experienced += 1
        thief = self.counters(thief_owner)
        thief.thefts_caused += 1
        if induced:
            victim.induced_thefts += 1
        stolen = self._stolen[victim_owner]
        if len(stolen) < STOLEN_SET_CAP:
            stolen.add(block_addr)

    def record_refill(self, owner: int, block_addr: int) -> None:
        """Block re-entered the LLC for ``owner`` (e.g. via prefetch)."""
        stolen = self._stolen.get(owner)
        if stolen is not None:
            stolen.discard(block_addr)

    def record_trigger(self, owner: int) -> None:
        """PInTE fired while ``owner`` was accessing the LLC."""
        self.counters(owner).pinte_triggers += 1

    def record_promotion(self, owner: int) -> None:
        """PInTE promoted a block (mocked adversary access)."""
        self.counters(owner).induced_promotions += 1

    # -- aggregates -------------------------------------------------------------
    def workload_owners(self):
        """Owner ids excluding the synthetic SYSTEM adversary."""
        return [owner for owner in self.owners if owner != SYSTEM_OWNER]

    def total_thefts(self) -> int:
        """All thefts experienced by workloads."""
        return sum(
            self._counters[owner].thefts_experienced
            for owner in self.workload_owners()
        )
