"""PInTE configuration.

``P_induce`` is the probability, per LLC access, that the engine injects a
burst of contention into the accessed set (paper Section IV-C). The paper
sweeps 12 configurations per trace; :data:`PAPER_PINDUCE_SWEEP` reproduces a
12-point sweep spanning the same 0-100% contention range, including the
``7.5`` and ``70`` (percent) break-points called out in the Fig 11 analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serde import ConfigSerde

#: 12 P_induce settings (probabilities), the paper's per-trace sweep size.
PAPER_PINDUCE_SWEEP = (
    0.01, 0.025, 0.05, 0.075, 0.10, 0.20, 0.30, 0.40, 0.50, 0.70, 0.85, 1.0,
)


#: Trigger modes: the paper's per-LLC-access hook, or the "independent
#: PInTE module" its Section IV-E2b sketches for core-bound workloads.
TRIGGER_PER_ACCESS = "per-access"
TRIGGER_PERIODIC = "periodic"
TRIGGER_MODES = (TRIGGER_PER_ACCESS, TRIGGER_PERIODIC)


@dataclass(frozen=True)
class PinteConfig(ConfigSerde):
    """Knobs for the PInTE engine.

    Attributes:
        p_induce: per-trigger-opportunity probability in [0, 1] (the Eq. 2
            threshold). In ``per-access`` mode an opportunity is one LLC
            demand access; in ``periodic`` mode it is one elapsed period.
        max_evictions: upper bound for the per-trigger eviction-count draw;
            defaults to the LLC associativity when 0 (the paper bounds
            ``Blocks_evict`` by associativity).
        promote_invalid: whether PROMOTE also runs on invalid blocks
            ("mocking a theft" by inserting on a previously invalidated
            block — Fig 2b). Disabling this is an ablation, not the paper's
            configuration.
        seed: RNG seed for the trigger/eviction-count streams.
        trigger: ``per-access`` (the paper's design) or ``periodic`` (the
            independent-module extension: fires every ``period_cycles``
            regardless of the workload's LLC activity, reaching core-bound
            workloads whose LLC accesses are too rare to trigger on).
        period_cycles: trigger-opportunity spacing for ``periodic`` mode.
        dram_background_rpkc: background DRAM requests per kilocycle injected
            into the shared channels — the "increasing DRAM access costs
            could complement this" extension for DRAM-bound workloads.
            0 disables the injector (the paper's configuration).
    """

    p_induce: float
    max_evictions: int = 0  # 0 means "use LLC associativity"
    promote_invalid: bool = True
    seed: int = 0
    trigger: str = TRIGGER_PER_ACCESS
    period_cycles: int = 1000
    dram_background_rpkc: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_induce <= 1.0:
            raise ValueError(f"p_induce must be in [0, 1], got {self.p_induce}")
        if self.max_evictions < 0:
            raise ValueError("max_evictions must be non-negative")
        if self.trigger not in TRIGGER_MODES:
            raise ValueError(f"trigger must be one of {TRIGGER_MODES}, "
                             f"got {self.trigger!r}")
        if self.period_cycles <= 0:
            raise ValueError("period_cycles must be positive")
        if self.dram_background_rpkc < 0:
            raise ValueError("dram_background_rpkc must be non-negative")
