"""Extension study: cache partitioning vs. theft contention.

The paper positions thefts as the direct signal of LLC contention and its
related work covers the partitioning schemes built to suppress them
(Section VII-d). This study closes the loop: run a victim/aggressor pair
under four LLC management schemes — unpartitioned sharing, static even way
partitioning, UCP, and CASHT-style theft-driven partitioning — and compare
thefts, per-workload weighted IPC, and system throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.throughput import throughput_report
from repro.cache.partition import (
    CashtPartitioner,
    Partitioner,
    StaticPartitioner,
    UcpPartitioner,
)
from repro.config import MachineConfig
from repro.experiments.reporting import format_table
from repro.sim import ExperimentScale, SimulationResult, TraceLibrary, simulate
from repro.sim.multicore import simulate_multiprogrammed

#: Default victim/aggressor pair: an LLC-bound workload with real reuse vs a
#: streaming cache-flooder.
DEFAULT_PAIR = ("450.soplex", "470.lbm")
SCHEMES = ("shared", "static", "ucp", "casht")


@dataclass
class SchemeOutcome:
    """One scheme's per-core results and throughput summary."""

    scheme: str
    results: List[SimulationResult]
    throughput: Dict[str, float]
    final_quotas: Dict[int, int] = field(default_factory=dict)

    @property
    def victim_thefts(self) -> int:
        return self.results[0].thefts_experienced

    @property
    def victim_weighted_ipc(self) -> float:
        return self.throughput_component(0)

    def throughput_component(self, core: int) -> float:
        return self.results[core].extra.get(f"wipc_core{core}", 0.0)


@dataclass
class PartitionStudyResult:
    """Theft and throughput outcomes for every partitioning scheme."""
    workloads: Tuple[str, str]
    outcomes: Dict[str, SchemeOutcome]

    def outcome(self, scheme: str) -> SchemeOutcome:
        return self.outcomes[scheme]


def _make_partitioner(scheme: str, config: MachineConfig) -> Optional[Partitioner]:
    n_ways = config.llc.assoc
    n_sets = config.llc.size // (n_ways * config.block_size)
    owners = [0, 1]
    if scheme == "shared":
        return None
    if scheme == "static":
        return StaticPartitioner(n_ways, owners)
    if scheme == "ucp":
        return UcpPartitioner(n_sets, n_ways, owners, sampling=4)
    if scheme == "casht":
        return CashtPartitioner(n_ways, owners)
    raise ValueError(f"unknown scheme {scheme!r}; known: {SCHEMES}")


def run_partition_study(
    config: MachineConfig,
    scale: ExperimentScale,
    workloads: Tuple[str, str] = DEFAULT_PAIR,
    schemes: Sequence[str] = SCHEMES,
    repartition_interval: int = 4_000,
) -> PartitionStudyResult:
    """Run the victim/aggressor pair under each partitioning scheme."""
    library = TraceLibrary(config, scale)
    victim = library.get(workloads[0])
    aggressor = library.get(workloads[1], seed=scale.seed + 1)
    isolations = [
        simulate(trace, config, warmup_instructions=scale.warmup_instructions,
                 sim_instructions=scale.sim_instructions,
                 sample_interval=scale.sample_interval, seed=scale.seed)
        for trace in (victim, aggressor)
    ]

    outcomes: Dict[str, SchemeOutcome] = {}
    for scheme in schemes:
        partitioner = _make_partitioner(scheme, config)
        results = simulate_multiprogrammed(
            [victim, aggressor], config,
            warmup_instructions=scale.warmup_instructions,
            sim_instructions=scale.sim_instructions,
            sample_interval=scale.sample_interval, seed=scale.seed,
            partitioner=partitioner,
            repartition_interval=repartition_interval,
        )
        outcomes[scheme] = outcome_from_results(
            scheme, results, isolations,
            final_quotas=(partitioner.allocate() if partitioner else {}),
        )
    return PartitionStudyResult(workloads=workloads, outcomes=outcomes)


def outcome_from_results(
    scheme: str,
    results: List[SimulationResult],
    isolations: List[SimulationResult],
    final_quotas: Dict[int, int],
) -> SchemeOutcome:
    """Build one scheme's outcome from its per-core and isolation results.

    Shared by the serial :func:`run_partition_study` driver and the
    artifact registry's aggregate phase.
    """
    throughput = throughput_report(results, isolations)
    for core, (shared, alone) in enumerate(zip(results, isolations)):
        results[core].extra[f"wipc_core{core}"] = shared.ipc / alone.ipc
    return SchemeOutcome(
        scheme=scheme,
        results=results,
        throughput=throughput,
        final_quotas=final_quotas,
    )


def format_report(result: PartitionStudyResult) -> str:
    """Render the partitioning comparison table."""
    victim_name, aggressor_name = result.workloads
    rows = []
    for scheme, outcome in result.outcomes.items():
        quotas = (f"{outcome.final_quotas.get(0)}/{outcome.final_quotas.get(1)}"
                  if outcome.final_quotas else "-")
        rows.append((
            scheme,
            outcome.victim_thefts,
            outcome.throughput_component(0),
            outcome.throughput_component(1),
            outcome.throughput["weighted_speedup"],
            outcome.throughput["fairness"],
            quotas,
        ))
    return format_table(
        ["Scheme", "victim thefts", "victim wIPC", "aggr. wIPC",
         "wSpeedup", "fairness", "quotas"],
        rows,
        title=(f"Partitioning study: {victim_name} (victim) vs "
               f"{aggressor_name} (aggressor)"),
    )
