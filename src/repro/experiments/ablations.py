"""Ablation studies of PInTE's design choices (DESIGN.md Section 6).

Four ablations, each isolating one knob of the engine:

* **promote-invalid** — disable the Fig 2b "mocked theft" (promotion of
  already-invalid ways) and measure how the induced contention and the
  victim's response change.
* **max-evictions** — cap the per-trigger ``Blocks_evict`` draw below the
  associativity bound and sweep the cap.
* **trigger mode** — the paper's per-access trigger vs the periodic
  independent-module extension, on a core-bound and an LLC-bound workload.
* **dram-background** — PInTE alone vs PInTE + synthetic DRAM traffic on a
  DRAM-bound workload (the paper's suggested complement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.config import MachineConfig
from repro.core import PinteConfig
from repro.experiments.reporting import format_table
from repro.sim import ExperimentScale, SimulationResult, TraceLibrary, simulate


@dataclass
class AblationResult:
    """One ablation: variant label -> result, plus the baselines."""

    name: str
    workload: str
    isolation: SimulationResult
    variants: Dict[str, SimulationResult] = field(default_factory=dict)

    def weighted_ipc(self, label: str) -> float:
        return self.variants[label].ipc / self.isolation.ipc

    def rows(self) -> List[tuple]:
        return [
            (label,
             self.weighted_ipc(label),
             result.miss_rate,
             result.contention_rate,
             result.interference_rate)
            for label, result in self.variants.items()
        ]


def _run(trace, config, scale, pinte) -> SimulationResult:
    return simulate(trace, config, pinte=pinte,
                    warmup_instructions=scale.warmup_instructions,
                    sim_instructions=scale.sim_instructions,
                    sample_interval=scale.sample_interval, seed=scale.seed)


def run_promote_invalid_ablation(
    config: MachineConfig, scale: ExperimentScale,
    workload: str = "470.lbm", p_induce: float = 0.3,
) -> AblationResult:
    """Mocked thefts on vs off at the same ``P_induce``."""
    library = TraceLibrary(config, scale)
    trace = library.get(workload)
    result = AblationResult(
        name="promote_invalid", workload=workload,
        isolation=_run(trace, config, scale, None),
    )
    result.variants["promote-invalid ON (paper)"] = _run(
        trace, config, scale, PinteConfig(p_induce, seed=scale.seed))
    result.variants["promote-invalid OFF"] = _run(
        trace, config, scale,
        PinteConfig(p_induce, promote_invalid=False, seed=scale.seed))
    return result


def run_max_evictions_ablation(
    config: MachineConfig, scale: ExperimentScale,
    workload: str = "450.soplex", p_induce: float = 0.5,
    caps: Sequence[int] = (1, 2, 4, 8, 0),
) -> AblationResult:
    """Sweep the per-trigger eviction cap (0 = associativity, the paper)."""
    library = TraceLibrary(config, scale)
    trace = library.get(workload)
    result = AblationResult(
        name="max_evictions", workload=workload,
        isolation=_run(trace, config, scale, None),
    )
    for cap in caps:
        label = f"cap={cap or config.llc.assoc}" + ("" if cap else " (paper)")
        result.variants[label] = _run(
            trace, config, scale,
            PinteConfig(p_induce, max_evictions=cap, seed=scale.seed))
    return result


def run_trigger_mode_ablation(
    config: MachineConfig, scale: ExperimentScale,
    workloads: Sequence[str] = ("638.imagick", "470.lbm"),
    p_induce: float = 1.0, period_cycles: int = 200,
) -> List[AblationResult]:
    """Per-access vs periodic trigger on contrasting workload classes."""
    library = TraceLibrary(config, scale)
    results = []
    for workload in workloads:
        trace = library.get(workload)
        result = AblationResult(
            name="trigger_mode", workload=workload,
            isolation=_run(trace, config, scale, None),
        )
        result.variants["per-access (paper)"] = _run(
            trace, config, scale, PinteConfig(p_induce, seed=scale.seed))
        result.variants["periodic"] = _run(
            trace, config, scale,
            PinteConfig(p_induce, trigger="periodic",
                        period_cycles=period_cycles, seed=scale.seed))
        results.append(result)
    return results


def run_dram_background_ablation(
    config: MachineConfig, scale: ExperimentScale,
    workload: str = "429.mcf", p_induce: float = 0.3,
    rates: Sequence[float] = (0.0, 25.0, 50.0, 100.0),
) -> AblationResult:
    """PInTE with increasing synthetic DRAM pressure."""
    library = TraceLibrary(config, scale)
    trace = library.get(workload)
    result = AblationResult(
        name="dram_background", workload=workload,
        isolation=_run(trace, config, scale, None),
    )
    for rate in rates:
        label = f"{rate:g} req/kcycle" + (" (paper)" if rate == 0 else "")
        result.variants[label] = _run(
            trace, config, scale,
            PinteConfig(p_induce, dram_background_rpkc=rate, seed=scale.seed))
    return result


def format_report(result: AblationResult) -> str:
    """Render every ablation's table in one report."""
    return format_table(
        ["Variant", "wIPC", "MR", "contention", "interference"],
        result.rows(),
        title=(f"Ablation {result.name} on {result.workload} "
               f"(isolation IPC {result.isolation.ipc:.4f})"),
    )
