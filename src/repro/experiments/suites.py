"""Workload suites used by the experiment drivers.

The paper uses 188 simpoint traces over 49 SPEC benchmarks. At reproduction
scale every driver accepts any workload list; these presets balance class
coverage (core/cache/LLC/DRAM-bound + mixed) against pure-Python run time.
"""

from __future__ import annotations

from typing import List

from repro.trace.spec_models import SPEC_WORKLOADS

#: Every modelled benchmark (one synthetic trace per benchmark).
FULL_SUITE: List[str] = sorted(SPEC_WORKLOADS)

#: Representative subset spanning all five behaviour classes; the default
#: for the error/KL/sensitivity benches.
CORE_SUITE: List[str] = [
    "400.perlbench",   # cache-friendly
    "403.gcc",         # mixed phases
    "429.mcf",         # DRAM-bound pointer chase
    "435.gromacs",     # cache-friendly (Fig 5 "good alignment")
    "450.soplex",      # LLC-bound random
    "453.povray",      # core-bound
    "456.hmmer",       # core-bound, store-heavy
    "462.libquantum",  # DRAM-bound stream
    "470.lbm",         # LLC-bound stream (high sensitivity)
    "471.omnetpp",     # LLC-bound random
    "605.mcf",         # LLC-bound chase
    "619.lbm",         # LLC-bound stream
    "638.imagick",     # core-bound (Fig 5 "worst alignment")
    "641.leela",       # core-bound branchy
    "649.fotonik3d",   # DRAM-bound stream (Fig 5 "medium alignment")
    "657.xz",          # mixed
]

#: Small suite for quick benches and integration tests.
QUICK_SUITE: List[str] = [
    "435.gromacs", "450.soplex", "453.povray", "470.lbm", "605.mcf",
    "638.imagick",
]

#: The six SPEC 17 benchmarks of the paper's Fig 10 real-system comparison.
FIG10_SUITE: List[str] = [
    "600.perlbench", "602.gcc", "619.lbm", "620.omnetpp", "627.cam4",
    "648.exchange2",
]

#: Case-study suite (Fig 11): one per behaviour class plus a branchy one.
CASE_STUDY_SUITE: List[str] = [
    "403.gcc", "450.soplex", "470.lbm", "631.deepsjeng",
]

#: The three reuse-alignment exemplars of Fig 5.
FIG5_WORKLOADS = ("435.gromacs", "649.fotonik3d", "638.imagick")
