"""Experiment drivers: one module per paper table/figure.

Most drivers consume a shared :class:`~repro.experiments.contexts.ContextBundle`
(isolation + PInTE sweep + 2nd-Trace panel over one suite); Fig 3, 10 and 11
run their own campaigns. Every driver exposes ``run_*`` returning a result
dataclass and ``format_report`` rendering the paper-style rows/series.
"""

from repro.experiments import (
    ablations,
    ncore_study,
    partition_study,
    fig1,
    fig3,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
    table2,
)
from repro.experiments.contexts import (
    ContextBundle,
    DEFAULT_PANEL_SIZE,
    build_contexts,
)
from repro.experiments.suites import (
    CASE_STUDY_SUITE,
    CORE_SUITE,
    FIG10_SUITE,
    FIG5_WORKLOADS,
    FULL_SUITE,
    QUICK_SUITE,
)
# The registry imports every driver module above, so it must come last.
from repro.experiments import registry

__all__ = [
    "CASE_STUDY_SUITE",
    "CORE_SUITE",
    "ContextBundle",
    "DEFAULT_PANEL_SIZE",
    "FIG10_SUITE",
    "FIG5_WORKLOADS",
    "FULL_SUITE",
    "QUICK_SUITE",
    "ablations",
    "build_contexts",
    "fig1",
    "ncore_study",
    "partition_study",
    "registry",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "table1",
    "table2",
]
