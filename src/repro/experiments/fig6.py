"""Fig 6 — benchmark reuse KL divergence and worst-case root cause.

(a) KL divergence between reuse histograms (PInTE vs 2nd-Trace) for every
benchmark, benchmarked against randomly-generated distributions (99/95/90%
thresholds). (b) Root cause: high-KL workloads are core-bound — their LLC
traffic is dominated by L2 write-back spills rather than demand reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.kl_divergence import random_baseline_percentiles
from repro.experiments.contexts import ContextBundle
from repro.experiments.fig5 import average_reuse_histogram, compare_reuse
from repro.experiments.reporting import format_table, percent


@dataclass
class Fig6Result:
    #: benchmark -> KL divergence (bits) between averaged reuse histograms
    """Per-benchmark reuse KL divergence plus root-cause metrics."""
    kl_by_benchmark: Dict[str, float]
    #: calibration thresholds for (99%, 95%, 90%) random baselines
    thresholds: List[float]
    #: benchmark -> (l2_mpki, llc_mpki, writeback_fill_share) root-cause stats
    root_cause: Dict[str, Dict[str, float]]
    #: benchmarks with no LLC reuse signal at this scale (excluded from KL)
    no_signal: List[str]

    @property
    def mean_kl(self) -> float:
        if not self.kl_by_benchmark:
            return 0.0
        return sum(self.kl_by_benchmark.values()) / len(self.kl_by_benchmark)

    def within_threshold(self, threshold: float) -> float:
        """Fraction of benchmarks whose KL beats a random-baseline bound."""
        if not self.kl_by_benchmark:
            return 0.0
        return (sum(1 for v in self.kl_by_benchmark.values() if v <= threshold)
                / len(self.kl_by_benchmark))

    def extremes(self, count: int = 3):
        """(lowest-KL names, highest-KL names)."""
        ordered = sorted(self.kl_by_benchmark, key=self.kl_by_benchmark.get)
        return ordered[:count], ordered[-count:]


def run_fig6(bundle: ContextBundle) -> Fig6Result:
    """Compute reuse KL per benchmark and the write-back root-cause columns."""
    kl_by_benchmark: Dict[str, float] = {}
    root_cause: Dict[str, Dict[str, float]] = {}
    no_signal: List[str] = []
    reference_histogram: List[float] = []
    for name in bundle.names:
        pairs = bundle.pair_results(name)
        pinte = bundle.pinte_results(name)
        if not pairs or not pinte:
            continue
        comparison = compare_reuse(name, pairs, pinte)
        if not comparison.has_signal:
            # Zero-vs-zero histograms carry no alignment information; at
            # full paper scale even core-bound workloads accumulate some
            # reuse hits, at reproduction scale they may not.
            no_signal.append(name)
            continue
        kl_by_benchmark[name] = comparison.kl_bits
        if not reference_histogram:
            reference_histogram = comparison.pair_histogram
        total_fills = sum(r.llc_writeback_fills + r.llc_misses for r in pairs)
        writeback_share = (
            sum(r.llc_writeback_fills for r in pairs) / total_fills
            if total_fills else 0.0
        )
        root_cause[name] = {
            "l2_mpki": sum(r.l2_mpki for r in pairs) / len(pairs),
            "llc_mpki": sum(r.llc_mpki for r in pairs) / len(pairs),
            "writeback_share": writeback_share,
        }
    if not kl_by_benchmark:
        raise ValueError("bundle has no pair+PInTE data to compare")
    thresholds = random_baseline_percentiles(
        reference_histogram, percentiles=(0.99, 0.95, 0.90)
    )
    return Fig6Result(kl_by_benchmark=kl_by_benchmark, thresholds=thresholds,
                      root_cause=root_cause, no_signal=no_signal)


def format_report(result: Fig6Result) -> str:
    """Render the KL table with its calibration thresholds."""
    table = format_table(
        ["Benchmark", "KL (bits)", "L2 MPKI", "LLC MPKI", "WB share"],
        [
            (name,
             result.kl_by_benchmark[name],
             result.root_cause[name]["l2_mpki"],
             result.root_cause[name]["llc_mpki"],
             result.root_cause[name]["writeback_share"])
            for name in sorted(result.kl_by_benchmark,
                               key=result.kl_by_benchmark.get)
        ],
        title="Fig 6a: reuse KL divergence per benchmark (sorted)",
    )
    t99, t95, t90 = result.thresholds
    coverage = (
        f"random-baseline thresholds: 99%={t99:.3f}, 95%={t95:.3f}, "
        f"90%={t90:.3f} bits (paper: 0.23 / 0.35 / 0.44)\n"
        f"benchmarks within: {percent(result.within_threshold(t99))} / "
        f"{percent(result.within_threshold(t95))} / "
        f"{percent(result.within_threshold(t90))} "
        f"(paper: 36% / 48% / 55%)\n"
        f"mean KL: {result.mean_kl:.3f} bits (paper: 0.84)"
    )
    low, high = result.extremes()
    root = (
        f"Fig 6b root cause — lowest KL: {', '.join(low)}; "
        f"highest KL: {', '.join(high)} "
        f"(high-KL workloads should show write-back-dominated LLC traffic)"
    )
    parts = [table, coverage, root]
    if result.no_signal:
        parts.append(
            "no LLC reuse signal at this scale (excluded): "
            + ", ".join(result.no_signal)
        )
    return "\n\n".join(parts)
