"""Fig 3 — PInTE stability analysis.

Repeats every (workload, P_induce) experiment with different PInTE seeds and
reports the standard deviation of miss rate and IPC normalised to the mean
(Eq. 3). The paper runs 25 repeats of 12 configurations and finds medians
near zero (< 0.00125 for MR, < 0.011 for IPC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.stability import median, normalised_std_dev
from repro.config import MachineConfig
from repro.core import PAPER_PINDUCE_SWEEP
from repro.experiments.reporting import format_table
from repro.sim import ExperimentScale, TraceLibrary, run_pinte_sweep


@dataclass
class Fig3Result:
    #: benchmark -> metric -> list of normalised std devs (one per P_induce)
    """Normalised stability standard deviations behind Fig 3."""
    per_benchmark: Dict[str, Dict[str, List[float]]]
    #: p_induce -> metric -> list of normalised std devs (one per benchmark)
    per_config: Dict[float, Dict[str, List[float]]]
    n_repeats: int

    def benchmark_median(self, benchmark: str, metric: str) -> float:
        return median(self.per_benchmark[benchmark][metric])

    def config_median(self, p: float, metric: str) -> float:
        return median(self.per_config[p][metric])

    def worst(self, metric: str) -> float:
        """Largest normalised std dev anywhere (paper-style headline bound)."""
        return max(
            (value
             for by_metric in self.per_benchmark.values()
             for value in by_metric[metric]),
            default=0.0,
        )


METRICS = ("miss_rate", "ipc")


def stability_from_repeats(
    repeats: Sequence[Dict[str, Dict[float, object]]],
    names: Sequence[str],
    p_values: Sequence[float],
) -> Fig3Result:
    """Aggregate ``repeats[k][name][p] -> result`` into a :class:`Fig3Result`.

    Shared by the serial :func:`run_fig3` driver and the artifact
    registry's aggregate phase, so both produce identical statistics.
    """
    if len(repeats) < 2:
        raise ValueError("stability needs at least two repeats")
    n_repeats = len(repeats)
    per_benchmark: Dict[str, Dict[str, List[float]]] = {
        name: {metric: [] for metric in METRICS} for name in names
    }
    per_config: Dict[float, Dict[str, List[float]]] = {
        p: {metric: [] for metric in METRICS} for p in p_values
    }
    for name in names:
        for p in p_values:
            for metric in METRICS:
                values = [getattr(repeats[k][name][p], metric)
                          for k in range(n_repeats)]
                mean = sum(values) / len(values)
                if mean == 0:
                    spread = 0.0
                else:
                    spread = normalised_std_dev(values)
                per_benchmark[name][metric].append(spread)
                per_config[p][metric].append(spread)
    return Fig3Result(per_benchmark=per_benchmark, per_config=per_config,
                      n_repeats=n_repeats)


#: PInTE seed base for repeat ``k`` (``1000 + k``), shared with the registry.
REPEAT_SEED_BASE = 1000


def run_fig3(
    names: Sequence[str],
    config: MachineConfig,
    scale: ExperimentScale,
    p_values: Sequence[float] = PAPER_PINDUCE_SWEEP,
    n_repeats: int = 5,
) -> Fig3Result:
    """Repeat the PInTE sweep ``n_repeats`` times with distinct seeds."""
    if n_repeats < 2:
        raise ValueError("stability needs at least two repeats")
    library = TraceLibrary(config, scale)
    # repeats[k][name][p] -> result
    repeats = [
        run_pinte_sweep(names, config, scale, p_values=p_values,
                        library=library, pinte_seed=REPEAT_SEED_BASE + k)
        for k in range(n_repeats)
    ]
    return stability_from_repeats(repeats, names, p_values)


def format_report(result: Fig3Result) -> str:
    """Render per-benchmark and per-P_induce stability tables."""
    left = format_table(
        ["Benchmark", "median norm-std MR", "median norm-std IPC"],
        [
            (name,
             result.benchmark_median(name, "miss_rate"),
             result.benchmark_median(name, "ipc"))
            for name in sorted(result.per_benchmark)
        ],
        title=f"Fig 3 (left): stability per benchmark over {result.n_repeats} repeats",
    )
    right = format_table(
        ["P_induce", "median norm-std MR", "median norm-std IPC"],
        [
            (p, result.config_median(p, "miss_rate"), result.config_median(p, "ipc"))
            for p in sorted(result.per_config)
        ],
        title="Fig 3 (right): stability per P_induce configuration",
    )
    summary = (
        f"worst normalised std dev: MR={result.worst('miss_rate'):.4f}, "
        f"IPC={result.worst('ipc'):.4f} (paper medians: <0.00125 MR, <0.011 IPC)"
    )
    return "\n\n".join([left, right, summary])
