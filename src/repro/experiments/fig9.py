"""Fig 9 — average memory access time under contention.

Per-benchmark AMAT boxplots (over per-sample AMAT values) for 2nd-Trace vs
PInTE contention. PInTE should induce AMAT similar to real sharing except
for DRAM-bound workloads whose AMAT approaches DRAM latency either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.metrics import boxplot_stats
from repro.experiments.contexts import ContextBundle
from repro.experiments.reporting import format_table


@dataclass
class Fig9Result:
    #: benchmark -> {"pair": stats, "pinte": stats} boxplot summaries
    """Per-benchmark AMAT boxplot summaries for both contexts."""
    per_benchmark: Dict[str, Dict[str, Dict[str, float]]]

    def median_gap(self, benchmark: str) -> float:
        """|median AMAT (PInTE) - median AMAT (2nd-Trace)| in cycles."""
        stats = self.per_benchmark[benchmark]
        return abs(stats["pinte"]["median"] - stats["pair"]["median"])

    def worst_gap(self) -> float:
        return max((self.median_gap(name) for name in self.per_benchmark),
                   default=0.0)


def _sample_amats(results) -> List[float]:
    values: List[float] = []
    for result in results:
        for sample in result.samples:
            if sample.amat > 0:
                values.append(sample.amat)
    return values


def run_fig9(bundle: ContextBundle) -> Fig9Result:
    """Summarise per-sample AMAT distributions under pair and PInTE contention."""
    per_benchmark: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in bundle.names:
        pair_amats = _sample_amats(bundle.pair_results(name))
        pinte_amats = _sample_amats(bundle.pinte_results(name))
        if not pair_amats or not pinte_amats:
            continue
        per_benchmark[name] = {
            "pair": boxplot_stats(pair_amats),
            "pinte": boxplot_stats(pinte_amats),
        }
    if not per_benchmark:
        raise ValueError("no AMAT samples available")
    return Fig9Result(per_benchmark=per_benchmark)


def format_report(result: Fig9Result) -> str:
    """Render the AMAT five-number summaries per benchmark."""
    rows = []
    for name in sorted(result.per_benchmark):
        stats = result.per_benchmark[name]
        rows.append((
            name,
            stats["pair"]["median"], stats["pair"]["q1"], stats["pair"]["q3"],
            stats["pinte"]["median"], stats["pinte"]["q1"], stats["pinte"]["q3"],
            result.median_gap(name),
        ))
    table = format_table(
        ["Benchmark", "2ndT med", "q1", "q3", "PInTE med", "q1", "q3",
         "med gap"],
        rows,
        title="Fig 9: AMAT (cycles) under contention, per 10k-instruction sample",
    )
    return table + f"\n\nworst median AMAT gap: {result.worst_gap():.1f} cycles"
