"""Shared simulation campaign for the evaluation experiments.

Most of the paper's tables and figures are different views of the same three
run contexts (Section V-A *Running Context*): isolation, PInTE sweep, and
2nd-Trace pairs. :func:`build_contexts` runs all three once for a suite;
every driver then analyses the bundle, exactly as the paper post-processes
one experiment campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import MachineConfig
from repro.core import PAPER_PINDUCE_SWEEP
from repro.sim import (
    ExperimentScale,
    SimulationResult,
    TraceLibrary,
    adversary_panel,
    run_isolation,
    run_pairs,
    run_pinte_sweep,
)

#: Default number of 2nd-Trace adversaries per benchmark at repro scale.
DEFAULT_PANEL_SIZE = 4


@dataclass
class ContextBundle:
    """All three run contexts for one suite on one machine."""

    config: MachineConfig
    scale: ExperimentScale
    names: List[str]
    isolation: Dict[str, SimulationResult]
    pinte: Dict[str, Dict[float, SimulationResult]]
    pairs: Dict[str, List[SimulationResult]] = field(default_factory=dict)

    def pinte_results(self, name: str) -> List[SimulationResult]:
        """All PInTE runs of one benchmark, sweep order."""
        return list(self.pinte[name].values())

    def pair_results(self, name: str) -> List[SimulationResult]:
        """All 2nd-Trace runs with ``name`` as the measured workload.

        A benchmark that is in the bundle but was run without pairs
        (``include_pairs=False``) yields ``[]``; an unknown benchmark
        raises ``KeyError`` naming the available ones.
        """
        if name not in self.names:
            raise KeyError(
                f"unknown benchmark {name!r}; bundle has: "
                f"{', '.join(self.names)}")
        return self.pairs.get(name, [])

    def all_pinte(self) -> List[SimulationResult]:
        return [r for sweep in self.pinte.values() for r in sweep.values()]

    def all_pairs(self) -> List[SimulationResult]:
        return [r for results in self.pairs.values() for r in results]

    def all_isolation(self) -> List[SimulationResult]:
        return list(self.isolation.values())


def build_contexts(
    names: Sequence[str],
    config: MachineConfig,
    scale: ExperimentScale,
    p_values: Sequence[float] = PAPER_PINDUCE_SWEEP,
    panel_size: int = DEFAULT_PANEL_SIZE,
    include_pairs: bool = True,
    processes: Optional[int] = None,
    trace_store=None,
) -> ContextBundle:
    """Run isolation + PInTE sweep (+ 2nd-Trace panel) for every benchmark.

    ``processes > 1`` fans the campaign out through
    :func:`repro.campaign.run_campaign` (worker processes, retries,
    failure isolation) and produces results identical to the serial path
    — the jobs pin the same trace seeds the serial runners use.

    ``trace_store`` (a :class:`~repro.trace.store.TraceStore` or directory
    path) serves traces from the shared on-disk cache on both paths.
    """
    names = list(names)
    if processes is not None and processes > 1:
        return _build_contexts_parallel(names, config, scale, p_values,
                                        panel_size, include_pairs, processes,
                                        trace_store)
    if trace_store is not None and not hasattr(trace_store, "get_or_build"):
        from repro.trace.store import TraceStore
        trace_store = TraceStore(trace_store)
    library = TraceLibrary(config, scale, store=trace_store)
    isolation = run_isolation(names, config, scale, library=library)
    pinte = run_pinte_sweep(names, config, scale, p_values=p_values,
                            library=library)
    pairs: Dict[str, List[SimulationResult]] = {}
    if include_pairs and panel_size > 0:
        for name in names:
            panel = adversary_panel(name, names, panel_size)
            pair_list: List[Tuple[str, str]] = [(name, other) for other in panel]
            results = run_pairs(pair_list, config, scale, library=library)
            pairs[name] = [results[key] for key in pair_list]
    return ContextBundle(
        config=config,
        scale=scale,
        names=names,
        isolation=isolation,
        pinte=pinte,
        pairs=pairs,
    )


def _build_contexts_parallel(
    names: List[str],
    config: MachineConfig,
    scale: ExperimentScale,
    p_values: Sequence[float],
    panel_size: int,
    include_pairs: bool,
    processes: int,
    trace_store=None,
) -> ContextBundle:
    """Campaign-engine fan-out behind :func:`build_contexts`.

    Serial ``run_pairs`` builds both traces at ``scale.seed`` (the shared
    :class:`TraceLibrary`); the pair jobs pin ``co_seed=scale.seed`` to
    match, so the parallel bundle is bit-identical to the serial one.
    """
    from repro.campaign.engine import run_campaign
    from repro.sim.batch import Job

    jobs: List[Job] = [Job(name) for name in names]
    for name in names:
        jobs.extend(Job(name, mode="pinte", p_induce=p) for p in p_values)
    panels: Dict[str, List[str]] = {}
    if include_pairs and panel_size > 0:
        for name in names:
            panels[name] = adversary_panel(name, names, panel_size)
            jobs.extend(Job(name, mode="pair", co_runner=other,
                            co_seed=scale.seed) for other in panels[name])
    report = run_campaign(jobs, config, scale, processes=processes,
                          raise_on_failure=True, trace_store=trace_store)
    by_position = dict(zip(jobs, report.results))
    isolation = {name: by_position[Job(name)] for name in names}
    pinte = {
        name: {p: by_position[Job(name, mode="pinte", p_induce=p)]
               for p in p_values}
        for name in names
    }
    pairs = {
        name: [by_position[Job(name, mode="pair", co_runner=other,
                               co_seed=scale.seed)]
               for other in panel]
        for name, panel in panels.items()
    }
    return ContextBundle(config=config, scale=scale, names=names,
                         isolation=isolation, pinte=pinte, pairs=pairs)
