"""Table I — simulation run-times and experiment sizes.

Compares the three sources of contention on two axes the paper reports:

* measured wall-clock time of the reproduction's own simulations
  (count / avg / std / max / min / total), and
* the analytic experiment-count model at the paper's full scale
  (188 traces: all-pairs vs 12-configuration PInTE sweep), which is pure
  combinatorics and reproduces the paper's 7.79x experiment reduction
  exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.stability import std_dev
from repro.experiments.contexts import ContextBundle
from repro.experiments.reporting import format_table


@dataclass(frozen=True)
class RuntimeRow:
    """One Table I row."""

    source: str
    n_sims: int
    avg: float
    std: float
    max: float
    min: float
    total: float


@dataclass
class Table1Result:
    """Measured wall-clock rows plus the analytic full-scale counts."""
    rows: List[RuntimeRow]
    #: full-scale analytic counts (the paper's 188-trace design)
    analytic: Dict[str, int]

    @property
    def avg_time_ratio(self) -> float:
        """2nd-Trace avg time / PInTE avg time (paper: 2.2x-2.4x)."""
        by_name = {row.source: row for row in self.rows}
        pinte = by_name["PInTE"].avg
        return by_name["2nd-Trace"].avg / pinte if pinte else 0.0

    @property
    def experiment_ratio(self) -> float:
        """Full-scale 2nd-Trace sims / PInTE sims (paper: 7.79x)."""
        return self.analytic["2nd-Trace"] / self.analytic["PInTE"]


def _row(source: str, times: List[float]) -> RuntimeRow:
    if not times:
        return RuntimeRow(source, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return RuntimeRow(
        source=source,
        n_sims=len(times),
        avg=sum(times) / len(times),
        std=std_dev(times) if len(times) > 1 else 0.0,
        max=max(times),
        min=min(times),
        total=sum(times),
    )


def analytic_counts(n_traces: int = 188, n_pinte_configs: int = 12) -> Dict[str, int]:
    """The paper's full-scale experiment-count model.

    2nd-Trace needs every unique pair (n*(n-1)/2 = 17,578 mixes for 188
    traces); PInTE needs ``configs x traces`` (2,256).
    """
    return {
        "None": n_traces,
        "2nd-Trace": n_traces * (n_traces - 1) // 2,
        "PInTE": n_pinte_configs * n_traces,
    }


def run_table1(bundle: ContextBundle) -> Table1Result:
    """Measure wall-clock statistics from a context bundle."""
    isolation_times = [r.wall_time_seconds for r in bundle.all_isolation()]
    pinte_times = [r.wall_time_seconds for r in bundle.all_pinte()]
    pair_times = [r.wall_time_seconds for r in bundle.all_pairs()]
    rows = [
        _row("None", isolation_times),
        _row("2nd-Trace", pair_times),
        _row("PInTE", pinte_times),
    ]
    n_pinte_configs = max(
        (len(sweep) for sweep in bundle.pinte.values()), default=12
    )
    return Table1Result(rows=rows, analytic=analytic_counts(188, n_pinte_configs))


def format_report(result: Table1Result) -> str:
    """Render the run-time and experiment-count tables."""
    table = format_table(
        ["Source", "# Sims", "Avg (s)", "Std", "Max", "Min", "Total (s)"],
        [
            (row.source, row.n_sims, row.avg, row.std, row.max, row.min, row.total)
            for row in result.rows
        ],
        title="Table I: simulation run-times and experiment sizes (measured)",
    )
    analytic = format_table(
        ["Source", "# Sims @ 188 traces"],
        sorted(result.analytic.items()),
        title="Full-scale analytic experiment counts",
    )
    summary = (
        f"avg-time ratio (2nd-Trace / PInTE): {result.avg_time_ratio:.2f}x "
        f"(paper: 2.2-2.4x)\n"
        f"experiment ratio (2nd-Trace / PInTE): {result.experiment_ratio:.2f}x "
        f"(paper: 7.79x)"
    )
    return "\n\n".join([table, analytic, summary])
