"""Fig 5 — reuse behaviour under PInTE vs 2nd-Trace contention.

Compares LLC hit-position (reuse) histograms for three exemplar workloads —
good / medium / worst alignment — and quantifies each with KL divergence
(Eq. 5). The histograms are averaged over all contention experiments of each
workload, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.kl_divergence import kl_divergence, normalise
from repro.experiments.contexts import ContextBundle
from repro.experiments.reporting import format_histogram
from repro.experiments.suites import FIG5_WORKLOADS
from repro.sim import SimulationResult


@dataclass
class ReuseComparison:
    """One workload's averaged reuse histograms and their distance."""

    benchmark: str
    pair_histogram: List[float]
    pinte_histogram: List[float]
    kl_bits: float

    @property
    def has_signal(self) -> bool:
        """False when a context produced no LLC reuse hits at all (at small
        scale, core-bound and pure-streaming workloads never re-hit the
        LLC, leaving nothing to compare)."""
        return sum(self.pair_histogram) > 0 and sum(self.pinte_histogram) > 0


@dataclass
class Fig5Result:
    """Reuse-histogram comparisons for the Fig 5 exemplars."""
    comparisons: List[ReuseComparison]

    def by_name(self, benchmark: str) -> ReuseComparison:
        """The comparison for one benchmark; ``KeyError`` lists the rest."""
        for comparison in self.comparisons:
            if comparison.benchmark == benchmark:
                return comparison
        available = ", ".join(c.benchmark for c in self.comparisons)
        raise KeyError(f"unknown benchmark {benchmark!r}; "
                       f"comparisons cover: {available}")

    def sorted_by_alignment(self) -> List[ReuseComparison]:
        """Best (lowest KL) first; signal-free comparisons sort last since
        a zero-vs-zero histogram pair says nothing about alignment."""
        return sorted(self.comparisons,
                      key=lambda c: (not c.has_signal, c.kl_bits))

    def with_signal(self) -> List[ReuseComparison]:
        return [c for c in self.comparisons if c.has_signal]

    def without_signal(self) -> List[str]:
        return [c.benchmark for c in self.comparisons if not c.has_signal]


def average_reuse_histogram(results: Sequence[SimulationResult]) -> List[float]:
    """Mean reuse histogram over runs (the paper averages the stable
    10M-instruction snapshots; our per-run histograms play that role)."""
    histograms = [r.reuse_histogram for r in results if r.reuse_histogram]
    if not histograms:
        raise ValueError("no reuse histograms available")
    arity = len(histograms[0])
    return [
        sum(histogram[i] for histogram in histograms) / len(histograms)
        for i in range(arity)
    ]


def compare_reuse(benchmark: str, pairs: Sequence[SimulationResult],
                  pinte: Sequence[SimulationResult]) -> ReuseComparison:
    """Average each context's reuse histograms and take their KL divergence."""
    pair_histogram = average_reuse_histogram(pairs)
    pinte_histogram = average_reuse_histogram(pinte)
    return ReuseComparison(
        benchmark=benchmark,
        pair_histogram=pair_histogram,
        pinte_histogram=pinte_histogram,
        # p = observed (2nd-Trace), q = reference model (PInTE), per Eq. 5.
        kl_bits=kl_divergence(pair_histogram, pinte_histogram),
    )


def run_fig5(bundle: ContextBundle,
             workloads: Sequence[str] = FIG5_WORKLOADS) -> Fig5Result:
    """Compare reuse behaviour for each exemplar workload in the bundle."""
    comparisons = []
    for name in workloads:
        if name not in bundle.names:
            continue
        comparisons.append(compare_reuse(
            name, bundle.pair_results(name), bundle.pinte_results(name)
        ))
    if not comparisons:
        raise ValueError("none of the requested workloads are in the bundle")
    return Fig5Result(comparisons=comparisons)


def format_report(result: Fig5Result) -> str:
    """Render one reuse-histogram panel per exemplar."""
    parts = []
    for comparison in result.comparisons:
        if not comparison.has_signal:
            parts.append(
                f"{comparison.benchmark}: no LLC reuse signal in one or both "
                f"contexts at this scale (core-bound / pure-stream behaviour)"
            )
            continue
        labels = [f"pos{i}" for i in range(len(comparison.pair_histogram))]
        pair_p = normalise(comparison.pair_histogram)
        pinte_q = normalise(comparison.pinte_histogram)
        parts.append(format_histogram(
            pair_p, labels,
            title=f"{comparison.benchmark} reuse under 2nd-Trace (p)",
        ))
        parts.append(format_histogram(
            pinte_q, labels,
            title=(f"{comparison.benchmark} reuse under PInTE (q) — "
                   f"KL {comparison.kl_bits:.3f} bits"),
        ))
    ordering = " < ".join(
        f"{c.benchmark} ({c.kl_bits:.3f}b)"
        for c in result.sorted_by_alignment() if c.has_signal
    )
    parts.append(f"alignment order (best first): {ordering}")
    skipped = result.without_signal()
    if skipped:
        parts.append(f"no-signal workloads: {', '.join(skipped)}")
    return "\n\n".join(parts)
