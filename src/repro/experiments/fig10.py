"""Fig 10 — real system vs PInTE contention.

The paper runs six SPEC 17 benchmarks on a Xeon Silver 4110 with Intel RDT
capping the workload at 10 of 11 MB of LLC, then compares against a
re-configured ChampSim with halved DRAM resources. We cannot run the Xeon,
so (per the substitution rule) the "real system" is the same simulator in the
:func:`~repro.config.xeon_config` configuration running 2nd-Trace pairs —
measured through the *change-in-occupancy* proxy (Eq. 6), exactly the metric
the paper uses because real machines lack theft counters. The PInTE side
sweeps ``P_induce`` on the same configuration with interference rate as its
x-axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.occupancy import mean_change_in_occupancy
from repro.config import MachineConfig, xeon_config
from repro.experiments.reporting import format_table
from repro.experiments.suites import FIG10_SUITE
from repro.sim import (
    ExperimentScale,
    SimulationResult,
    TraceLibrary,
    adversary_panel,
    run_isolation,
    run_pairs,
    run_pinte_sweep,
)

#: Reduced sweep for the Fig 10 bench (six points across the range).
FIG10_PINDUCE = (0.02, 0.05, 0.15, 0.35, 0.6, 1.0)


@dataclass
class Fig10Point:
    """One scatter point: contention proxy -> % change in IPC."""

    x: float  # change in occupancy (real) or interference rate (PInTE)
    ipc_change_percent: float


@dataclass
class Fig10Result:
    #: benchmark -> scatter under "real" (2nd-Trace on the xeon config)
    """Occupancy-change scatter points for the real-proxy and PInTE runs."""
    real_points: Dict[str, List[Fig10Point]]
    #: benchmark -> scatter under PInTE
    pinte_points: Dict[str, List[Fig10Point]]
    allocation_fraction: float

    def max_loss(self, benchmark: str, which: str) -> float:
        points = (self.real_points if which == "real"
                  else self.pinte_points).get(benchmark, [])
        if not points:
            return 0.0
        return min(point.ipc_change_percent for point in points)

    def classification_agreement(self, threshold: float = 5.0) -> Dict[str, bool]:
        """Do real and PInTE agree on whether losses exceed ``threshold``%?"""
        agreement = {}
        for name in self.real_points:
            real_sensitive = self.max_loss(name, "real") < -threshold
            pinte_sensitive = self.max_loss(name, "pinte") < -threshold
            agreement[name] = real_sensitive == pinte_sensitive
        return agreement


def _percent_change(results: Sequence[SimulationResult]) -> List[float]:
    """% change in IPC relative to the lowest-contention case, as in the
    paper's dotted 1/5/10% reference lines."""
    if not results:
        return []
    baseline = max(r.ipc for r in results)
    if baseline <= 0:
        return [0.0] * len(results)
    return [100.0 * (r.ipc / baseline - 1.0) for r in results]


def allocation_fraction_for(config: MachineConfig) -> float:
    """The RDT-style LLC allocation fraction of one machine config."""
    return (config.llc_way_allocation or config.llc.assoc) / config.llc.assoc


def points_from_results(
    names: Sequence[str],
    sweep: Dict[str, Dict[float, SimulationResult]],
    pairs_by_name: Dict[str, List[SimulationResult]],
    allocation_fraction: float,
) -> Fig10Result:
    """Build the scatter from raw results (shared with the registry).

    ``sweep`` maps benchmark -> P_induce -> PInTE result;
    ``pairs_by_name`` maps benchmark -> 2nd-Trace results in panel order.
    """
    real_points: Dict[str, List[Fig10Point]] = {}
    pinte_points: Dict[str, List[Fig10Point]] = {}
    for name in names:
        ordered_pairs = pairs_by_name[name]
        changes = _percent_change(ordered_pairs)
        real_points[name] = [
            Fig10Point(
                x=mean_change_in_occupancy([result], allocation_fraction),
                ipc_change_percent=change,
            )
            for result, change in zip(ordered_pairs, changes)
        ]
        pinte_results = list(sweep[name].values())
        changes = _percent_change(pinte_results)
        pinte_points[name] = [
            Fig10Point(x=result.interference_rate, ipc_change_percent=change)
            for result, change in zip(pinte_results, changes)
        ]
    return Fig10Result(real_points=real_points, pinte_points=pinte_points,
                       allocation_fraction=allocation_fraction)


def run_fig10(
    names: Sequence[str] = tuple(FIG10_SUITE),
    config: MachineConfig = None,
    scale: ExperimentScale = None,
    p_values: Sequence[float] = FIG10_PINDUCE,
    panel_size: int = 3,
) -> Fig10Result:
    """Run the xeon-config 2nd-Trace proxy against the PInTE sweep."""
    config = config if config is not None else xeon_config()
    scale = scale if scale is not None else ExperimentScale()
    names = list(names)
    library = TraceLibrary(config, scale)

    sweep = run_pinte_sweep(names, config, scale, p_values=p_values,
                            library=library)
    pairs_by_name: Dict[str, List[SimulationResult]] = {}
    for name in names:
        panel = adversary_panel(name, names, panel_size)
        pair_keys: List[Tuple[str, str]] = [(name, other) for other in panel]
        pair_results = run_pairs(pair_keys, config, scale, library=library)
        pairs_by_name[name] = [pair_results[key] for key in pair_keys]
    return points_from_results(names, sweep, pairs_by_name,
                               allocation_fraction_for(config))


def format_report(result: Fig10Result) -> str:
    """Render per-benchmark occupancy slopes and classification agreement."""
    rows = []
    agreement = result.classification_agreement()
    for name in sorted(result.real_points):
        rows.append((
            name,
            result.max_loss(name, "real"),
            result.max_loss(name, "pinte"),
            "yes" if agreement[name] else "NO",
        ))
    table = format_table(
        ["Benchmark", "real max ΔIPC %", "PInTE max ΔIPC %", "agree@5%"],
        rows,
        title=(f"Fig 10: 'real system' (xeon config, RDT allocation "
               f"{result.allocation_fraction:.0%}) vs PInTE"),
    )
    detail_parts = [table]
    for name in sorted(result.real_points):
        real = " ".join(f"({p.x:.1f}%,{p.ipc_change_percent:+.1f}%)"
                        for p in result.real_points[name])
        pinte = " ".join(f"({p.x:.2f},{p.ipc_change_percent:+.1f}%)"
                         for p in result.pinte_points[name])
        detail_parts.append(
            f"{name}\n  real (Δoccupancy -> ΔIPC): {real}\n"
            f"  PInTE (interference rate -> ΔIPC): {pinte}"
        )
    return "\n\n".join(detail_parts)
