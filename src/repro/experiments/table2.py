"""Table II — average relative error in high-level performance metrics.

For every benchmark: each 2nd-Trace mix is matched (by contention-rate group,
Section III-E) to the PInTE run with the closest contention rate, Eq. 4 is
applied to AMAT / MR / IPC, and the per-benchmark averages are tabulated with
the paper's significance annotations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.crg import match_by_group
from repro.analysis.relative_error import (
    ErrorRow,
    average_errors,
    error_table,
    result_relative_errors,
)
from repro.experiments.contexts import ContextBundle
from repro.experiments.reporting import format_table


@dataclass
class Table2Result:
    """Per-benchmark average relative errors with significance flags."""
    rows: List[ErrorRow]
    summary: Dict[str, Dict[str, float]]
    matched_counts: Dict[str, int]

    def row(self, benchmark: str) -> ErrorRow:
        for row in self.rows:
            if row.benchmark == benchmark:
                return row
        raise KeyError(benchmark)


def run_table2(bundle: ContextBundle, group_width: float = 0.10) -> Table2Result:
    """Match mixes to PInTE runs by CRG and average the Eq. 4 errors."""
    rows: List[ErrorRow] = []
    matched_counts: Dict[str, int] = {}
    for name in bundle.names:
        pairs = bundle.pair_results(name)
        pinte = bundle.pinte_results(name)
        matches = match_by_group(pairs, pinte, width=group_width)
        if not matches:
            # Fall back to nearest-rate matching so every benchmark reports.
            matches = [
                (pair, min(pinte, key=lambda r: abs(r.contention_rate
                                                    - pair.contention_rate)))
                for pair in pairs
            ]
        matched_counts[name] = len(matches)
        errors = average_errors(
            result_relative_errors(reference, model)
            for reference, model in matches
        )
        rows.append(ErrorRow(
            benchmark=name,
            amat=errors["amat"],
            miss_rate=errors["miss_rate"],
            ipc=errors["ipc"],
        ))
    return Table2Result(rows=rows, summary=error_table(rows),
                        matched_counts=matched_counts)


def _annotate(row: ErrorRow) -> str:
    classification = row.classify()
    return {
        "dram_dependent": "_",  # underline in the paper
        "core_bound": "*",
        "llc_bound": "+",
        "ok": "",
    }[classification]


def format_report(result: Table2Result) -> str:
    """Render the relative-error table with significance annotations."""
    table = format_table(
        ["Benchmark", "AMAT %", "MR %", "IPC %", "flag", "matches"],
        [
            (row.benchmark, row.amat, row.miss_rate, row.ipc, _annotate(row),
             result.matched_counts.get(row.benchmark, 0))
            for row in result.rows
        ],
        title="Table II: average relative error, PInTE vs 2nd-Trace (Eq. 4)",
    )
    summary = format_table(
        ["Suite", "AMAT %", "MR %", "IPC %"],
        [
            (suite,
             result.summary[suite]["amat"],
             result.summary[suite]["miss_rate"],
             result.summary[suite]["ipc"])
            for suite in ("2006", "2017", "all")
        ],
        title="Suite averages (paper: AMAT 1.43, MR 1.29, IPC -8.46)",
    )
    legend = "flags: _ DRAM-dependent, * core-bound (MR), + LLC-bound (IPC)"
    return "\n\n".join([table, summary, legend])
