"""Fig 11 — the best design choice varies with contention.

The case study (paper Section VI): sweep ``P_induce`` and, at each level of
induced contention, ask which architectural option wins on IPC across the
workload suite — for four dimensions of design choice:

* replacement policy (LRU / tree-pLRU / nMRU / RRIP),
* LLC inclusion (non-inclusive / inclusive / exclusive),
* prefetch string (000 / NN0 / NNN / NNI),
* branch predictor (bimodal / gshare / perceptron / hashed perceptron).

For every dimension we report the paper's four columns: win share per
option, a primary metric, a secondary metric, and the tie share (all
options within 1% of the best).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.config import MachineConfig
from repro.configs import DESIGN_DIMENSIONS
from repro.core import PinteConfig
from repro.experiments.reporting import format_table, percent
from repro.experiments.suites import CASE_STUDY_SUITE
from repro.sim import ExperimentScale, SimulationResult, TraceLibrary
from repro.sim.simulator import simulate

#: Contention sweep for the case study; includes the paper's 7.5% and 70%
#: break-points.
FIG11_PINDUCE = (0.0, 0.075, 0.3, 0.7, 1.0)
#: Two results within this relative margin are a statistical tie.
TIE_MARGIN = 0.01


@dataclass(frozen=True)
class Dimension:
    """One row of Fig 11."""

    name: str
    options: Tuple[str, ...]
    configure: Callable[[MachineConfig, str], MachineConfig]
    primary_metric: str
    secondary_metric: str


#: Reported (primary, secondary) metric per design axis; the axes and
#: their variant transforms live in :data:`repro.configs.DESIGN_DIMENSIONS`
#: so the config registry's named variants and this sweep cannot drift.
_DIMENSION_METRICS: Dict[str, Tuple[str, str]] = {
    "replacement": ("miss_rate", "interference_rate"),
    "inclusion": ("miss_rate", "l2_miss_rate"),
    "prefetching": ("prefetch_miss_rate", "l1d_miss_rate"),
    "branching": ("branch_accuracy", "branch_mpki"),
}

DIMENSIONS: Tuple[Dimension, ...] = tuple(
    Dimension(
        name=axis.name,
        options=axis.options,
        configure=axis.apply,
        primary_metric=_DIMENSION_METRICS[axis.name][0],
        secondary_metric=_DIMENSION_METRICS[axis.name][1],
    )
    for axis in DESIGN_DIMENSIONS
)


@dataclass
class DimensionSweep:
    """Fig 11 columns for one dimension."""

    dimension: str
    options: Tuple[str, ...]
    #: p_induce -> option -> win share across workloads
    win_share: Dict[float, Dict[str, float]]
    #: p_induce -> share of workloads where all options tie within 1%
    tie_share: Dict[float, float]
    #: p_induce -> option -> mean primary metric
    primary: Dict[float, Dict[str, float]]
    #: p_induce -> option -> mean secondary metric
    secondary: Dict[float, Dict[str, float]]

    def winner(self, p: float) -> str:
        shares = self.win_share[p]
        return max(shares, key=shares.get)

    def tie_trend_increasing(self) -> bool:
        """Does the tie share grow from the lowest to the highest contention?"""
        ps = sorted(self.tie_share)
        return self.tie_share[ps[-1]] >= self.tie_share[ps[0]]


@dataclass
class Fig11Result:
    """Winner-per-contention-level sweeps for each design dimension."""
    sweeps: Dict[str, DimensionSweep]
    p_values: Tuple[float, ...]
    workloads: Tuple[str, ...]

    def sweep(self, dimension: str) -> DimensionSweep:
        return self.sweeps[dimension]


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def sweep_from_results(
    dimension: Dimension,
    results: Dict[float, Dict[str, Dict[str, SimulationResult]]],
    p_values: Tuple[float, ...],
    workloads: Tuple[str, ...],
) -> DimensionSweep:
    """Rank one dimension's options from ``results[p][option][workload]``.

    Shared by the serial :func:`run_fig11` driver and the artifact
    registry's aggregate phase.
    """
    win_share: Dict[float, Dict[str, float]] = {}
    tie_share: Dict[float, float] = {}
    primary: Dict[float, Dict[str, float]] = {}
    secondary: Dict[float, Dict[str, float]] = {}
    for p in p_values:
        wins = {option: 0 for option in dimension.options}
        ties = 0
        for name in workloads:
            ipcs = {option: results[p][option][name].ipc
                    for option in dimension.options}
            best_option = max(ipcs, key=ipcs.get)
            best = ipcs[best_option]
            wins[best_option] += 1
            if best > 0 and all(value >= best * (1 - TIE_MARGIN)
                                for value in ipcs.values()):
                ties += 1
        n = len(workloads)
        win_share[p] = {option: wins[option] / n for option in dimension.options}
        tie_share[p] = ties / n
        primary[p] = {
            option: _mean([getattr(results[p][option][name],
                                   dimension.primary_metric)
                           for name in workloads])
            for option in dimension.options
        }
        secondary[p] = {
            option: _mean([getattr(results[p][option][name],
                                   dimension.secondary_metric)
                           for name in workloads])
            for option in dimension.options
        }
    return DimensionSweep(
        dimension=dimension.name,
        options=dimension.options,
        win_share=win_share,
        tie_share=tie_share,
        primary=primary,
        secondary=secondary,
    )


def run_fig11(
    config: MachineConfig,
    scale: ExperimentScale,
    workloads: Sequence[str] = tuple(CASE_STUDY_SUITE),
    p_values: Sequence[float] = FIG11_PINDUCE,
    dimensions: Sequence[Dimension] = DIMENSIONS,
) -> Fig11Result:
    """Sweep P_induce and rank the design options at each contention level."""
    workloads = tuple(workloads)
    p_values = tuple(p_values)
    sweeps: Dict[str, DimensionSweep] = {}
    for dimension in dimensions:
        # results[p][option][workload] -> SimulationResult
        results: Dict[float, Dict[str, Dict[str, SimulationResult]]] = {
            p: {option: {} for option in dimension.options} for p in p_values
        }
        for option in dimension.options:
            variant = dimension.configure(config, option)
            library = TraceLibrary(variant, scale)
            for name in workloads:
                trace = library.get(name)
                for p in p_values:
                    results[p][option][name] = simulate(
                        trace, variant,
                        pinte=PinteConfig(p_induce=p, seed=scale.seed) if p > 0
                        else None,
                        warmup_instructions=scale.warmup_instructions,
                        sim_instructions=scale.sim_instructions,
                        sample_interval=scale.sample_interval,
                        seed=scale.seed,
                    )
        sweeps[dimension.name] = sweep_from_results(dimension, results,
                                                    p_values, workloads)
    return Fig11Result(sweeps=sweeps, p_values=p_values, workloads=workloads)


def format_report(result: Fig11Result) -> str:
    """Render one winners table per design dimension."""
    parts: List[str] = []
    for name, sweep in result.sweeps.items():
        rows = []
        for p in result.p_values:
            shares = " ".join(
                f"{option}={percent(sweep.win_share[p][option])}"
                for option in sweep.options
            )
            rows.append((p, shares, percent(sweep.tie_share[p]),
                         sweep.winner(p)))
        parts.append(format_table(
            ["P_induce", "win shares", "tie share", "winner"],
            rows,
            title=f"Fig 11 — {name}",
        ))
    return "\n\n".join(parts)
