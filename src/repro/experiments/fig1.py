"""Fig 1 — contention-rate coverage: 2nd-Trace pairs vs PInTE sweep.

The paper's point: workload pairs over-represent low contention (most mixes
barely interfere), while sweeping ``P_induce`` yields near-uniform coverage
of the whole 0-100% contention-rate range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.contexts import ContextBundle
from repro.experiments.reporting import format_histogram, percent

#: 10%-wide contention-rate bins spanning 0-100%.
N_BINS = 10


@dataclass
class Fig1Result:
    """Contention-rate coverage data behind Fig 1."""
    pair_rates: List[float]
    pinte_rates: List[float]
    pair_histogram: List[int]
    pinte_histogram: List[int]

    def occupied_bins(self, which: str) -> int:
        """How many of the 10 rate bins a context reached."""
        histogram = self.pair_histogram if which == "pairs" else self.pinte_histogram
        return sum(1 for count in histogram if count > 0)

    @property
    def pair_low_fraction(self) -> float:
        """Fraction of pair experiments stuck in the lowest bin."""
        if not self.pair_rates:
            return 0.0
        return self.pair_histogram[0] / len(self.pair_rates)


def _bin_rates(rates: List[float]) -> List[int]:
    histogram = [0] * N_BINS
    for rate in rates:
        index = min(N_BINS - 1, int(rate * N_BINS))
        histogram[index] += 1
    return histogram


def run_fig1(bundle: ContextBundle) -> Fig1Result:
    """Bin contention rates of the bundle's pair and PInTE runs."""
    pair_rates = [r.contention_rate for r in bundle.all_pairs()]
    # Contention rates can exceed 1.0 under aggressive PInTE settings (several
    # blocks stolen per access); clamp into the top bin like the paper's
    # 0-100% axis.
    pinte_rates = [min(1.0, r.contention_rate) for r in bundle.all_pinte()]
    return Fig1Result(
        pair_rates=pair_rates,
        pinte_rates=pinte_rates,
        pair_histogram=_bin_rates(pair_rates),
        pinte_histogram=_bin_rates(pinte_rates),
    )


def format_report(result: Fig1Result) -> str:
    """Render the two coverage histograms side by side."""
    labels = [f"{10 * i}-{10 * (i + 1)}%" for i in range(N_BINS)]
    parts = [
        format_histogram(result.pair_histogram, labels,
                         title="Fig 1a: contention-rate distribution, 2nd-Trace pairs"),
        format_histogram(result.pinte_histogram, labels,
                         title="Fig 1b: contention-rate distribution, PInTE sweep"),
        (f"pairs reach {result.occupied_bins('pairs')}/10 bins "
         f"({percent(result.pair_low_fraction)} in the lowest bin); "
         f"PInTE reaches {result.occupied_bins('pinte')}/10 bins"),
    ]
    return "\n\n".join(parts)
