"""One-shot reproduction driver: every table/figure from a single campaign.

``run_reproduction`` builds one context bundle and renders every
bundle-based artifact (Table I/II, Fig 1/5/6/7/8/9); the self-contained
drivers (Fig 3/10/11) can be included when time allows. This is what
``python -m repro reproduce`` runs; the benchmark harness does the same
per-artifact with shape assertions.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.config import MachineConfig, scaled_config
from repro.core import PAPER_PINDUCE_SWEEP
from repro.experiments import (
    fig1,
    fig3,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
    table2,
)
from repro.experiments.contexts import build_contexts
from repro.experiments.suites import CASE_STUDY_SUITE, CORE_SUITE, QUICK_SUITE
from repro.sim import ExperimentScale

#: Artifacts rendered straight from the shared bundle.
BUNDLE_ARTIFACTS = ("table1", "fig1", "table2", "fig5", "fig6", "fig7",
                    "fig8", "fig9")
#: Artifacts that run their own campaigns (slower).
STANDALONE_ARTIFACTS = ("fig3", "fig10", "fig11")


def run_reproduction(
    config: Optional[MachineConfig] = None,
    scale: Optional[ExperimentScale] = None,
    suite: Sequence[str] = tuple(QUICK_SUITE),
    p_values: Sequence[float] = PAPER_PINDUCE_SWEEP,
    panel_size: int = 3,
    include_standalone: bool = False,
    output_dir: Optional[Path] = None,
    processes: Optional[int] = None,
    trace_store=None,
) -> Dict[str, str]:
    """Run the campaign and return ``{artifact: report text}``.

    With ``output_dir`` each report is also written to ``<artifact>.txt``.
    ``processes > 1`` fans the shared context bundle out through the
    campaign engine (:mod:`repro.campaign`); results are identical to the
    serial path. ``trace_store`` (a directory path or
    :class:`~repro.trace.store.TraceStore`) serves traces from the shared
    on-disk cache instead of regenerating them.
    """
    config = config or scaled_config()
    scale = scale or ExperimentScale()
    bundle = build_contexts(list(suite), config, scale, p_values=p_values,
                            panel_size=panel_size, processes=processes,
                            trace_store=trace_store)
    reports: Dict[str, str] = {
        "table1": table1.format_report(table1.run_table1(bundle)),
        "fig1": fig1.format_report(fig1.run_fig1(bundle)),
        "table2": table2.format_report(table2.run_table2(bundle)),
        "fig6": fig6.format_report(fig6.run_fig6(bundle)),
        "fig7": fig7.format_report(fig7.run_fig7(bundle)),
        "fig8": fig8.format_report(fig8.run_fig8(bundle)),
        "fig9": fig9.format_report(fig9.run_fig9(bundle)),
    }
    try:
        reports["fig5"] = fig5.format_report(fig5.run_fig5(bundle))
    except ValueError:
        # The Fig 5 exemplars may not be in a reduced suite; fall back to
        # whatever the bundle contains.
        reports["fig5"] = fig5.format_report(
            fig5.run_fig5(bundle, workloads=tuple(bundle.names[:3])))

    if include_standalone:
        reports["fig3"] = fig3.format_report(
            fig3.run_fig3(list(suite)[:4], config, scale,
                          p_values=p_values[::3] or p_values, n_repeats=3))
        reports["fig10"] = fig10.format_report(fig10.run_fig10(scale=scale))
        reports["fig11"] = fig11.format_report(
            fig11.run_fig11(config, scale, workloads=CASE_STUDY_SUITE))

    if output_dir is not None:
        output_dir = Path(output_dir)
        output_dir.mkdir(parents=True, exist_ok=True)
        for artifact, text in reports.items():
            (output_dir / f"{artifact}.txt").write_text(text + "\n")
    return reports


def suite_for_name(name: str) -> Sequence[str]:
    """Named suites accepted by the CLI."""
    suites = {"quick": QUICK_SUITE, "core": CORE_SUITE}
    try:
        return suites[name]
    except KeyError:
        raise ValueError(f"unknown suite {name!r}; known: "
                         f"{', '.join(sorted(suites))}") from None
