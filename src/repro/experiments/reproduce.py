"""One-shot reproduction driver: every table/figure from a single campaign.

``run_reproduction`` is a thin loop over the artifact registry
(:mod:`repro.experiments.registry`): it plans the union of the selected
artifacts, deduplicates shared jobs by deterministic id, executes the
unique set through the fault-tolerant campaign engine, then aggregates and
renders each artifact from the shared results. With a ``store`` the
campaign is persistent and ``resume=True`` skips every job already on
disk, so an interrupted reproduction picks up where it stopped and still
produces byte-identical reports. This is what ``python -m repro
reproduce`` runs; ``python -m repro artifact`` exposes the same registry
piecemeal.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.config import MachineConfig, scaled_config
from repro.core import PAPER_PINDUCE_SWEEP
from repro.experiments.registry import (
    PlanContext,
    execute_plan,
    get_artifact,
    plan_union,
)
from repro.experiments.suites import CORE_SUITE, QUICK_SUITE
from repro.sim import ExperimentScale

#: Artifacts rendered from the shared context-bundle campaign.
BUNDLE_ARTIFACTS = ("table1", "fig1", "table2", "fig5", "fig6", "fig7",
                    "fig8", "fig9")
#: Artifacts whose plans add jobs beyond the bundle (slower).
STANDALONE_ARTIFACTS = ("fig3", "fig10", "fig11", "ncore_study",
                        "partition_study")


def select_artifacts(artifacts: Optional[Sequence[str]] = None,
                     include_standalone: bool = False) -> Sequence[str]:
    """The artifact set one reproduction covers, in rendering order."""
    if artifacts is not None:
        return [get_artifact(name).name for name in artifacts]
    selected = list(BUNDLE_ARTIFACTS)
    if include_standalone:
        selected.extend(STANDALONE_ARTIFACTS)
    return selected


def run_reproduction(
    config: Optional[MachineConfig] = None,
    scale: Optional[ExperimentScale] = None,
    suite: Sequence[str] = tuple(QUICK_SUITE),
    p_values: Sequence[float] = PAPER_PINDUCE_SWEEP,
    panel_size: int = 3,
    include_standalone: bool = False,
    output_dir: Optional[Path] = None,
    processes: Optional[int] = None,
    trace_store=None,
    artifacts: Optional[Sequence[str]] = None,
    store=None,
    resume: bool = False,
    inject: Optional[str] = None,
    executor: Optional[str] = None,
) -> Dict[str, str]:
    """Plan, execute and render the selected artifacts; ``{name: text}``.

    With ``output_dir`` each report is also written to ``<artifact>.txt``.
    ``artifacts`` names an explicit registry subset (default: the bundle
    artifacts, plus the standalone ones when ``include_standalone``).
    Execution always goes through the campaign engine: ``processes > 1``
    fans out over worker processes; ``store`` (a JSONL path) makes the
    campaign persistent and ``resume=True`` skips the job ids it already
    holds; ``trace_store`` (a directory path or
    :class:`~repro.trace.store.TraceStore`) serves traces from the shared
    on-disk cache instead of regenerating them. ``inject`` adds one fault
    job (``raise``/``exit``/``hang``/``flaky:N+name``) for resumability
    drills. ``executor`` picks the parallel scheduler (``pool``/``spawn``).
    Reports are identical however the jobs were executed.
    """
    config = config or scaled_config()
    scale = scale or ExperimentScale()
    ctx = PlanContext(config=config, scale=scale, suite=tuple(suite),
                      p_values=tuple(p_values), panel_size=panel_size)
    selected = select_artifacts(artifacts, include_standalone)
    plan = plan_union(selected, ctx)
    outcome = execute_plan(plan, processes=processes,
                           trace_store=trace_store, store=store,
                           resume=resume, inject=inject, executor=executor)
    reports = {name: get_artifact(name).report(ctx, outcome.results)
               for name in selected}
    if output_dir is not None:
        output_dir = Path(output_dir)
        output_dir.mkdir(parents=True, exist_ok=True)
        for artifact, text in reports.items():
            (output_dir / f"{artifact}.txt").write_text(text + "\n")
    return reports


def suite_for_name(name: str) -> Sequence[str]:
    """Named suites accepted by the CLI."""
    suites = {"quick": QUICK_SUITE, "core": CORE_SUITE}
    try:
        return suites[name]
    except KeyError:
        raise ValueError(f"unknown suite {name!r}; known: "
                         f"{', '.join(sorted(suites))}") from None
