"""Fig 7 — run-time metric entropy and CRG coverage.

(a) KL divergence between sequential run-time metric samples under 2nd-Trace
(p) and PInTE (q) contention, for five metrics — all should land well under
1 bit. (b) The fraction of 2nd-Trace experiments that have a PInTE match
under different contention-rate-grouping criteria.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.crg import PAPER_CRG_CRITERIA, coverage, match_by_group
from repro.analysis.kl_divergence import series_kl
from repro.analysis.metrics import boxplot_stats
from repro.experiments.contexts import ContextBundle
from repro.experiments.reporting import format_table, percent

#: The five run-time metrics of Fig 7a.
RUNTIME_METRICS = ("ipc", "miss_rate", "amat", "contention_rate",
                   "interference_rate")


@dataclass
class Fig7Result:
    #: metric -> list of KL divergences (one per matched experiment pair)
    """Run-time metric KL divergences and CRG coverage fractions."""
    kl_by_metric: Dict[str, List[float]]
    #: CRG group width -> fraction of 2nd-Trace results matched by PInTE
    coverage_by_criterion: Dict[float, float]

    def metric_stats(self, metric: str) -> Dict[str, float]:
        return boxplot_stats(self.kl_by_metric[metric])

    @property
    def max_median(self) -> float:
        """Largest per-metric median KL (paper: well under 1 bit)."""
        return max(self.metric_stats(metric)["median"]
                   for metric in self.kl_by_metric)


def run_fig7(bundle: ContextBundle,
             criteria=PAPER_CRG_CRITERIA) -> Fig7Result:
    """Compute metric entropy and CRG coverage over matched experiment pairs."""
    kl_by_metric: Dict[str, List[float]] = {m: [] for m in RUNTIME_METRICS}
    for name in bundle.names:
        pairs = bundle.pair_results(name)
        pinte = bundle.pinte_results(name)
        if not pairs or not pinte:
            continue
        for reference, model in match_by_group(pairs, pinte):
            for metric in RUNTIME_METRICS:
                ref_series = reference.sample_series(metric)
                model_series = model.sample_series(metric)
                if not ref_series or not model_series:
                    continue
                kl_by_metric[metric].append(series_kl(ref_series, model_series))
    all_pairs = bundle.all_pairs()
    all_pinte = bundle.all_pinte()
    coverage_by_criterion = {
        width: coverage(all_pairs, all_pinte, width=width)
        for width in criteria
    }
    if not any(kl_by_metric.values()):
        raise ValueError("no matched experiments produced sample series")
    return Fig7Result(kl_by_metric=kl_by_metric,
                      coverage_by_criterion=coverage_by_criterion)


def format_report(result: Fig7Result) -> str:
    """Render the metric-KL table and coverage-by-criterion rows."""
    rows = []
    for metric in RUNTIME_METRICS:
        values = result.kl_by_metric[metric]
        if not values:
            continue
        stats = result.metric_stats(metric)
        rows.append((metric, len(values), stats["median"], stats["q1"],
                     stats["q3"], stats["max"]))
    table = format_table(
        ["Metric", "n", "median KL", "q1", "q3", "max"],
        rows,
        title="Fig 7a: run-time KL divergence (bits) per metric",
    )
    coverage_table = format_table(
        ["CRG width", "coverage"],
        [(f"±{width * 50:.0f}%", percent(frac))
         for width, frac in sorted(result.coverage_by_criterion.items())],
        title="Fig 7b: 2nd-Trace results matched by PInTE per CRG criterion "
              "(paper: ~92% at ±5%)",
    )
    summary = f"max per-metric median KL: {result.max_median:.3f} bits (paper: << 1)"
    return "\n\n".join([table, coverage_table, summary])
