"""Declarative artifact registry: plan → execute → aggregate → render.

The paper's evaluation is one campaign viewed thirteen ways (Section V-A
*Running Context*). This module makes that literal: every table/figure is
an :class:`Artifact` with three pure-ish phases —

* ``plan(ctx) -> [PlannedJob]`` — enumerate the simulations the artifact
  needs (**no simulation happens here**; a plan is just jobs plus the
  machine/scale each runs under);
* ``aggregate(ctx, results) -> result object`` — reconstruct the
  artifact's result dataclass from campaign results, byte-identical to
  what the serial ``run_*`` driver computes;
* ``render(result) -> str`` — the driver's existing ``format_report``.

Between plan and aggregate sits :func:`execute_plan`, which routes every
job — including the formerly standalone ``simulate()`` loops of Fig 3/10/11
and the n-core/partitioning studies — through the fault-tolerant campaign
engine (:mod:`repro.campaign`), so every artifact gains retries, timeouts,
sharding, the shared trace cache, a persistent :class:`ResultStore` and
resume for free.

:func:`plan_union` exploits the deterministic job ids of
:mod:`repro.campaign.ids`: jobs requested by several artifacts (isolation
runs feed Table I *and* the partitioning study; the PInTE sweep feeds six
figures) are planned once and executed once, with results fanned back to
every consumer through the id-keyed :class:`ResultMap`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaign.engine import CampaignReport, RetryPolicy, run_campaign
from repro.campaign.ids import job_id
from repro.campaign.store import ResultStore
from repro.config import MachineConfig
from repro.configs import get_machine_config
from repro.core import PAPER_PINDUCE_SWEEP
from repro.experiments import (
    fig1,
    fig3,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    ncore_study,
    partition_study,
    table1,
    table2,
)
from repro.experiments.contexts import ContextBundle
from repro.experiments.suites import CASE_STUDY_SUITE, FIG10_SUITE
from repro.sim import ExperimentScale, SimulationResult, adversary_panel
from repro.sim.batch import Job
from repro.trace.store import MemoryTraceStore

__all__ = [
    "Artifact",
    "ExecutionOutcome",
    "PlanContext",
    "PlannedJob",
    "REGISTRY",
    "ResultMap",
    "UnionPlan",
    "artifact_names",
    "bundle_from_results",
    "execute_plan",
    "get_artifact",
    "plan_bundle",
    "plan_union",
    "register",
]


@dataclass(frozen=True)
class PlanContext:
    """Shared planning inputs: machine, scale, suite and sweep shape.

    This is the ``(config, scale, suite)`` triple every artifact plans
    against, plus the two campaign-shape knobs ``repro reproduce`` exposes
    (the P_induce sweep and the 2nd-Trace panel size). Artifacts that pin
    their own suite or machine (Fig 10's xeon config, the case-study
    suite) ignore the corresponding field.
    """

    config: MachineConfig
    scale: ExperimentScale
    suite: Tuple[str, ...]
    p_values: Tuple[float, ...] = tuple(PAPER_PINDUCE_SWEEP)
    panel_size: int = 3

    def __post_init__(self) -> None:
        object.__setattr__(self, "suite", tuple(self.suite))
        object.__setattr__(self, "p_values", tuple(self.p_values))


@dataclass(frozen=True)
class PlannedJob:
    """One job plus the machine/scale it runs under.

    Artifacts may plan jobs on *different* machine configs (Fig 11 sweeps
    config variants; Fig 10 uses the xeon config), so the pair travels
    with the job — and is hashed into :attr:`id`, which is what makes the
    union planner's dedup sound across configs.
    """

    job: Job
    config: MachineConfig
    scale: ExperimentScale

    @property
    def id(self) -> str:
        """The deterministic campaign id this job will execute under."""
        return job_id(self.job, self.config, self.scale)


class ResultMap:
    """Campaign results keyed by deterministic job id."""

    def __init__(self, results_by_id: Dict[str, SimulationResult]) -> None:
        self._by_id = dict(results_by_id)

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, jid: str) -> bool:
        return jid in self._by_id

    def for_id(self, jid: str) -> SimulationResult:
        """The result stored under one job id."""
        try:
            return self._by_id[jid]
        except KeyError:
            raise KeyError(
                f"no result for job id {jid}; the campaign holds "
                f"{len(self._by_id)} results — was the plan fully "
                "executed (check the failure manifest)?") from None

    def for_job(self, job: Job, config: MachineConfig,
                scale: ExperimentScale) -> SimulationResult:
        """The result of one (job, config, scale) — id computed here."""
        return self.for_id(job_id(job, config, scale))

    def get(self, planned: PlannedJob) -> SimulationResult:
        """The result of one planned job."""
        return self.for_id(planned.id)


@dataclass(frozen=True)
class Artifact:
    """One registered table/figure: plan → aggregate → render."""

    name: str
    title: str
    plan: Callable[[PlanContext], List[PlannedJob]]
    aggregate: Callable[[PlanContext, "ResultMap"], object]
    render: Callable[[object], str]

    def report(self, ctx: PlanContext, results: "ResultMap") -> str:
        """Aggregate and render in one step."""
        return self.render(self.aggregate(ctx, results))


#: Registered artifacts in registration (= canonical rendering) order.
REGISTRY: Dict[str, Artifact] = {}


def register(artifact: Artifact) -> Artifact:
    """Add one artifact to the registry (name must be unused)."""
    if artifact.name in REGISTRY:
        raise ValueError(f"artifact {artifact.name!r} already registered")
    REGISTRY[artifact.name] = artifact
    return artifact


def get_artifact(name: str) -> Artifact:
    """Look up one artifact; ``KeyError`` lists what is registered."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown artifact {name!r}; registered: "
                       f"{', '.join(REGISTRY)}") from None


def artifact_names() -> List[str]:
    """All registered artifact names, registration order."""
    return list(REGISTRY)


# --------------------------------------------------------------------------
# Union planning and campaign-engine execution
# --------------------------------------------------------------------------

@dataclass
class UnionPlan:
    """Deduplicated union of several artifacts' plans.

    ``unique`` keeps first-occurrence order, so execution order is stable
    and resume skips a well-defined prefix.
    """

    artifacts: Tuple[str, ...]
    per_artifact: Dict[str, List[PlannedJob]]
    unique: List[PlannedJob]

    @property
    def planned_total(self) -> int:
        """Sum of per-artifact plan sizes (jobs *requested*)."""
        return sum(len(planned) for planned in self.per_artifact.values())

    @property
    def unique_total(self) -> int:
        """Jobs that will actually execute."""
        return len(self.unique)

    @property
    def dedup_ratio(self) -> float:
        """Requested jobs per executed job (> 1 means sharing paid off)."""
        if not self.unique:
            return 1.0
        return self.planned_total / self.unique_total


def plan_union(names: Sequence[str], ctx: PlanContext) -> UnionPlan:
    """Plan every named artifact and deduplicate across them by job id."""
    per_artifact: Dict[str, List[PlannedJob]] = {}
    unique: List[PlannedJob] = []
    seen = set()
    for name in names:
        planned = get_artifact(name).plan(ctx)
        per_artifact[name] = planned
        for item in planned:
            jid = item.id
            if jid not in seen:
                seen.add(jid)
                unique.append(item)
    return UnionPlan(artifacts=tuple(names), per_artifact=per_artifact,
                     unique=unique)


@dataclass
class ExecutionOutcome:
    """Results plus the per-context campaign reports behind them."""

    results: ResultMap
    reports: List[CampaignReport]

    @property
    def executed(self) -> int:
        """Jobs actually simulated in this invocation."""
        return sum(report.executed for report in self.reports)

    @property
    def skipped(self) -> int:
        """Jobs served from the result store (resume)."""
        return sum(report.skipped for report in self.reports)

    @property
    def failed(self) -> int:
        """Jobs that exhausted their retries."""
        return sum(report.failed for report in self.reports)

    @property
    def ok(self) -> bool:
        """True when every campaign pass completed every job."""
        return all(report.ok for report in self.reports)


def _context_key(config: MachineConfig, scale: ExperimentScale) -> str:
    """Canonical grouping key for one (machine, scale) execution context."""
    return json.dumps(
        {"machine": dataclasses.asdict(config),
         "scale": dataclasses.asdict(scale)},
        sort_keys=True, separators=(",", ":"))


def execute_plan(
    plan: UnionPlan,
    *,
    processes: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    timeout_seconds: Optional[float] = None,
    store=None,
    resume: bool = False,
    shard: Optional[Tuple[int, int]] = None,
    trace_store=None,
    observe=None,
    progress=None,
    inject: Optional[str] = None,
    raise_on_failure: bool = True,
    executor: Optional[str] = None,
) -> ExecutionOutcome:
    """Execute a union plan through the campaign engine.

    Jobs are grouped by (machine config, scale) — one
    :func:`~repro.campaign.run_campaign` pass per context — and every
    pass shares one ``store`` (a path or
    :class:`~repro.campaign.store.ResultStore`), so a single JSONL file
    holds the whole reproduction and ``resume=True`` skips every job id
    it already contains. ``processes`` defaults to 1 (inline execution);
    inline runs without an explicit ``trace_store`` share an in-process
    :class:`~repro.trace.store.MemoryTraceStore` so each input trace is
    built once per invocation, like the serial drivers' shared
    ``TraceLibrary``.

    ``inject`` names a fault workload (``raise``/``exit``/``hang``/
    ``flaky:N+name`` — the ``__fault:`` prefix is added if missing) that
    is inserted at the midpoint of the first context group, for
    resumability drills. ``shard=(i, n)`` partitions each context group
    deterministically across machines. ``executor`` selects the parallel
    scheduler (``pool``/``spawn``, see
    :func:`repro.campaign.run_campaign`) for every context group.
    """
    processes = 1 if processes is None else processes
    if trace_store is None and timeout_seconds is None and processes <= 1:
        trace_store = MemoryTraceStore()

    groups: Dict[str, Tuple[MachineConfig, ExperimentScale, List[Job]]] = {}
    for item in plan.unique:
        key = _context_key(item.config, item.scale)
        if key not in groups:
            groups[key] = (item.config, item.scale, [])
        groups[key][2].append(item.job)

    result_store: Optional[ResultStore] = None
    if store is not None:
        result_store = (store if isinstance(store, ResultStore)
                        else ResultStore(store))

    results_by_id: Dict[str, SimulationResult] = {}
    reports: List[CampaignReport] = []
    for index, (config, scale, jobs) in enumerate(groups.values()):
        jobs = list(jobs)
        if inject is not None and index == 0:
            fault = (inject if inject.startswith("__fault:")
                     else f"__fault:{inject}")
            jobs.insert(len(jobs) // 2, Job(fault))
        report = run_campaign(
            jobs, config, scale,
            processes=processes,
            retry=retry,
            timeout_seconds=timeout_seconds,
            store=result_store,
            # Later groups append to the store the first group created;
            # ids cannot collide across contexts, so this is safe.
            resume=(resume if index == 0 else result_store is not None),
            shard=shard,
            observe=observe,
            progress=progress,
            raise_on_failure=raise_on_failure,
            trace_store=trace_store,
            executor=executor,
        )
        reports.append(report)
        results_by_id.update(report.results_by_id)
    return ExecutionOutcome(results=ResultMap(results_by_id),
                            reports=reports)


# --------------------------------------------------------------------------
# Bundle artifacts (Table I/II, Fig 1/5/6/7/8/9) — one shared plan
# --------------------------------------------------------------------------

def plan_bundle(ctx: PlanContext) -> List[PlannedJob]:
    """The shared three-context campaign every bundle artifact consumes.

    Job list and trace seeds mirror
    :func:`repro.experiments.contexts.build_contexts` exactly (pair jobs
    pin ``co_seed=scale.seed``, like the serial shared ``TraceLibrary``),
    so aggregation reconstructs a bit-identical
    :class:`~repro.experiments.contexts.ContextBundle`.
    """
    names = list(ctx.suite)
    jobs: List[Job] = [Job(name) for name in names]
    for name in names:
        jobs.extend(Job(name, mode="pinte", p_induce=p)
                    for p in ctx.p_values)
    if ctx.panel_size > 0:
        for name in names:
            panel = adversary_panel(name, names, ctx.panel_size)
            jobs.extend(Job(name, mode="pair", co_runner=other,
                            co_seed=ctx.scale.seed) for other in panel)
    return [PlannedJob(job, ctx.config, ctx.scale) for job in jobs]


def bundle_from_results(ctx: PlanContext,
                        results: ResultMap) -> ContextBundle:
    """Reassemble the :class:`ContextBundle` from campaign results."""
    names = list(ctx.suite)

    def res(job: Job) -> SimulationResult:
        return results.for_job(job, ctx.config, ctx.scale)

    isolation = {name: res(Job(name)) for name in names}
    pinte = {
        name: {p: res(Job(name, mode="pinte", p_induce=p))
               for p in ctx.p_values}
        for name in names
    }
    pairs: Dict[str, List[SimulationResult]] = {}
    if ctx.panel_size > 0:
        for name in names:
            panel = adversary_panel(name, names, ctx.panel_size)
            pairs[name] = [res(Job(name, mode="pair", co_runner=other,
                                   co_seed=ctx.scale.seed))
                           for other in panel]
    return ContextBundle(config=ctx.config, scale=ctx.scale, names=names,
                         isolation=isolation, pinte=pinte, pairs=pairs)


def _bundle_artifact(name: str, title: str, run: Callable,
                     render: Callable) -> Artifact:
    """Register one artifact that post-processes the shared bundle."""
    def aggregate(ctx: PlanContext, results: ResultMap):
        return run(bundle_from_results(ctx, results))
    return register(Artifact(name=name, title=title, plan=plan_bundle,
                             aggregate=aggregate, render=render))


def _aggregate_fig5(ctx: PlanContext, results: ResultMap):
    """Fig 5 with the reduced-suite fallback ``run_reproduction`` used."""
    bundle = bundle_from_results(ctx, results)
    try:
        return fig5.run_fig5(bundle)
    except ValueError:
        # The Fig 5 exemplars may not be in a reduced suite; fall back to
        # whatever the bundle contains.
        return fig5.run_fig5(bundle, workloads=tuple(bundle.names[:3]))


_bundle_artifact("table1", "Table I: simulation run-times and experiment "
                 "sizes", table1.run_table1, table1.format_report)
_bundle_artifact("fig1", "Fig 1: contention-rate coverage, 2nd-Trace vs "
                 "PInTE", fig1.run_fig1, fig1.format_report)
_bundle_artifact("table2", "Table II: average relative error in performance "
                 "metrics", table2.run_table2, table2.format_report)
register(Artifact(name="fig5", title="Fig 5: reuse histograms under PInTE "
                  "vs 2nd-Trace", plan=plan_bundle,
                  aggregate=_aggregate_fig5, render=fig5.format_report))
_bundle_artifact("fig6", "Fig 6: reuse KL divergence and worst-case root "
                 "cause", fig6.run_fig6, fig6.format_report)
_bundle_artifact("fig7", "Fig 7: run-time metric entropy and CRG coverage",
                 fig7.run_fig7, fig7.format_report)
_bundle_artifact("fig8", "Fig 8: contention sensitivity curves",
                 fig8.run_fig8, fig8.format_report)
_bundle_artifact("fig9", "Fig 9: AMAT under contention",
                 fig9.run_fig9, fig9.format_report)


# --------------------------------------------------------------------------
# Fig 3 — PInTE stability repeats
# --------------------------------------------------------------------------

#: Repeats at reproduction scale (the paper runs 25).
FIG3_REPEATS = 3


def _fig3_params(ctx: PlanContext) -> Tuple[List[str], Tuple[float, ...]]:
    """Fig 3's reduced suite/sweep, as ``run_reproduction`` always ran it."""
    names = list(ctx.suite)[:4]
    p_values = tuple(ctx.p_values[::3]) or tuple(ctx.p_values)
    return names, p_values


def _fig3_job(name: str, p: float, k: int) -> Job:
    """One stability run: fixed trace, per-repeat PInTE stream."""
    return Job(name, mode="pinte", p_induce=p,
               pinte_seed=fig3.REPEAT_SEED_BASE + k)


def _plan_fig3(ctx: PlanContext) -> List[PlannedJob]:
    """Plan the repeat matrix (repeats x names x sweep)."""
    names, p_values = _fig3_params(ctx)
    return [PlannedJob(_fig3_job(name, p, k), ctx.config, ctx.scale)
            for k in range(FIG3_REPEATS)
            for name in names
            for p in p_values]


def _aggregate_fig3(ctx: PlanContext, results: ResultMap):
    """Rebuild ``repeats[k][name][p]`` and reuse the driver's statistics."""
    names, p_values = _fig3_params(ctx)
    repeats = [
        {name: {p: results.for_job(_fig3_job(name, p, k), ctx.config,
                                   ctx.scale)
                for p in p_values}
         for name in names}
        for k in range(FIG3_REPEATS)
    ]
    return fig3.stability_from_repeats(repeats, names, p_values)


register(Artifact(name="fig3", title="Fig 3: PInTE stability across seeds",
                  plan=_plan_fig3, aggregate=_aggregate_fig3,
                  render=fig3.format_report))


# --------------------------------------------------------------------------
# Fig 10 — real-system proxy on the xeon config
# --------------------------------------------------------------------------

#: 2nd-Trace panel size of the Fig 10 scatter.
FIG10_PANEL_SIZE = 3


def _plan_fig10(ctx: PlanContext) -> List[PlannedJob]:
    """Plan the xeon-config sweep + pair scatter (ignores ``ctx.suite``)."""
    config = get_machine_config("xeon")
    names = list(FIG10_SUITE)
    jobs: List[Job] = []
    for name in names:
        jobs.extend(Job(name, mode="pinte", p_induce=p)
                    for p in fig10.FIG10_PINDUCE)
    for name in names:
        panel = adversary_panel(name, names, FIG10_PANEL_SIZE)
        jobs.extend(Job(name, mode="pair", co_runner=other,
                        co_seed=ctx.scale.seed) for other in panel)
    return [PlannedJob(job, config, ctx.scale) for job in jobs]


def _aggregate_fig10(ctx: PlanContext, results: ResultMap):
    """Rebuild the sweep/pair structures and reuse the driver's scatter."""
    config = get_machine_config("xeon")
    names = list(FIG10_SUITE)
    sweep = {
        name: {p: results.for_job(Job(name, mode="pinte", p_induce=p),
                                  config, ctx.scale)
               for p in fig10.FIG10_PINDUCE}
        for name in names
    }
    pairs_by_name = {
        name: [results.for_job(Job(name, mode="pair", co_runner=other,
                                   co_seed=ctx.scale.seed),
                               config, ctx.scale)
               for other in adversary_panel(name, names, FIG10_PANEL_SIZE)]
        for name in names
    }
    return fig10.points_from_results(names, sweep, pairs_by_name,
                                     fig10.allocation_fraction_for(config))


register(Artifact(name="fig10", title="Fig 10: real-system proxy vs PInTE "
                  "(xeon config)", plan=_plan_fig10,
                  aggregate=_aggregate_fig10, render=fig10.format_report))


# --------------------------------------------------------------------------
# Fig 11 — design-choice case study across config variants
# --------------------------------------------------------------------------

def _fig11_job(name: str, p: float) -> Job:
    """Isolation at p=0, PInTE otherwise — like the serial driver."""
    if p > 0:
        return Job(name, mode="pinte", p_induce=p)
    return Job(name)


def _plan_fig11(ctx: PlanContext) -> List[PlannedJob]:
    """Plan every (dimension option, workload, P_induce) variant run."""
    workloads = tuple(CASE_STUDY_SUITE)
    planned: List[PlannedJob] = []
    for dimension in fig11.DIMENSIONS:
        for option in dimension.options:
            variant = dimension.configure(ctx.config, option)
            planned.extend(
                PlannedJob(_fig11_job(name, p), variant, ctx.scale)
                for name in workloads
                for p in fig11.FIG11_PINDUCE)
    return planned


def _aggregate_fig11(ctx: PlanContext, results: ResultMap):
    """Rebuild ``results[p][option][workload]`` per dimension and rank."""
    workloads = tuple(CASE_STUDY_SUITE)
    p_values = tuple(fig11.FIG11_PINDUCE)
    sweeps = {}
    for dimension in fig11.DIMENSIONS:
        by_p = {p: {option: {} for option in dimension.options}
                for p in p_values}
        for option in dimension.options:
            variant = dimension.configure(ctx.config, option)
            for name in workloads:
                for p in p_values:
                    by_p[p][option][name] = results.for_job(
                        _fig11_job(name, p), variant, ctx.scale)
        sweeps[dimension.name] = fig11.sweep_from_results(
            dimension, by_p, p_values, workloads)
    return fig11.Fig11Result(sweeps=sweeps, p_values=p_values,
                             workloads=workloads)


register(Artifact(name="fig11", title="Fig 11: best design choice vs "
                  "contention level", plan=_plan_fig11,
                  aggregate=_aggregate_fig11, render=fig11.format_report))


# --------------------------------------------------------------------------
# N-core coverage/cost study — multicore jobs
# --------------------------------------------------------------------------

def _ncore_multi_job(victim: str, adversaries: Sequence[str],
                     extra: int) -> Job:
    """The (1 + extra)-core co-run job; co-runner i's trace seed is
    ``scale.seed + 1 + i``, matching the serial study."""
    return Job(victim, mode="multi", co_runners=tuple(adversaries[:extra]))


def _plan_ncore(ctx: PlanContext) -> List[PlannedJob]:
    """Plan the 2/3/4-core co-runs plus the single-core PInTE sweep."""
    victim = ncore_study.DEFAULT_VICTIM
    adversaries = ncore_study.DEFAULT_ADVERSARIES
    planned = [
        PlannedJob(_ncore_multi_job(victim, adversaries, extra),
                   ctx.config, ctx.scale)
        for extra in range(1, len(adversaries) + 1)
    ]
    planned.extend(
        PlannedJob(Job(victim, mode="pinte", p_induce=p), ctx.config,
                   ctx.scale)
        for p in ncore_study.DEFAULT_PINDUCE)
    return planned


def _aggregate_ncore(ctx: PlanContext, results: ResultMap):
    """Rebuild the by-cores/PInTE maps from the campaign results."""
    victim = ncore_study.DEFAULT_VICTIM
    adversaries = ncore_study.DEFAULT_ADVERSARIES
    by_cores = {
        extra + 1: results.for_job(
            _ncore_multi_job(victim, adversaries, extra), ctx.config,
            ctx.scale)
        for extra in range(1, len(adversaries) + 1)
    }
    pinte = {
        p: results.for_job(Job(victim, mode="pinte", p_induce=p),
                           ctx.config, ctx.scale)
        for p in ncore_study.DEFAULT_PINDUCE
    }
    return ncore_study.NcoreResult(victim=victim, by_cores=by_cores,
                                   pinte=pinte)


register(Artifact(name="ncore_study", title="N-core coverage/cost study",
                  plan=_plan_ncore, aggregate=_aggregate_ncore,
                  render=ncore_study.format_report))


# --------------------------------------------------------------------------
# Partitioning study — multicore jobs with partitioner schemes
# --------------------------------------------------------------------------

#: Repartitioning epoch the serial study uses.
PARTITION_REPARTITION_INTERVAL = 4_000


def _partition_jobs(ctx: PlanContext):
    """The study's job vocabulary: two isolations + one co-run per scheme.

    The victim isolation is a plain isolation job — shared (and therefore
    deduplicated) with the bundle when the victim is in the suite. The
    aggressor's isolation pins ``trace_seed=scale.seed + 1`` because the
    serial study measures it on the exact shifted-seed trace used in the
    shared run.
    """
    victim, aggressor = partition_study.DEFAULT_PAIR
    iso_victim = Job(victim)
    iso_aggressor = Job(aggressor, trace_seed=ctx.scale.seed + 1)
    scheme_jobs = {
        scheme: Job(victim, mode="multi", co_runners=(aggressor,),
                    scheme=scheme,
                    repartition_interval=PARTITION_REPARTITION_INTERVAL)
        for scheme in partition_study.SCHEMES
    }
    return iso_victim, iso_aggressor, scheme_jobs


def _plan_partition(ctx: PlanContext) -> List[PlannedJob]:
    """Plan the isolation baselines plus one co-run per scheme."""
    iso_victim, iso_aggressor, scheme_jobs = _partition_jobs(ctx)
    jobs = [iso_victim, iso_aggressor] + list(scheme_jobs.values())
    return [PlannedJob(job, ctx.config, ctx.scale) for job in jobs]


def _aggregate_partition(ctx: PlanContext, results: ResultMap):
    """Rebuild per-scheme outcomes (quotas come home in ``extra``)."""
    victim, aggressor = partition_study.DEFAULT_PAIR
    iso_victim, iso_aggressor, scheme_jobs = _partition_jobs(ctx)
    isolations = [
        results.for_job(iso_victim, ctx.config, ctx.scale),
        results.for_job(iso_aggressor, ctx.config, ctx.scale),
    ]
    outcomes = {}
    for scheme, job in scheme_jobs.items():
        primary = results.for_job(job, ctx.config, ctx.scale)
        per_core = [primary] + list(primary.co_results)
        quotas = {
            int(key.rsplit("_", 1)[1]): int(value)
            for key, value in primary.extra.items()
            if key.startswith("partition_quota_")
        }
        outcomes[scheme] = partition_study.outcome_from_results(
            scheme, per_core, isolations, quotas)
    return partition_study.PartitionStudyResult(
        workloads=(victim, aggressor), outcomes=outcomes)


register(Artifact(name="partition_study",
                  title="Partitioning study: thefts vs LLC management",
                  plan=_plan_partition, aggregate=_aggregate_partition,
                  render=partition_study.format_report))
