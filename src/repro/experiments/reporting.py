"""Plain-text reporting for experiment drivers.

Every table/figure driver renders its result through these helpers so the
benchmark harness prints the same rows/series the paper reports.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width ASCII table."""
    rendered_rows: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)


def format_histogram(counts: Sequence[float], labels: Sequence[str],
                     width: int = 40, title: str = "") -> str:
    """Horizontal ASCII bar chart (used for the figure-style outputs)."""
    if len(counts) != len(labels):
        raise ValueError("counts and labels must align")
    peak = max(counts) if counts else 0
    parts: List[str] = []
    if title:
        parts.append(title)
    label_width = max((len(label) for label in labels), default=0)
    for label, count in zip(labels, counts):
        bar = "#" * (int(width * count / peak) if peak else 0)
        parts.append(f"{label.rjust(label_width)} |{bar} {count:.3g}")
    return "\n".join(parts)


def format_series(xs: Sequence[float], ys: Sequence[float], name: str,
                  x_label: str = "x", y_label: str = "y") -> str:
    """One (x, y) series as aligned columns."""
    parts = [f"{name}: {x_label} -> {y_label}"]
    for x, y in zip(xs, ys):
        parts.append(f"  {x:>8.3f} -> {y:.4f}")
    return "\n".join(parts)


def percent(fraction: float) -> str:
    """Render a fraction as a percentage string."""
    return f"{100.0 * fraction:.1f}%"
