"""Fig 8 — contention sensitivity curves and classification.

For every benchmark, builds the weighted-IPC vs interference-rate-group
curve under both PInTE and 2nd-Trace contention, classifies sensitivity at a
5% TPL (high / low / mixed via the Sensitive-Curve Population), and flags
empirical disagreements between the two contexts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.c2afe import curve_agreement
from repro.analysis.crg import contention_curve
from repro.analysis.sensitivity import (
    DEFAULT_TPL,
    SensitivityReport,
    class_shares,
    classify,
)
from repro.experiments.contexts import ContextBundle
from repro.experiments.reporting import format_table, percent


@dataclass
class BenchmarkSensitivity:
    """One Fig 8 subplot."""

    benchmark: str
    pinte_curve: Dict[float, float]
    pair_curve: Dict[float, float]
    pinte_report: SensitivityReport
    pair_report: SensitivityReport
    agrees: bool


@dataclass
class Fig8Result:
    """Sensitivity curves and classifications for every benchmark."""
    per_benchmark: List[BenchmarkSensitivity]
    tpl: float

    def by_name(self, benchmark: str) -> BenchmarkSensitivity:
        for entry in self.per_benchmark:
            if entry.benchmark == benchmark:
                return entry
        raise KeyError(benchmark)

    def shares(self) -> Dict[str, float]:
        """Class shares from the PInTE classification (the paper's headline:
        57% low / 12% high / 16% mixed-ish)."""
        return class_shares([entry.pinte_report for entry in self.per_benchmark])

    def disagreement_names(self) -> List[str]:
        return [e.benchmark for e in self.per_benchmark if not e.agrees]


def run_fig8(bundle: ContextBundle, tpl: float = DEFAULT_TPL,
             group_width: float = 0.10) -> Fig8Result:
    """Build both contexts' sensitivity curves and classify each benchmark."""
    per_benchmark: List[BenchmarkSensitivity] = []
    for name in bundle.names:
        isolation = bundle.isolation[name]
        isolation_ipc = isolation.ipc
        pinte = bundle.pinte_results(name)
        pairs = bundle.pair_results(name)
        if isolation_ipc <= 0 or not pinte:
            continue
        pinte_curve = contention_curve(pinte, isolation_ipc, width=group_width)
        pinte_report = classify(name, pinte, isolation, tpl)
        if pairs:
            pair_curve = contention_curve(pairs, isolation_ipc, width=group_width)
            pair_report = classify(name, pairs, isolation, tpl)
            # An "empirical disagreement" (the paper's blue dotted border) is
            # a qualitative flip: one context says clearly sensitive, the
            # other clearly insensitive. Adjacent classes (high/mixed or
            # mixed/low) or matching curve shapes still agree.
            flip = {pinte_report.classification,
                    pair_report.classification} == {"high", "low"}
            if flip and len(pinte_curve) >= 2 and len(pair_curve) >= 2:
                agrees = curve_agreement(pair_curve, pinte_curve,
                                         tolerance=0.10)
            else:
                agrees = not flip
        else:
            pair_curve = {}
            pair_report = pinte_report
            agrees = True
        per_benchmark.append(BenchmarkSensitivity(
            benchmark=name,
            pinte_curve=pinte_curve,
            pair_curve=pair_curve,
            pinte_report=pinte_report,
            pair_report=pair_report,
            agrees=agrees,
        ))
    if not per_benchmark:
        raise ValueError("no benchmarks with usable sensitivity data")
    return Fig8Result(per_benchmark=per_benchmark, tpl=tpl)


def format_report(result: Fig8Result) -> str:
    """Render curve, class and agreement columns per benchmark."""
    rows = []
    for entry in result.per_benchmark:
        curve = ", ".join(f"{x:.1f}:{y:.2f}"
                          for x, y in sorted(entry.pinte_curve.items()))
        rows.append((
            entry.benchmark,
            entry.pinte_report.classification,
            percent(entry.pinte_report.scp),
            entry.pair_report.classification,
            "yes" if entry.agrees else "NO",
            curve,
        ))
    table = format_table(
        ["Benchmark", "PInTE class", "SCP", "2nd-Trace class", "agree",
         "PInTE curve (rate:wIPC)"],
        rows,
        title=f"Fig 8: contention sensitivity at TPL={result.tpl:.0%}",
    )
    shares = result.shares()
    summary = (
        f"class shares (PInTE): high={percent(shares['high'])}, "
        f"low={percent(shares['low'])}, mixed={percent(shares['mixed'])} "
        f"(paper: 12% / 57% / 16%)\n"
        f"disagreements: {', '.join(result.disagreement_names()) or 'none'} "
        f"(paper: DRAM-bound workloads)"
    )
    return "\n\n".join([table, summary])
