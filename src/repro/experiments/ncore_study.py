"""Extension study: does adding cores fix 2nd-Trace's coverage problem?

The paper's motivation argues that multi-programmed simulation gets *more*
expensive with core count while still not guaranteeing contention coverage.
This study measures both claims: for 2, 3 and 4 concurrent workloads it
records the victim's observed contention rate and the wall-clock cost, then
compares against a PInTE sweep that reaches the same (and higher) contention
for a fraction of the cost on one core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.config import MachineConfig
from repro.core import PinteConfig
from repro.experiments.reporting import format_table
from repro.sim import ExperimentScale, SimulationResult, TraceLibrary, simulate
from repro.sim.multicore import simulate_multiprogrammed

#: Victim measured throughout; adversaries appended per core count.
DEFAULT_VICTIM = "450.soplex"
DEFAULT_ADVERSARIES = ("435.gromacs", "470.lbm", "605.mcf")
DEFAULT_PINDUCE = (0.05, 0.2, 0.5, 1.0)


@dataclass
class NcoreResult:
    """Coverage and cost measurements for one core count."""
    victim: str
    #: core count -> the victim's result in that co-run
    by_cores: Dict[int, SimulationResult]
    #: P_induce -> the victim's PInTE result
    pinte: Dict[float, SimulationResult]

    def contention_reached(self, cores: int) -> float:
        return self.by_cores[cores].contention_rate

    def pinte_max_contention(self) -> float:
        return max(r.contention_rate for r in self.pinte.values())

    def cost(self, cores: int) -> float:
        return self.by_cores[cores].wall_time_seconds

    def pinte_mean_cost(self) -> float:
        costs = [r.wall_time_seconds for r in self.pinte.values()]
        return sum(costs) / len(costs)


def run_ncore_study(
    config: MachineConfig,
    scale: ExperimentScale,
    victim: str = DEFAULT_VICTIM,
    adversaries: Sequence[str] = DEFAULT_ADVERSARIES,
    p_values: Sequence[float] = DEFAULT_PINDUCE,
) -> NcoreResult:
    """Measure contention coverage and wall-clock cost as core count grows."""
    library = TraceLibrary(config, scale)
    victim_trace = library.get(victim)
    adversary_traces = [
        library.get(name, seed=scale.seed + 1 + i)
        for i, name in enumerate(adversaries)
    ]
    by_cores: Dict[int, SimulationResult] = {}
    for extra in range(1, len(adversary_traces) + 1):
        traces = [victim_trace] + adversary_traces[:extra]
        results = simulate_multiprogrammed(
            traces, config,
            warmup_instructions=scale.warmup_instructions,
            sim_instructions=scale.sim_instructions,
            sample_interval=scale.sample_interval, seed=scale.seed,
        )
        by_cores[extra + 1] = results[0]
    pinte = {
        p: simulate(victim_trace, config, pinte=PinteConfig(p, seed=scale.seed),
                    warmup_instructions=scale.warmup_instructions,
                    sim_instructions=scale.sim_instructions,
                    sample_interval=scale.sample_interval, seed=scale.seed)
        for p in p_values
    }
    return NcoreResult(victim=victim, by_cores=by_cores, pinte=pinte)


def format_report(result: NcoreResult) -> str:
    """Render the core-count study tables."""
    rows: List[tuple] = []
    for cores in sorted(result.by_cores):
        run = result.by_cores[cores]
        rows.append((f"{cores}-core co-run", run.contention_rate,
                     run.interference_rate, run.ipc, run.wall_time_seconds))
    for p in sorted(result.pinte):
        run = result.pinte[p]
        rows.append((f"PInTE p={p}", run.contention_rate,
                     run.interference_rate, run.ipc, run.wall_time_seconds))
    table = format_table(
        ["Context", "contention", "interference", "IPC", "wall (s)"],
        rows,
        title=f"N-core coverage/cost study — victim {result.victim}",
    )
    summary = (
        f"max contention from co-runs: "
        f"{max(result.contention_reached(c) for c in result.by_cores):.3f} "
        f"(4-core wall {result.cost(max(result.by_cores)):.2f}s); "
        f"PInTE reaches {result.pinte_max_contention():.3f} at "
        f"{result.pinte_mean_cost():.2f}s mean per run on one core"
    )
    return table + "\n\n" + summary
