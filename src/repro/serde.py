"""Serialization mixin shared by every config dataclass.

:class:`ConfigSerde` gives :class:`~repro.config.MachineConfig` and the
five flat config classes their ``to_dict`` / ``from_dict`` / ``to_toml`` /
``from_toml`` methods by delegating to :mod:`repro.configio` (imported
lazily — this module is a leaf so the config classes themselves stay free
of import cycles). The heavy lifting (schema tags, strict unknown-key
rejection, the deterministic TOML emitter) lives in ``configio``; the
mixin only provides the ergonomic spelling ``config.to_toml()``.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping


class ConfigSerde:
    """Mixin: canonical dict / TOML round-trip for a config dataclass.

    All four methods dispatch through :mod:`repro.configio`, so
    ``MachineConfig`` payloads get the ``schema`` version tag and nested
    tables while the flat classes serialize as plain key/value pairs —
    one spelling either way.
    """

    def to_dict(self) -> Dict[str, Any]:
        """The canonical dict payload for this config."""
        from repro import configio
        return configio.to_dict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]):
        """Rebuild from a canonical dict (strict: unknown keys rejected)."""
        from repro import configio
        return configio.from_dict(cls, payload)

    def to_toml(self) -> str:
        """The canonical TOML document for this config."""
        from repro import configio
        return configio.dumps_toml(configio.to_dict(self))

    @classmethod
    def from_toml(cls, text: str):
        """Parse from TOML text (strict, schema-checked for machines)."""
        from repro import configio
        return configio.from_dict(cls, configio.loads_toml(text))
