"""Next-line prefetcher ('N' in the paper's prefetch strings)."""

from __future__ import annotations

from typing import List

from repro.prefetch.base import Prefetcher


class NextLinePrefetcher(Prefetcher):
    """Fetch the next ``degree`` sequential blocks on every demand access.

    Simple and aggressive: great for streaming workloads, pure pollution for
    pointer chases — exactly the trade-off the Fig 11 prefetch row explores.
    """

    name = "next_line"

    def _candidates(self, pc: int, block_addr: int, hit: bool) -> List[int]:
        return [block_addr + self.block_size * i for i in range(1, self.degree + 1)]
