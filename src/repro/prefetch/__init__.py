"""Prefetching substrate (paper Section III-C c).

The paper encodes configurations as a three-character string (L1I, L1D, L2):
``000`` no prefetching, ``NN0`` L1 next-line, ``NNN`` L1+L2 next-line,
``NNI`` L1 next-line + L2 IP-stride. :func:`prefetch_string_config` converts
those strings into per-level prefetcher names.
"""

from typing import Tuple

from repro.components import ComponentRegistry
from repro.prefetch.base import NullPrefetcher, Prefetcher, PrefetchStats
from repro.prefetch.ip_stride import IpStridePrefetcher
from repro.prefetch.next_line import NextLinePrefetcher
from repro.prefetch.stream import StreamPrefetcher

PREFETCHERS = ComponentRegistry("prefetcher", {
    NullPrefetcher.name: NullPrefetcher,
    NextLinePrefetcher.name: NextLinePrefetcher,
    IpStridePrefetcher.name: IpStridePrefetcher,
    StreamPrefetcher.name: StreamPrefetcher,
})

_CHAR_TO_NAME = {"0": "none", "N": "next_line", "I": "ip_stride",
                 "S": "stream"}

#: The four configurations evaluated in the paper.
PAPER_PREFETCH_STRINGS = ("000", "NN0", "NNN", "NNI")


def make_prefetcher(name: str, block_size: int = 64, **kwargs) -> Prefetcher:
    """Instantiate a prefetcher by registry name."""
    cls = PREFETCHERS[name]
    return cls(block_size=block_size, **kwargs)


def prefetch_string_config(config: str) -> Tuple[str, str, str]:
    """Decode an 'L1I L1D L2' prefetch string into prefetcher names.

    >>> prefetch_string_config("NNI")
    ('next_line', 'next_line', 'ip_stride')
    """
    if len(config) != 3:
        raise ValueError(f"prefetch string must have 3 characters, got {config!r}")
    try:
        return tuple(_CHAR_TO_NAME[ch] for ch in config)  # type: ignore[return-value]
    except KeyError as exc:
        raise ValueError(f"bad prefetch character {exc.args[0]!r} in {config!r}") from None


__all__ = [
    "IpStridePrefetcher",
    "NextLinePrefetcher",
    "NullPrefetcher",
    "PAPER_PREFETCH_STRINGS",
    "PREFETCHERS",
    "PrefetchStats",
    "Prefetcher",
    "StreamPrefetcher",
    "make_prefetcher",
    "prefetch_string_config",
]
