"""Direction-aware stream prefetcher.

Tracks a small number of active streams by memory region; once a stream's
direction is confirmed it prefetches ``degree`` blocks ahead in that
direction. Stronger than plain next-line on descending streams, an extension
beyond the paper's N/I prefetchers used by the ablation benches.
"""

from __future__ import annotations

from typing import List, Optional

from repro.prefetch.base import Prefetcher

#: A stream is confirmed after this many same-direction accesses.
CONFIRM_THRESHOLD = 2
#: Region size (blocks) a stream tracks; accesses outside retrain.
REGION_BLOCKS = 64


class _Stream:
    __slots__ = ("last_block", "direction", "confidence")

    def __init__(self, block: int) -> None:
        self.last_block = block
        self.direction = 0
        self.confidence = 0


class StreamPrefetcher(Prefetcher):
    """Region-based up/down stream detection."""

    name = "stream"

    def __init__(self, block_size: int = 64, degree: int = 4,
                 max_streams: int = 16) -> None:
        super().__init__(block_size=block_size, degree=degree)
        self.max_streams = max_streams
        self._streams: List[_Stream] = []

    def _find_stream(self, block: int) -> Optional[_Stream]:
        for stream in self._streams:
            if abs(block - stream.last_block) <= REGION_BLOCKS:
                return stream
        return None

    def _candidates(self, pc: int, block_addr: int, hit: bool) -> List[int]:
        block = block_addr // self.block_size
        stream = self._find_stream(block)
        if stream is None:
            if len(self._streams) >= self.max_streams:
                self._streams.pop(0)
            self._streams.append(_Stream(block))
            return []
        step = block - stream.last_block
        if step == 0:
            return []
        direction = 1 if step > 0 else -1
        if direction == stream.direction:
            if stream.confidence < CONFIRM_THRESHOLD:
                stream.confidence += 1
        else:
            stream.direction = direction
            stream.confidence = 0
        stream.last_block = block
        if stream.confidence >= CONFIRM_THRESHOLD:
            return [
                (block + direction * i) * self.block_size
                for i in range(1, self.degree + 1)
            ]
        return []
