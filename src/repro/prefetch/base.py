"""Prefetcher interface.

Prefetchers observe demand accesses at their cache level and return block
addresses to fetch speculatively. The cache marks prefetched fills and
credits ``useful`` when a demand access later hits such a block — the
prefetch miss-rate statistics in the paper's Fig 11 row 3 come from these
counters.
"""

from __future__ import annotations

from typing import List


class PrefetchStats:
    """Issue/usefulness counters for one prefetcher."""

    __slots__ = ("issued", "useful", "late_or_useless")

    def __init__(self) -> None:
        self.issued = 0
        self.useful = 0
        self.late_or_useless = 0

    @property
    def accuracy(self) -> float:
        """Fraction of issued prefetches that saw a demand hit."""
        if self.issued == 0:
            return 0.0
        return self.useful / self.issued


class Prefetcher:
    """Base class; subclasses implement :meth:`_candidates`."""

    name = "none"

    def __init__(self, block_size: int = 64, degree: int = 1) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.block_size = block_size
        self.degree = degree
        self.stats = PrefetchStats()

    def on_access(self, pc: int, block_addr: int, hit: bool) -> List[int]:
        """Observe a demand access; return block addresses to prefetch."""
        candidates = self._candidates(pc, block_addr, hit)
        self.stats.issued += len(candidates)
        return candidates

    def _candidates(self, pc: int, block_addr: int, hit: bool) -> List[int]:
        raise NotImplementedError


class NullPrefetcher(Prefetcher):
    """No prefetching (the '0' character in the paper's prefetch strings)."""

    name = "none"

    def _candidates(self, pc: int, block_addr: int, hit: bool) -> List[int]:
        return []
