"""IP-stride prefetcher ('I' in the paper's prefetch strings).

Per-PC stride detection with a confidence counter: after two consecutive
accesses from the same instruction with the same block stride, issue
prefetches ``degree`` strides ahead.
"""

from __future__ import annotations

from typing import Dict, List

from repro.prefetch.base import Prefetcher

CONFIDENCE_MAX = 3
CONFIDENCE_THRESHOLD = 2


class _StrideEntry:
    __slots__ = ("last_block", "stride", "confidence")

    def __init__(self, last_block: int) -> None:
        self.last_block = last_block
        self.stride = 0
        self.confidence = 0


class IpStridePrefetcher(Prefetcher):
    """Stride table indexed by instruction pointer."""

    name = "ip_stride"
    #: Geometry constraints surfaced through the component registry's
    #: ``spec()``: a cache level needs at least this many blocks for the
    #: stride table's degree-ahead prefetches to land inside the level
    #: rather than thrash it (the scaled L2, 8 KB / 64 B = 128 blocks, is
    #: the smallest level the paper's NNI string targets).
    spec_constraints = {"min_level_blocks": 64}

    def __init__(self, block_size: int = 64, degree: int = 2,
                 table_size: int = 1024) -> None:
        super().__init__(block_size=block_size, degree=degree)
        self.table_size = table_size
        self._table: Dict[int, _StrideEntry] = {}

    def _candidates(self, pc: int, block_addr: int, hit: bool) -> List[int]:
        block = block_addr // self.block_size
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_size:
                # FIFO-ish eviction: drop the oldest insertion.
                self._table.pop(next(iter(self._table)))
            self._table[pc] = _StrideEntry(block)
            return []
        stride = block - entry.last_block
        if stride == entry.stride and stride != 0:
            if entry.confidence < CONFIDENCE_MAX:
                entry.confidence += 1
        else:
            entry.stride = stride
            entry.confidence = 0
        entry.last_block = block
        if entry.confidence >= CONFIDENCE_THRESHOLD and entry.stride != 0:
            return [
                (block + entry.stride * i) * self.block_size
                for i in range(1, self.degree + 1)
            ]
        return []
