"""Core timing model."""

from repro.cpu.core import Core, CoreStats

__all__ = ["Core", "CoreStats"]
